//! Trace analysis for `rbvc-obs` JSONL captures, plus the CI smoke check.
//!
//! Usage:
//!
//! * `exp_obs TRACE.jsonl` — parse a trace written by
//!   `exp_service --trace` (or any `JsonlRecorder` sink) and print the
//!   per-run report: event counts, receive-gate rejection table, decide
//!   latency percentiles, kernel timing breakdown, and the dumped metrics.
//! * `exp_obs --smoke` — end-to-end self-check for CI: run a small traced
//!   in-process service mesh, inject Byzantine frames at a raw endpoint,
//!   then assert the trace is consistent with ground truth — it parses,
//!   decide events equal decided instances × nodes, service-gate rejection
//!   events match the service's own gate counters, and violation events
//!   match the safety monitor. Exits nonzero on any mismatch.

use std::sync::Arc;
use std::time::Duration;

use rbvc_bench::experiments::service::{
    run_service_with_obs, ServiceConfig, TransportKind,
};
use rbvc_obs::{
    kernel_snapshot, render_report, reset_kernel_timers, set_kernel_timing, JsonlRecorder, Obs,
    Recorder, Registry, TraceSummary,
};
use rbvc_transport::service::GATE_NAMES;
use rbvc_transport::{encode_frame, in_proc_mesh, ConsensusService, Frame, Payload, Transport};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let Some(path) = args.get(1) else {
        eprintln!("usage: exp_obs TRACE.jsonl | exp_obs --smoke");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("FAIL: cannot read {path}: {e}");
        std::process::exit(1);
    });
    match TraceSummary::parse(&text) {
        Ok(summary) => print!("{}", render_report(&summary)),
        Err(e) => {
            eprintln!("FAIL: malformed trace {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// Count of trace gate-rejection events belonging to the *service's* four
/// receive gates (protocol layers emit their own `gate=` classes — verify,
/// bounds, payload, batch_bounds, stale — which have no service counter).
fn service_gate_events(s: &TraceSummary) -> u64 {
    GATE_NAMES
        .iter()
        .map(|g| s.gate_rejections.get(*g).copied().unwrap_or(0))
        .sum()
}

/// Exercise the service receive gates through a raw endpoint: the service
/// under test sits at process 1 with one VA instance; process 0 injects one
/// undecodable blob, one spoofed frame, one unknown-instance frame, and one
/// kind-mismatched frame. Returns the service's own per-gate counters.
fn inject_byzantine_frames(obs: Obs) -> [u64; 4] {
    use rbvc_core::verified_avg::{DeltaMode, RoundState, VerifiedAveraging};
    use rbvc_linalg::{Norm, Tol, VecD};

    let n = 2;
    let mut mesh = in_proc_mesh(n);
    let ep1 = mesh.pop().unwrap();
    let mut raw = mesh.pop().unwrap();
    let mut svc = ConsensusService::new(ep1);
    svc.set_obs(obs);
    svc.add_instance(
        5,
        rbvc_transport::InstanceProto::Va(VerifiedAveraging::new(
            1,
            n,
            0,
            VecD::from_slice(&[0.0]),
            DeltaMode::MinDelta(Norm::L2),
            2,
            Tol::default(),
        )),
    )
    .expect("register");
    svc.start().expect("start");

    // Gate "decode": bytes no decoder accepts.
    raw.send(1, vec![0xde, 0xad]).expect("send");
    // Gate "auth": header claims sender 1 on the link from 0.
    let spoof = Frame {
        instance: 5,
        sender: 1,
        round: 0,
        payload: Payload::Va((
            (0, 0),
            rbvc_sim::bracha::BrachaMsg::Init(RoundState {
                value: VecD::from_slice(&[1.0]),
                witness: vec![],
            }),
        )),
    };
    raw.send(1, encode_frame(&spoof)).expect("send");
    // Gate "instance": well-formed frame for an unregistered instance.
    let unknown = Frame { instance: 99, sender: 0, ..spoof.clone() };
    raw.send(1, encode_frame(&unknown)).expect("send");
    // Gate "kind": EIG payload for a VA instance.
    let mismatch = Frame { instance: 5, sender: 0, round: 0, payload: Payload::Eig(vec![]) };
    raw.send(1, encode_frame(&mismatch)).expect("send");
    raw.flush().expect("flush");

    for _ in 0..20 {
        let _ = svc.poll(Duration::from_millis(2));
        if svc.gate_rejections().iter().sum::<u64>() >= 4 {
            break;
        }
    }
    svc.gate_rejections()
}

fn smoke() {
    let path = std::env::temp_dir().join(format!("rbvc_exp_obs_smoke_{}.jsonl", std::process::id()));
    let recorder = Arc::new(JsonlRecorder::create(&path).expect("create trace"));
    let obs = Obs::new(Arc::clone(&recorder) as Arc<dyn Recorder>);
    Registry::global().reset();
    reset_kernel_timers();
    set_kernel_timing(true);

    // A clean traced mesh run plus a deliberately Byzantine gate exercise,
    // both into one trace.
    let cfg = ServiceConfig::smoke(2016);
    let out = run_service_with_obs(&cfg, TransportKind::InProc, Some(obs.clone()));
    let gate_counters = inject_byzantine_frames(obs);
    for line in Registry::global().to_jsonl_lines() {
        recorder.write_raw(&line);
    }
    for k in kernel_snapshot() {
        recorder.write_raw(&k.to_json_line());
    }
    recorder.flush();

    let text = std::fs::read_to_string(&path).expect("read trace back");
    let summary = match TraceSummary::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("FAIL: trace does not parse: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", render_report(&summary));
    let _ = std::fs::remove_file(&path);

    let mut failed = false;
    let mut check = |ok: bool, what: String| {
        if ok {
            println!("ok: {what}");
        } else {
            eprintln!("FAIL: {what}");
            failed = true;
        }
    };

    check(
        out.decided == cfg.instances && out.monitor_violations == 0 && out.errors == 0,
        format!(
            "mesh run clean: {}/{} decided, {} violations, {} errors",
            out.decided, cfg.instances, out.monitor_violations, out.errors
        ),
    );
    // Protocol layers emit their own decide events (e.g. Verified
    // Averaging's "after N rounds"); the service-level ones are exactly
    // those carrying a `latency_us=` measurement.
    let service_decides = summary
        .events
        .iter()
        .filter(|e| {
            e.kind == rbvc_obs::EventKind::Decide
                && e.detail
                    .as_deref()
                    .is_some_and(|d| rbvc_obs::detail_field(d, "latency_us").is_some())
        })
        .count();
    check(
        service_decides == cfg.instances * cfg.n,
        format!(
            "service decide events == decided instances x nodes ({} == {} x {})",
            service_decides, cfg.instances, cfg.n
        ),
    );
    let gate_events = service_gate_events(&summary);
    let gate_total: u64 = gate_counters.iter().sum();
    check(
        gate_events == gate_total && gate_counters == [1, 1, 1, 1],
        format!(
            "service-gate rejection events match the service counters \
             ({gate_events} events, counters {gate_counters:?})"
        ),
    );
    check(
        summary.violations == out.monitor_violations as u64,
        format!(
            "violation events match the safety monitor ({} == {})",
            summary.violations, out.monitor_violations
        ),
    );
    let p50 = summary.decide_latency_percentile_us(50.0);
    let p99 = summary.decide_latency_percentile_us(99.0);
    check(
        p50.is_finite() && p50 > 0.0 && p50 <= p99,
        format!("latency percentiles are sane (p50 {p50:.0} us <= p99 {p99:.0} us)"),
    );
    check(
        summary.kernels.iter().any(|k| k.calls > 0),
        "kernel timing recorded at least one hot-kernel call".to_string(),
    );
    check(summary.unknown_records == 0, "no unknown record types".to_string());

    if failed {
        std::process::exit(1);
    }
    println!("exp_obs --smoke: all checks passed");
}
