#![warn(missing_docs)]

//! # rbvc-transport
//!
//! Point-to-point transports and the multi-instance consensus service for
//! relaxed Byzantine vector consensus — the layer that takes the protocol
//! state machines of `rbvc-core` off the simulator and onto real sockets.
//!
//! * [`wire`] — the binary frame codec (`instance | round | sender | typed
//!   payload`) with strict decode validation: malformed or Byzantine bytes
//!   are rejected at the frame boundary as
//!   [`rbvc_sim::error::ProtocolError`], never a panic.
//! * [`transport`] — the [`transport::Transport`] trait (queued sends,
//!   per-peer batched flush, authenticated receive) and the in-process mesh
//!   that adapts the simulator's fault-injected network behind it.
//! * [`tcp`] — the real-socket implementation over `std::net` TCP:
//!   length-prefixed framing, per-peer connection management, dial retry
//!   with exponential backoff.
//! * [`lockstep`] — the round synchronizer that runs any
//!   [`rbvc_sim::sync::SyncProtocol`] over an asynchronous substrate with
//!   deterministic (sender-ordered) round delivery.
//! * [`service`] — [`service::ConsensusService`]: many concurrent SyncBvc /
//!   VerifiedAveraging instances multiplexed over one socket mesh, demuxed
//!   by instance id, with per-poll outbound batching.
//! * [`byzantine`] — [`byzantine::ByzantineEndpoint`]: a [`transport::Transport`]
//!   wrapper that runs live adversaries over the real wire (per-recipient
//!   equivocation, lying witnesses, mutism, codec/gate sprays, HELLO
//!   replays, redial storms, identity forgeries) from a seeded attack
//!   registry — the E20/E23 campaigns' weapon rack.
//! * [`auth`] — from-scratch SHA-256 / HMAC-SHA-256 (offline build, no
//!   crypto crates), pairwise key derivation from a mesh seed, and the
//!   challenge–response handshake codec that makes link identity
//!   forgery-proof.
//!
//! Both transports carry identical encoded bytes and both protocol drivers
//! deliver deterministically, so the same seed decides identically whether
//! frames cross a channel or a socket — the property the integration tests
//! pin down.

pub mod auth;
pub mod byzantine;
pub mod client;
pub mod lockstep;
pub mod service;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use auth::{derive_pair_key, hmac_sha256, sha256, MeshAuth, Sha256};
pub use byzantine::{AttackPolicy, AttackRegistry, AttackStats, ByzantineEndpoint, PayloadCrafter};
pub use client::{
    decode_client_frame, encode_client_frame, read_client_frame_bytes, write_client_frame,
    ClientFrame, ClientPort,
};
pub use lockstep::{Lockstep, RoundBatch};
pub use service::{
    client_instance_owner, ClientAdmission, ClientConfig, ClientStats, ConsensusService,
    DecisionEvent, InstanceProto, CLIENT_INSTANCE_BASE,
};
pub use tcp::{tcp_mesh_loopback, tcp_mesh_loopback_authenticated, TcpEndpoint};
pub use transport::{in_proc_mesh, in_proc_mesh_with_faults, AuthEvent, InProcEndpoint, Transport};
pub use wire::{decode_frame, encode_frame, Frame, Payload};
