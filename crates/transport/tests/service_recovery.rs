//! Kill/restart recovery over real sockets (ISSUE 5 tentpole): a durable
//! consensus service killed mid-run replays its WAL, rejoins the TCP mesh on
//! the same address, and the mesh still converges to one agreed decision —
//! with zero replay divergences and no safety violations.

use std::net::TcpListener;
use std::thread;
use std::time::Duration;

use rbvc_core::verified_avg::{DeltaMode, VerifiedAveraging};
use rbvc_linalg::{Norm, Tol, VecD};
use rbvc_sim::monitor::{epsilon_agreement, SafetyMonitor, ServiceMonitor};
use rbvc_store::Wal;
use rbvc_transport::service::{ConsensusService, InstanceProto};
use rbvc_transport::tcp::TcpEndpoint;

const N: usize = 3;
const INSTANCE: u64 = 11;

fn va_instance(id: usize, input: &[f64]) -> InstanceProto {
    InstanceProto::Va(VerifiedAveraging::new(
        id,
        N,
        0,
        VecD::from_slice(input),
        DeltaMode::MinDelta(Norm::L2),
        8,
        Tol::default(),
    ))
}

fn va_spec(input: &[f64]) -> Vec<u8> {
    input.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn va_from_spec(id: usize, spec: &[u8]) -> InstanceProto {
    let input: Vec<f64> = spec
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    va_instance(id, &input)
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rbvc-svcrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mk tmp dir");
    dir
}

#[test]
fn killed_node_recovers_and_the_mesh_converges() {
    let dir = tmp_dir("kill");
    let inputs: [Vec<f64>; N] = [vec![0.0, 0.0], vec![6.0, 0.0], vec![0.0, 6.0]];

    // Stable addresses so the victim can rebind after its crash.
    let listeners: Vec<TcpListener> = (0..N)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)).expect("bind"))
        .collect();
    let addrs: Vec<_> = listeners.iter().map(|l| l.local_addr().expect("addr")).collect();
    let endpoints: Vec<TcpEndpoint> = {
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(id, listener)| {
                let addrs = addrs.clone();
                thread::spawn(move || TcpEndpoint::connect(id, listener, &addrs))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic").expect("connect"))
            .collect()
    };

    // Every node is durable — the survivors need their outbound history to
    // replay it to the restarted peer.
    let mut services: Vec<ConsensusService<TcpEndpoint>> = Vec::new();
    for (i, ep) in endpoints.into_iter().enumerate() {
        let mut svc = ConsensusService::new(ep);
        let (wal, report) = Wal::open(dir.join(format!("node{i}.wal"))).expect("open wal");
        assert!(report.created);
        svc.attach_wal(wal);
        svc.add_instance_durable(INSTANCE, va_instance(i, &inputs[i]), va_spec(&inputs[i]))
            .unwrap();
        svc.start().unwrap();
        services.push(svc);
    }

    // A little mid-round progress, then kill node 0: its service (and with
    // it the endpoint, sockets, and listener) drops on the floor.
    for _ in 0..2 {
        for svc in &mut services {
            let _ = svc.poll(Duration::from_millis(2));
        }
    }
    let victim = services.remove(0);
    drop(victim);

    // Restart: replay the WAL into a fresh service on a fresh endpoint
    // bound to the same address.
    let (wal, report) = Wal::open(dir.join("node0.wal")).expect("reopen wal");
    assert!(!report.records.is_empty(), "the victim had logged state");
    let listener = TcpListener::bind(addrs[0]).expect("rebind same addr");
    let endpoint = TcpEndpoint::connect(0, listener, &addrs).expect("reconnect");
    let recovered = ConsensusService::recover(endpoint, wal, &report, |_, spec| {
        Ok(va_from_spec(0, spec))
    })
    .expect("recover");
    assert_eq!(recovered.replay_divergences(), 0, "faithful replay");
    services.insert(0, recovered);

    // The mesh must still converge.
    let mut spins = 0;
    while services.iter().any(|s| !s.all_decided()) {
        for svc in &mut services {
            let _ = svc.poll(Duration::from_millis(2));
        }
        spins += 1;
        assert!(spins < 5_000, "mesh failed to converge after recovery");
    }

    // One agreed decision, no safety violations — restart included.
    let mut monitor: ServiceMonitor<Vec<f64>> = ServiceMonitor::new(move |_| {
        SafetyMonitor::agreement_only(N, epsilon_agreement(1e-9))
    });
    for (p, svc) in services.iter().enumerate() {
        let d = svc.decision(INSTANCE).expect("decided");
        monitor.observe(INSTANCE, p, &d.as_slice().to_vec());
    }
    assert!(monitor.clean(), "violations: {:?}", monitor.alerts());
    let d0 = services[0].decision(INSTANCE).expect("decided");
    for svc in &services[1..] {
        assert_eq!(svc.decision(INSTANCE), Some(d0.clone()));
    }
}
