//! Independent 2-D geometric oracles used to cross-check the LP/Wolfe
//! machinery: Andrew's monotone-chain convex hull, exact polygon
//! membership/distance, and closed-form Radon points.
//!
//! Everything in the main pipeline is answered through the simplex LP
//! solver and Wolfe's algorithm; these classic computational-geometry
//! routines compute the same predicates *by a completely different method*
//! in dimension 2, so agreement between the two is a strong correctness
//! signal (exercised by this module's tests and the property suite).

use rbvc_linalg::{Mat, Tol, VecD};

fn as2(p: &VecD) -> (f64, f64) {
    assert_eq!(p.dim(), 2, "oracle2d handles d = 2 only");
    (p[0], p[1])
}

/// Twice the signed area of triangle `(a, b, c)` (> 0 for counterclockwise).
#[must_use]
pub fn cross(a: &VecD, b: &VecD, c: &VecD) -> f64 {
    let (ax, ay) = as2(a);
    let (bx, by) = as2(b);
    let (cx, cy) = as2(c);
    (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
}

/// Andrew's monotone-chain convex hull. Returns hull vertices in
/// counterclockwise order (collinear boundary points dropped). For fewer
/// than 3 distinct points, returns the distinct points.
#[must_use]
pub fn monotone_chain(points: &[VecD]) -> Vec<VecD> {
    let mut pts: Vec<(f64, f64)> = points.iter().map(as2).collect();
    pts.sort_by(|a, b| a.partial_cmp(b).expect("finite coordinates"));
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        return pts
            .into_iter()
            .map(|(x, y)| VecD::from_slice(&[x, y]))
            .collect();
    }
    let mut hull: Vec<(f64, f64)> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 {
            let (ox, oy) = hull[hull.len() - 2];
            let (ax, ay) = hull[hull.len() - 1];
            if (ax - ox) * (p.1 - oy) - (ay - oy) * (p.0 - ox) <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev() {
        while hull.len() >= lower_len {
            let (ox, oy) = hull[hull.len() - 2];
            let (ax, ay) = hull[hull.len() - 1];
            if (ax - ox) * (p.1 - oy) - (ay - oy) * (p.0 - ox) <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    hull.into_iter()
        .map(|(x, y)| VecD::from_slice(&[x, y]))
        .collect()
}

/// Point-in-convex-polygon test (polygon counterclockwise, closed). Points
/// on the boundary count as inside (within `tol`).
#[must_use]
pub fn polygon_contains(hull: &[VecD], q: &VecD, tol: Tol) -> bool {
    match hull.len() {
        0 => false,
        1 => hull[0].approx_eq(q, tol),
        2 => segment_distance(&hull[0], &hull[1], q) <= tol.value().max(1e-12),
        _ => {
            let scale = hull.iter().fold(1.0_f64, |m, p| m.max(p.max_abs()));
            let eps = tol.scaled(scale * scale).value();
            (0..hull.len()).all(|i| {
                let j = (i + 1) % hull.len();
                cross(&hull[i], &hull[j], q) >= -eps
            })
        }
    }
}

/// Euclidean distance from `q` to segment `[a, b]`.
#[must_use]
pub fn segment_distance(a: &VecD, b: &VecD, q: &VecD) -> f64 {
    let ab = b - a;
    let denom = ab.norm2_sq();
    if denom <= f64::EPSILON {
        return q.dist2(a);
    }
    let t = ((q - a).dot(&ab) / denom).clamp(0.0, 1.0);
    q.dist2(&a.axpy(t, &ab))
}

/// Euclidean distance from `q` to a convex polygon (0 if inside).
#[must_use]
pub fn polygon_distance(hull: &[VecD], q: &VecD, tol: Tol) -> f64 {
    match hull.len() {
        0 => f64::INFINITY,
        1 => q.dist2(&hull[0]),
        2 => segment_distance(&hull[0], &hull[1], q),
        _ => {
            if polygon_contains(hull, q, tol) {
                return 0.0;
            }
            (0..hull.len())
                .map(|i| segment_distance(&hull[i], &hull[(i + 1) % hull.len()], q))
                .fold(f64::INFINITY, f64::min)
        }
    }
}

/// Closed-form Radon partition of `d + 2` points in `R^d`: a partition into
/// two blocks whose hulls intersect, with the common (Radon) point.
///
/// Solves `Σ αᵢ pᵢ = 0, Σ αᵢ = 0, α ≠ 0` and splits by sign. Returns
/// `None` when the affine-dependence system is numerically degenerate
/// (e.g. repeated points making the nullspace higher-dimensional).
#[must_use]
pub fn radon_point(points: &[VecD], tol: Tol) -> Option<(Vec<usize>, Vec<usize>, VecD)> {
    let d = points[0].dim();
    let n = points.len();
    assert_eq!(n, d + 2, "Radon's theorem needs exactly d + 2 points");
    // Solve the (d+1) × (d+2) homogeneous system: fix α_{d+1} = 1 and solve
    // for the rest; if singular, fix α_{d+1} = 0, α_d = 1, etc.
    for fixed in (0..n).rev() {
        let mut a = Mat::zeros(d + 1, n - 1);
        let mut rhs = VecD::zeros(d + 1);
        let cols: Vec<usize> = (0..n).filter(|&j| j != fixed).collect();
        for (cidx, &j) in cols.iter().enumerate() {
            for i in 0..d {
                a[(i, cidx)] = points[j][i];
            }
            a[(d, cidx)] = 1.0;
        }
        for i in 0..d {
            rhs[i] = -points[fixed][i];
        }
        rhs[d] = -1.0;
        // a is (d+1) × (d+1): solvable iff the remaining points are
        // affinely independent.
        if a.ncols() != d + 1 {
            continue;
        }
        if let Some(sol) = a.solve(&rhs, tol) {
            let mut alpha = vec![0.0; n];
            alpha[fixed] = 1.0;
            for (cidx, &j) in cols.iter().enumerate() {
                alpha[j] = sol[cidx];
            }
            let pos: Vec<usize> = (0..n).filter(|&j| alpha[j] > tol.value()).collect();
            let neg: Vec<usize> = (0..n).filter(|&j| alpha[j] < -tol.value()).collect();
            if pos.is_empty() || neg.is_empty() {
                continue;
            }
            let pos_sum: f64 = pos.iter().map(|&j| alpha[j]).sum();
            let mut point = VecD::zeros(d);
            for &j in &pos {
                point = point.axpy(alpha[j] / pos_sum, &points[j]);
            }
            return Some((pos, neg, point));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use rbvc_linalg::Norm;

    use crate::hull::ConvexHull;

    fn t() -> Tol {
        Tol::default()
    }

    fn random_pts(rng: &mut StdRng, n: usize) -> Vec<VecD> {
        (0..n)
            .map(|_| VecD::from_slice(&[rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)]))
            .collect()
    }

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[1.0, 1.0]),
            VecD::from_slice(&[0.0, 1.0]),
            VecD::from_slice(&[0.5, 0.5]),
            VecD::from_slice(&[0.25, 0.75]),
        ];
        let hull = monotone_chain(&pts);
        assert_eq!(hull.len(), 4, "square has 4 hull vertices");
    }

    #[test]
    fn hull_of_collinear_points_is_segment() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 1.0]),
            VecD::from_slice(&[2.0, 2.0]),
        ];
        let hull = monotone_chain(&pts);
        assert_eq!(hull.len(), 2, "collinear points hull to a segment");
    }

    #[test]
    fn polygon_membership_matches_lp_membership() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..60 {
            let pts = random_pts(&mut rng, 7);
            let lp_hull = ConvexHull::new(pts.clone());
            let polygon = monotone_chain(&pts);
            for _ in 0..10 {
                let q =
                    VecD::from_slice(&[rng.gen_range(-4.0..4.0), rng.gen_range(-4.0..4.0)]);
                let lp_in = lp_hull.contains(&q, t());
                let oracle_in = polygon_contains(&polygon, &q, Tol(1e-7));
                // Allow disagreement only within a hair of the boundary.
                if lp_in != oracle_in {
                    let dist = polygon_distance(&polygon, &q, t());
                    assert!(
                        dist < 1e-6,
                        "LP ({lp_in}) vs oracle ({oracle_in}) disagree away from boundary: {q}, dist {dist}"
                    );
                }
            }
        }
    }

    #[test]
    fn polygon_distance_matches_wolfe_distance() {
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..60 {
            let pts = random_pts(&mut rng, 6);
            let lp_hull = ConvexHull::new(pts.clone());
            let polygon = monotone_chain(&pts);
            let q = VecD::from_slice(&[rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)]);
            let wolfe = lp_hull.distance(&q, Norm::L2, t());
            let oracle = polygon_distance(&polygon, &q, t());
            assert!(
                (wolfe - oracle).abs() < 1e-7,
                "Wolfe {wolfe} vs polygon oracle {oracle} at {q}"
            );
        }
    }

    #[test]
    fn segment_distance_cases() {
        let a = VecD::from_slice(&[0.0, 0.0]);
        let b = VecD::from_slice(&[2.0, 0.0]);
        assert!((segment_distance(&a, &b, &VecD::from_slice(&[1.0, 1.0])) - 1.0).abs() < 1e-12);
        assert!(
            (segment_distance(&a, &b, &VecD::from_slice(&[3.0, 0.0])) - 1.0).abs() < 1e-12
        );
        assert!(segment_distance(&a, &b, &VecD::from_slice(&[1.5, 0.0])) < 1e-12);
        // Degenerate segment.
        assert!(
            (segment_distance(&a, &a, &VecD::from_slice(&[0.0, 2.0])) - 2.0).abs() < 1e-12
        );
    }

    #[test]
    fn radon_point_of_square() {
        // 4 points in R²: the two diagonals cross at (0.5, 0.5).
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 1.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        let (pos, neg, point) = radon_point(&pts, t()).expect("square has a Radon point");
        assert!(point.approx_eq(&VecD::from_slice(&[0.5, 0.5]), Tol(1e-9)));
        assert_eq!(pos.len() + neg.len(), 4);
    }

    #[test]
    fn radon_point_is_in_both_block_hulls() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..40 {
            let pts = random_pts(&mut rng, 4);
            let Some((pos, neg, point)) = radon_point(&pts, t()) else {
                continue; // degenerate draw
            };
            let hull_pos = ConvexHull::from_indices(&pts, &pos);
            let hull_neg = ConvexHull::from_indices(&pts, &neg);
            assert!(hull_pos.contains(&point, Tol(1e-6)), "Radon point outside + block");
            assert!(hull_neg.contains(&point, Tol(1e-6)), "Radon point outside − block");
        }
    }

    #[test]
    fn radon_agrees_with_tverberg_search_f1() {
        // The exhaustive f = 1 Tverberg search must succeed exactly when the
        // closed-form Radon computation does.
        let mut rng = StdRng::seed_from_u64(34);
        for _ in 0..25 {
            let pts = random_pts(&mut rng, 4);
            let radon = radon_point(&pts, t());
            let tverberg = crate::tverberg::find_tverberg_partition(&pts, 1, t());
            assert_eq!(
                radon.is_some(),
                tverberg.is_some(),
                "Radon and Tverberg search disagree on {pts:?}"
            );
        }
    }

    #[test]
    fn radon_in_3d() {
        // 5 points in R³.
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0, 0.0]),
            VecD::from_slice(&[0.0, 0.0, 1.0]),
            VecD::from_slice(&[0.3, 0.3, 0.3]),
        ];
        let (pos, neg, point) = radon_point(&pts, t()).expect("generic 5 points in R³");
        let hull_pos = ConvexHull::from_indices(&pts, &pos);
        let hull_neg = ConvexHull::from_indices(&pts, &neg);
        assert!(hull_pos.contains(&point, Tol(1e-6)));
        assert!(hull_neg.contains(&point, Tol(1e-6)));
    }
}
