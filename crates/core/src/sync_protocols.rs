//! Synchronous consensus protocols: Byzantine-broadcast-then-decide.
//!
//! [`SyncBvc`] is the executable form of the paper's synchronous algorithms:
//! Step 1 runs `n` parallel EIG Byzantine broadcasts so that all correct
//! processes obtain the identical multiset `S`; Step 2 applies a
//! [`DecisionRule`]:
//!
//! * `GammaPoint` → Exact BVC (Theorem 1 regime) and k-relaxed exact
//!   consensus for `2 ≤ k ≤ d` (Theorem 3 sufficiency);
//! * `CoordinateTrimmedMidpoint` → 1-relaxed exact consensus at `n ≥ 3f+1`;
//! * `MinDeltaPoint(p)` → ALGO (§9): input-dependent (δ,p)-relaxed exact
//!   consensus at `n ≥ 3f + 1`.

use rbvc_linalg::{Tol, VecD};
use rbvc_sim::config::ProcessId;
use rbvc_sim::eig::{EigMsg, LyingRelay, ParallelEig, ParallelEigMsg, TwoFacedSender};
use rbvc_sim::sync::{SilentAdversary, SyncAdversary, SyncNode, SyncProtocol};

use crate::rules::{Decision, DecisionRule};

/// The broadcast-then-decide synchronous protocol.
pub struct SyncBvc {
    eig: ParallelEig<VecD>,
    rule: DecisionRule,
    n: usize,
    f: usize,
    d: usize,
    tol: Tol,
    decision: Option<Decision>,
}

impl SyncBvc {
    /// Build the protocol instance for process `id` with its `input`.
    ///
    /// The EIG default for silent/faulty senders is the origin `0^d` — any
    /// fixed value works because it is only ever attributed to a faulty
    /// process, whose "input" is unconstrained by validity.
    #[must_use]
    pub fn new(
        id: ProcessId,
        n: usize,
        f: usize,
        d: usize,
        input: VecD,
        rule: DecisionRule,
        tol: Tol,
    ) -> Self {
        assert_eq!(input.dim(), d, "input dimension mismatch");
        SyncBvc {
            eig: ParallelEig::new(id, n, f, input, VecD::zeros(d)),
            rule,
            n,
            f,
            d,
            tol,
            decision: None,
        }
    }

    /// True iff `v` is a well-formed payload for this run: the right
    /// dimension and every component finite.
    fn value_ok(&self, v: &VecD) -> bool {
        v.dim() == self.d && v.as_slice().iter().all(|x| x.is_finite())
    }

    /// The full decision record (value + δ used), once decided.
    #[must_use]
    pub fn decision(&self) -> Option<&Decision> {
        self.decision.as_ref()
    }

    /// The common multiset `S` obtained from Step 1, once available.
    #[must_use]
    pub fn common_multiset(&self) -> Option<Vec<VecD>> {
        self.eig.output()
    }
}

impl SyncProtocol for SyncBvc {
    type Msg = ParallelEigMsg<VecD>;
    type Output = VecD;

    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, Self::Msg)> {
        self.eig.round_messages(round)
    }

    fn receive(&mut self, round: usize, inbox: &[(ProcessId, Self::Msg)]) {
        // Receive-boundary sanitization: the EIG layer is payload-agnostic,
        // so ghost senders, ghost instance origins and values that are not
        // finite `d`-vectors are dropped here, before they can poison the
        // shared multiset or panic a decision rule downstream.
        let sane: Vec<(ProcessId, Self::Msg)> = inbox
            .iter()
            .filter(|(from, _)| *from < self.n)
            .map(|(from, msg)| {
                let msg: Self::Msg = msg
                    .iter()
                    .filter(|(origin, _)| *origin < self.n)
                    .map(|(origin, batch)| {
                        let batch: EigMsg<VecD> = batch
                            .iter()
                            .filter(|(_, v)| self.value_ok(v))
                            .cloned()
                            .collect();
                        (*origin, batch)
                    })
                    .collect();
                (*from, msg)
            })
            .collect();
        self.eig.receive(round, &sane);
        if self.decision.is_none() {
            if let Some(s) = self.eig.output() {
                self.decision = Some(self.rule.decide(&s, self.f, self.tol));
            }
        }
    }

    fn output(&self) -> Option<VecD> {
        self.decision.as_ref().map(|d| d.value.clone())
    }
}

/// What a Byzantine process does in the synchronous protocols. These cover
/// the attack surface the paper reasons about: omission, equivocation at
/// the source, corruption in relays, and the impossibility proofs' device
/// of a faulty process that follows the protocol.
#[derive(Debug, Clone)]
pub enum ByzantineStrategy {
    /// Sends nothing, ever.
    Silent,
    /// Equivocates on its own input: shows `values[j]` to process `j`,
    /// relays faithfully otherwise.
    TwoFaced(Vec<VecD>),
    /// Participates with `input` but corrupts relayed values toward
    /// odd-indexed recipients with `corrupt`.
    LyingRelay {
        /// The value it broadcasts as its own input.
        input: VecD,
        /// The value injected into relays.
        corrupt: VecD,
    },
    /// Follows the protocol exactly with the given input (the restricted
    /// adversary of the Theorem 3/5 necessity proofs).
    FollowProtocol(VecD),
}

/// Materialize a node (honest or Byzantine) for the lockstep engine.
#[must_use]
#[allow(clippy::too_many_arguments)] // flat spec mirrors the runner structs
pub fn make_node(
    id: ProcessId,
    n: usize,
    f: usize,
    d: usize,
    honest_input: Option<VecD>,
    strategy: Option<ByzantineStrategy>,
    rule: DecisionRule,
    tol: Tol,
) -> SyncNode<SyncBvc> {
    match strategy {
        None => {
            let input = honest_input.expect("honest node needs an input");
            SyncNode::Honest(SyncBvc::new(id, n, f, d, input, rule, tol))
        }
        Some(ByzantineStrategy::Silent) => SyncNode::Byzantine(Box::new(SilentAdversary)),
        Some(ByzantineStrategy::TwoFaced(values)) => {
            assert_eq!(values.len(), n, "TwoFaced needs one value per recipient");
            SyncNode::Byzantine(Box::new(TwoFacedSender::new(
                id,
                n,
                f,
                values,
                VecD::zeros(d),
            )))
        }
        Some(ByzantineStrategy::LyingRelay { input, corrupt }) => SyncNode::Byzantine(
            Box::new(LyingRelay::new(id, n, f, input, VecD::zeros(d), corrupt)),
        ),
        Some(ByzantineStrategy::FollowProtocol(input)) => {
            SyncNode::Byzantine(Box::new(FollowProtocolAdversary(ParallelEig::new(
                id,
                n,
                f,
                input,
                VecD::zeros(d),
            ))))
        }
    }
}

/// Byzantine wrapper that runs the honest broadcast layer verbatim.
pub struct FollowProtocolAdversary(ParallelEig<VecD>);

impl SyncAdversary<ParallelEigMsg<VecD>> for FollowProtocolAdversary {
    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, ParallelEigMsg<VecD>)> {
        self.0.round_messages(round)
    }
    fn receive(&mut self, round: usize, inbox: &[(ProcessId, ParallelEigMsg<VecD>)]) {
        self.0.receive(round, inbox);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbvc_linalg::Norm;
    use rbvc_sim::config::SystemConfig;
    use rbvc_sim::sync::RoundEngine;

    use crate::problem::{check_execution, Agreement, Validity};

    fn t() -> Tol {
        Tol::default()
    }

    /// Run a system where process ids in `byz` follow the given strategies.
    fn run(
        n: usize,
        f: usize,
        d: usize,
        inputs: &[VecD],
        byz: &[(usize, ByzantineStrategy)],
        rule: DecisionRule,
    ) -> (Vec<Option<VecD>>, Vec<VecD>) {
        let faulty: Vec<usize> = byz.iter().map(|(i, _)| *i).collect();
        let config = SystemConfig::new(n, f).with_faulty(faulty.clone());
        let nodes: Vec<SyncNode<SyncBvc>> = (0..n)
            .map(|i| {
                let strategy = byz
                    .iter()
                    .find(|(j, _)| *j == i)
                    .map(|(_, s)| s.clone());
                let honest_input = if strategy.is_none() {
                    Some(inputs[i].clone())
                } else {
                    None
                };
                make_node(i, n, f, d, honest_input, strategy, rule, t())
            })
            .collect();
        let mut engine = RoundEngine::new(config.clone(), nodes);
        let out = engine.run(f + 2);
        let correct_inputs: Vec<VecD> = config
            .correct_ids()
            .into_iter()
            .map(|i| inputs[i].clone())
            .collect();
        (out.decisions, correct_inputs)
    }

    #[test]
    fn exact_bvc_at_theorem1_bound() {
        // d = 2, f = 1, n = max(4, 4) = 4: Exact BVC must succeed against a
        // two-faced equivocator.
        let (n, f, d) = (4, 1, 2);
        let inputs = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[0.0, 2.0]),
            VecD::zeros(2), // ignored (faulty)
        ];
        let byz = vec![(
            3,
            ByzantineStrategy::TwoFaced(vec![
                VecD::from_slice(&[100.0, 100.0]),
                VecD::from_slice(&[-100.0, -100.0]),
                VecD::from_slice(&[0.0, 50.0]),
                VecD::zeros(2),
            ]),
        )];
        let (decisions, correct) = run(n, f, d, &inputs, &byz, DecisionRule::GammaPoint);
        let correct_decisions: Vec<Option<VecD>> =
            (0..3).map(|i| decisions[i].clone()).collect();
        let v = check_execution(
            &correct,
            &correct_decisions,
            Agreement::Exact,
            &Validity::Exact,
            t(),
        );
        assert!(v.ok(), "Exact BVC failed at the Theorem 1 bound: {v:?}");
    }

    #[test]
    fn one_relaxed_consensus_at_3f_plus_1_high_dimension() {
        // d = 5, f = 1, n = 4 < (d+1)f+1 = 7: exact BVC impossible here,
        // but 1-relaxed consensus must work (paper §5.3).
        let (n, f, d) = (4, 1, 5);
        let inputs: Vec<VecD> = (0..n)
            .map(|i| VecD((0..d).map(|c| (i * d + c) as f64).collect()))
            .collect();
        let byz = vec![(0, ByzantineStrategy::Silent)];
        let (decisions, correct) = run(
            n,
            f,
            d,
            &inputs,
            &byz,
            DecisionRule::CoordinateTrimmedMidpoint,
        );
        let correct_decisions: Vec<Option<VecD>> =
            (1..4).map(|i| decisions[i].clone()).collect();
        let v = check_execution(
            &correct,
            &correct_decisions,
            Agreement::Exact,
            &Validity::KRelaxed(1),
            t(),
        );
        assert!(v.ok(), "1-relaxed consensus failed: {v:?}");
    }

    #[test]
    fn algo_achieves_input_dependent_delta_at_n_d_plus_1() {
        // The paper's headline: f = 1, d = 3, n = d + 1 = 4 < (d+1)f+1 = 5.
        // Exact BVC is impossible, but ALGO achieves (δ*, 2)-consensus with
        // δ* < min(min-edge/2, max-edge/(d−1)) (Theorem 9).
        let (n, f, d) = (4, 1, 3);
        let inputs = vec![
            VecD::from_slice(&[0.0, 0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.2, 0.1]),
            VecD::from_slice(&[0.3, 1.1, -0.2]),
            VecD::from_slice(&[-0.4, 0.3, 0.9]),
        ];
        let byz = vec![(
            2,
            ByzantineStrategy::FollowProtocol(inputs[2].clone()),
        )];
        let (decisions, correct) =
            run(n, f, d, &inputs, &byz, DecisionRule::MinDeltaPoint(Norm::L2));
        let correct_decisions: Vec<Option<VecD>> = [0, 1, 3]
            .iter()
            .map(|&i| decisions[i].clone())
            .collect();
        // Theorem 9's bounds define the validity κ: max-edge/(n−2).
        let v = check_execution(
            &correct,
            &correct_decisions,
            Agreement::Exact,
            &Validity::InputDependentDeltaP {
                kappa: 1.0 / (n as f64 - 2.0),
                norm: Norm::L2,
            },
            t(),
        );
        assert!(v.ok(), "ALGO failed the Theorem 9 validity: {v:?}");
    }

    #[test]
    fn lying_relay_cannot_break_agreement() {
        let (n, f, d) = (5, 1, 2);
        let inputs: Vec<VecD> = (0..n)
            .map(|i| VecD::from_slice(&[i as f64, (i * i) as f64 / 4.0]))
            .collect();
        let byz = vec![(
            4,
            ByzantineStrategy::LyingRelay {
                input: VecD::from_slice(&[50.0, -50.0]),
                corrupt: VecD::from_slice(&[9e9, 9e9]),
            },
        )];
        let (decisions, correct) = run(n, f, d, &inputs, &byz, DecisionRule::GammaPoint);
        let correct_decisions: Vec<Option<VecD>> =
            (0..4).map(|i| decisions[i].clone()).collect();
        let v = check_execution(
            &correct,
            &correct_decisions,
            Agreement::Exact,
            &Validity::Exact,
            t(),
        );
        assert!(v.ok(), "lying relays broke the protocol: {v:?}");
    }

    #[test]
    fn all_honest_no_faults_decides_fast() {
        let (n, f, d) = (4, 1, 2);
        let inputs: Vec<VecD> = (0..n)
            .map(|i| VecD::from_slice(&[i as f64, -(i as f64)]))
            .collect();
        let (decisions, correct) = run(n, f, d, &inputs, &[], DecisionRule::GammaPoint);
        let v = check_execution(
            &correct,
            &decisions,
            Agreement::Exact,
            &Validity::Exact,
            t(),
        );
        assert!(v.ok());
    }

    #[test]
    fn non_finite_payloads_cannot_poison_the_run() {
        // A lying relay that injects NaN/∞ vectors: the receive boundary
        // must drop them (they would otherwise defeat every trimming rule,
        // since NaN comparisons are all false) and the run must still
        // satisfy exact agreement + validity.
        let (n, f, d) = (5, 1, 2);
        let inputs: Vec<VecD> = (0..n)
            .map(|i| VecD::from_slice(&[i as f64, 1.0]))
            .collect();
        let byz = vec![(
            4,
            ByzantineStrategy::LyingRelay {
                input: VecD::from_slice(&[2.0, 1.0]),
                corrupt: VecD::from_slice(&[f64::NAN, f64::INFINITY]),
            },
        )];
        let (decisions, correct) = run(n, f, d, &inputs, &byz, DecisionRule::GammaPoint);
        let correct_decisions: Vec<Option<VecD>> =
            (0..4).map(|i| decisions[i].clone()).collect();
        for dec in correct_decisions.iter().flatten() {
            assert!(
                dec.as_slice().iter().all(|x| x.is_finite()),
                "a NaN leaked into a decision: {dec}"
            );
        }
        let v = check_execution(
            &correct,
            &correct_decisions,
            Agreement::Exact,
            &Validity::Exact,
            t(),
        );
        assert!(v.ok(), "NaN-flooding relay broke the protocol: {v:?}");
    }

    #[test]
    fn common_multiset_is_identical_across_correct_processes() {
        let (n, f, d) = (4, 1, 2);
        let config = SystemConfig::new(n, f).with_faulty(vec![1]);
        let inputs: Vec<VecD> = (0..n)
            .map(|i| VecD::from_slice(&[i as f64, 1.0]))
            .collect();
        let nodes: Vec<SyncNode<SyncBvc>> = (0..n)
            .map(|i| {
                if i == 1 {
                    make_node(
                        i,
                        n,
                        f,
                        d,
                        None,
                        Some(ByzantineStrategy::TwoFaced(vec![
                            VecD::from_slice(&[7.0, 7.0]),
                            VecD::from_slice(&[8.0, 8.0]),
                            VecD::from_slice(&[9.0, 9.0]),
                            VecD::from_slice(&[10.0, 10.0]),
                        ])),
                        DecisionRule::CoordinateTrimmedMidpoint,
                        t(),
                    )
                } else {
                    make_node(
                        i,
                        n,
                        f,
                        d,
                        Some(inputs[i].clone()),
                        None,
                        DecisionRule::CoordinateTrimmedMidpoint,
                        t(),
                    )
                }
            })
            .collect();
        let mut engine = RoundEngine::new(config, nodes);
        let _ = engine.run(f + 2);
        let mut sets = Vec::new();
        for i in [0usize, 2, 3] {
            if let SyncNode::Honest(p) = engine.node(i) {
                sets.push(p.common_multiset().expect("decided"));
            }
        }
        assert_eq!(sets[0], sets[1]);
        assert_eq!(sets[1], sets[2]);
    }
}
