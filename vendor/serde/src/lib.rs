//! Offline stand-in for the `serde` crate.
//!
//! Real serde is a zero-copy visitor framework; this workspace only ever
//! *emits* JSON documents (experiment records via `serde_json`), so the
//! stand-in collapses the model to a single owned [`Value`] tree:
//! `Serialize` means "render yourself as a `Value`". The derive macros
//! (re-exported from the companion `serde_derive` proc-macro crate) follow
//! serde's default encoding — structs as objects, newtype structs
//! transparently, enums externally tagged — so the JSON shape matches what
//! the real crate would have produced for these types. `Deserialize` is
//! accepted (types derive it) but is a no-op: the only reader is the
//! `serde_json` stub's `from_str`, which parses into a [`Value`] tree
//! inspected through the accessors below (`get`, `as_str`, `as_u64`, …)
//! rather than into typed structs.

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (serde_json with `preserve_order`).
    Object(Vec<(String, Value)>),
}

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl Value {
    /// Object field lookup (first match; objects preserve insertion
    /// order and the workspace never emits duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Numeric payload as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Compact single-line JSON rendering.
    pub fn render(&self, out: &mut String) {
        self.render_indented(out, usize::MAX, 0);
    }

    /// Pretty rendering with two-space indentation (serde_json style).
    /// `indent == usize::MAX` selects compact mode.
    pub fn render_indented(&self, out: &mut String, indent: usize, depth: usize) {
        let pretty = indent != usize::MAX;
        let pad = |out: &mut String, d: usize| {
            if pretty {
                out.push('\n');
                for _ in 0..d * indent {
                    out.push(' ');
                }
            }
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                // JSON has no NaN/Inf; serde_json refuses them, we emit null.
                if f.is_finite() {
                    out.push_str(&format!("{f:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => escape_json_str(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.render_indented(out, indent, depth + 1);
                }
                pad(out, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    escape_json_str(key, out);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.render_indented(out, indent, depth + 1);
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

fn escape_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        let v = Value::Array(vec![
            1usize.to_value(),
            (-2i32).to_value(),
            1.5f64.to_value(),
            true.to_value(),
            "a\"b".to_value(),
            Option::<u8>::None.to_value(),
        ]);
        let mut s = String::new();
        v.render(&mut s);
        assert_eq!(s, r#"[1,-2,1.5,true,"a\"b",null]"#);
    }

    #[test]
    fn float_formatting_keeps_decimal_point() {
        let mut s = String::new();
        Value::Float(1.0).render(&mut s);
        assert_eq!(s, "1.0");
        s.clear();
        Value::Float(f64::NAN).render(&mut s);
        assert_eq!(s, "null");
    }
}
