//! E2 — Figure 1 (Lemma 10): the three-scenario ring construction showing
//! input-dependent (δ,p)-consensus impossible for `n ≤ 3f`.
//!
//! Usage: `exp_figure1 [d]`

use rbvc_bench::experiments::counterex::figure1_demo;
use rbvc_bench::report::print_table;

fn main() {
    let d: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    println!(
        "E2 — Lemma 10 / Figure 1 at n = 3, f = 1, d = {d}: any candidate \
         algorithm must break a condition in some scenario."
    );
    println!(
        "Candidate under test: one flooding round, decide the δ*₂-point of \
         the three received values.\n"
    );
    let rows = figure1_demo(d);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                format!("{}", r.out_a),
                format!("{}", r.out_b),
                if r.violated.is_empty() {
                    "—".to_string()
                } else {
                    r.violated.to_string()
                },
            ]
        })
        .collect();
    print_table(
        "Figure 1 scenarios",
        &["scenario", "output A", "output B", "violated condition"],
        &table,
    );
    let broken = rows.iter().filter(|r| !r.violated.is_empty()).count();
    println!(
        "\nscenarios with a violated condition: {broken} (Lemma 10 predicts ≥ 1 \
         for every algorithm; n ≥ 3f+1 = 4 removes the contradiction)"
    );
}
