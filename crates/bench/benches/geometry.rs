//! Criterion benches for the geometric substrate: LP hull membership,
//! Wolfe projection, inradius closed form, Γ feasibility, min-δ LP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rbvc_geometry::{gamma_point, min_delta_polyhedral, ConvexHull, Simplex};
use rbvc_linalg::{Norm, Tol, VecD};

fn points(rng: &mut StdRng, n: usize, d: usize) -> Vec<VecD> {
    (0..n)
        .map(|_| VecD((0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()))
        .collect()
}

fn bench_hull_membership(c: &mut Criterion) {
    let tol = Tol::default();
    let mut group = c.benchmark_group("hull_membership_lp");
    for d in [2usize, 4, 8] {
        let mut rng = StdRng::seed_from_u64(d as u64);
        let pts = points(&mut rng, 2 * d, d);
        let hull = ConvexHull::new(pts);
        let q = VecD::zeros(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| hull.contains(std::hint::black_box(&q), tol));
        });
    }
    group.finish();
}

fn bench_wolfe_projection(c: &mut Criterion) {
    let tol = Tol::default();
    let mut group = c.benchmark_group("wolfe_projection");
    for d in [2usize, 4, 8] {
        let mut rng = StdRng::seed_from_u64(10 + d as u64);
        let pts = points(&mut rng, 2 * d, d);
        let hull = ConvexHull::new(pts);
        let q = VecD((0..d).map(|i| 3.0 + i as f64).collect());
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| hull.distance(std::hint::black_box(&q), Norm::L2, tol));
        });
    }
    group.finish();
}

fn bench_inradius(c: &mut Criterion) {
    let tol = Tol::default();
    let mut group = c.benchmark_group("simplex_inradius_closed_form");
    for d in [3usize, 6, 10] {
        let mut rng = StdRng::seed_from_u64(20 + d as u64);
        let pts = loop {
            let cand = points(&mut rng, d + 1, d);
            if Simplex::new(cand.clone(), tol).is_some() {
                break cand;
            }
        };
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                Simplex::new(std::hint::black_box(pts.clone()), tol).map(|s| s.inradius())
            });
        });
    }
    group.finish();
}

fn bench_gamma_feasibility(c: &mut Criterion) {
    let tol = Tol::default();
    let mut group = c.benchmark_group("gamma_point_lp");
    for (n, f, d) in [(4usize, 1usize, 2usize), (5, 1, 3), (8, 2, 3)] {
        let mut rng = StdRng::seed_from_u64((n * 100 + d) as u64);
        let pts = points(&mut rng, n, d);
        let label = format!("n{n}_f{f}_d{d}");
        group.bench_function(&label, |b| {
            b.iter(|| gamma_point(std::hint::black_box(&pts), f, tol));
        });
    }
    group.finish();
}

fn bench_min_delta_lp(c: &mut Criterion) {
    let tol = Tol::default();
    let mut group = c.benchmark_group("min_delta_linf_lp");
    for d in [3usize, 4, 5] {
        let mut rng = StdRng::seed_from_u64(40 + d as u64);
        let pts = points(&mut rng, d + 1, d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| min_delta_polyhedral(std::hint::black_box(&pts), 1, Norm::LInf, tol));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hull_membership,
    bench_wolfe_projection,
    bench_inradius,
    bench_gamma_feasibility,
    bench_min_delta_lp
);
criterion_main!(benches);
