//! Link-level fault injection and retransmission recovery.
//!
//! The paper's system model (§3) assumes perfectly reliable point-to-point
//! channels. Production networks do not cooperate: links drop, delay,
//! duplicate, reorder, and partition. This module makes those faults a
//! first-class, *seeded* part of the simulation so every protocol guarantee
//! can be re-earned on an unreliable substrate:
//!
//! * [`LinkFault`] / [`Partition`] / [`NetworkFaults`] — a per-link fault
//!   model pluggable into both the deterministic [`crate::asynch`] engine
//!   (via `AsyncEngine::run_chaos`) and the [`crate::threads`] crossbeam
//!   runtime (via `run_threaded_chaos`).
//! * [`ReliableLink`] — a sequence-numbered ack/retransmit wrapper with
//!   exponential backoff that restores reliable-channel semantics over a
//!   lossy link, so any `AsyncProtocol` written against the paper's model
//!   runs unmodified under loss < 100%.
//!
//! All decisions flow from one seeded RNG: identical seeds replay
//! bit-identically, which the chaos campaign (`exp_chaos`) relies on.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbvc_obs::{Event, EventKind, Obs};

use crate::asynch::AsyncProtocol;
use crate::config::ProcessId;
use crate::error::{ErrorLog, ProtocolError};

/// Fault parameters for one directed link, applied per message.
///
/// Delays are measured in the engine's logical time unit (scheduler steps
/// for the async engine, milliseconds for the threaded runtime).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Probability the message is silently dropped.
    pub drop_prob: f64,
    /// Probability a second copy of the message is injected.
    pub dup_prob: f64,
    /// Extra delivery delay drawn uniformly from `0..=max_extra_delay`.
    pub max_extra_delay: u64,
    /// Probability of an *additional* reorder penalty of `1..=4` time
    /// units, so reordering occurs even when `max_extra_delay` is zero.
    pub reorder_prob: f64,
}

impl LinkFault {
    /// A perfectly reliable link (the paper's model).
    #[must_use]
    pub fn reliable() -> Self {
        LinkFault {
            drop_prob: 0.0,
            dup_prob: 0.0,
            max_extra_delay: 0,
            reorder_prob: 0.0,
        }
    }

    /// Lossy link with the given drop probability, no other faults.
    #[must_use]
    pub fn lossy(drop_prob: f64) -> Self {
        LinkFault {
            drop_prob,
            ..LinkFault::reliable()
        }
    }

    fn is_reliable(&self) -> bool {
        self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.max_extra_delay == 0
            && self.reorder_prob <= 0.0
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.drop_prob)
                && (0.0..=1.0).contains(&self.dup_prob)
                && (0.0..=1.0).contains(&self.reorder_prob),
            "LinkFault probabilities must lie in [0, 1]: {self:?}"
        );
    }
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault::reliable()
    }
}

/// What happens to traffic crossing a severed partition boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMode {
    /// Cross-partition messages are lost outright; only sender-side
    /// retransmission (e.g. [`ReliableLink`]) recovers them after heal.
    Drop,
    /// Cross-partition messages are buffered by the network and delivered
    /// in a burst when the partition heals (a "cable re-plug").
    HoldUntilHeal,
}

/// A timed network partition: while active, traffic between `side_a` and
/// its complement is severed in both directions.
#[derive(Debug, Clone)]
pub struct Partition {
    /// One side of the cut (the other side is everyone else).
    pub side_a: Vec<ProcessId>,
    /// Logical time at which the partition begins (inclusive).
    pub start: u64,
    /// Logical time at which the partition heals (exclusive): traffic at
    /// `heal` and later flows normally.
    pub heal: u64,
    /// Fate of cross-partition traffic while severed.
    pub mode: PartitionMode,
}

impl Partition {
    /// Does this partition sever `src → dst` traffic at time `now`?
    #[must_use]
    pub fn severs(&self, src: ProcessId, dst: ProcessId, now: u64) -> bool {
        if now < self.start || now >= self.heal {
            return false;
        }
        let a = self.side_a.contains(&src);
        let b = self.side_a.contains(&dst);
        a != b
    }
}

/// Counters for what the fault layer did to traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages offered to the fault layer.
    pub offered: u64,
    /// Messages dropped by link loss.
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Messages that received a nonzero extra delay (incl. reorder penalty).
    pub delayed: u64,
    /// Messages lost at a `PartitionMode::Drop` boundary.
    pub partition_dropped: u64,
    /// Messages buffered until heal at a `HoldUntilHeal` boundary.
    pub partition_held: u64,
}

impl NetStats {
    /// Total messages removed by the network (loss + partition loss).
    #[must_use]
    pub fn total_lost(&self) -> u64 {
        self.dropped + self.partition_dropped
    }
}

/// The seeded fault plan for a whole network: a default link fault, optional
/// per-link overrides, and timed partitions.
#[derive(Debug, Clone)]
pub struct NetworkFaults {
    default: LinkFault,
    per_link: BTreeMap<(ProcessId, ProcessId), LinkFault>,
    partitions: Vec<Partition>,
    /// Per-partition observability state: `(saw_active, heal_emitted)` —
    /// a heal event fires once, on the first routed message at or after
    /// `heal` of a partition that actually severed traffic.
    partition_obs: Vec<(bool, bool)>,
    rng: StdRng,
    obs: Obs,
    /// Counters, updated by every [`NetworkFaults::route`] call.
    pub stats: NetStats,
}

impl NetworkFaults {
    /// A fault plan that never touches a message. No RNG draws are made on
    /// the reliable path, so plugging this in reproduces fault-free runs
    /// bit-identically.
    #[must_use]
    pub fn reliable() -> Self {
        NetworkFaults::new(0, LinkFault::reliable())
    }

    /// Build a plan applying `default` to every link, seeded for replay.
    #[must_use]
    pub fn new(seed: u64, default: LinkFault) -> Self {
        default.validate();
        NetworkFaults {
            default,
            per_link: BTreeMap::new(),
            partitions: Vec::new(),
            partition_obs: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            obs: Obs::noop(),
            stats: NetStats::default(),
        }
    }

    /// Emit [`EventKind::PartitionHeal`] (and, transitively, nothing else:
    /// routing decisions are pure) through `obs`. Tracing never perturbs
    /// the seeded RNG stream, so traced and untraced runs stay identical.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Override the fault model of the directed link `src → dst`.
    #[must_use]
    pub fn with_link(mut self, src: ProcessId, dst: ProcessId, fault: LinkFault) -> Self {
        fault.validate();
        self.per_link.insert((src, dst), fault);
        self
    }

    /// Add a timed partition.
    ///
    /// # Panics
    /// Panics if the partition window is empty.
    #[must_use]
    pub fn with_partition(mut self, partition: Partition) -> Self {
        assert!(
            partition.start < partition.heal,
            "partition must have a nonempty [start, heal) window"
        );
        self.partitions.push(partition);
        self.partition_obs.push((false, false));
        self
    }

    /// The fault model governing `src → dst`.
    #[must_use]
    pub fn link(&self, src: ProcessId, dst: ProcessId) -> LinkFault {
        self.per_link
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default)
    }

    /// Decide the fate of one message sent on `src → dst` at time `now`:
    /// returns the extra delay of each delivered copy (empty = lost, two
    /// entries = duplicated). Deterministic per seed and call sequence.
    pub fn route(&mut self, src: ProcessId, dst: ProcessId, now: u64) -> Vec<u64> {
        self.stats.offered += 1;

        // Partition-heal tracking: the first message routed at or after a
        // partition's heal time — when that partition actually severed
        // something — announces the heal.
        for (i, p) in self.partitions.iter().enumerate() {
            let (saw_active, heal_emitted) = &mut self.partition_obs[i];
            if now >= p.heal && *saw_active && !*heal_emitted {
                *heal_emitted = true;
                self.obs.emit(|| {
                    Event::new(EventKind::PartitionHeal).detail(format!(
                        "side_a={:?} start={} heal={} mode={:?} now={now}",
                        p.side_a, p.start, p.heal, p.mode
                    ))
                });
            }
        }

        // Partitions first: a severed link never sees the per-link faults.
        let mut base_delay = 0u64;
        for (i, p) in self.partitions.iter().enumerate() {
            if p.severs(src, dst, now) {
                self.partition_obs[i].0 = true;
                match p.mode {
                    PartitionMode::Drop => {
                        self.stats.partition_dropped += 1;
                        return Vec::new();
                    }
                    PartitionMode::HoldUntilHeal => {
                        self.stats.partition_held += 1;
                        base_delay = base_delay.max(p.heal - now);
                    }
                }
            }
        }

        let fault = self.link(src, dst);
        if fault.is_reliable() {
            // Skip all RNG draws so reliable plans stay stream-identical
            // regardless of traffic volume.
            if base_delay > 0 {
                self.stats.delayed += 1;
            }
            return vec![base_delay];
        }

        if fault.drop_prob > 0.0 && self.rng.gen_bool(fault.drop_prob) {
            self.stats.dropped += 1;
            return Vec::new();
        }

        let copies = if fault.dup_prob > 0.0 && self.rng.gen_bool(fault.dup_prob) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };

        (0..copies)
            .map(|_| {
                let mut delay = base_delay;
                if fault.max_extra_delay > 0 {
                    delay += self.rng.gen_range(0..=fault.max_extra_delay);
                }
                if fault.reorder_prob > 0.0 && self.rng.gen_bool(fault.reorder_prob) {
                    delay += self.rng.gen_range(1..=4u64);
                }
                if delay > 0 {
                    self.stats.delayed += 1;
                }
                delay
            })
            .collect()
    }
}

/// Wire format of [`ReliableLink`]: payloads carry per-destination sequence
/// numbers; acks echo them back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkMsg<M> {
    /// A payload, tagged with the sender's per-destination sequence number.
    Data {
        /// Sequence number, unique per (sender, destination) pair.
        seq: u64,
        /// The wrapped protocol message.
        payload: M,
    },
    /// Cumulative-free positive ack of one received sequence number.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
}

/// An unacked outbound message awaiting retransmission.
#[derive(Debug, Clone)]
struct Unacked<M> {
    dst: ProcessId,
    seq: u64,
    payload: M,
    /// Local logical time of the next retransmission.
    retry_at: u64,
    /// Retransmissions already performed (drives exponential backoff).
    attempts: u32,
}

/// Sequence-numbered ack/retransmit wrapper restoring the paper's
/// reliable-channel semantics over a lossy link.
///
/// Every outbound protocol message becomes `Data { seq, payload }` and is
/// retransmitted with exponential backoff (`base_rto << attempts`, capped)
/// until the matching [`LinkMsg::Ack`] arrives. Inbound data is acked
/// *always* (acks of duplicates are what make retransmission converge) and
/// delivered to the inner protocol exactly once per `(src, seq)`.
///
/// Time is the link's own logical event clock: it advances on every
/// `on_message`/`on_tick` the engine feeds it, so the wrapper works in both
/// the step-driven async engine and the wall-clock threaded runtime.
/// With loss probability `p < 1` and a fair scheduler, every payload is
/// eventually delivered exactly once — which is precisely the channel
/// assumption under which the wrapped protocol's proofs apply again.
pub struct ReliableLink<P: AsyncProtocol> {
    inner: P,
    /// Next sequence number per destination.
    next_seq: Vec<u64>,
    /// Delivered (src, seq) pairs, for exactly-once inner delivery.
    delivered: Vec<Vec<u64>>,
    unacked: Vec<Unacked<P::Msg>>,
    clock: u64,
    base_rto: u64,
    max_rto: u64,
    /// Degradation log: malformed traffic discarded at the receive boundary
    /// and outbound sends to nonexistent peers. Never panics the link.
    errors: ErrorLog,
    obs: Obs,
    obs_node: Option<u32>,
}

impl<P: AsyncProtocol> ReliableLink<P> {
    /// Wrap `inner` for a network of `n` processes.
    ///
    /// `base_rto` is the first retransmission timeout in local events;
    /// backoff doubles per attempt and caps at `max_rto`.
    #[must_use]
    pub fn new(inner: P, n: usize, base_rto: u64, max_rto: u64) -> Self {
        assert!(base_rto > 0, "retransmission timeout must be positive");
        ReliableLink {
            inner,
            next_seq: vec![0; n],
            delivered: vec![Vec::new(); n],
            unacked: Vec::new(),
            clock: 0,
            base_rto,
            max_rto: max_rto.max(base_rto),
            errors: ErrorLog::new(),
            obs: Obs::noop(),
            obs_node: None,
        }
    }

    /// Emit one [`EventKind::Retransmit`] per re-sent frame through `obs`,
    /// tagged with `node` (the process this link belongs to — the link
    /// itself has no identity on the wire).
    pub fn set_obs(&mut self, obs: Obs, node: ProcessId) {
        self.obs = obs;
        self.obs_node = Some(u32::try_from(node).unwrap_or(u32::MAX));
    }

    /// Wrap with defaults tuned for the async engine (RTO 8 events,
    /// capped at 128).
    #[must_use]
    pub fn with_defaults(inner: P, n: usize) -> Self {
        ReliableLink::new(inner, n, 8, 128)
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Messages currently awaiting acknowledgment.
    #[must_use]
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// Degradation events this link has absorbed (malformed inbound traffic,
    /// outbound sends addressed to nonexistent peers).
    #[must_use]
    pub fn errors(&self) -> &ErrorLog {
        &self.errors
    }

    fn stamp(&mut self, sends: Vec<(ProcessId, P::Msg)>) -> Vec<(ProcessId, LinkMsg<P::Msg>)> {
        let mut out = Vec::with_capacity(sends.len());
        for (dst, payload) in sends {
            // Degrade, don't panic: an inner protocol addressing a ghost
            // peer loses that one send and the link records why.
            if dst >= self.next_seq.len() {
                self.errors.record(ProtocolError::Transport {
                    peer: Some(dst),
                    reason: format!("send to nonexistent process {dst}"),
                });
                continue;
            }
            let seq = self.next_seq[dst];
            self.next_seq[dst] += 1;
            self.unacked.push(Unacked {
                dst,
                seq,
                payload: payload.clone(),
                retry_at: self.clock + self.base_rto,
                attempts: 0,
            });
            out.push((dst, LinkMsg::Data { seq, payload }));
        }
        out
    }

    fn due_retransmissions(&mut self) -> Vec<(ProcessId, LinkMsg<P::Msg>)> {
        let clock = self.clock;
        let (base_rto, max_rto) = (self.base_rto, self.max_rto);
        let mut out = Vec::new();
        let obs = &self.obs;
        let obs_node = self.obs_node;
        for u in &mut self.unacked {
            if u.retry_at <= clock {
                u.attempts += 1;
                let rto = (base_rto << u.attempts.min(16)).min(max_rto);
                u.retry_at = clock + rto;
                obs.emit(|| {
                    let mut ev = Event::new(EventKind::Retransmit).detail(format!(
                        "dst={} seq={} attempt={} next_rto={rto}",
                        u.dst, u.seq, u.attempts
                    ));
                    if let Some(node) = obs_node {
                        ev = ev.node(node);
                    }
                    ev
                });
                out.push((
                    u.dst,
                    LinkMsg::Data {
                        seq: u.seq,
                        payload: u.payload.clone(),
                    },
                ));
            }
        }
        out
    }
}

impl<P: AsyncProtocol> AsyncProtocol for ReliableLink<P> {
    type Msg = LinkMsg<P::Msg>;
    type Output = P::Output;

    fn on_start(&mut self) -> Vec<(ProcessId, Self::Msg)> {
        let sends = self.inner.on_start();
        self.stamp(sends)
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg) -> Vec<(ProcessId, Self::Msg)> {
        self.clock += 1;
        // Receive boundary (degrade, don't panic): a frame claiming a ghost
        // sender is discarded and recorded; only that frame is lost — the
        // link, its retransmission state, and the inner protocol all keep
        // running untouched.
        if from >= self.delivered.len() {
            self.errors.record(ProtocolError::MalformedPayload {
                from,
                reason: format!(
                    "link frame from out-of-range process {from} (n = {})",
                    self.delivered.len()
                ),
            });
            return self.due_retransmissions();
        }
        let mut out = Vec::new();
        match msg {
            LinkMsg::Ack { seq } => {
                self.unacked.retain(|u| !(u.dst == from && u.seq == seq));
            }
            LinkMsg::Data { seq, payload } => {
                // Ack unconditionally — duplicates included — so the
                // sender's retransmission loop terminates even when the
                // first ack was itself lost.
                out.push((from, LinkMsg::Ack { seq }));
                if !self.delivered[from].contains(&seq) {
                    self.delivered[from].push(seq);
                    let sends = self.inner.on_message(from, payload);
                    out.extend(self.stamp(sends));
                }
            }
        }
        out.extend(self.due_retransmissions());
        out
    }

    fn on_tick(&mut self) -> Vec<(ProcessId, Self::Msg)> {
        self.clock += 1;
        let inner_sends = self.inner.on_tick();
        let mut out = self.stamp(inner_sends);
        out.extend(self.due_retransmissions());
        out
    }

    fn output(&self) -> Option<P::Output> {
        self.inner.output()
    }
}

/// Adapter running a Byzantine [`crate::asynch::AsyncAdversary`] under the
/// [`ReliableLink`] wire format: outbound raw messages are stamped as
/// fresh `Data` frames (a Byzantine node need not run retransmission — it
/// may, by definition, behave arbitrarily), inbound `Data` payloads are
/// unwrapped, and inbound `Ack`s are ignored.
pub struct ReliableLinkAdversary<A> {
    inner: A,
    next_seq: Vec<u64>,
}

impl<A> ReliableLinkAdversary<A> {
    /// Wrap `inner` for a network of `n` processes.
    #[must_use]
    pub fn new(inner: A, n: usize) -> Self {
        ReliableLinkAdversary {
            inner,
            next_seq: vec![0; n],
        }
    }

    fn stamp<M>(&mut self, sends: Vec<(ProcessId, M)>) -> Vec<(ProcessId, LinkMsg<M>)> {
        // Ghost destinations are dropped rather than panicking: even a
        // Byzantine strategy addressing nonexistent peers must not crash
        // the harness hosting it.
        let n = self.next_seq.len();
        sends
            .into_iter()
            .filter(|(dst, _)| *dst < n)
            .map(|(dst, payload)| {
                let seq = self.next_seq[dst];
                self.next_seq[dst] += 1;
                (dst, LinkMsg::Data { seq, payload })
            })
            .collect()
    }
}

impl<M, A: crate::asynch::AsyncAdversary<M>> crate::asynch::AsyncAdversary<LinkMsg<M>>
    for ReliableLinkAdversary<A>
{
    fn on_start(&mut self) -> Vec<(ProcessId, LinkMsg<M>)> {
        let sends = self.inner.on_start();
        self.stamp(sends)
    }

    fn on_message(&mut self, from: ProcessId, msg: LinkMsg<M>) -> Vec<(ProcessId, LinkMsg<M>)> {
        match msg {
            LinkMsg::Data { payload, .. } => {
                let sends = self.inner.on_message(from, payload);
                self.stamp(sends)
            }
            LinkMsg::Ack { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_plan_never_touches_messages() {
        let mut faults = NetworkFaults::reliable();
        for now in 0..50 {
            assert_eq!(faults.route(0, 1, now), vec![0]);
        }
        assert_eq!(faults.stats.offered, 50);
        assert_eq!(faults.stats.total_lost(), 0);
        assert_eq!(faults.stats.duplicated, 0);
        assert_eq!(faults.stats.delayed, 0);
    }

    #[test]
    fn route_is_seed_deterministic() {
        let fault = LinkFault {
            drop_prob: 0.3,
            dup_prob: 0.2,
            max_extra_delay: 5,
            reorder_prob: 0.1,
        };
        let mut a = NetworkFaults::new(99, fault);
        let mut b = NetworkFaults::new(99, fault);
        for now in 0..200 {
            assert_eq!(a.route(now as usize % 4, 1, now), b.route(now as usize % 4, 1, now));
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn drop_probability_is_roughly_honored() {
        let mut faults = NetworkFaults::new(7, LinkFault::lossy(0.5));
        let lost = (0..2000).filter(|&t| faults.route(0, 1, t).is_empty()).count();
        assert!((800..1200).contains(&lost), "lost {lost} of 2000 at p = 0.5");
    }

    #[test]
    fn per_link_override_beats_default() {
        let mut faults =
            NetworkFaults::new(3, LinkFault::reliable()).with_link(0, 1, LinkFault::lossy(1.0));
        assert!(faults.route(0, 1, 0).is_empty(), "overridden link drops");
        assert_eq!(faults.route(1, 0, 0), vec![0], "reverse direction clean");
        assert_eq!(faults.route(2, 3, 0), vec![0], "other links clean");
    }

    #[test]
    fn partition_drop_and_hold_modes() {
        let dropped = Partition {
            side_a: vec![0, 1],
            start: 10,
            heal: 20,
            mode: PartitionMode::Drop,
        };
        let mut faults = NetworkFaults::new(1, LinkFault::reliable()).with_partition(dropped);
        assert_eq!(faults.route(0, 2, 9), vec![0], "before the cut");
        assert!(faults.route(0, 2, 10).is_empty(), "cross traffic severed");
        assert!(faults.route(2, 1, 15).is_empty(), "severed both directions");
        assert_eq!(faults.route(0, 1, 15), vec![0], "same-side traffic flows");
        assert_eq!(faults.route(0, 2, 20), vec![0], "healed");
        assert_eq!(faults.stats.partition_dropped, 2);

        let held = Partition {
            side_a: vec![0],
            start: 0,
            heal: 30,
            mode: PartitionMode::HoldUntilHeal,
        };
        let mut faults = NetworkFaults::new(1, LinkFault::reliable()).with_partition(held);
        assert_eq!(faults.route(0, 1, 12), vec![18], "held until heal at 30");
        assert_eq!(faults.stats.partition_held, 1);
    }

    /// Toy protocol for ReliableLink tests: broadcast once, collect all n.
    struct Broadcast {
        n: usize,
        me: ProcessId,
        got: Vec<Option<u32>>,
    }

    impl AsyncProtocol for Broadcast {
        type Msg = u32;
        type Output = u32;

        fn on_start(&mut self) -> Vec<(ProcessId, u32)> {
            (0..self.n).map(|d| (d, self.me as u32)).collect()
        }

        fn on_message(&mut self, from: ProcessId, msg: u32) -> Vec<(ProcessId, u32)> {
            self.got[from] = Some(msg);
            Vec::new()
        }

        fn output(&self) -> Option<u32> {
            self.got
                .iter()
                .map(|g| g.as_ref().copied())
                .sum::<Option<u32>>()
        }
    }

    #[test]
    fn reliable_link_delivers_exactly_once_under_duplication() {
        let inner = Broadcast {
            n: 2,
            me: 0,
            got: vec![None; 2],
        };
        let mut link = ReliableLink::with_defaults(inner, 2);
        let payload = LinkMsg::Data { seq: 0, payload: 9 };
        let first = link.on_message(1, payload.clone());
        assert!(
            first.contains(&(1, LinkMsg::Ack { seq: 0 })),
            "data must be acked"
        );
        assert_eq!(link.inner().got[1], Some(9));
        // Duplicate: acked again, not delivered again.
        let inner_before = link.inner().got.clone();
        let dup = link.on_message(1, payload);
        assert!(dup.contains(&(1, LinkMsg::Ack { seq: 0 })));
        assert_eq!(link.inner().got, inner_before);
    }

    #[test]
    fn reliable_link_retransmits_with_backoff_until_acked() {
        let inner = Broadcast {
            n: 2,
            me: 0,
            got: vec![None; 2],
        };
        let mut link = ReliableLink::new(inner, 2, 2, 64);
        let sends = link.on_start();
        assert_eq!(sends.len(), 2, "broadcast to both processes");
        assert_eq!(link.unacked_len(), 2);

        // Let the RTO elapse via ticks: retransmissions must appear.
        let mut retransmissions = 0;
        for _ in 0..8 {
            retransmissions += link
                .on_tick()
                .iter()
                .filter(|(_, m)| matches!(m, LinkMsg::Data { .. }))
                .count();
        }
        assert!(retransmissions >= 2, "unacked data must be retransmitted");

        // Ack one of them: its retransmissions stop.
        link.on_message(1, LinkMsg::Ack { seq: 0 });
        assert_eq!(link.unacked_len(), 1);
        link.on_message(0, LinkMsg::Ack { seq: 0 });
        assert_eq!(link.unacked_len(), 0);
        for _ in 0..64 {
            assert!(
                link.on_tick().is_empty(),
                "no retransmissions after full ack"
            );
        }
    }

    #[test]
    fn ghost_sender_and_ghost_destination_degrade_without_panic() {
        let inner = Broadcast {
            n: 2,
            me: 0,
            got: vec![None; 2],
        };
        let mut link = ReliableLink::with_defaults(inner, 2);
        // Inbound frame claiming an out-of-range sender: discarded, recorded,
        // never acked, never delivered to the inner protocol.
        let out = link.on_message(9, LinkMsg::Data { seq: 0, payload: 5 });
        assert!(
            !out.iter().any(|(_, m)| matches!(m, LinkMsg::Ack { .. })),
            "ghost-sender data must not be acked"
        );
        assert!(link.inner().got.iter().all(Option::is_none));
        assert_eq!(link.errors().total(), 1);
        assert!(matches!(
            link.errors().errors()[0],
            ProtocolError::MalformedPayload { from: 9, .. }
        ));
        // An inner protocol addressing a ghost peer loses that send only.
        struct GhostSender;
        impl AsyncProtocol for GhostSender {
            type Msg = u32;
            type Output = u32;
            fn on_start(&mut self) -> Vec<(ProcessId, u32)> {
                vec![(7, 1), (0, 2)]
            }
            fn on_message(&mut self, _f: ProcessId, _m: u32) -> Vec<(ProcessId, u32)> {
                Vec::new()
            }
            fn output(&self) -> Option<u32> {
                None
            }
        }
        let mut link = ReliableLink::with_defaults(GhostSender, 2);
        let sends = link.on_start();
        assert_eq!(sends.len(), 1, "only the in-range send survives");
        assert_eq!(sends[0].0, 0);
        assert_eq!(link.errors().total(), 1);
        assert!(matches!(
            link.errors().errors()[0],
            ProtocolError::Transport { peer: Some(7), .. }
        ));
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let inner = Broadcast {
            n: 2,
            me: 0,
            got: vec![None; 2],
        };
        let mut link = ReliableLink::new(inner, 2, 2, 16);
        link.on_start();
        // Collect local-clock gaps between successive retransmissions of
        // seq 0 to process 1.
        let mut gaps = Vec::new();
        let mut last: Option<u64> = None;
        for t in 1..200u64 {
            let resent = link.on_tick().iter().any(
                |(d, m)| *d == 1 && matches!(m, LinkMsg::Data { seq: 0, .. }),
            );
            if resent {
                if let Some(prev) = last {
                    gaps.push(t - prev);
                }
                last = Some(t);
            }
        }
        assert!(gaps.len() >= 3, "expected several retransmissions: {gaps:?}");
        assert!(
            gaps.windows(2).all(|w| w[1] >= w[0]),
            "backoff must be non-decreasing: {gaps:?}"
        );
        assert!(
            gaps.iter().all(|&g| g <= 16 + 1),
            "backoff must respect the cap: {gaps:?}"
        );
    }
}
