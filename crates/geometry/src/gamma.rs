//! The `Γ` operator of the paper (§3) and its (δ,p)-relaxed variant:
//!
//! ```text
//! Γ(Y)        = ⋂_{T ⊆ Y, |T| = |Y|−f}  H(T)
//! Γ_(δ,p)(S)  = ⋂_{T ⊆ S, |T| = |S|−f}  H_(δ,p)(T)
//! ```
//!
//! `Γ(Y)` is where Exact BVC picks its output (nonempty iff `|Y| ≥ (d+1)f+1`
//! by Tverberg's theorem, §8); `Γ_(δ,p)(S)` is where ALGO (§9) picks its
//! output once `δ = δ*(S)` makes it nonempty.
//!
//! Everything here is **LP-exact**: emptiness of an intersection of hulls
//! (or of L1/L∞-fattened hulls) is a single linear feasibility problem, so
//! the impossibility constructions of Theorems 3–6 get genuine certificates
//! rather than sampled evidence. Euclidean (L2) fattening is not an LP; the
//! L2 solver lives in [`crate::minmax`].

use rbvc_linalg::{Norm, Tol, VecD};
use rbvc_obs::{time_kernel, Kernel};

use crate::combinatorics::combinations;
use crate::hull::ConvexHull;
use crate::lp::{LpBuilder, LpOutcome};

/// All `(n−f)`-subsets of `points`, as index lists (the `T ⊆ Y` family).
///
/// # Panics
/// Panics if `f >= points.len()` (the paper requires `|Y| ≥ f`; an empty `T`
/// family would make `Γ` vacuous).
#[must_use]
pub fn gamma_subsets(n: usize, f: usize) -> Vec<Vec<usize>> {
    assert!(f < n, "gamma_subsets requires f < n");
    combinations(n, n - f)
}

/// The hulls `H(T)` for every `(n−f)`-subset `T`.
#[must_use]
pub fn subset_hulls(points: &[VecD], f: usize) -> Vec<ConvexHull> {
    gamma_subsets(points.len(), f)
        .into_iter()
        .map(|idx| ConvexHull::from_indices(points, &idx))
        .collect()
}

/// Find a point in `Γ(Y)` (δ = 0), or `None` if the intersection is empty.
/// Exact LP feasibility.
#[must_use]
pub fn gamma_point(points: &[VecD], f: usize, tol: Tol) -> Option<VecD> {
    gamma_delta_point(points, f, 0.0, Norm::LInf, tol)
}

/// Find a point in `Γ_(δ,p)(S)` for `p ∈ {1, ∞}` (and, via δ = 0 where all
/// norms coincide, the exact `Γ`). Returns a witness point or `None`.
///
/// # Panics
/// Panics for `Norm::L2`/general `Lp` with `delta > 0` — those fattenings
/// are not polyhedral; use [`crate::minmax`].
#[must_use]
pub fn gamma_delta_point(
    points: &[VecD],
    f: usize,
    delta: f64,
    norm: Norm,
    tol: Tol,
) -> Option<VecD> {
    assert!(delta >= 0.0, "gamma_delta_point: negative delta");
    if delta > 0.0 {
        assert!(
            matches!(norm, Norm::L1 | Norm::LInf),
            "gamma_delta_point is LP-exact only for L1/LInf fattening"
        );
    }
    time_kernel(Kernel::GammaOracle, || {
        let n = points.len();
        let d = points[0].dim();
        let subsets = gamma_subsets(n, f);

        let mut lp = LpBuilder::new();
        let x = lp.free_vars(d);
        for subset in &subsets {
            add_fattened_membership_rows(&mut lp, &x, points, subset, delta, norm);
        }
        lp.minimize(vec![]);
        match lp.solve(tol) {
            LpOutcome::Optimal { x: sol, .. } => Some(VecD((0..d).map(|i| sol[i]).collect())),
            _ => None,
        }
    })
}

/// The smallest `δ` for which `Γ_(δ,p)(S)` is nonempty, **exactly**, for
/// `p ∈ {1, ∞}` — a single LP with δ as a variable. Returns `(δ*, witness)`.
#[must_use]
pub fn min_delta_polyhedral(
    points: &[VecD],
    f: usize,
    norm: Norm,
    tol: Tol,
) -> (f64, VecD) {
    assert!(
        matches!(norm, Norm::L1 | Norm::LInf),
        "min_delta_polyhedral: only L1/LInf are LP-exact"
    );
    let n = points.len();
    let d = points[0].dim();
    let subsets = gamma_subsets(n, f);

    let mut lp = LpBuilder::new();
    let x = lp.free_vars(d);
    let delta = lp.nonneg();
    for subset in &subsets {
        let m = subset.len();
        let lam = lp.nonneg_vars(m);
        lp.eq(lam.iter().map(|&v| (v, 1.0)).collect(), 1.0);
        match norm {
            Norm::LInf => {
                for i in 0..d {
                    // |Σ λ_j p_j[i] − x_i| ≤ δ
                    let mut up: Vec<_> = lam
                        .iter()
                        .zip(subset)
                        .map(|(&v, &j)| (v, points[j][i]))
                        .collect();
                    up.push((x[i], -1.0));
                    up.push((delta, -1.0));
                    lp.le(up, 0.0);
                    let mut dn: Vec<_> = lam
                        .iter()
                        .zip(subset)
                        .map(|(&v, &j)| (v, -points[j][i]))
                        .collect();
                    dn.push((x[i], 1.0));
                    dn.push((delta, -1.0));
                    lp.le(dn, 0.0);
                }
            }
            Norm::L1 => {
                let ts = lp.nonneg_vars(d);
                for i in 0..d {
                    let mut up: Vec<_> = lam
                        .iter()
                        .zip(subset)
                        .map(|(&v, &j)| (v, points[j][i]))
                        .collect();
                    up.push((x[i], -1.0));
                    up.push((ts[i], -1.0));
                    lp.le(up, 0.0);
                    let mut dn: Vec<_> = lam
                        .iter()
                        .zip(subset)
                        .map(|(&v, &j)| (v, -points[j][i]))
                        .collect();
                    dn.push((x[i], 1.0));
                    dn.push((ts[i], -1.0));
                    lp.le(dn, 0.0);
                }
                let mut sum: Vec<_> = ts.iter().map(|&v| (v, 1.0)).collect();
                sum.push((delta, -1.0));
                lp.le(sum, 0.0);
            }
            _ => unreachable!(),
        }
    }
    lp.minimize(vec![(delta, 1.0)]);
    match lp.solve(tol) {
        LpOutcome::Optimal { x: sol, value } => {
            let witness = VecD((0..d).map(|i| sol[i]).collect());
            (value.max(0.0), witness)
        }
        other => panic!("min_delta LP must be feasible and bounded, got {other:?}"),
    }
}

/// Add rows stating `x ∈ H_(δ,norm)({points[j] : j ∈ subset})`.
fn add_fattened_membership_rows(
    lp: &mut LpBuilder,
    x: &[crate::lp::VarId],
    points: &[VecD],
    subset: &[usize],
    delta: f64,
    norm: Norm,
) {
    let d = points[0].dim();
    let m = subset.len();
    let lam = lp.nonneg_vars(m);
    lp.eq(lam.iter().map(|&v| (v, 1.0)).collect(), 1.0);
    if delta == 0.0 {
        for i in 0..d {
            // Σ λ_j p_j[i] − x_i = 0
            let mut row: Vec<_> = lam
                .iter()
                .zip(subset)
                .map(|(&v, &j)| (v, points[j][i]))
                .collect();
            row.push((x[i], -1.0));
            lp.eq(row, 0.0);
        }
        return;
    }
    match norm {
        Norm::LInf => {
            for i in 0..d {
                let mut up: Vec<_> = lam
                    .iter()
                    .zip(subset)
                    .map(|(&v, &j)| (v, points[j][i]))
                    .collect();
                up.push((x[i], -1.0));
                lp.le(up, delta);
                let mut dn: Vec<_> = lam
                    .iter()
                    .zip(subset)
                    .map(|(&v, &j)| (v, -points[j][i]))
                    .collect();
                dn.push((x[i], 1.0));
                lp.le(dn, delta);
            }
        }
        Norm::L1 => {
            let ts = lp.nonneg_vars(d);
            for i in 0..d {
                let mut up: Vec<_> = lam
                    .iter()
                    .zip(subset)
                    .map(|(&v, &j)| (v, points[j][i]))
                    .collect();
                up.push((x[i], -1.0));
                up.push((ts[i], -1.0));
                lp.le(up, 0.0);
                let mut dn: Vec<_> = lam
                    .iter()
                    .zip(subset)
                    .map(|(&v, &j)| (v, -points[j][i]))
                    .collect();
                dn.push((x[i], 1.0));
                dn.push((ts[i], -1.0));
                lp.le(dn, 0.0);
            }
            lp.le(ts.iter().map(|&v| (v, 1.0)).collect(), delta);
        }
        _ => unreachable!("polyhedral fattening only"),
    }
}

/// Check that a candidate point lies in `Γ(Y)` by verifying membership in
/// every subset hull — an independent certificate for `gamma_point` output.
#[must_use]
pub fn verify_gamma_membership(points: &[VecD], f: usize, x: &VecD, tol: Tol) -> bool {
    subset_hulls(points, f)
        .iter()
        .all(|h| h.contains(x, tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn gamma_of_simplex_with_f1_is_empty_in_2d_with_3_points() {
        // 3 affinely independent points, f = 1, d = 2: the three edges
        // (2-subsets) intersect pairwise but not all three — Γ is empty
        // (n = 3 < (d+1)f + 1 = 4, Tverberg tightness).
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        assert!(gamma_point(&pts, 1, t()).is_none());
    }

    #[test]
    fn gamma_nonempty_at_tverberg_bound_2d() {
        // n = 4 = (d+1)f + 1 points in R², f = 1: Γ(Y) nonempty for any
        // points (Tverberg). Try several configurations.
        let configs = vec![
            vec![
                VecD::from_slice(&[0.0, 0.0]),
                VecD::from_slice(&[1.0, 0.0]),
                VecD::from_slice(&[0.0, 1.0]),
                VecD::from_slice(&[1.0, 1.0]),
            ],
            vec![
                VecD::from_slice(&[0.0, 0.0]),
                VecD::from_slice(&[2.0, 0.0]),
                VecD::from_slice(&[1.0, 2.0]),
                VecD::from_slice(&[1.0, 0.5]), // interior point
            ],
        ];
        for pts in configs {
            let x = gamma_point(&pts, 1, t()).expect("Tverberg guarantees nonempty");
            assert!(verify_gamma_membership(&pts, 1, &x, Tol(1e-7)));
        }
    }

    #[test]
    fn gamma_with_f0_is_full_hull() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        let x = gamma_point(&pts, 0, t()).expect("f=0 never empty");
        assert!(ConvexHull::new(pts).contains(&x, Tol(1e-7)));
    }

    #[test]
    fn random_tverberg_bound_never_empty() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..30 {
            let d = rng.gen_range(1..4);
            let f = 1;
            let n = (d + 1) * f + 1;
            let pts: Vec<VecD> = (0..n)
                .map(|_| VecD((0..d).map(|_| rng.gen_range(-3.0..3.0)).collect()))
                .collect();
            let x = gamma_point(&pts, f, t());
            assert!(
                x.is_some(),
                "Γ empty at the Tverberg bound (d={d}, n={n})"
            );
            assert!(verify_gamma_membership(&pts, f, &x.unwrap(), Tol(1e-6)));
        }
    }

    #[test]
    fn fattening_rescues_empty_intersection() {
        // The empty triangle-edge intersection becomes nonempty once δ is
        // at least the triangle's "inradius" in the relevant norm.
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        assert!(gamma_delta_point(&pts, 1, 0.0, Norm::LInf, t()).is_none());
        let x = gamma_delta_point(&pts, 1, 0.5, Norm::LInf, t())
            .expect("generous fattening must succeed");
        // Witness must be within 0.5 (L∞) of each edge.
        for h in subset_hulls(&pts, 1) {
            assert!(h.distance(&x, Norm::LInf, t()) <= 0.5 + 1e-7);
        }
    }

    #[test]
    fn min_delta_linf_matches_manual_triangle() {
        // Equilateral-ish right triangle: δ*_∞ is where the three fattened
        // edges first meet. Verify optimality: feasible at δ*, infeasible
        // at δ* − margin.
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        let (dstar, witness) = min_delta_polyhedral(&pts, 1, Norm::LInf, t());
        assert!(dstar > 0.0);
        assert!(gamma_delta_point(&pts, 1, dstar + 1e-7, Norm::LInf, t()).is_some());
        assert!(gamma_delta_point(&pts, 1, (dstar - 1e-4).max(0.0), Norm::LInf, t()).is_none());
        for h in subset_hulls(&pts, 1) {
            assert!(h.distance(&witness, Norm::LInf, t()) <= dstar + 1e-7);
        }
    }

    #[test]
    fn min_delta_l1_dominates_linf() {
        // dist_∞ ≤ dist_1 pointwise ⇒ δ*_∞ ≤ δ*_1.
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for _ in 0..15 {
            let d = rng.gen_range(2..4);
            let n = d + 1;
            let pts: Vec<VecD> = (0..n)
                .map(|_| VecD((0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()))
                .collect();
            let (dinf, _) = min_delta_polyhedral(&pts, 1, Norm::LInf, t());
            let (d1, _) = min_delta_polyhedral(&pts, 1, Norm::L1, t());
            assert!(dinf <= d1 + 1e-7, "δ*_∞={dinf} > δ*_1={d1}");
        }
    }

    #[test]
    fn min_delta_zero_when_points_coincide_enough() {
        // n − f copies of the same point: every subset contains it, δ* = 0.
        let pts = vec![
            VecD::from_slice(&[1.0, 1.0]),
            VecD::from_slice(&[1.0, 1.0]),
            VecD::from_slice(&[1.0, 1.0]),
            VecD::from_slice(&[5.0, -2.0]),
        ];
        let (dstar, witness) = min_delta_polyhedral(&pts, 1, Norm::LInf, t());
        assert!(dstar < 1e-8);
        assert!(witness.approx_eq(&VecD::from_slice(&[1.0, 1.0]), Tol(1e-6)));
    }

    #[test]
    fn min_delta_regression_d6_degenerate_pivoting() {
        // This 7-point d=6 instance made an earlier simplex implementation
        // cycle through degenerate pivots and falsely report phase-1
        // infeasibility. Pin it.
        let raw: [[f64; 6]; 7] = [
            [-1.9926467879218395, -1.018830515268208, 0.0865520394726742,
             0.6666200572047849, -0.46054527758580033, 0.9936746309611548],
            [0.7383782664431395, -0.4675594007699173, 1.4345918592029934,
             0.4449456962845737, 1.8269963482191862, 0.3000879175664162],
            [-1.4644375367699078, 0.7440846640285583, 0.6432540496468704,
             -0.18624979290685673, 1.017719171433149, -0.009270883761989701],
            [0.35352788430728754, 0.16517513171347264, -1.345591467251829,
             0.48238125700056056, 1.1874532212210092, -1.4759746486232794],
            [0.19571503974800653, -1.0711701426213178, 0.1168381203247062,
             0.9932008302168818, 0.6779432694082868, 0.6022455638358402],
            [-1.6825151094920656, 1.369908028679136, -0.6414498268726838,
             0.4421313540849763, 1.337158424273384, 1.4765611347562242],
            [1.6971986618667527, -0.6259600470281361, 1.507246207514207,
             -1.9401434085894609, -1.6187708260083191, -0.10064799704223493],
        ];
        let pts: Vec<VecD> = raw.iter().map(|r| VecD::from_slice(r)).collect();
        let (dstar, witness) = min_delta_polyhedral(&pts, 1, Norm::LInf, t());
        assert!(dstar > 0.0 && dstar < 1.0, "plausible δ*, got {dstar}");
        // Certificate: the witness is within δ* (L∞) of every subset hull.
        for h in subset_hulls(&pts, 1) {
            assert!(h.distance(&witness, Norm::LInf, t()) <= dstar + 1e-6);
        }
        // And δ* − margin is infeasible (optimality certificate).
        assert!(
            gamma_delta_point(&pts, 1, (dstar - 1e-4).max(0.0), Norm::LInf, t()).is_none()
        );
    }

    #[test]
    fn gamma_subsets_counts() {
        assert_eq!(gamma_subsets(5, 1).len(), 5);
        assert_eq!(gamma_subsets(6, 2).len(), 15);
    }

    #[test]
    #[should_panic(expected = "f < n")]
    fn gamma_subsets_rejects_f_ge_n() {
        let _ = gamma_subsets(3, 3);
    }
}
