//! The external-client port: wire codec and TCP front-end for client
//! requests (ISSUE 8).
//!
//! Clients are not mesh peers: they dial a node's *client port* — a
//! separate listener from the node-to-node mesh — and speak their own
//! length-prefixed protocol:
//!
//! ```text
//! frame:  len u32 (1 ≤ len ≤ MAX_CLIENT_FRAME_LEN), then len bytes of
//!
//! magic "RC" | version u8 | kind u8 | body …
//!   kind 1 Submit:   session u64 | reqno u64 | dim u32 | f64 …
//!   kind 2 Reply:    session u64 | reqno u64 | dim u32 | f64 …
//!   kind 3 Redirect: node u32
//!   kind 4 Busy:     (empty body)
//! ```
//!
//! all little-endian, `f64` components as IEEE-754 bit patterns. Like the
//! node-to-node codec in [`crate::wire`], [`decode_client_frame`] is a
//! **total function over untrusted bytes**: every read is bounds-checked,
//! every length field is validated against a hard cap and the bytes
//! actually present before any allocation, trailing bytes are rejected,
//! and no input byte sequence panics. A frame that fails to decode is
//! counted (`client.port.reject`) and dropped — it never reaches the
//! client table.
//!
//! [`ClientPort`] owns the listener: an accept thread hands each inbound
//! connection to a reader thread that pumps length-prefixed frames into a
//! queue; [`ClientPort::pump`] drains that queue into the service's client
//! table ([`ConsensusService::client_submit`]) and writes the responses —
//! cached replies, redirects, busy signals, and the replies of freshly
//! decided instances — back to the connections that asked. A framing
//! violation (oversized or zero length prefix, mid-frame EOF) poisons only
//! that one connection.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use rbvc_linalg::VecD;
use rbvc_obs::Registry;

use crate::service::{ClientAdmission, ConsensusService};
use crate::transport::Transport;
use crate::wire::MAX_DIM;

/// Client frame magic: distinct from the node-to-node `"RB"`.
pub const CLIENT_MAGIC: [u8; 2] = *b"RC";
/// Client wire format version.
pub const CLIENT_VERSION: u8 = 1;
/// Largest client frame the framing layer accepts (1 MiB — a max-dimension
/// vector is ~32 KiB, so this is generous without inviting memory bombs).
pub const MAX_CLIENT_FRAME_LEN: usize = 1 << 20;

/// One message of the client protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Client → node: run consensus on `value` for `(session, reqno)`.
    Submit {
        /// Client session (the dedup/routing key; owner = `session % n`).
        session: u64,
        /// The session's monotonic request number.
        reqno: u64,
        /// The vector to submit.
        value: VecD,
    },
    /// Node → client: the decision for `(session, reqno)`. Retries of an
    /// answered request return the identical cached bytes.
    Reply {
        /// Echoed session.
        session: u64,
        /// Echoed request number.
        reqno: u64,
        /// The decided vector.
        decision: VecD,
    },
    /// Node → client: this node does not own the session; dial `node`.
    Redirect {
        /// The owning node's process id.
        node: u32,
    },
    /// Node → client: admission queue full — back off and retry.
    Busy,
}

/// Encode a client frame (infallible: local data is trusted).
#[must_use]
pub fn encode_client_frame(frame: &ClientFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&CLIENT_MAGIC);
    out.push(CLIENT_VERSION);
    let put_vecd = |out: &mut Vec<u8>, v: &VecD| {
        out.extend_from_slice(
            &(u32::try_from(v.dim()).expect("dimension fits u32")).to_le_bytes(),
        );
        for &x in v.as_slice() {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    };
    match frame {
        ClientFrame::Submit { session, reqno, value } => {
            out.push(1);
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&reqno.to_le_bytes());
            put_vecd(&mut out, value);
        }
        ClientFrame::Reply { session, reqno, decision } => {
            out.push(2);
            out.extend_from_slice(&session.to_le_bytes());
            out.extend_from_slice(&reqno.to_le_bytes());
            put_vecd(&mut out, decision);
        }
        ClientFrame::Redirect { node } => {
            out.push(3);
            out.extend_from_slice(&node.to_le_bytes());
        }
        ClientFrame::Busy => out.push(4),
    }
    out
}

/// Bounds-checked cursor over untrusted client bytes; every read is total.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        if end > self.buf.len() {
            return Err(format!(
                "truncated client frame: wanted {n} more bytes, have {}",
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Dimension-prefixed vector with the same allocation-bomb guard as the
    /// node-to-node codec: the claimed dimension is validated against both
    /// the hard cap and the bytes actually remaining before any allocation.
    fn vecd(&mut self) -> Result<VecD, String> {
        let dim = self.u32()? as usize;
        if dim > MAX_DIM {
            return Err(format!("oversized client vector dimension {dim} (cap {MAX_DIM})"));
        }
        if dim.saturating_mul(8) > self.buf.len() - self.pos {
            return Err(format!(
                "forged client vector dimension {dim}: would need {} bytes, {} remain",
                dim * 8,
                self.buf.len() - self.pos
            ));
        }
        let mut xs = Vec::with_capacity(dim);
        for _ in 0..dim {
            xs.push(f64::from_bits(self.u64()?));
        }
        Ok(VecD::from_slice(&xs))
    }
}

/// Decode one client frame.
///
/// # Errors
/// A human-readable reason on any structural violation — truncation, bad
/// magic/version, unknown kind, forged length, trailing bytes. Total over
/// arbitrary bytes; no input panics.
pub fn decode_client_frame(bytes: &[u8]) -> Result<ClientFrame, String> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(2)? != CLIENT_MAGIC {
        return Err("bad client magic".into());
    }
    let version = r.u8()?;
    if version != CLIENT_VERSION {
        return Err(format!("unsupported client wire version {version}"));
    }
    let frame = match r.u8()? {
        1 => {
            let session = r.u64()?;
            let reqno = r.u64()?;
            let value = r.vecd()?;
            if value.dim() == 0 {
                return Err("empty client vector".into());
            }
            ClientFrame::Submit { session, reqno, value }
        }
        2 => ClientFrame::Reply { session: r.u64()?, reqno: r.u64()?, decision: r.vecd()? },
        3 => ClientFrame::Redirect { node: r.u32()? },
        4 => ClientFrame::Busy,
        k => return Err(format!("unknown client frame kind {k}")),
    };
    if r.pos != bytes.len() {
        return Err(format!(
            "{} trailing bytes after a complete client frame",
            bytes.len() - r.pos
        ));
    }
    Ok(frame)
}

/// Write one length-prefixed client frame to a stream.
///
/// # Errors
/// Propagates the IO error (the caller degrades that one connection).
pub fn write_client_frame(stream: &mut TcpStream, frame: &ClientFrame) -> std::io::Result<()> {
    let bytes = encode_client_frame(frame);
    let mut buf = Vec::with_capacity(4 + bytes.len());
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(&bytes);
    stream.write_all(&buf)
}

/// Read one length-prefixed client frame's raw bytes. `Ok(None)` on clean
/// EOF at a frame boundary; `Err` on truncation, IO failure, or a
/// length-prefix violation (after which the stream has no recoverable
/// frame boundary and must be closed).
///
/// # Errors
/// A human-readable reason; the connection is unusable afterwards.
pub fn read_client_frame_bytes(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, String> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(format!("client length-prefix read failed: {e}")),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_CLIENT_FRAME_LEN {
        return Err(format!("client length prefix {len} outside 1..={MAX_CLIENT_FRAME_LEN}"));
    }
    let mut buf = vec![0u8; len];
    stream
        .read_exact(&mut buf)
        .map_err(|e| format!("truncated client frame body ({len} bytes expected): {e}"))?;
    Ok(Some(buf))
}

/// One node's client-facing TCP listener plus the connection registry the
/// pump answers through.
pub struct ClientPort {
    listen_addr: SocketAddr,
    /// Raw frames from the reader threads, tagged with their connection id.
    rx: Receiver<(u64, Vec<u8>)>,
    /// Writer half of every live connection, for replies.
    writers: Arc<Mutex<HashMap<u64, TcpStream>>>,
    /// Which connection last submitted for each session — where that
    /// session's replies go. A client that reconnects re-submits (retries
    /// are idempotent), refreshing the mapping.
    session_conns: HashMap<u64, u64>,
    /// Undecodable client frames dropped at the codec boundary.
    rejects: u64,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl ClientPort {
    /// Bind the client port on `addr` (use port 0 for an ephemeral port)
    /// and start accepting connections.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(addr: SocketAddr) -> std::io::Result<ClientPort> {
        let listener = TcpListener::bind(addr)?;
        let listen_addr = listener.local_addr()?;
        let (tx, rx) = channel::unbounded::<(u64, Vec<u8>)>();
        let writers: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_handle = {
            let writers = Arc::clone(&writers);
            let shutdown = Arc::clone(&shutdown);
            let conn_ids = AtomicU64::new(0);
            thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        let conn = conn_ids.fetch_add(1, Ordering::Relaxed);
                        if let Ok(writer) = stream.try_clone() {
                            writers.lock().insert(conn, writer);
                        }
                        spawn_conn_reader(stream, conn, tx.clone(), Arc::clone(&writers));
                    }
                    Err(_) => {
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        };
        Ok(ClientPort {
            listen_addr,
            rx,
            writers,
            session_conns: HashMap::new(),
            rejects: 0,
            shutdown,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address clients dial.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Undecodable client frames dropped so far (also on the metrics
    /// registry as `client.port.reject`).
    #[must_use]
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Write `frame` to connection `conn`; a dead connection is dropped
    /// (the client's retry/failover path covers it).
    fn respond(&mut self, conn: u64, frame: &ClientFrame) {
        let mut writers = self.writers.lock();
        let dead = match writers.get_mut(&conn) {
            Some(stream) => write_client_frame(stream, frame).is_err(),
            None => false,
        };
        if dead {
            writers.remove(&conn);
        }
    }

    /// Drain every queued client frame into the service and answer what can
    /// be answered now: decode (undecodable frames are counted and dropped
    /// — they never reach the client table), feed submits through
    /// [`ConsensusService::client_submit`], send back cached replies /
    /// redirects / busy signals, and deliver the replies of instances that
    /// decided since the last pump. Call once per poll-loop iteration.
    /// Returns the number of submits admitted as new consensus instances.
    pub fn pump<T: Transport>(&mut self, svc: &mut ConsensusService<T>) -> usize {
        let mut admitted = 0;
        while let Ok((conn, bytes)) = self.rx.try_recv() {
            let frame = match decode_client_frame(&bytes) {
                Ok(f) => f,
                Err(_) => {
                    self.rejects += 1;
                    Registry::global().counter("client.port.reject").inc();
                    continue;
                }
            };
            let ClientFrame::Submit { session, reqno, value } = frame else {
                // Only clients originate on this port, and clients only
                // submit; anything else is a protocol violation.
                self.rejects += 1;
                Registry::global().counter("client.port.reject").inc();
                continue;
            };
            self.session_conns.insert(session, conn);
            match svc.client_submit(session, reqno, value) {
                ClientAdmission::Reply { reqno, decision } => {
                    self.respond(conn, &ClientFrame::Reply { session, reqno, decision });
                }
                ClientAdmission::Redirect(node) => {
                    self.respond(
                        conn,
                        &ClientFrame::Redirect { node: u32::try_from(node).unwrap_or(u32::MAX) },
                    );
                }
                ClientAdmission::Busy => self.respond(conn, &ClientFrame::Busy),
                ClientAdmission::Admitted => admitted += 1,
                ClientAdmission::Queued | ClientAdmission::Stale | ClientAdmission::Rejected => {}
            }
        }
        for (session, reqno, decision) in svc.take_client_replies() {
            if let Some(conn) = self.session_conns.get(&session).copied() {
                self.respond(conn, &ClientFrame::Reply { session, reqno, decision });
            }
        }
        admitted
    }
}

/// Reader thread for one client connection: pump length-prefixed frames
/// into the port's queue until EOF, a framing violation, or shutdown. Any
/// violation poisons only this connection.
fn spawn_conn_reader(
    mut stream: TcpStream,
    conn: u64,
    tx: Sender<(u64, Vec<u8>)>,
    writers: Arc<Mutex<HashMap<u64, TcpStream>>>,
) {
    thread::spawn(move || {
        loop {
            match read_client_frame_bytes(&mut stream) {
                Ok(Some(bytes)) => {
                    if tx.send((conn, bytes)).is_err() {
                        break; // port gone
                    }
                }
                Ok(None) => break, // clean EOF
                Err(_) => {
                    Registry::global().counter("client.port.conn_poisoned").inc();
                    break;
                }
            }
        }
        writers.lock().remove(&conn);
    });
}

impl Drop for ClientPort {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept so it observes the flag.
        let woke =
            TcpStream::connect_timeout(&self.listen_addr, Duration::from_millis(500)).is_ok();
        if let Some(handle) = self.accept_handle.take() {
            if woke {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ClientFrame> {
        vec![
            ClientFrame::Submit {
                session: 7,
                reqno: 1,
                value: VecD::from_slice(&[1.5, -2.25]),
            },
            ClientFrame::Reply {
                session: u64::MAX,
                reqno: 0,
                decision: VecD::from_slice(&[0.0]),
            },
            ClientFrame::Redirect { node: 3 },
            ClientFrame::Busy,
        ]
    }

    #[test]
    fn client_frames_round_trip_bit_exactly() {
        for f in samples() {
            let bytes = encode_client_frame(&f);
            assert_eq!(decode_client_frame(&bytes), Ok(f));
        }
        // NaN survives bit-exactly (structural validity only; semantic
        // checks live at the admission boundary).
        let f = ClientFrame::Reply {
            session: 0,
            reqno: 0,
            decision: VecD::from_slice(&[f64::NAN]),
        };
        match decode_client_frame(&encode_client_frame(&f)).expect("decodes") {
            ClientFrame::Reply { decision, .. } => {
                assert!(decision.as_slice()[0].is_nan());
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn every_truncation_and_trailing_byte_is_rejected() {
        for f in samples() {
            let bytes = encode_client_frame(&f);
            for cut in 0..bytes.len() {
                assert!(decode_client_frame(&bytes[..cut]).is_err(), "cut {cut} of {f:?}");
            }
            let mut extended = bytes;
            extended.push(0xEE);
            assert!(decode_client_frame(&extended).is_err(), "trailing byte after {f:?}");
        }
    }

    #[test]
    fn forged_dimension_and_empty_submit_are_rejected() {
        // Submit claiming a ~4-billion-component vector with no bytes.
        let mut b = Vec::new();
        b.extend_from_slice(&CLIENT_MAGIC);
        b.push(CLIENT_VERSION);
        b.push(1);
        b.extend_from_slice(&0u64.to_le_bytes());
        b.extend_from_slice(&0u64.to_le_bytes());
        b.extend_from_slice(&u32::MAX.to_le_bytes());
        let e = decode_client_frame(&b).expect_err("forged dim");
        assert!(e.contains("dimension"), "unexpected: {e}");
        // A zero-dimension submit carries nothing to decide on.
        let empty = ClientFrame::Submit {
            session: 1,
            reqno: 1,
            value: VecD::from_slice(&[]),
        };
        assert!(decode_client_frame(&encode_client_frame(&empty)).is_err());
        // Unknown kind and bad magic.
        assert!(decode_client_frame(&[b'R', b'C', CLIENT_VERSION, 9]).is_err());
        assert!(decode_client_frame(&[b'X', b'C', CLIENT_VERSION, 4]).is_err());
        assert!(decode_client_frame(&[]).is_err());
    }
}
