//! Simplex geometry: the closed forms behind Lemmas 11–15 of the paper.
//!
//! For a full-dimensional simplex with vertices `a₁ … a_{d+1}` in `R^d`, set
//! `A = [a₁−a_{d+1}, …, a_d−a_{d+1}]` and `B = (A⁻¹)ᵀ` with columns
//! `b₁ … b_d` and `b_{d+1} = −Σ bᵢ`. Then (Akira Toda, cited as [2]):
//!
//! * Lemma 11: `⟨aᵢ − a_j, b_k⟩ = δ_{ik} − δ_{jk}`;
//! * Lemma 12: the inradius is `r = 1 / Σᵢ ‖bᵢ‖`;
//! * and the incenter has barycentric weights `‖b_k‖ / Σ‖bᵢ‖` (derived from
//!   the signed facet distance `dist(x, π_k) = t_k / ‖b_k‖`).
//!
//! Lemma 13 of the paper identifies the inradius with `δ*(S)` for `f = 1`,
//! `n = d + 1`, which makes this module the *oracle* for the δ* solver.

use rbvc_linalg::affine::{affinely_independent, IsometricProjection};
use rbvc_linalg::{Mat, Tol, VecD};

/// A non-degenerate simplex: `d + 1` affinely independent points in `R^d`.
#[derive(Debug, Clone)]
pub struct Simplex {
    vertices: Vec<VecD>,
    /// Columns `b₁ … b_{d+1}` (see module docs).
    b: Vec<VecD>,
}

impl Simplex {
    /// Build a simplex, computing the `b`-vector system. Returns `None` if
    /// the vertices are not affinely independent (degenerate simplex) or the
    /// vertex count is not `d + 1`.
    #[must_use]
    pub fn new(vertices: Vec<VecD>, tol: Tol) -> Option<Self> {
        if vertices.is_empty() {
            return None;
        }
        let d = vertices[0].dim();
        if vertices.len() != d + 1 {
            return None;
        }
        if !affinely_independent(&vertices, tol) {
            return None;
        }
        let last = &vertices[d];
        let diffs: Vec<VecD> = vertices[..d].iter().map(|a| a - last).collect();
        let a_mat = Mat::from_cols(&diffs);
        let b_mat = a_mat.inverse(tol)?.transpose();
        let mut b: Vec<VecD> = (0..d).map(|i| b_mat.col(i)).collect();
        let mut b_last = VecD::zeros(d);
        for bi in &b {
            b_last -= bi.clone();
        }
        b.push(b_last);
        Some(Simplex { vertices, b })
    }

    /// Dimension `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.vertices[0].dim()
    }

    /// The vertices `a₁ … a_{d+1}`.
    #[must_use]
    pub fn vertices(&self) -> &[VecD] {
        &self.vertices
    }

    /// The vector `b_k` (0-based `k ∈ 0..=d`), normal to facet `π_k`
    /// (the facet omitting vertex `k`), pointing toward vertex `k`.
    #[must_use]
    pub fn b_vector(&self, k: usize) -> &VecD {
        &self.b[k]
    }

    /// Inradius via Lemma 12: `r = 1 / Σ ‖bᵢ‖`.
    #[must_use]
    pub fn inradius(&self) -> f64 {
        1.0 / self.b.iter().map(VecD::norm2).sum::<f64>()
    }

    /// Incenter: barycentric weights `‖b_k‖ / Σ ‖bᵢ‖`.
    #[must_use]
    pub fn incenter(&self) -> VecD {
        let norms: Vec<f64> = self.b.iter().map(VecD::norm2).collect();
        let total: f64 = norms.iter().sum();
        let weights: Vec<f64> = norms.iter().map(|n| n / total).collect();
        VecD::combination(&self.vertices, &weights)
    }

    /// Signed distance from `x` to the hyperplane of facet `π_k` (positive
    /// on the vertex-`k` side, i.e. inside): `t_k / ‖b_k‖` where `t` are the
    /// barycentric coordinates of `x`.
    #[must_use]
    pub fn signed_facet_distance(&self, x: &VecD, k: usize) -> f64 {
        // ⟨x − a_j, b_k⟩ = t_k for any j ≠ k (Lemma 11 consequence).
        let j = if k == 0 { 1 } else { 0 };
        let t_k = (x - &self.vertices[j]).dot(&self.b[k]);
        t_k / self.b[k].norm2()
    }

    /// Barycentric coordinates of `x` (sum to 1; all in `[0,1]` iff inside).
    #[must_use]
    pub fn barycentric(&self, x: &VecD) -> Vec<f64> {
        let d = self.dim();
        // t_k = ⟨x − a_{d+1}, b_k⟩ for k < d; t_{d+1} = 1 − Σ.
        let diff = x - &self.vertices[d];
        let mut t: Vec<f64> = (0..d).map(|k| diff.dot(&self.b[k])).collect();
        let rest = 1.0 - t.iter().sum::<f64>();
        t.push(rest);
        t
    }

    /// True iff `x` lies in the closed simplex (within tolerance).
    #[must_use]
    pub fn contains(&self, x: &VecD, tol: Tol) -> bool {
        let scale = x.max_abs().max(1.0);
        self.barycentric(x)
            .iter()
            .all(|&t| t >= -tol.scaled(scale).value())
    }

    /// Vertices of facet `π_k` (all vertices except `k`).
    #[must_use]
    pub fn facet(&self, k: usize) -> Vec<VecD> {
        self.vertices
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != k)
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// Inradius `r_k` of facet `π_k` viewed as a `(d−1)`-simplex inside its
    /// own affine span (Lemma 14). Requires `d ≥ 2`.
    #[must_use]
    pub fn facet_inradius(&self, k: usize, tol: Tol) -> Option<f64> {
        let d = self.dim();
        if d < 2 {
            return None;
        }
        let facet = self.facet(k);
        let proj = IsometricProjection::span_of(&facet, tol);
        if proj.target_dim() != d - 1 {
            return None;
        }
        let projected: Vec<VecD> = facet.iter().map(|p| proj.project(p)).collect();
        Simplex::new(projected, tol).map(|s| s.inradius())
    }

    /// All edge lengths `‖aᵢ − a_j‖₂`, `i < j`.
    #[must_use]
    pub fn edge_lengths(&self) -> Vec<f64> {
        let m = self.vertices.len();
        let mut out = Vec::with_capacity(m * (m - 1) / 2);
        for i in 0..m {
            for j in i + 1..m {
                out.push(self.vertices[i].dist2(&self.vertices[j]));
            }
        }
        out
    }

    /// Shortest edge.
    #[must_use]
    pub fn min_edge(&self) -> f64 {
        self.edge_lengths().into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Longest edge.
    #[must_use]
    pub fn max_edge(&self) -> f64 {
        self.edge_lengths().into_iter().fold(0.0, f64::max)
    }
}

/// Pairwise L2 edge lengths of an arbitrary point set (the paper's `E` / `E₊`
/// edge sets). Returns the empty vector for singleton sets.
#[must_use]
pub fn pairwise_edges(points: &[VecD]) -> Vec<f64> {
    let m = points.len();
    let mut out = Vec::with_capacity(m.saturating_sub(1) * m / 2);
    for i in 0..m {
        for j in i + 1..m {
            out.push(points[i].dist2(&points[j]));
        }
    }
    out
}

/// Pairwise edge lengths in an arbitrary norm.
#[must_use]
pub fn pairwise_edges_norm(points: &[VecD], norm: rbvc_linalg::Norm) -> Vec<f64> {
    let m = points.len();
    let mut out = Vec::with_capacity(m.saturating_sub(1) * m / 2);
    for i in 0..m {
        for j in i + 1..m {
            out.push(points[i].dist(&points[j], norm));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rbvc_linalg::cayley_menger::inradius_by_volumes;

    fn t() -> Tol {
        Tol::default()
    }

    fn random_simplex(rng: &mut impl Rng, d: usize) -> Simplex {
        loop {
            let pts: Vec<VecD> = (0..=d)
                .map(|_| VecD((0..d).map(|_| rng.gen_range(-3.0..3.0)).collect()))
                .collect();
            if let Some(s) = Simplex::new(pts, t()) {
                if s.inradius() > 1e-3 {
                    return s; // avoid needle simplices in float tests
                }
            }
        }
    }

    #[test]
    fn rejects_degenerate_input() {
        let collinear = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 1.0]),
            VecD::from_slice(&[2.0, 2.0]),
        ];
        assert!(Simplex::new(collinear, t()).is_none());
        let wrong_count = vec![VecD::zeros(3), VecD::ones(3)];
        assert!(Simplex::new(wrong_count, t()).is_none());
    }

    #[test]
    fn lemma11_kronecker_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let d = rng.gen_range(2..6);
            let s = random_simplex(&mut rng, d);
            for i in 0..=d {
                for j in 0..=d {
                    for k in 0..=d {
                        let lhs = (&s.vertices()[i] - &s.vertices()[j]).dot(s.b_vector(k));
                        let expect = f64::from(u8::from(i == k)) - f64::from(u8::from(j == k));
                        assert!(
                            (lhs - expect).abs() < 1e-7,
                            "Lemma 11 failed at d={d} (i,j,k)=({i},{j},{k}): {lhs} vs {expect}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lemma12_inradius_matches_cayley_menger() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..40 {
            let d = rng.gen_range(2..6);
            let s = random_simplex(&mut rng, d);
            let r_formula = s.inradius();
            let r_volumes = inradius_by_volumes(s.vertices());
            assert!(
                (r_formula - r_volumes).abs() < 1e-6 * r_formula.max(1.0),
                "Lemma 12 mismatch at d={d}: {r_formula} vs {r_volumes}"
            );
        }
    }

    #[test]
    fn incenter_is_equidistant_from_all_facets() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let d = rng.gen_range(2..6);
            let s = random_simplex(&mut rng, d);
            let c = s.incenter();
            let r = s.inradius();
            for k in 0..=d {
                let dist = s.signed_facet_distance(&c, k);
                assert!(
                    (dist - r).abs() < 1e-7 * r.max(1.0),
                    "incenter not equidistant at facet {k}: {dist} vs {r}"
                );
            }
            assert!(s.contains(&c, t()));
        }
    }

    #[test]
    fn triangle_345_inradius_is_one() {
        let s = Simplex::new(
            vec![
                VecD::from_slice(&[0.0, 0.0]),
                VecD::from_slice(&[3.0, 0.0]),
                VecD::from_slice(&[0.0, 4.0]),
            ],
            t(),
        )
        .unwrap();
        assert!((s.inradius() - 1.0).abs() < 1e-9);
        assert!(s.incenter().approx_eq(&VecD::from_slice(&[1.0, 1.0]), Tol(1e-9)));
    }

    #[test]
    fn barycentric_coordinates_of_vertices_and_centroid() {
        let s = Simplex::new(
            vec![
                VecD::from_slice(&[0.0, 0.0]),
                VecD::from_slice(&[1.0, 0.0]),
                VecD::from_slice(&[0.0, 1.0]),
            ],
            t(),
        )
        .unwrap();
        let b0 = s.barycentric(&s.vertices()[0]);
        assert!((b0[0] - 1.0).abs() < 1e-9 && b0[1].abs() < 1e-9 && b0[2].abs() < 1e-9);
        let centroid = VecD::centroid(s.vertices());
        for w in s.barycentric(&centroid) {
            assert!((w - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn contains_agrees_with_barycentric_signs() {
        let s = Simplex::new(
            vec![
                VecD::from_slice(&[0.0, 0.0]),
                VecD::from_slice(&[2.0, 0.0]),
                VecD::from_slice(&[0.0, 2.0]),
            ],
            t(),
        )
        .unwrap();
        assert!(s.contains(&VecD::from_slice(&[0.5, 0.5]), t()));
        assert!(s.contains(&VecD::from_slice(&[1.0, 1.0]), t())); // edge
        assert!(!s.contains(&VecD::from_slice(&[1.2, 1.2]), t()));
    }

    #[test]
    fn lemma14_inradius_below_every_facet_inradius() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let d = rng.gen_range(2..6);
            let s = random_simplex(&mut rng, d);
            let r = s.inradius();
            for k in 0..=d {
                if let Some(rk) = s.facet_inradius(k, t()) {
                    assert!(
                        r < rk + 1e-9,
                        "Lemma 14 violated at d={d}, facet {k}: r={r} rk={rk}"
                    );
                }
            }
        }
    }

    #[test]
    fn facet_inradius_of_d2_is_none_dimensionally() {
        // d = 2: facets are segments; the (d−1)-inradius of a 1-simplex is
        // defined (half nothing) — our helper builds a 1-dimensional simplex.
        let s = Simplex::new(
            vec![
                VecD::from_slice(&[0.0, 0.0]),
                VecD::from_slice(&[3.0, 0.0]),
                VecD::from_slice(&[0.0, 4.0]),
            ],
            t(),
        )
        .unwrap();
        // A 1-simplex [p, q] in R^1 has B = [1/(p−q)], b2 = −b1, so
        // r = |p − q| / 2: the midpoint is at half length from both ends.
        let r0 = s.facet_inradius(0, t()).expect("valid facet");
        assert!((r0 - 2.5).abs() < 1e-9, "hypotenuse midradius, got {r0}");
    }

    #[test]
    fn lemma15_inradius_below_max_edge_over_d() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let d = rng.gen_range(1..6);
            let s = random_simplex(&mut rng, d);
            let bound = s.max_edge() / d as f64;
            assert!(
                s.inradius() < bound + 1e-9,
                "Lemma 15 violated at d={d}: r={} bound={bound}",
                s.inradius()
            );
        }
    }

    #[test]
    fn regular_simplex_closed_form() {
        // Regular d-simplex with edge a has inradius a / sqrt(2 d (d+1)).
        // Embed via standard basis vectors in R^{d+1}... instead use d=3
        // regular tetrahedron from alternating cube vertices (edge 2√2).
        let s = Simplex::new(
            vec![
                VecD::from_slice(&[1.0, 1.0, 1.0]),
                VecD::from_slice(&[1.0, -1.0, -1.0]),
                VecD::from_slice(&[-1.0, 1.0, -1.0]),
                VecD::from_slice(&[-1.0, -1.0, 1.0]),
            ],
            t(),
        )
        .unwrap();
        let a = 2.0 * 2.0_f64.sqrt();
        let expected = a / (2.0 * 6.0_f64.sqrt());
        assert!((s.inradius() - expected).abs() < 1e-9);
        assert!(s.incenter().approx_eq(&VecD::zeros(3), Tol(1e-9)));
    }

    #[test]
    fn pairwise_edges_count_and_values() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[3.0, 0.0]),
            VecD::from_slice(&[0.0, 4.0]),
        ];
        let mut e = pairwise_edges(&pts);
        e.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(e.len(), 3);
        assert!((e[0] - 3.0).abs() < 1e-12);
        assert!((e[1] - 4.0).abs() < 1e-12);
        assert!((e[2] - 5.0).abs() < 1e-12);
        assert!(pairwise_edges(&pts[..1]).is_empty());
    }
}
