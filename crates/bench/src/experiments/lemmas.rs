//! E7–E9 — the geometric lemmas behind Table 1, validated on random
//! simplices:
//!
//! * E7 (Lemma 13 + Lemma 12): `δ*(S) =` inradius, cross-checked between
//!   the `B = (A⁻¹)ᵀ` closed form, the Cayley–Menger volume identity, and
//!   the LP-exact L∞ bracketing `δ*_∞ ≤ δ*₂ ≤ √d·δ*_∞`.
//! * E8 (Lemma 14): `r < min_k r_k` over all facets.
//! * E9 (Lemma 15): `r < max-edge / d`.

use rbvc_geometry::{min_delta_polyhedral, Simplex};
use rbvc_linalg::cayley_menger::inradius_by_volumes;
use rbvc_linalg::{Norm, Tol};

use crate::workloads::{random_simplex_points, rng};

/// One row (per dimension) of the lemma-validation table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LemmaRow {
    /// Simplex dimension.
    pub d: usize,
    /// Trials run.
    pub trials: usize,
    /// E7: max |r(Lemma 12) − r(Cayley–Menger)| (relative).
    pub max_inradius_err: f64,
    /// E7: bracketing failures of δ*_∞ ≤ r ≤ √d·δ*_∞ (expected 0).
    pub bracket_violations: usize,
    /// E8: Lemma 14 violations (expected 0).
    pub lemma14_violations: usize,
    /// E8: max r / min_k r_k (must stay < 1).
    pub max_facet_ratio: f64,
    /// E9: Lemma 15 violations (expected 0).
    pub lemma15_violations: usize,
    /// E9: max r·d / max-edge (must stay < 1).
    pub max_edge_ratio: f64,
}

/// Run the lemma validations for one dimension.
#[must_use]
pub fn run_dimension(d: usize, trials: usize, seed: u64) -> LemmaRow {
    let tol = Tol::default();
    let mut r = rng(seed);
    let mut row = LemmaRow {
        d,
        trials,
        max_inradius_err: 0.0,
        bracket_violations: 0,
        lemma14_violations: 0,
        max_facet_ratio: 0.0,
        lemma15_violations: 0,
        max_edge_ratio: 0.0,
    };
    for _ in 0..trials {
        let pts = random_simplex_points(&mut r, d, 2.0, 0.02);
        let simplex = Simplex::new(pts.clone(), tol).expect("generator guarantees");
        let inr = simplex.inradius();

        // E7: closed form vs Cayley–Menger volumes.
        let cm = inradius_by_volumes(simplex.vertices());
        row.max_inradius_err = row
            .max_inradius_err
            .max(((inr - cm) / inr.max(1e-12)).abs());

        // E7: δ* bracketing via the LP-exact L∞ value (Lemma 13 says the
        // L2 δ* IS the inradius; norm equivalence brackets it by δ*_∞).
        let (dinf, _) = min_delta_polyhedral(&pts, 1, Norm::LInf, tol);
        if !(dinf <= inr + 1e-7 && inr <= (d as f64).sqrt() * dinf + 1e-7) {
            row.bracket_violations += 1;
        }

        // E8: Lemma 14.
        for k in 0..=d {
            if let Some(rk) = simplex.facet_inradius(k, tol) {
                row.max_facet_ratio = row.max_facet_ratio.max(inr / rk);
                if inr >= rk {
                    row.lemma14_violations += 1;
                }
            }
        }

        // E9: Lemma 15.
        let bound = simplex.max_edge() / d as f64;
        row.max_edge_ratio = row.max_edge_ratio.max(inr / bound);
        if inr >= bound {
            row.lemma15_violations += 1;
        }
    }
    row
}

/// Run the standard sweep over dimensions 2..=6.
#[must_use]
pub fn lemma_sweep(trials: usize, seed: u64) -> Vec<LemmaRow> {
    (2..=6).map(|d| run_dimension(d, trials, seed + d as u64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma_validations_hold_at_d3() {
        let row = run_dimension(3, 50, 99);
        assert!(row.max_inradius_err < 1e-6, "{row:?}");
        assert_eq!(row.bracket_violations, 0, "{row:?}");
        assert_eq!(row.lemma14_violations, 0, "{row:?}");
        assert_eq!(row.lemma15_violations, 0, "{row:?}");
        assert!(row.max_facet_ratio < 1.0);
        assert!(row.max_edge_ratio < 1.0);
    }

    #[test]
    fn lemma_validations_hold_across_dimensions() {
        for row in lemma_sweep(15, 123) {
            assert_eq!(
                row.bracket_violations + row.lemma14_violations + row.lemma15_violations,
                0,
                "violation at d = {}: {row:?}",
                row.d
            );
        }
    }
}
