//! `exp_trajectory` — one-line-per-experiment summary of every
//! `BENCH_*.json` the systems campaigns write, keyed off the shared
//! report envelope (`schema_version` / `experiment` / `title` /
//! `git_rev` / `generated_unix_s`).
//!
//! Usage: `exp_trajectory [DIR]` (defaults to the current directory).
//!
//! Reads each report tolerantly: a missing file prints as absent, a
//! pre-envelope or hand-edited document still summarizes whatever shared
//! keys it carries. This is the quick "where does the benchmark
//! trajectory stand" view for a fresh checkout — which campaigns have
//! been run, at which commit, how long ago, and their headline verdicts.

use rbvc_bench::report::print_table;
use serde_json::Value;

/// The systems campaign reports, in experiment order.
const REPORTS: [&str; 6] = [
    "BENCH_service.json",
    "BENCH_recovery.json",
    "BENCH_byzantine.json",
    "BENCH_client.json",
    "BENCH_health.json",
    "BENCH_identity.json",
];

fn get_str(doc: &Value, key: &str) -> String {
    doc.get(key).and_then(Value::as_str).unwrap_or("?").to_string()
}

fn get_u64(doc: &Value, key: &str) -> Option<u64> {
    doc.get(key).and_then(Value::as_u64)
}

fn get_f64(doc: &Value, key: &str) -> Option<f64> {
    doc.get(key).and_then(|v| v.as_f64().or_else(|| v.as_u64().map(|u| u as f64)))
}

/// Age of a unix timestamp relative to now, human-readable.
fn age(generated_unix_s: Option<u64>) -> String {
    let Some(at) = generated_unix_s else {
        return "?".to_string();
    };
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let dt = now.saturating_sub(at);
    if dt < 120 {
        format!("{dt}s ago")
    } else if dt < 7200 {
        format!("{}m ago", dt / 60)
    } else if dt < 172_800 {
        format!("{}h ago", dt / 3600)
    } else {
        format!("{}d ago", dt / 86_400)
    }
}

/// The per-experiment headline: the one number (or verdict) someone
/// scanning the trajectory actually wants per campaign.
fn headline(doc: &Value) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(runs) = get_u64(doc, "runs") {
        parts.push(format!("{runs} runs"));
    }
    if let (Some(c), Some(r)) = (get_u64(doc, "converged_runs"), get_u64(doc, "runs")) {
        parts.push(format!("{c}/{r} converged"));
    }
    if let Some(rate) = get_f64(doc, "diagnosis_rate") {
        parts.push(format!("{:.0}% diagnosed", rate * 100.0));
    }
    if let Some(v) = get_u64(doc, "monitor_violations") {
        parts.push(format!("{v} violations"));
    }
    if doc.get("saturation_offered_per_sec").is_some() {
        match get_f64(doc, "saturation_offered_per_sec") {
            Some(rate) => parts.push(format!("saturates at {rate:.0}/s")),
            None => parts.push("no saturation in sweep".to_string()),
        }
    }
    if let Some(w) = get_f64(doc, "wall_secs") {
        parts.push(format!("{w:.1}s wall"));
    }
    if parts.is_empty() {
        "(no shared headline keys)".to_string()
    } else {
        parts.join(", ")
    }
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let mut rows: Vec<Vec<String>> = Vec::new();
    for name in REPORTS {
        let path = std::path::Path::new(&dir).join(name);
        let row = match std::fs::read_to_string(&path) {
            Ok(text) => match serde_json::from_str(&text) {
                Ok(doc) => vec![
                    get_str(&doc, "experiment"),
                    get_str(&doc, "title"),
                    get_str(&doc, "git_rev"),
                    age(get_u64(&doc, "generated_unix_s")),
                    headline(&doc),
                ],
                Err(_) => vec![
                    "?".to_string(),
                    name.to_string(),
                    "?".to_string(),
                    "?".to_string(),
                    "unparseable JSON".to_string(),
                ],
            },
            Err(_) => vec![
                "—".to_string(),
                name.to_string(),
                "—".to_string(),
                "—".to_string(),
                "absent (campaign not run)".to_string(),
            ],
        };
        rows.push(row);
    }
    print_table(
        "Benchmark trajectory (shared report envelope)",
        &["exp", "title", "rev", "generated", "headline"],
        &rows,
    );
}
