//! [`Mat`]: dense row-major matrices with partial-pivot Gaussian elimination.
//!
//! Sizes in this workspace are tiny (at most ~(d+2) × (d+2) with d ≤ 16), so
//! a straightforward O(n³) LU-style elimination with partial pivoting is the
//! right tool: simple, cache-friendly at these sizes, and numerically sound.
//!
//! The paper's Lemma 11/12 machinery needs `B = (A⁻¹)ᵀ` for the edge matrix
//! `A = [a₁−a_{d+1}, …, a_d−a_{d+1}]`; [`Mat::inverse`] provides it.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::tolerance::Tol;
use crate::vector::VecD;

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from rows.
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: empty");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Mat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build a `d × m` matrix whose columns are the given `d`-vectors
    /// (the paper's input matrix `S` is exactly this shape).
    #[must_use]
    pub fn from_cols(cols: &[VecD]) -> Self {
        assert!(!cols.is_empty(), "from_cols: empty");
        let d = cols[0].dim();
        let mut m = Mat::zeros(d, cols.len());
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.dim(), d, "from_cols: ragged columns");
            for i in 0..d {
                m[(i, j)] = c[i];
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Column `j` as a vector.
    #[must_use]
    pub fn col(&self, j: usize) -> VecD {
        VecD((0..self.rows).map(|i| self[(i, j)]).collect())
    }

    /// Row `i` as a vector.
    #[must_use]
    pub fn row(&self, i: usize) -> VecD {
        VecD(self.data[i * self.cols..(i + 1) * self.cols].to_vec())
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "matmul: inner dimension mismatch");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    #[must_use]
    pub fn matvec(&self, x: &VecD) -> VecD {
        assert_eq!(self.cols, x.dim(), "matvec: dimension mismatch");
        VecD(
            (0..self.rows)
                .map(|i| {
                    (0..self.cols)
                        .map(|j| self[(i, j)] * x[j])
                        .sum::<f64>()
                })
                .collect(),
        )
    }

    /// Gram matrix `selfᵀ * self` (columns' pairwise dot products).
    #[must_use]
    pub fn gram(&self) -> Mat {
        let mut g = Mat::zeros(self.cols, self.cols);
        for a in 0..self.cols {
            for b in a..self.cols {
                let mut s = 0.0;
                for i in 0..self.rows {
                    s += self[(i, a)] * self[(i, b)];
                }
                g[(a, b)] = s;
                g[(b, a)] = s;
            }
        }
        g
    }

    /// Solve the square linear system `self * x = b` via partial-pivot
    /// Gaussian elimination. Returns `None` if the matrix is singular to
    /// within `tol` (pivot threshold scaled by the matrix magnitude).
    #[must_use]
    pub fn solve(&self, b: &VecD, tol: Tol) -> Option<VecD> {
        assert_eq!(self.rows, self.cols, "solve: matrix must be square");
        assert_eq!(self.rows, b.dim(), "solve: rhs dimension mismatch");
        let n = self.rows;
        let mut a = self.clone();
        let mut rhs = b.clone();
        let pivot_tol = tol.scaled(self.max_abs()).value();

        for col in 0..n {
            // Partial pivot: largest magnitude in this column at/below `col`.
            let mut piv = col;
            for r in col + 1..n {
                if a[(r, col)].abs() > a[(piv, col)].abs() {
                    piv = r;
                }
            }
            if a[(piv, col)].abs() <= pivot_tol {
                return None;
            }
            if piv != col {
                a.swap_rows(piv, col);
                rhs.0.swap(piv, col);
            }
            let inv = 1.0 / a[(col, col)];
            for r in col + 1..n {
                let factor = a[(r, col)] * inv;
                if factor == 0.0 {
                    continue;
                }
                a[(r, col)] = 0.0;
                for c in col + 1..n {
                    a[(r, c)] -= factor * a[(col, c)];
                }
                rhs[r] -= factor * rhs[col];
            }
        }
        // Back substitution.
        let mut x = VecD::zeros(n);
        for i in (0..n).rev() {
            let mut s = rhs[i];
            for j in i + 1..n {
                s -= a[(i, j)] * x[j];
            }
            x[i] = s / a[(i, i)];
        }
        Some(x)
    }

    /// Inverse of a square matrix, or `None` if singular within `tol`.
    #[must_use]
    pub fn inverse(&self, tol: Tol) -> Option<Mat> {
        assert_eq!(self.rows, self.cols, "inverse: matrix must be square");
        let n = self.rows;
        let mut inv = Mat::zeros(n, n);
        // Solve against each basis vector; at these sizes the repeated
        // elimination cost is irrelevant and the code stays simple.
        for j in 0..n {
            let e = VecD::scaled_basis(n, j, 1.0);
            let x = self.solve(&e, tol)?;
            for i in 0..n {
                inv[(i, j)] = x[i];
            }
        }
        Some(inv)
    }

    /// Determinant via elimination.
    #[must_use]
    pub fn determinant(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "determinant: matrix must be square");
        let n = self.rows;
        let mut a = self.clone();
        let mut det = 1.0;
        for col in 0..n {
            let mut piv = col;
            for r in col + 1..n {
                if a[(r, col)].abs() > a[(piv, col)].abs() {
                    piv = r;
                }
            }
            if a[(piv, col)] == 0.0 {
                return 0.0;
            }
            if piv != col {
                a.swap_rows(piv, col);
                det = -det;
            }
            det *= a[(col, col)];
            let inv = 1.0 / a[(col, col)];
            for r in col + 1..n {
                let factor = a[(r, col)] * inv;
                for c in col..n {
                    a[(r, c)] -= factor * a[(col, c)];
                }
            }
        }
        det
    }

    /// Numerical rank via row echelon with the given pivot tolerance.
    #[must_use]
    pub fn rank(&self, tol: Tol) -> usize {
        let mut a = self.clone();
        let pivot_tol = tol.scaled(self.max_abs()).value();
        let mut rank = 0;
        let mut row = 0;
        for col in 0..self.cols {
            if row >= self.rows {
                break;
            }
            let mut piv = row;
            for r in row + 1..self.rows {
                if a[(r, col)].abs() > a[(piv, col)].abs() {
                    piv = r;
                }
            }
            if a[(piv, col)].abs() <= pivot_tol {
                continue;
            }
            a.swap_rows(piv, row);
            let inv = 1.0 / a[(row, col)];
            for r in row + 1..self.rows {
                let factor = a[(r, col)] * inv;
                for c in col..self.cols {
                    a[(r, c)] -= factor * a[(row, c)];
                }
            }
            rank += 1;
            row += 1;
        }
        rank
    }

    /// Largest absolute entry (for tolerance scaling).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// Entry-wise approximate equality.
    #[must_use]
    pub fn approx_eq(&self, other: &Mat, tol: Tol) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| tol.eq(*a, *b))
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn identity_and_indexing() {
        let id = Mat::identity(3);
        assert_eq!(id[(0, 0)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
        assert_eq!(id.nrows(), 3);
        assert_eq!(id.ncols(), 3);
    }

    #[test]
    fn from_cols_round_trips() {
        let cols = vec![VecD::from_slice(&[1.0, 2.0]), VecD::from_slice(&[3.0, 4.0])];
        let m = Mat::from_cols(&cols);
        assert_eq!(m.col(0).as_slice(), &[1.0, 2.0]);
        assert_eq!(m.col(1).as_slice(), &[3.0, 4.0]);
        assert_eq!(m.row(0).as_slice(), &[1.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Mat::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert!(c.approx_eq(
            &Mat::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]),
            t()
        ));
    }

    #[test]
    fn solve_simple_system() {
        let a = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let b = VecD::from_slice(&[5.0, 10.0]);
        let x = a.solve(&b, t()).expect("nonsingular");
        assert!(a.matvec(&x).approx_eq(&b, Tol(1e-9)));
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&VecD::from_slice(&[1.0, 2.0]), t()).is_none());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Mat::from_rows(&[
            vec![4.0, 7.0, 2.0],
            vec![3.0, 6.0, 1.0],
            vec![2.0, 5.0, 3.0],
        ]);
        let inv = a.inverse(t()).expect("nonsingular");
        assert!(a.matmul(&inv).approx_eq(&Mat::identity(3), Tol(1e-8)));
        assert!(inv.matmul(&a).approx_eq(&Mat::identity(3), Tol(1e-8)));
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!((a.determinant() - (-2.0)).abs() < 1e-12);
        let b = Mat::from_rows(&[
            vec![2.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0],
            vec![0.0, 0.0, 4.0],
        ]);
        assert!((b.determinant() - 24.0).abs() < 1e-12);
        // Row swap flips sign.
        let c = Mat::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!((c.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_of_rank_deficient_matrix() {
        let a = Mat::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![1.0, 0.0, 1.0],
        ]);
        assert_eq!(a.rank(t()), 2);
        assert_eq!(Mat::identity(4).rank(t()), 4);
        assert_eq!(Mat::zeros(3, 3).rank(t()), 0);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let m = Mat::from_cols(&[
            VecD::from_slice(&[1.0, 0.0, 2.0]),
            VecD::from_slice(&[0.0, 3.0, 1.0]),
        ]);
        let g = m.gram();
        assert_eq!(g.nrows(), 2);
        assert!((g[(0, 0)] - 5.0).abs() < 1e-12);
        assert!((g[(1, 1)] - 10.0).abs() < 1e-12);
        assert!((g[(0, 1)] - g[(1, 0)]).abs() < 1e-15);
        assert!((g[(0, 1)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn random_solve_round_trip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let n = rng.gen_range(1..7);
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect())
                .collect();
            let a = Mat::from_rows(&rows);
            if a.determinant().abs() < 1e-3 {
                continue; // skip near-singular draws
            }
            let x_true = VecD((0..n).map(|_| rng.gen_range(-2.0..2.0)).collect());
            let b = a.matvec(&x_true);
            let x = a.solve(&b, t()).expect("well-conditioned");
            assert!(
                x.approx_eq(&x_true, Tol(1e-6)),
                "solve mismatch: {x} vs {x_true}"
            );
        }
    }
}
