#![warn(missing_docs)]

//! # rbvc-linalg
//!
//! Small-dimension dense linear algebra supporting the relaxed Byzantine
//! vector consensus (BVC) library.
//!
//! Everything in the paper operates on `d`-dimensional real vectors with
//! `d` typically between 1 and ~16, and on `(d+1)`-point simplices. This
//! crate therefore favours *correctness and clarity at small sizes* over
//! asymptotic tricks: row-major dense matrices, partial-pivot Gaussian
//! elimination, explicit tolerance management.
//!
//! Modules:
//! * [`vector`] — [`VecD`], the d-dimensional real (column) vector used for
//!   process inputs/outputs, with Lp-norm support ([`norms`]).
//! * [`matrix`] — [`Mat`], dense matrices: solve, inverse, determinant, rank.
//! * [`norms`] — the Lp / L∞ norm family and Hölder-type comparisons
//!   (Theorem 13 of the paper).
//! * [`affine`] — affine independence, affine bases, orthonormalisation and
//!   distance-preserving projections onto affine subspaces (used in
//!   Theorem 8 / Case II of Theorem 9).
//! * [`qr`] — Householder QR and least squares (cross-check oracle for the
//!   Gram–Schmidt bases).
//! * [`cayley_menger`] — simplex volumes from pairwise distances.
//! * [`tolerance`] — the shared numerical-tolerance policy.

pub mod affine;
pub mod cayley_menger;
pub mod matrix;
pub mod norms;
pub mod qr;
pub mod tolerance;
pub mod vector;

pub use matrix::Mat;
pub use norms::Norm;
pub use tolerance::{Tol, DEFAULT_TOL};
pub use vector::VecD;
