//! `exp_trace` — cross-node critical-path attribution over a JSONL trace.
//!
//! Usage:
//!
//! ```text
//! exp_trace TRACE.jsonl [--json OUT.json]   # attribute an existing trace
//! exp_trace --smoke [seed]                  # self-contained CI check
//! ```
//!
//! File mode parses a trace written by `exp_service --trace` (all nodes of
//! the loopback mesh log into one file, so it is already merged),
//! reconstructs each decided instance's message DAG, walks the
//! submit→decide critical path backwards, and prints the per-phase
//! attribution table; `--json` also writes the attribution object.
//!
//! `--smoke` runs the smoke-sized service profile over real TCP sockets
//! with tracing on, then asserts the tracing invariants the attribution
//! depends on: every `FrameRx` pairs with a `FrameTx` (zero unpaired
//! receives, zero mid-stream send gaps), every `(instance, node)` yields a
//! complete chain, and the reconstructed phase sums agree with the
//! service's own measured decide latencies — per chain within 10% (plus a
//! small absolute floor for scheduler jitter on loaded CI machines), and
//! in aggregate the median chain total must bracket the measured p50.
//! Exits nonzero on any violation.

use std::sync::Arc;

use rbvc_bench::experiments::service::{
    percentile, run_service_with_obs, ServiceConfig, TransportKind,
};
use rbvc_obs::{
    assemble, kernel_snapshot, render_attribution, reset_kernel_timers, set_kernel_timing,
    JsonlRecorder, Obs, Recorder, Registry, TraceSummary,
};

/// Parse + assemble one trace file and print the report. Returns the
/// assembled attribution for further checks.
fn attribute_file(path: &str) -> Result<rbvc_obs::Attribution, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let summary = TraceSummary::parse(&text)?;
    let a = assemble(&summary);
    println!("{}", render_attribution(&a));
    Ok(a)
}

/// Per-chain tolerance: 10% of the measured latency, with an absolute
/// floor because `Instant::now()` at submit and the trace clock at the
/// `Submit` event are two distinct reads a descheduled thread can split.
fn chain_tolerance_us(measured_us: u64) -> u64 {
    (measured_us / 10).max(2_000)
}

fn smoke(seed: u64) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("rbvc-exp-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("mk tmp dir: {e}"))?;
    let path = dir.join("smoke.jsonl");

    let cfg = ServiceConfig::smoke(seed);
    println!(
        "exp_trace --smoke: {}-node TCP mesh, {} instances, seed {seed}, trace {}",
        cfg.n,
        cfg.instances,
        path.display()
    );
    Registry::global().reset();
    reset_kernel_timers();
    set_kernel_timing(true);
    let rec = Arc::new(
        JsonlRecorder::create(&path).map_err(|e| format!("create trace: {e}"))?,
    );
    let obs = Obs::new(Arc::clone(&rec) as Arc<dyn Recorder>);
    let out = run_service_with_obs(&cfg, TransportKind::Tcp, Some(obs));
    for line in Registry::global().to_jsonl_lines() {
        rec.write_raw(&line);
    }
    for k in kernel_snapshot() {
        rec.write_raw(&k.to_json_line());
    }
    rec.flush();
    set_kernel_timing(false);

    if out.decided < cfg.instances {
        return Err(format!(
            "only {}/{} instances decided — cannot judge the trace",
            out.decided, cfg.instances
        ));
    }
    let a = attribute_file(&path.to_string_lossy())?;
    let _ = std::fs::remove_dir_all(&dir);

    // Pairing: every receive must match a send; a send may legitimately be
    // unread only at shutdown (in flight), never mid-stream.
    if a.unpaired_rx != 0 || a.unpaired_tx_mid != 0 {
        return Err(format!(
            "span pairing broken: {} unpaired rx, {} mid-stream tx gaps",
            a.unpaired_rx, a.unpaired_tx_mid
        ));
    }
    if a.identity_mismatches != 0 {
        return Err(format!(
            "{} paired spans disagree on (instance, round)",
            a.identity_mismatches
        ));
    }
    // Completeness: one complete chain per (instance, node).
    let expect = cfg.instances * cfg.n;
    if a.chains.len() != expect || a.incomplete_chains != 0 {
        return Err(format!(
            "expected {expect} complete chains, got {} ({} incomplete)",
            a.chains.len(),
            a.incomplete_chains
        ));
    }
    // Accuracy: the phase partition telescopes to submit→decide on the
    // trace clock; that must agree with the service's own stopwatch.
    for c in &a.chains {
        let err = c.total_us.abs_diff(c.measured_us);
        if err > chain_tolerance_us(c.measured_us) {
            return Err(format!(
                "instance {} node {}: phase sum {}µs vs measured {}µs (err {}µs)",
                c.instance, c.node, c.total_us, c.measured_us, err
            ));
        }
    }
    let mut totals: Vec<f64> = a.chains.iter().map(|c| c.total_us as f64).collect();
    totals.sort_by(f64::total_cmp);
    let trace_p50_us = percentile(&totals, 50.0);
    let measured_p50_us = out.p50_ms * 1e3;
    let p50_err = (trace_p50_us - measured_p50_us).abs();
    if p50_err > (measured_p50_us * 0.10).max(2_000.0) {
        return Err(format!(
            "trace p50 {trace_p50_us:.0}µs strays from measured p50 {measured_p50_us:.0}µs"
        ));
    }
    println!(
        "smoke OK: {} chains complete, 0 unpaired, p50 trace {:.1}ms vs measured {:.1}ms, \
         dominant phase {}",
        a.chains.len(),
        trace_p50_us / 1e3,
        out.p50_ms,
        a.dominant_phase()
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        let seed = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with("--"))
            .and_then(|a| a.parse().ok())
            .unwrap_or(2016);
        if let Err(e) = smoke(seed) {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
        return;
    }
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: exp_trace TRACE.jsonl [--json OUT.json] | exp_trace --smoke [seed]");
        std::process::exit(2);
    };
    let json_out = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    match attribute_file(path) {
        Ok(a) => {
            if let Some(out) = json_out {
                let rendered =
                    serde_json::to_string_pretty(&a.to_json()).expect("valid JSON");
                if let Err(e) = std::fs::write(&out, rendered) {
                    eprintln!("FAIL: write {out}: {e}");
                    std::process::exit(1);
                }
                println!("wrote {out}");
            }
        }
        Err(e) => {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
    }
}
