//! E16 — the chaos campaign: (Relaxed) Verified Averaging on an unreliable
//! network.
//!
//! The paper's model assumes reliable channels; this experiment drops,
//! duplicates, delays, reorders and partitions them instead, restores
//! reliable-channel semantics with [`ReliableLink`] retransmission, and has
//! an online [`SafetyMonitor`] watch every decision as it happens. The
//! campaign sweeps fault shape × drop probability over many seeds and
//! reports, per cell: how many runs still decided, how many safety alerts
//! fired (the acceptance bar is zero), mean steps to completion, and the
//! message overhead relative to a fault-free baseline of the same run.

use rbvc_core::bounds::kappa_async;
use rbvc_core::verified_avg::{DeltaMode, HonestFacade, VerifiedAveraging};
use rbvc_linalg::{Norm, Tol, VecD};
use rbvc_sim::asynch::{AsyncEngine, AsyncNode, RandomScheduler};
use rbvc_sim::config::SystemConfig;
use rbvc_sim::monitor::SafetyMonitor;
use rbvc_sim::net::{
    LinkFault, NetworkFaults, Partition, PartitionMode, ReliableLink, ReliableLinkAdversary,
};

use crate::workloads::{self, rng};

/// Campaign system size: the paper's headline asynchronous regime,
/// `n = 3f + 1` with one Byzantine process, below the `(d+2)f + 1` bound.
const N: usize = 4;
const F: usize = 1;
const D: usize = 3;
/// Averaging rounds: enough contraction that honest decisions are far
/// tighter than the agreement threshold the monitor enforces.
const ROUNDS: usize = 12;
/// Step budget per run; chaos runs idle-step through delays, so this is
/// deliberately generous.
const MAX_STEPS: u64 = 4_000_000;

/// The fault shapes of the campaign grid (each swept over drop rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultShape {
    /// Loss only (the `drop = 0` cell is the fault-free control).
    Clean,
    /// Loss + 20% duplication.
    Duplicate,
    /// Loss + uniform extra delay of up to 8 steps per message.
    Delay,
    /// Loss + 30% reorder penalty.
    Reorder,
    /// Loss + a partition isolating process 0 for steps 100..1200, healing
    /// afterwards; recovery relies on retransmission.
    Partition,
}

impl FaultShape {
    /// All shapes, in campaign order.
    pub const ALL: [FaultShape; 5] = [
        FaultShape::Clean,
        FaultShape::Duplicate,
        FaultShape::Delay,
        FaultShape::Reorder,
        FaultShape::Partition,
    ];

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultShape::Clean => "drop-only",
            FaultShape::Duplicate => "drop+dup",
            FaultShape::Delay => "drop+delay",
            FaultShape::Reorder => "drop+reorder",
            FaultShape::Partition => "drop+partition",
        }
    }

    fn faults(self, drop: f64, seed: u64) -> NetworkFaults {
        let mut link = LinkFault::lossy(drop);
        match self {
            FaultShape::Clean => {}
            FaultShape::Duplicate => link.dup_prob = 0.2,
            FaultShape::Delay => link.max_extra_delay = 8,
            FaultShape::Reorder => link.reorder_prob = 0.3,
            FaultShape::Partition => {}
        }
        let plan = NetworkFaults::new(seed, link);
        match self {
            FaultShape::Partition => plan.with_partition(Partition {
                side_a: vec![0],
                start: 100,
                heal: 1200,
                mode: PartitionMode::Drop,
            }),
            _ => plan,
        }
    }
}

/// Outcome of one seeded chaos run (plus its fault-free baseline twin).
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Every honest process decided.
    pub decided: bool,
    /// Scheduler steps of the chaos run.
    pub steps: u64,
    /// Messages sent in the chaos run (protocol + acks + retransmissions).
    pub messages: u64,
    /// Messages sent by the fault-free baseline of the same seed.
    pub baseline_messages: u64,
    /// Safety alerts raised by the online monitor (acceptance bar: 0).
    pub violations: usize,
    /// Messages lost to link drops and partition cuts.
    pub lost: u64,
}

fn build_engine(
    inputs: &[VecD],
    faulty_ids: &[usize],
) -> AsyncEngine<ReliableLink<VerifiedAveraging>> {
    let tol = Tol::default();
    let config = SystemConfig::new(N, F).with_faulty(faulty_ids.to_vec());
    let nodes: Vec<AsyncNode<ReliableLink<VerifiedAveraging>>> = (0..N)
        .map(|i| {
            let proto = VerifiedAveraging::new(
                i,
                N,
                F,
                inputs[i].clone(),
                DeltaMode::MinDelta(Norm::L2),
                ROUNDS,
                tol,
            );
            if faulty_ids.contains(&i) {
                // The adversary runs the protocol faithfully on an
                // adversarially chosen input — the strongest strategy
                // against validity — speaking the link layer natively.
                AsyncNode::Byzantine(Box::new(ReliableLinkAdversary::new(
                    HonestFacade(proto),
                    N,
                )))
            } else {
                AsyncNode::Honest(ReliableLink::with_defaults(proto, N))
            }
        })
        .collect();
    AsyncEngine::new(config, nodes)
}

/// Build the online monitor for a run: ε-agreement in L∞ between every
/// decided pair, and validity as membership of the honest-input bounding
/// box inflated by the Theorem 15 slack `κ·max-edge` (Byzantine inputs
/// legitimately pull decisions up to δ* outside the honest hull).
fn build_monitor(
    inputs: &[VecD],
    faulty_ids: &[usize],
) -> SafetyMonitor<VecD> {
    let honest: Vec<VecD> = (0..N)
        .filter(|i| !faulty_ids.contains(i))
        .map(|i| inputs[i].clone())
        .collect();
    let kappa = kappa_async(N, F, D, Norm::L2)
        .expect("campaign regime is covered by Theorem 15")
        .kappa;
    let slack = kappa * workloads::max_edge(inputs) + 0.05;
    let eps = 0.2;
    let mut lo = [f64::INFINITY; D];
    let mut hi = [f64::NEG_INFINITY; D];
    for v in &honest {
        for (c, x) in v.as_slice().iter().enumerate() {
            lo[c] = lo[c].min(*x);
            hi[c] = hi[c].max(*x);
        }
    }
    SafetyMonitor::new(
        N,
        move |a: &VecD, b: &VecD| {
            let dist = a.dist(b, Norm::LInf);
            (dist > eps).then(|| format!("decisions {dist:.4} apart in L∞ (ε = {eps})"))
        },
        move |_pid, v: &VecD| {
            for (c, x) in v.as_slice().iter().enumerate() {
                if !x.is_finite() {
                    return Some(format!("non-finite component {c}"));
                }
                if *x < lo[c] - slack || *x > hi[c] + slack {
                    return Some(format!(
                        "component {c} = {x:.4} outside [{:.4}, {:.4}]",
                        lo[c] - slack,
                        hi[c] + slack
                    ));
                }
            }
            None
        },
    )
}

/// Execute one seeded cell run: a fault-free baseline followed by the chaos
/// run proper, both over identical inputs and scheduler seeds.
#[must_use]
pub fn run_one(shape: FaultShape, drop: f64, seed: u64) -> ChaosRun {
    let mut r = rng(seed);
    let honest = workloads::random_points(&mut r, N - F, D, 1.0);
    let byz = workloads::random_points(&mut r, F, D, 3.0);
    let (inputs, faulty_ids) = workloads::assemble_inputs(&honest, &byz);

    // Baseline: same protocol stack, perfectly reliable network.
    let mut baseline_engine = build_engine(&inputs, &faulty_ids);
    let mut baseline_faults = NetworkFaults::reliable();
    let baseline = baseline_engine.run_chaos(
        &mut RandomScheduler::new(seed.wrapping_mul(31).wrapping_add(7)),
        MAX_STEPS,
        &mut baseline_faults,
        None,
    );
    debug_assert!(baseline.all_decided, "baseline must decide (seed {seed})");

    // Chaos run with the online monitor watching every decision.
    let mut engine = build_engine(&inputs, &faulty_ids);
    let mut faults = shape.faults(drop, seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut monitor = build_monitor(&inputs, &faulty_ids);
    let out = engine.run_chaos(
        &mut RandomScheduler::new(seed.wrapping_mul(31).wrapping_add(7)),
        MAX_STEPS,
        &mut faults,
        Some(&mut monitor),
    );
    ChaosRun {
        decided: out.all_decided,
        steps: out.steps,
        messages: out.trace.messages_sent,
        baseline_messages: baseline.trace.messages_sent,
        violations: monitor.alerts().len(),
        lost: faults.stats.total_lost(),
    }
}

/// One aggregated campaign cell: a fault shape at a drop rate over many
/// seeds.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ChaosRow {
    /// Fault shape label.
    pub shape: &'static str,
    /// Link drop probability.
    pub drop: f64,
    /// Seeded runs executed.
    pub runs: usize,
    /// Runs in which every honest process decided.
    pub decided: usize,
    /// Total monitor alerts across the cell (acceptance bar: 0).
    pub violations: usize,
    /// Mean scheduler steps over decided runs.
    pub mean_steps: f64,
    /// Mean message overhead vs the fault-free baseline (1.0 = parity).
    pub mean_overhead: f64,
    /// Total messages lost to drops and partition cuts across the cell.
    pub lost: u64,
}

/// Drop probabilities of the campaign grid.
pub const DROPS: [f64; 3] = [0.0, 0.1, 0.3];

/// Run the full campaign: every shape × drop cell over `seeds_per_cell`
/// seeds starting at `base_seed`. `5 shapes × 3 drops × seeds` runs total
/// (the acceptance campaign uses `seeds_per_cell = 14` → 210 runs).
#[must_use]
pub fn campaign(seeds_per_cell: usize, base_seed: u64) -> Vec<ChaosRow> {
    let mut rows = Vec::new();
    let mut next_seed = base_seed;
    for shape in FaultShape::ALL {
        for drop in DROPS {
            let mut row = ChaosRow {
                shape: shape.label(),
                drop,
                runs: seeds_per_cell,
                decided: 0,
                violations: 0,
                mean_steps: 0.0,
                mean_overhead: 0.0,
                lost: 0,
            };
            let mut steps_sum = 0.0;
            let mut overhead_sum = 0.0;
            for _ in 0..seeds_per_cell {
                let run = run_one(shape, drop, next_seed);
                next_seed += 1;
                if run.decided {
                    row.decided += 1;
                    steps_sum += run.steps as f64;
                }
                row.violations += run.violations;
                row.lost += run.lost;
                overhead_sum += run.messages as f64 / run.baseline_messages.max(1) as f64;
            }
            if row.decided > 0 {
                row.mean_steps = steps_sum / row.decided as f64;
            }
            row.mean_overhead = overhead_sum / seeds_per_cell as f64;
            rows.push(row);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_loss_cell_decides_cleanly() {
        let run = run_one(FaultShape::Clean, 0.3, 5);
        assert!(run.decided, "retransmission must restore liveness");
        assert_eq!(run.violations, 0, "monitor must stay clean");
        assert!(run.lost > 0, "a 30% drop rate must actually lose messages");
        // Note: chaos runs can send *fewer* messages than the baseline —
        // dropped deliveries never trigger Bracha echo/ready amplification —
        // so overhead is reported, not asserted, here.
        assert!(run.messages > 0 && run.baseline_messages > 0);
    }

    #[test]
    fn partition_then_heal_recovers() {
        let run = run_one(FaultShape::Partition, 0.1, 6);
        assert!(run.decided, "the isolated process must catch up after heal");
        assert_eq!(run.violations, 0);
        assert!(run.lost > 0, "the partition must sever real traffic");
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let a = run_one(FaultShape::Reorder, 0.1, 9);
        let b = run_one(FaultShape::Reorder, 0.1, 9);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.decided, b.decided);
    }
}
