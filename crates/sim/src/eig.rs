//! Exponential Information Gathering (EIG) Byzantine broadcast.
//!
//! The paper's algorithm ALGO (§9) starts with "each process performs a
//! Byzantine broadcast of its input … by using any Byzantine broadcast
//! algorithm, such as [12]; `n ≥ 3f + 1` suffices". EIG is the textbook
//! unauthenticated protocol meeting that contract in a complete network:
//!
//! * `f + 1` lockstep rounds;
//! * each process maintains a tree of *labels* — sequences of distinct
//!   process ids rooted at the sender — where `val(σ·i)` records "process
//!   `i` said that `val(σ)`";
//! * after the last round the root is resolved bottom-up by strict majority
//!   over children, with a fixed default value breaking the no-majority
//!   case.
//!
//! Guarantees for `n > 3f` (validated by the tests and relied on throughout
//! `rbvc-core`): all correct processes decide the *same* value, and if the
//! sender is correct they decide the sender's value.
//!
//! [`ParallelEig`] runs `n` independent instances (one sender each) in the
//! same `f + 1` rounds — exactly Step 1 of ALGO, producing the identical
//! multiset `S` at every correct process.

use std::collections::HashMap;

use crate::config::ProcessId;
use crate::sync::{SyncAdversary, SyncProtocol};

/// One EIG relay item: "(label σ, value)".
pub type EigItem<V> = (Vec<ProcessId>, V);

/// Wire message for a single EIG instance: a batch of relay items.
pub type EigMsg<V> = Vec<EigItem<V>>;

/// A single-sender EIG broadcast instance (pure state machine; the
/// [`SyncProtocol`] adapters below wire it to the engine).
#[derive(Debug, Clone)]
pub struct EigInstance<V> {
    my_id: ProcessId,
    n: usize,
    f: usize,
    sender: ProcessId,
    default: V,
    /// The sender's own input (None on non-sender processes).
    my_value: Option<V>,
    tree: HashMap<Vec<ProcessId>, V>,
}

impl<V: Clone + PartialEq> EigInstance<V> {
    /// Create an instance for `sender`'s broadcast as observed by `my_id`.
    /// `my_value` must be `Some` iff `my_id == sender`.
    #[must_use]
    pub fn new(
        my_id: ProcessId,
        n: usize,
        f: usize,
        sender: ProcessId,
        my_value: Option<V>,
        default: V,
    ) -> Self {
        assert!(n > 3 * f, "EIG requires n > 3f");
        assert_eq!(
            my_value.is_some(),
            my_id == sender,
            "exactly the sender supplies a value"
        );
        EigInstance {
            my_id,
            n,
            f,
            sender,
            default,
            my_value,
            tree: HashMap::new(),
        }
    }

    /// Number of lockstep rounds this instance needs.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.f + 1
    }

    /// Honest messages for `round` (identical batch broadcast to everyone).
    ///
    /// Round 0: the sender emits the root label. Round `r ≥ 1`: relay every
    /// level-`r` label not already containing my id, with my id appended.
    #[must_use]
    pub fn broadcast_batch(&self, round: usize) -> EigMsg<V> {
        if round == 0 {
            return match &self.my_value {
                Some(v) => vec![(vec![self.sender], v.clone())],
                None => Vec::new(),
            };
        }
        let mut batch = Vec::new();
        for (label, value) in &self.tree {
            if label.len() == round && !label.contains(&self.my_id) {
                let mut child = label.clone();
                child.push(self.my_id);
                batch.push((child, value.clone()));
            }
        }
        // Deterministic ordering for reproducible traces.
        batch.sort_by(|a, b| a.0.cmp(&b.0));
        batch
    }

    /// Absorb a batch received in `round` from process `from`, storing only
    /// well-formed items: correct level, ids in range, distinct ids, rooted
    /// at the sender, last id equal to the wire sender, first writer wins.
    pub fn receive_batch(&mut self, round: usize, from: ProcessId, batch: &EigMsg<V>) {
        if from >= self.n {
            return; // no such process: the whole batch is malformed
        }
        for (label, value) in batch {
            if label.len() != round + 1 {
                continue;
            }
            if label[0] != self.sender {
                continue;
            }
            if *label.last().expect("nonempty label") != from {
                continue;
            }
            // Out-of-range ids would be stored, then *relayed* by honest
            // processes in the next round — a Byzantine label-flood vector.
            if label.iter().any(|&id| id >= self.n) {
                continue;
            }
            if !distinct(label) {
                continue;
            }
            self.tree.entry(label.clone()).or_insert_with(|| value.clone());
        }
        // The sender trusts its own input for the root label.
        if round == 0 && self.my_id == self.sender {
            if let Some(v) = &self.my_value {
                self.tree.insert(vec![self.sender], v.clone());
            }
        }
    }

    /// Resolve the tree after `f + 1` rounds; always returns a value
    /// (default when information is missing).
    #[must_use]
    pub fn decide(&self) -> V {
        self.resolve(&[self.sender])
    }

    fn resolve(&self, label: &[ProcessId]) -> V {
        if label.len() == self.f + 1 {
            return self
                .tree
                .get(label)
                .cloned()
                .unwrap_or_else(|| self.default.clone());
        }
        // Strict majority over children σ·j, j ∉ σ.
        let children: Vec<V> = (0..self.n)
            .filter(|j| !label.contains(j))
            .map(|j| {
                let mut child = label.to_vec();
                child.push(j);
                self.resolve(&child)
            })
            .collect();
        let half = children.len() / 2;
        let mut counted: Vec<(&V, usize)> = Vec::new();
        for v in &children {
            match counted.iter_mut().find(|(u, _)| *u == v) {
                Some((_, c)) => *c += 1,
                None => counted.push((v, 1)),
            }
        }
        for (v, c) in counted {
            if c > half {
                return v.clone();
            }
        }
        self.default.clone()
    }
}

fn distinct(label: &[ProcessId]) -> bool {
    for (i, a) in label.iter().enumerate() {
        if label[i + 1..].contains(a) {
            return false;
        }
    }
    true
}

/// `n` parallel EIG instances — every process broadcasts its own input —
/// packaged as a [`SyncProtocol`]. The wire message is one batch per
/// sender-instance.
pub struct ParallelEig<V> {
    instances: Vec<EigInstance<V>>,
    rounds_needed: usize,
    rounds_seen: usize,
    decided: Option<Vec<V>>,
}

/// Wire message of [`ParallelEig`]: `(instance sender id, batch)` pairs.
pub type ParallelEigMsg<V> = Vec<(ProcessId, EigMsg<V>)>;

impl<V: Clone + PartialEq> ParallelEig<V> {
    /// Build the composite protocol for process `my_id` with its `input`.
    #[must_use]
    pub fn new(my_id: ProcessId, n: usize, f: usize, input: V, default: V) -> Self {
        let instances = (0..n)
            .map(|sender| {
                let mine = if sender == my_id {
                    Some(input.clone())
                } else {
                    None
                };
                EigInstance::new(my_id, n, f, sender, mine, default.clone())
            })
            .collect();
        ParallelEig {
            instances,
            rounds_needed: f + 1,
            rounds_seen: 0,
            decided: None,
        }
    }
}

impl<V: Clone + PartialEq> SyncProtocol for ParallelEig<V> {
    type Msg = ParallelEigMsg<V>;
    type Output = Vec<V>;

    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, Self::Msg)> {
        if round >= self.rounds_needed {
            return Vec::new();
        }
        let batch: ParallelEigMsg<V> = self
            .instances
            .iter()
            .map(|inst| (inst.sender, inst.broadcast_batch(round)))
            .collect();
        let n = self.instances.len();
        (0..n).map(|dst| (dst, batch.clone())).collect()
    }

    fn receive(&mut self, round: usize, inbox: &[(ProcessId, Self::Msg)]) {
        if round >= self.rounds_needed {
            return;
        }
        for (from, msg) in inbox {
            for (sender, batch) in msg {
                if *sender < self.instances.len() {
                    self.instances[*sender].receive_batch(round, *from, batch);
                }
            }
        }
        self.rounds_seen = round + 1;
        if self.rounds_seen == self.rounds_needed {
            self.decided = Some(self.instances.iter().map(EigInstance::decide).collect());
        }
    }

    fn output(&self) -> Option<Vec<V>> {
        self.decided.clone()
    }
}

/// Byzantine strategy: participate in all relays faithfully (via an inner
/// honest node) but *equivocate on the round-0 value of its own instance*,
/// sending `per_recipient[j]` to process `j`. This is the strongest
/// single-instance attack against broadcast consistency.
pub struct TwoFacedSender<V: Clone + PartialEq> {
    inner: ParallelEig<V>,
    my_id: ProcessId,
    per_recipient: Vec<V>,
}

impl<V: Clone + PartialEq> TwoFacedSender<V> {
    /// `per_recipient[j]` is the round-0 value shown to process `j`.
    #[must_use]
    pub fn new(my_id: ProcessId, n: usize, f: usize, per_recipient: Vec<V>, default: V) -> Self {
        assert_eq!(per_recipient.len(), n);
        let inner = ParallelEig::new(my_id, n, f, per_recipient[0].clone(), default);
        TwoFacedSender {
            inner,
            my_id,
            per_recipient,
        }
    }
}

impl<V: Clone + PartialEq> SyncAdversary<ParallelEigMsg<V>> for TwoFacedSender<V> {
    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, ParallelEigMsg<V>)> {
        let mut msgs = self.inner.round_messages(round);
        if round == 0 {
            for (dst, msg) in &mut msgs {
                for (sender, batch) in msg.iter_mut() {
                    if *sender == self.my_id {
                        *batch = vec![(vec![self.my_id], self.per_recipient[*dst].clone())];
                    }
                }
            }
        }
        msgs
    }

    fn receive(&mut self, round: usize, inbox: &[(ProcessId, ParallelEigMsg<V>)]) {
        self.inner.receive(round, inbox);
    }
}

/// Byzantine strategy: relay rounds lie — every relayed value is replaced by
/// a fixed corrupt value for odd-indexed recipients (split-brain relays).
pub struct LyingRelay<V: Clone + PartialEq> {
    inner: ParallelEig<V>,
    corrupt: V,
}

impl<V: Clone + PartialEq> LyingRelay<V> {
    /// Wrap an honest node, corrupting relays with `corrupt`.
    #[must_use]
    pub fn new(my_id: ProcessId, n: usize, f: usize, input: V, default: V, corrupt: V) -> Self {
        LyingRelay {
            inner: ParallelEig::new(my_id, n, f, input, default),
            corrupt,
        }
    }
}

impl<V: Clone + PartialEq> SyncAdversary<ParallelEigMsg<V>> for LyingRelay<V> {
    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, ParallelEigMsg<V>)> {
        let mut msgs = self.inner.round_messages(round);
        if round > 0 {
            for (dst, msg) in &mut msgs {
                if *dst % 2 == 1 {
                    for (_, batch) in msg.iter_mut() {
                        for (_, value) in batch.iter_mut() {
                            *value = self.corrupt.clone();
                        }
                    }
                }
            }
        }
        msgs
    }

    fn receive(&mut self, round: usize, inbox: &[(ProcessId, ParallelEigMsg<V>)]) {
        self.inner.receive(round, inbox);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::sync::{RoundEngine, SilentAdversary, SyncNode};

    type Nodes = Vec<SyncNode<ParallelEig<i64>>>;

    fn honest(id: usize, n: usize, f: usize, input: i64) -> SyncNode<ParallelEig<i64>> {
        SyncNode::Honest(ParallelEig::new(id, n, f, input, i64::MIN))
    }

    fn run(config: SystemConfig, nodes: Nodes, f: usize) -> Vec<Option<Vec<i64>>> {
        let mut engine = RoundEngine::new(config, nodes);
        engine.run(f + 2).decisions
    }

    #[test]
    fn all_honest_broadcast_delivers_inputs() {
        let (n, f) = (4, 1);
        let config = SystemConfig::new(n, f);
        let nodes: Nodes = (0..n).map(|i| honest(i, n, f, 10 + i as i64)).collect();
        let decisions = run(config, nodes, f);
        for d in decisions {
            assert_eq!(d.unwrap(), vec![10, 11, 12, 13]);
        }
    }

    #[test]
    fn f_zero_single_round() {
        let (n, f) = (3, 0);
        let config = SystemConfig::new(n, f);
        let nodes: Nodes = (0..n).map(|i| honest(i, n, f, i as i64)).collect();
        let mut engine = RoundEngine::new(config, nodes);
        let out = engine.run(3);
        assert_eq!(out.rounds, 1, "f = 0 EIG completes in one round");
        for d in out.decisions {
            assert_eq!(d.unwrap(), vec![0, 1, 2]);
        }
    }

    #[test]
    fn silent_byzantine_yields_default_consistently() {
        let (n, f) = (4, 1);
        let config = SystemConfig::new(n, f).with_faulty(vec![2]);
        let mut nodes: Nodes = Vec::new();
        for i in 0..n {
            if i == 2 {
                nodes.push(SyncNode::Byzantine(Box::new(SilentAdversary)));
            } else {
                nodes.push(honest(i, n, f, i as i64));
            }
        }
        let decisions = run(config, nodes, f);
        let reference: Vec<i64> = decisions[0].clone().unwrap();
        // Agreement among correct processes, including on the silent slot.
        for (i, d) in decisions.iter().enumerate() {
            if i != 2 {
                assert_eq!(d.as_ref().unwrap(), &reference, "process {i} disagrees");
            }
        }
        // Validity for correct senders.
        assert_eq!(reference[0], 0);
        assert_eq!(reference[1], 1);
        assert_eq!(reference[3], 3);
        // The faulty slot resolves to the default.
        assert_eq!(reference[2], i64::MIN);
    }

    #[test]
    fn two_faced_sender_cannot_split_correct_processes() {
        let (n, f) = (4, 1);
        let config = SystemConfig::new(n, f).with_faulty(vec![3]);
        let mut nodes: Nodes = (0..3).map(|i| honest(i, n, f, i as i64)).collect();
        nodes.push(SyncNode::Byzantine(Box::new(TwoFacedSender::new(
            3,
            n,
            f,
            vec![100, 200, 300, 400],
            i64::MIN,
        ))));
        let decisions = run(config, nodes, f);
        let reference = decisions[0].clone().unwrap();
        for (i, d) in decisions.iter().enumerate().take(3).skip(1) {
            assert_eq!(
                d.as_ref().unwrap(),
                &reference,
                "EIG agreement violated by equivocating sender (process {i})"
            );
        }
        // Correct senders' values undamaged.
        assert_eq!(reference[..3], [0, 1, 2]);
    }

    #[test]
    fn lying_relay_cannot_corrupt_correct_senders() {
        let (n, f) = (5, 1);
        let config = SystemConfig::new(n, f).with_faulty(vec![4]);
        let mut nodes: Nodes = (0..4).map(|i| honest(i, n, f, 7 * i as i64)).collect();
        nodes.push(SyncNode::Byzantine(Box::new(LyingRelay::new(
            4,
            n,
            f,
            999,
            i64::MIN,
            -12345,
        ))));
        let decisions = run(config, nodes, f);
        let reference = decisions[0].clone().unwrap();
        for d in decisions.iter().take(4).skip(1) {
            assert_eq!(d.as_ref().unwrap(), &reference);
        }
        // Validity: honest senders 0..3 deliver their true inputs despite
        // the lying relays of process 4.
        assert_eq!(reference[..4], [0, 7, 14, 21]);
    }

    #[test]
    fn two_faults_with_seven_processes() {
        let (n, f) = (7, 2);
        let config = SystemConfig::new(n, f).with_faulty(vec![1, 5]);
        let mut nodes: Nodes = Vec::new();
        for i in 0..n {
            match i {
                1 => nodes.push(SyncNode::Byzantine(Box::new(TwoFacedSender::new(
                    1,
                    n,
                    f,
                    (0..n as i64).map(|j| 1000 + j).collect(),
                    i64::MIN,
                )))),
                5 => nodes.push(SyncNode::Byzantine(Box::new(LyingRelay::new(
                    5, n, f, 555, i64::MIN, -777,
                )))),
                _ => nodes.push(honest(i, n, f, i as i64)),
            }
        }
        let decisions = run(config, nodes, f);
        let correct: Vec<usize> = vec![0, 2, 3, 4, 6];
        let reference = decisions[correct[0]].clone().unwrap();
        for &i in &correct[1..] {
            assert_eq!(
                decisions[i].as_ref().unwrap(),
                &reference,
                "agreement violated at process {i} with two colluding faults"
            );
        }
        for &i in &correct {
            assert_eq!(reference[i], i as i64, "validity violated for sender {i}");
        }
    }

    #[test]
    fn vector_values_broadcast_exactly() {
        // The consensus layer broadcasts Vec<f64> inputs; exercise that here.
        let (n, f) = (4, 1);
        let config = SystemConfig::new(n, f);
        let nodes: Vec<SyncNode<ParallelEig<Vec<u64>>>> = (0..n)
            .map(|i| {
                SyncNode::Honest(ParallelEig::new(
                    i,
                    n,
                    f,
                    vec![i as u64, 2 * i as u64],
                    Vec::new(),
                ))
            })
            .collect();
        let mut engine = RoundEngine::new(config, nodes);
        let out = engine.run(f + 2);
        for d in out.decisions {
            let s = d.unwrap();
            assert_eq!(s[2], vec![2, 4]);
        }
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn rejects_insufficient_processes() {
        let _ = EigInstance::<i64>::new(0, 3, 1, 0, Some(1), 0);
    }

    #[test]
    fn malformed_labels_are_ignored() {
        let mut inst = EigInstance::<i64>::new(0, 4, 1, 2, None, -1);
        // Wrong level for round 0 (length 2).
        inst.receive_batch(0, 2, &vec![(vec![2, 3], 9)]);
        // Wrong root.
        inst.receive_batch(0, 2, &vec![(vec![1], 9)]);
        // Last id does not match the wire sender.
        inst.receive_batch(0, 3, &vec![(vec![2], 9)]);
        assert!(inst.tree.is_empty());
        // Correct item accepted.
        inst.receive_batch(0, 2, &vec![(vec![2], 9)]);
        assert_eq!(inst.tree.get(&vec![2]), Some(&9));
        // Duplicate labels keep the first value.
        inst.receive_batch(0, 2, &vec![(vec![2], 42)]);
        assert_eq!(inst.tree.get(&vec![2]), Some(&9));
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let mut inst = EigInstance::<i64>::new(0, 4, 1, 2, None, -1);
        // Wire sender out of range: whole batch dropped.
        inst.receive_batch(0, 99, &vec![(vec![2], 9)]);
        assert!(inst.tree.is_empty());
        // Label with a middle id >= n: would be stored and relayed.
        inst.receive_batch(1, 3, &vec![(vec![2, 3], 9), (vec![2, 3], 9)]);
        let mut inst2 = EigInstance::<i64>::new(0, 4, 1, 2, None, -1);
        inst2.receive_batch(1, 3, &vec![(vec![2, 3], 9)]);
        assert_eq!(inst.tree, inst2.tree, "well-formed parts still land");
        let mut inst3 = EigInstance::<i64>::new(0, 4, 1, 2, None, -1);
        inst3.receive_batch(2, 3, &vec![(vec![2, 77, 3], 9)]);
        assert!(inst3.tree.is_empty(), "ghost id 77 must not enter the tree");
    }
}
