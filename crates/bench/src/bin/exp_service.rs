//! E17 — consensus-service load generator: a loopback TCP mesh running
//! hundreds of concurrent SyncBvc / Verified-Averaging instances through
//! `rbvc-transport`, with online per-instance safety monitoring.
//!
//! Usage: `exp_service [--smoke] [--trace FILE] [--attrib] [--window N]
//! [--metrics ADDR] [--metrics-wait-scrapes N] [instances] [seed]`
//!
//! The default profile is a 7-node mesh (SyncBvc at `f = 2`) under 210
//! concurrent instances; `--smoke` shrinks to a 4-node, 12-instance mesh
//! for CI. Both modes first prove cross-transport identity (TCP decisions
//! == in-process decisions on the same seed), then run the TCP load
//! profile, print the table, and write `BENCH_service.json`. Exits nonzero
//! on any safety violation, undecided instance, transport/service error,
//! or identity mismatch.
//!
//! `--trace FILE` records the load run as a JSONL trace through
//! `rbvc-obs`: every structured protocol event, followed by a dump of the
//! metrics registry and the hot-kernel timing cells. Feed the file to
//! `exp_obs` for the per-run report, or `exp_trace` for the critical-path
//! attribution; `--attrib` runs the attribution inline, prints its table,
//! and embeds the result in `BENCH_service.json`. Tracing observes the run
//! without changing decisions (same seed, same values).
//!
//! `--metrics ADDR` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) serves
//! the live metrics registry in Prometheus text format for the whole run;
//! a background self-scrape validates the page mid-run and the run fails
//! if it never sees a valid dump. `--metrics-wait-scrapes N` keeps the
//! endpoint up after the run until it has answered `N` requests (so CI can
//! curl a short smoke run without racing its exit).

use std::sync::Arc;

use rbvc_bench::experiments::service::{
    cross_transport_identity, run_service_with_obs, ServiceConfig, ServiceOutcome, TransportKind,
};
use rbvc_bench::report::{fnum, print_table, with_envelope};
use rbvc_obs::{
    assemble, kernel_snapshot, render_attribution, reset_kernel_timers, scrape_once,
    set_kernel_timing, JsonlRecorder, MetricsServer, Obs, Recorder, Registry, TraceSummary,
};
use serde_json::json;

fn row(out: &ServiceOutcome) -> Vec<String> {
    vec![
        out.transport.to_string(),
        format!("{}", out.n),
        format!(
            "{}/{} ({} bvc + {} va)",
            out.decided,
            out.instances,
            out.bvc_instances,
            out.instances - out.bvc_instances
        ),
        fnum(out.decided_per_sec),
        fnum(out.p50_ms),
        fnum(out.p99_ms),
        format!("{}", out.bytes_sent),
        out.monitor_violations.to_string(),
        out.errors.to_string(),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let window_override: Option<usize> = args
        .iter()
        .position(|a| a == "--window")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());
    let attrib = args.iter().any(|a| a == "--attrib");
    let metrics_addr = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let wait_scrapes: Option<u64> = args
        .iter()
        .position(|a| a == "--metrics-wait-scrapes")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());
    let mut skip_next = false;
    let positional: Vec<&String> = args
        .iter()
        .skip(1)
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--trace" || *a == "--window" || *a == "--metrics"
                || *a == "--metrics-wait-scrapes"
            {
                skip_next = true;
                return false;
            }
            *a != "--smoke" && *a != "--attrib"
        })
        .collect();
    if attrib && trace_path.is_none() {
        eprintln!("FAIL: --attrib requires --trace FILE (the trace is its input)");
        std::process::exit(2);
    }
    let instances: usize = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(if smoke { 12 } else { 210 });
    let seed: u64 = positional.get(1).and_then(|a| a.parse().ok()).unwrap_or(2016);
    let mut cfg = if smoke {
        let mut c = ServiceConfig::smoke(seed);
        c.instances = instances;
        c
    } else {
        ServiceConfig::load(instances, seed)
    };
    if let Some(w) = window_override {
        cfg.window = w;
    }
    println!(
        "E17 — service load generator: {}-node loopback TCP mesh, {} concurrent \
         instances (every 3rd SyncBvc at f = {}, rest Verified Averaging at \
         f = 0), online per-instance safety monitor (ε-agreement + box \
         validity), seed {seed}{}",
        cfg.n,
        cfg.instances,
        cfg.f_bvc,
        if smoke { " (smoke)" } else { "" }
    );

    // Identity gate: the transport must not influence decisions. Runs at a
    // small scale so the check stays cheap even in the full profile.
    let mut id_cfg = ServiceConfig::smoke(seed ^ 0x5eed);
    id_cfg.instances = 6;
    let (identical, id_tcp, id_inproc) = cross_transport_identity(&id_cfg);
    println!(
        "identity check (n = {}, {} instances): tcp {} in-process",
        id_cfg.n,
        id_cfg.instances,
        if identical { "==" } else { "!=" }
    );

    // The load profile itself, over real sockets — traced when asked.
    // The registry and kernel timers are reset first so the dump reflects
    // this run alone, not the identity check above.
    let recorder = trace_path.as_ref().map(|p| {
        Arc::new(JsonlRecorder::create(p).expect("create trace file"))
    });
    let obs = recorder.as_ref().map(|r| {
        Registry::global().reset();
        reset_kernel_timers();
        set_kernel_timing(true);
        Obs::new(Arc::clone(r) as Arc<dyn Recorder>)
    });
    // Live exposition: bind before the run so the whole run is scrapeable,
    // and self-scrape from a background thread to prove the page is served
    // *while* the mesh is hot (CI additionally curls it from outside).
    let server = metrics_addr.as_ref().map(|addr| {
        let s = MetricsServer::serve(addr.as_str(), Registry::global().clone())
            .expect("bind metrics endpoint");
        println!("serving /metrics on http://{}", s.addr());
        s
    });
    let scrape_ok = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scrape_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = server.as_ref().map(|s| {
        use std::sync::atomic::Ordering;
        let addr = s.addr();
        let ok = Arc::clone(&scrape_ok);
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if let Ok(body) = scrape_once(addr) {
                    if body.contains("# TYPE") {
                        ok.store(true, Ordering::SeqCst);
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        })
    });
    let out = run_service_with_obs(&cfg, TransportKind::Tcp, obs);
    scrape_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(h) = scraper {
        let _ = h.join();
    }
    if let Some(rec) = &recorder {
        for line in Registry::global().to_jsonl_lines() {
            rec.write_raw(&line);
        }
        for k in kernel_snapshot() {
            rec.write_raw(&k.to_json_line());
        }
        rec.flush();
        println!("wrote trace to {}", trace_path.as_deref().unwrap_or("?"));
    }
    // Critical-path attribution: read the trace back and reconstruct every
    // decided instance's submit→decide chain (see `rbvc_obs::trace`).
    let attribution = if attrib {
        let path = trace_path.as_deref().expect("checked at parse time");
        let text = std::fs::read_to_string(path).expect("read trace back");
        let summary = TraceSummary::parse(&text).expect("parse trace");
        let a = assemble(&summary);
        println!("{}", render_attribution(&a));
        Some(a)
    } else {
        None
    };
    print_table(
        "E17 (service load generator)",
        &[
            "transport",
            "n",
            "decided",
            "decided/s",
            "p50 ms",
            "p99 ms",
            "bytes sent",
            "violations",
            "errors",
        ],
        &[row(&id_tcp), row(&id_inproc), row(&out)],
    );

    // The sent/received byte counters rarely agree exactly: each node
    // snapshots its own counters *before* the end-of-run barrier, so
    // frames a peer has written but this node has not yet read off the
    // socket (plus batches still in kernel buffers) are counted as sent
    // but not yet as received. That gap is traffic in flight at shutdown,
    // not loss — the trace assembler confirms it by finding the same
    // frames as trailing unread sends (`in_flight_tx`).
    let bytes_in_flight = out.bytes_sent.saturating_sub(out.bytes_received);
    println!(
        "bytes on wire: {} sent, {} received, {} in flight at the shutdown snapshot",
        out.bytes_sent, out.bytes_received, bytes_in_flight
    );

    let doc = json!({
        "transport": "tcp-loopback",
        "seed": seed,
        "smoke": smoke,
        "n": out.n,
        "f_bvc": cfg.f_bvc,
        "dimension": cfg.d,
        "va_rounds": cfg.va_rounds,
        "window": cfg.window,
        "instances": out.instances,
        "bvc_instances": out.bvc_instances,
        "va_instances": out.instances - out.bvc_instances,
        "decided": out.decided,
        "wall_secs": out.wall_secs,
        "decided_per_sec": out.decided_per_sec,
        "latency_ms": json!({ "p50": out.p50_ms, "p99": out.p99_ms, "max": out.max_ms }),
        "bytes_on_wire": json!({
            "sent": out.bytes_sent,
            "received": out.bytes_received,
            "in_flight_at_shutdown": bytes_in_flight,
        }),
        "monitor_violations": out.monitor_violations,
        "service_errors": out.errors,
        "cross_transport_identical": identical,
        "attribution": attribution.as_ref().map(rbvc_obs::Attribution::to_json),
        "metrics_endpoint": server.as_ref().map(|s| json!({
            "addr": s.addr().to_string(),
            "mid_run_scrape_ok": scrape_ok.load(std::sync::atomic::Ordering::SeqCst),
        })),
    });
    let doc = with_envelope("E17", "service load generator", doc);
    let rendered = serde_json::to_string_pretty(&doc).expect("valid JSON");
    std::fs::write("BENCH_service.json", &rendered).expect("write BENCH_service.json");
    println!("wrote BENCH_service.json");

    let mut failed = false;
    if !identical {
        eprintln!("FAIL: TCP and in-process decisions diverged on one seed");
        failed = true;
    }
    if out.monitor_violations > 0 {
        eprintln!("FAIL: the online safety monitor fired {} time(s)", out.monitor_violations);
        failed = true;
    }
    if out.decided < out.instances {
        eprintln!(
            "FAIL: only {}/{} instances fully decided within the poll budget",
            out.decided, out.instances
        );
        failed = true;
    }
    if out.errors > 0 {
        eprintln!("FAIL: {} transport/service error(s) on a clean loopback mesh", out.errors);
        failed = true;
    }
    if metrics_addr.is_some() && !scrape_ok.load(std::sync::atomic::Ordering::SeqCst) {
        eprintln!("FAIL: the metrics endpoint never served a valid Prometheus dump mid-run");
        failed = true;
    }
    if let Some(a) = &attribution {
        if a.unpaired_rx != 0 || a.unpaired_tx_mid != 0 {
            eprintln!(
                "FAIL: span pairing broken — {} unpaired rx, {} mid-stream tx gaps",
                a.unpaired_rx, a.unpaired_tx_mid
            );
            failed = true;
        }
        if a.incomplete_chains != 0 {
            eprintln!("FAIL: {} critical-path chains incomplete", a.incomplete_chains);
            failed = true;
        }
    }
    // Hold the endpoint open until external scrapers (the CI curl) have
    // been answered `n` *further* times — the self-scrape's own count is
    // excluded — bounded so a missing scraper cannot hang the run.
    if let (Some(s), Some(n)) = (&server, wait_scrapes) {
        let baseline = s.scrapes();
        let t0 = std::time::Instant::now();
        println!("waiting for {n} external scrape(s) on http://{} (20s budget)", s.addr());
        while s.scrapes() < baseline + n && t0.elapsed() < std::time::Duration::from_secs(20) {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
    if failed {
        std::process::exit(1);
    }
}
