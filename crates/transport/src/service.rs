//! Multi-instance consensus service: many concurrent SyncBvc /
//! VerifiedAveraging instances multiplexed over one transport mesh.
//!
//! One [`ConsensusService`] per process owns one [`Transport`] endpoint and
//! any number of consensus instances, each identified by a service-wide
//! [`InstanceId`]. Outbound protocol messages are encoded into
//! [`crate::wire`] frames tagged with their instance id and queued on the
//! transport; [`ConsensusService::poll`] drains the socket, decodes,
//! demultiplexes by instance id, dispatches, and flushes everything the
//! dispatch produced as one batch per peer.
//!
//! ## Receive-boundary policy (degrade, don't panic)
//!
//! Every inbound frame passes four gates before touching protocol state,
//! each recording a [`ProtocolError`] and discarding the frame on failure:
//!
//! 1. **decode** — malformed bytes die in [`crate::wire::decode_frame`];
//! 2. **sender authentication** — the frame's claimed sender must equal the
//!    transport-authenticated link peer (no spoofing across links);
//! 3. **instance lookup** — frames for unknown instance ids are dropped
//!    (instances are registered before `start`);
//! 4. **kind check** — the payload variant must match the instance's
//!    protocol.
//!
//! Whatever survives is handed to state machines that run their own
//! receive-boundary validation on top.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rbvc_core::verified_avg::VerifiedAveraging;
use rbvc_core::SyncBvc;
use rbvc_linalg::VecD;
use rbvc_obs::{Event, EventKind, Obs, Registry};
use rbvc_sim::asynch::AsyncProtocol;
use rbvc_sim::config::ProcessId;
use rbvc_sim::error::{ErrorLog, ProtocolError};
pub use rbvc_sim::monitor::InstanceId;

use crate::lockstep::{Lockstep, RoundBatch};
use crate::transport::Transport;
use crate::wire::{decode_frame, encode_frame, Frame, Payload};

/// One consensus instance as the service runs it.
pub enum InstanceProto {
    /// A synchronous broadcast-then-decide instance under the lockstep
    /// synchronizer.
    Bvc(Lockstep<SyncBvc>),
    /// An asynchronous Verified-Averaging instance.
    Va(VerifiedAveraging),
}

/// A decision surfaced by [`ConsensusService::poll`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionEvent {
    /// Which instance decided.
    pub instance: InstanceId,
    /// The local process that decided (always this service's id).
    pub process: ProcessId,
    /// The decided vector.
    pub value: VecD,
    /// Submit→decide time: from this instance's [`ConsensusService::launch`]
    /// (or [`ConsensusService::start`]) to the poll that surfaced the
    /// decision, on the local monotonic clock.
    pub latency: Duration,
}

struct Slot {
    proto: InstanceProto,
    decided: bool,
    /// Whether this instance's `on_start` sends have gone out. Un-launched
    /// instances still receive and buffer frames (so a peer may start first)
    /// but are not ticked and cannot surface a decision.
    launched: bool,
    /// Monotonic launch timestamp; the submit side of the latency metric.
    submitted_at: Option<Instant>,
}

/// Names of the four receive gates, indexed as [`ConsensusService::gate_rejections`].
pub const GATE_NAMES: [&str; 4] = ["decode", "auth", "instance", "kind"];

/// The per-process service multiplexing consensus instances over one
/// transport endpoint.
pub struct ConsensusService<T: Transport> {
    transport: T,
    instances: BTreeMap<InstanceId, Slot>,
    undecided: usize,
    errors: ErrorLog,
    started: bool,
    /// Per-gate rejection counts, indexed as [`GATE_NAMES`].
    gate_rejections: [u64; 4],
    /// Structured-event sink (no-op by default), node tag baked in.
    obs: Obs,
}

impl<T: Transport> ConsensusService<T> {
    /// Wrap a transport endpoint into an (initially empty) service.
    #[must_use]
    pub fn new(transport: T) -> Self {
        let node = u32::try_from(transport.local_id()).unwrap_or(u32::MAX);
        ConsensusService {
            transport,
            instances: BTreeMap::new(),
            undecided: 0,
            errors: ErrorLog::new(),
            started: false,
            gate_rejections: [0; 4],
            obs: Obs::noop().with_node(node),
        }
    }

    /// Attach a structured-event sink; the service emits
    /// [`EventKind::GateReject`] at each of the four receive gates and
    /// [`EventKind::Decide`] (with a `latency_us=` detail) per decided
    /// instance, and propagates the sink to every registered instance —
    /// lockstep round events and Verified-Averaging protocol events flow
    /// through it tagged with their instance id. Attach *before*
    /// registering instances so all of them are covered.
    pub fn set_obs(&mut self, obs: Obs) {
        let node = u32::try_from(self.transport.local_id()).unwrap_or(u32::MAX);
        self.obs = obs.with_node(node);
        let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
        for id in ids {
            self.attach_instance_obs(id);
        }
    }

    fn attach_instance_obs(&mut self, id: InstanceId) {
        let obs = self.obs.clone();
        if let Some(slot) = self.instances.get_mut(&id) {
            match &mut slot.proto {
                InstanceProto::Bvc(p) => p.set_obs(obs, Some(id)),
                InstanceProto::Va(p) => p.set_obs(obs, Some(id)),
            }
        }
    }

    /// Per-gate rejection counts (decode, sender auth, instance lookup,
    /// payload kind), in [`GATE_NAMES`] order.
    #[must_use]
    pub fn gate_rejections(&self) -> [u64; 4] {
        self.gate_rejections
    }

    /// Record one rejection at gate `gate` (index into [`GATE_NAMES`]) and
    /// trace it.
    fn gate_reject(&mut self, gate: usize, from: ProcessId, err: ProtocolError) {
        self.gate_rejections[gate] += 1;
        self.obs.emit(|| {
            Event::new(EventKind::GateReject).detail(format!("gate={} from={from}", GATE_NAMES[gate]))
        });
        self.errors.record(err);
    }

    /// Register one instance under `id`.
    ///
    /// # Errors
    /// [`ProtocolError::InvalidSpec`] if `id` is already taken or the
    /// service already started.
    pub fn add_instance(&mut self, id: InstanceId, proto: InstanceProto) -> Result<(), ProtocolError> {
        if self.started {
            return Err(ProtocolError::InvalidSpec {
                reason: "instances must be registered before start()".into(),
            });
        }
        if self.instances.contains_key(&id) {
            return Err(ProtocolError::InvalidSpec {
                reason: format!("duplicate instance id {id}"),
            });
        }
        self.instances.insert(
            id,
            Slot {
                proto,
                decided: false,
                launched: false,
                submitted_at: None,
            },
        );
        self.undecided += 1;
        self.attach_instance_obs(id);
        Ok(())
    }

    /// Kick off every registered instance (their `on_start` sends), flushed
    /// as one batch per peer.
    ///
    /// # Errors
    /// Propagates transport-level send/flush failures (also recorded).
    pub fn start(&mut self) -> Result<(), ProtocolError> {
        self.started = true;
        let mut first_err = None;
        let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
        for id in ids {
            if let Err(e) = self.launch_inner(id, false) {
                first_err.get_or_insert(e);
            }
        }
        if let Err(e) = self.transport.flush() {
            first_err.get_or_insert(e);
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Open the service for traffic *without* launching any instance:
    /// registered instances buffer inbound frames (a peer may legitimately
    /// start first) but send nothing and cannot decide until
    /// [`ConsensusService::launch`] releases them individually. This is the
    /// closed-loop submission mode: keeping a bounded window of launched
    /// instances in flight yields meaningful per-instance submit→decide
    /// latencies instead of every instance marching in lockstep.
    pub fn start_deferred(&mut self) {
        self.started = true;
    }

    /// Launch one registered instance: queue its `on_start` sends and stamp
    /// its submission time. The sends ride the next flush — the upcoming
    /// [`ConsensusService::poll`] in the steady state, or an explicit
    /// [`ConsensusService::flush`] — so a burst of launches batches into
    /// one write per peer instead of one per launch.
    ///
    /// # Errors
    /// [`ProtocolError::InvalidSpec`] if the service has not started, `id`
    /// is unknown, or the instance already launched; transport errors are
    /// propagated (and recorded) like in [`ConsensusService::start`].
    pub fn launch(&mut self, id: InstanceId) -> Result<(), ProtocolError> {
        if !self.started {
            return Err(ProtocolError::InvalidSpec {
                reason: "launch() requires start() or start_deferred() first".into(),
            });
        }
        self.launch_inner(id, true)
    }

    /// Push everything queued on the transport out now (a poll does this
    /// anyway; use after a launch burst outside the poll loop).
    ///
    /// # Errors
    /// Propagates transport-level flush failures.
    pub fn flush(&mut self) -> Result<(), ProtocolError> {
        self.transport.flush()
    }

    /// Shared launch path; `check` enforces the single-launch contract (the
    /// bulk `start()` path iterates fresh ids and skips the check).
    fn launch_inner(&mut self, id: InstanceId, check: bool) -> Result<(), ProtocolError> {
        let local = self.transport.local_id();
        let Some(slot) = self.instances.get_mut(&id) else {
            return Err(ProtocolError::InvalidSpec {
                reason: format!("launch of unknown instance {id}"),
            });
        };
        if check && slot.launched {
            return Err(ProtocolError::InvalidSpec {
                reason: format!("instance {id} already launched"),
            });
        }
        slot.launched = true;
        slot.submitted_at = Some(Instant::now());
        let sends = match &mut slot.proto {
            InstanceProto::Bvc(p) => Self::encode_bvc(id, local, p.on_start()),
            InstanceProto::Va(p) => Self::encode_va(id, local, p.on_start()),
        };
        self.route(sends)
    }

    fn encode_bvc(
        instance: InstanceId,
        sender: ProcessId,
        sends: Vec<(ProcessId, RoundBatch<<SyncBvc as rbvc_sim::sync::SyncProtocol>::Msg>)>,
    ) -> Vec<(ProcessId, Vec<u8>)> {
        sends
            .into_iter()
            .map(|(dst, batch)| {
                let frame = Frame {
                    instance,
                    sender,
                    round: u32::try_from(batch.round).expect("round fits u32"),
                    payload: Payload::Eig(batch.msgs),
                };
                (dst, encode_frame(&frame))
            })
            .collect()
    }

    fn encode_va(
        instance: InstanceId,
        sender: ProcessId,
        sends: Vec<(ProcessId, <VerifiedAveraging as AsyncProtocol>::Msg)>,
    ) -> Vec<(ProcessId, Vec<u8>)> {
        sends
            .into_iter()
            .map(|(dst, msg)| {
                let frame = Frame {
                    instance,
                    sender,
                    round: u32::try_from(msg.0 .1).expect("round fits u32"),
                    payload: Payload::Va(msg),
                };
                (dst, encode_frame(&frame))
            })
            .collect()
    }

    /// Queue encoded frames on the transport; failures are recorded and the
    /// remaining frames still go out.
    fn route(&mut self, frames: Vec<(ProcessId, Vec<u8>)>) -> Result<(), ProtocolError> {
        let mut first_err = None;
        for (dst, bytes) in frames {
            if let Err(e) = self.transport.send(dst, bytes) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Dispatch one authenticated, decoded frame to its instance. Returns
    /// the outbound frames it produced.
    fn dispatch(&mut self, frame: Frame) -> Vec<(ProcessId, Vec<u8>)> {
        let local = self.transport.local_id();
        if !self.instances.contains_key(&frame.instance) {
            self.gate_reject(
                2,
                frame.sender,
                ProtocolError::MalformedPayload {
                    from: frame.sender,
                    reason: format!("frame for unknown instance {}", frame.instance),
                },
            );
            return Vec::new();
        }
        let slot = self.instances.get_mut(&frame.instance).expect("checked above");
        let sender = frame.sender;
        let instance = frame.instance;
        let sends = match (&mut slot.proto, frame.payload) {
            (InstanceProto::Bvc(p), Payload::Eig(msgs)) => Some(Self::encode_bvc(
                instance,
                local,
                p.on_message(sender, RoundBatch { round: frame.round as usize, msgs }),
            )),
            (InstanceProto::Va(p), Payload::Va(msg)) => {
                Some(Self::encode_va(instance, local, p.on_message(sender, msg)))
            }
            (_, _) => None,
        };
        match sends {
            Some(sends) => sends,
            None => {
                self.gate_reject(
                    3,
                    sender,
                    ProtocolError::MalformedPayload {
                        from: sender,
                        reason: format!(
                            "payload kind does not match the protocol of instance {instance}"
                        ),
                    },
                );
                Vec::new()
            }
        }
    }

    /// One service step: receive (waiting up to `timeout` for the first
    /// frame), decode, authenticate, demultiplex, dispatch, tick, and flush
    /// everything produced as one batch per peer. Returns the decisions
    /// newly reached during this poll.
    pub fn poll(&mut self, timeout: Duration) -> Vec<DecisionEvent> {
        let inbound = self.transport.recv_timeout(timeout);
        let mut outbound: Vec<(ProcessId, Vec<u8>)> = Vec::new();
        for (link_peer, bytes) in inbound {
            let frame = match decode_frame(&bytes, link_peer) {
                Ok(f) => f,
                Err(e) => {
                    self.gate_reject(0, link_peer, e);
                    continue;
                }
            };
            if frame.sender != link_peer {
                self.gate_reject(
                    1,
                    link_peer,
                    ProtocolError::MalformedPayload {
                        from: link_peer,
                        reason: format!(
                            "spoofed sender: header claims {} on the link from {}",
                            frame.sender, link_peer
                        ),
                    },
                );
                continue;
            }
            outbound.extend(self.dispatch(frame));
        }
        // Drive timers (lockstep round timeouts) once per poll.
        let local = self.transport.local_id();
        let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
        for id in ids {
            let slot = self.instances.get_mut(&id).expect("registered");
            if slot.decided || !slot.launched {
                continue;
            }
            let sends = match &mut slot.proto {
                InstanceProto::Bvc(p) => Self::encode_bvc(id, local, p.on_tick()),
                InstanceProto::Va(p) => Self::encode_va(id, local, p.on_tick()),
            };
            outbound.extend(sends);
        }
        if self.route(outbound).is_err() || self.transport.flush().is_err() {
            // Already recorded by the transport; the poll loop continues on
            // the surviving links.
        }
        self.collect_decisions()
    }

    /// Surface newly decided instances as events (each instance at most
    /// once). Un-launched instances are skipped even if their state machine
    /// already holds an output — the latency clock starts at launch, so a
    /// decision is only *surfaced* once the instance was submitted.
    fn collect_decisions(&mut self) -> Vec<DecisionEvent> {
        let local = self.transport.local_id();
        let mut events = Vec::new();
        for (id, slot) in &mut self.instances {
            if slot.decided || !slot.launched {
                continue;
            }
            let value = match &slot.proto {
                InstanceProto::Bvc(p) => p.output(),
                InstanceProto::Va(p) => p.output(),
            };
            if let Some(value) = value {
                slot.decided = true;
                self.undecided -= 1;
                let latency = slot.submitted_at.map(|t| t.elapsed()).unwrap_or_default();
                let latency_us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
                Registry::global()
                    .histogram("service.decide.latency_us")
                    .record(latency_us);
                let instance = *id;
                self.obs.emit(|| {
                    Event::new(EventKind::Decide)
                        .instance(instance)
                        .detail(format!("latency_us={latency_us}"))
                });
                events.push(DecisionEvent { instance, process: local, value, latency });
            }
        }
        events
    }

    /// Poll until every instance decided or `max_polls` elapse; returns all
    /// decision events in arrival order.
    pub fn run_until_decided(
        &mut self,
        poll_timeout: Duration,
        max_polls: usize,
    ) -> Vec<DecisionEvent> {
        let mut events = Vec::new();
        for _ in 0..max_polls {
            if self.undecided == 0 {
                break;
            }
            events.extend(self.poll(poll_timeout));
        }
        events
    }

    /// True iff every registered instance has decided.
    #[must_use]
    pub fn all_decided(&self) -> bool {
        self.undecided == 0
    }

    /// Decision of one instance, if reached.
    #[must_use]
    pub fn decision(&self, id: InstanceId) -> Option<VecD> {
        match &self.instances.get(&id)?.proto {
            InstanceProto::Bvc(p) => p.output(),
            InstanceProto::Va(p) => p.output(),
        }
    }

    /// Service-level degradation events (decode failures, spoofed senders,
    /// unknown instances, kind mismatches).
    #[must_use]
    pub fn errors(&self) -> &ErrorLog {
        &self.errors
    }

    /// The transport endpoint (byte counters, transport error log).
    #[must_use]
    pub fn transport(&self) -> &T {
        &self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::in_proc_mesh;
    use rbvc_core::verified_avg::DeltaMode;
    use rbvc_core::DecisionRule;
    use rbvc_linalg::Tol;

    fn bvc_instance(id: ProcessId, n: usize, f: usize, input: &[f64]) -> InstanceProto {
        let d = input.len();
        InstanceProto::Bvc(Lockstep::new(
            SyncBvc::new(
                id,
                n,
                f,
                d,
                VecD::from_slice(input),
                DecisionRule::MinDeltaPoint(rbvc_linalg::Norm::L2),
                Tol::default(),
            ),
            n,
            f + 1,
        ))
    }

    fn va_instance(id: ProcessId, n: usize, input: &[f64]) -> InstanceProto {
        InstanceProto::Va(VerifiedAveraging::new(
            id,
            n,
            0,
            VecD::from_slice(input),
            DeltaMode::MinDelta(rbvc_linalg::Norm::L2),
            8,
            Tol::default(),
        ))
    }

    /// Two instances (one of each protocol) over a 4-endpoint in-process
    /// mesh, all driven from one thread by round-robin polling.
    #[test]
    fn multiplexes_bvc_and_va_over_one_mesh() {
        let n = 4;
        let inputs = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]];
        let mut services: Vec<ConsensusService<_>> = in_proc_mesh(n)
            .into_iter()
            .map(ConsensusService::new)
            .collect();
        for (i, svc) in services.iter_mut().enumerate() {
            svc.add_instance(10, bvc_instance(i, n, 1, &inputs[i])).unwrap();
            svc.add_instance(20, va_instance(i, n, &inputs[i])).unwrap();
            svc.start().unwrap();
        }
        let mut spins = 0;
        while services.iter().any(|s| !s.all_decided()) {
            for svc in &mut services {
                let _ = svc.poll(Duration::from_millis(1));
            }
            spins += 1;
            assert!(spins < 10_000, "service mesh failed to converge");
        }
        // Every process decided both instances identically across the mesh.
        for inst in [10u64, 20] {
            let v0 = services[0].decision(inst).expect("decided");
            for svc in &services[1..] {
                assert_eq!(svc.decision(inst), Some(v0.clone()), "instance {inst}");
            }
        }
        for svc in &services {
            assert!(svc.errors().is_empty());
        }
    }

    #[test]
    fn duplicate_instance_ids_and_late_registration_are_rejected() {
        let mut svc = ConsensusService::new(in_proc_mesh(1).pop().unwrap());
        svc.add_instance(1, va_instance(0, 1, &[0.0])).unwrap();
        assert!(matches!(
            svc.add_instance(1, va_instance(0, 1, &[0.0])),
            Err(ProtocolError::InvalidSpec { .. })
        ));
        svc.start().unwrap();
        assert!(matches!(
            svc.add_instance(2, va_instance(0, 1, &[0.0])),
            Err(ProtocolError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn byzantine_frames_are_rejected_at_every_gate() {
        let n = 2;
        let mut mesh = in_proc_mesh(n);
        let ep1 = mesh.pop().unwrap();
        let mut raw = mesh.pop().unwrap(); // endpoint 0, used raw
        let mut svc = ConsensusService::new(ep1);
        svc.add_instance(5, va_instance(1, n, &[0.0])).unwrap();
        svc.start().unwrap();

        use crate::transport::Transport as _;
        // Gate 1: undecodable bytes.
        raw.send(1, vec![0xde, 0xad]).unwrap();
        // Gate 2: spoofed sender (claims process 1 on the link from 0).
        let spoof = Frame {
            instance: 5,
            sender: 1,
            round: 0,
            payload: Payload::Va((
                (0, 0),
                rbvc_sim::bracha::BrachaMsg::Init(rbvc_core::verified_avg::RoundState {
                    value: VecD::from_slice(&[1.0]),
                    witness: vec![],
                }),
            )),
        };
        raw.send(1, encode_frame(&spoof)).unwrap();
        // Gate 3: unknown instance id.
        let unknown = Frame { instance: 99, ..spoof.clone() };
        raw.send(1, encode_frame(&Frame { sender: 0, ..unknown })).unwrap();
        // Gate 4: payload kind mismatch (EIG frame for a VA instance).
        let mismatch = Frame {
            instance: 5,
            sender: 0,
            round: 0,
            payload: Payload::Eig(vec![]),
        };
        raw.send(1, encode_frame(&mismatch)).unwrap();
        raw.flush().unwrap();

        for _ in 0..20 {
            let _ = svc.poll(Duration::from_millis(5));
            if svc.errors().total() >= 4 {
                break;
            }
        }
        assert_eq!(svc.errors().total(), 4, "all four gates must fire: {:?}", svc.errors().errors());
    }
}
