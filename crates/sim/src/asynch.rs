//! Event-driven asynchronous message-passing engine.
//!
//! The asynchronous model of the paper (Theorems 2, 4, 6; §10): reliable
//! channels, *no bound* on message delay, delivery order chosen by an
//! adversarial scheduler, but every sent message is eventually delivered.
//! The engine makes the scheduler a first-class pluggable component so
//! experiments can run the same protocol under FIFO, random, and
//! targeted-delay adversaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbvc_obs::{Event, EventKind, Obs};

use crate::config::{ProcessId, SystemConfig};
use crate::monitor::SafetyMonitor;
use crate::net::NetworkFaults;
use crate::trace::ExecutionTrace;

/// Steps between [`AsyncProtocol::on_tick`] rounds in chaos runs.
pub const TICK_INTERVAL: u64 = 16;

/// Consecutive idle (nothing deliverable, nothing pending) steps after which
/// a chaos run is declared dead. Chosen to exceed the largest
/// [`crate::net::ReliableLink`] backoff cap times [`TICK_INTERVAL`], so a
/// live retransmission loop is never mistaken for a dead network.
pub const MAX_IDLE_TICKS: u64 = 4096;

/// An honest asynchronous protocol: reacts to message deliveries.
pub trait AsyncProtocol {
    /// Message type on the wire.
    type Msg: Clone;
    /// Decision type.
    type Output: Clone;

    /// Initial sends (called once before any delivery).
    fn on_start(&mut self) -> Vec<(ProcessId, Self::Msg)>;

    /// React to a delivered message; return new sends.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg) -> Vec<(ProcessId, Self::Msg)>;

    /// Timer callback: chaos runs ([`AsyncEngine::run_chaos`] and the
    /// threaded chaos runtime) invoke this periodically so protocols can
    /// drive retransmission and other timeouts. Purely delivery-driven
    /// protocols keep the default no-op; [`crate::net::ReliableLink`]
    /// overrides it to retransmit unacked messages.
    fn on_tick(&mut self) -> Vec<(ProcessId, Self::Msg)> {
        Vec::new()
    }

    /// The decision, once reached. A decided process may keep participating
    /// (required by ε-agreement protocols that help laggards converge).
    fn output(&self) -> Option<Self::Output>;
}

/// A Byzantine asynchronous participant.
pub trait AsyncAdversary<M> {
    /// Initial sends.
    fn on_start(&mut self) -> Vec<(ProcessId, M)>;
    /// React (arbitrarily) to a delivery.
    fn on_message(&mut self, from: ProcessId, msg: M) -> Vec<(ProcessId, M)>;
}

/// A node in the asynchronous network.
pub enum AsyncNode<P: AsyncProtocol> {
    /// Follows the protocol.
    Honest(P),
    /// Arbitrary behaviour.
    Byzantine(Box<dyn AsyncAdversary<P::Msg>>),
}

/// Metadata the scheduler sees about an in-flight message.
#[derive(Debug, Clone, Copy)]
pub struct EnvelopeMeta {
    /// Sender.
    pub src: ProcessId,
    /// Destination.
    pub dst: ProcessId,
    /// Scheduler steps this envelope has been in flight.
    pub age: u64,
}

/// Chooses which in-flight message to deliver next. Implementations MUST be
/// fair (eventually deliver everything) — the engine enforces a hard age cap
/// as a backstop so that a buggy scheduler cannot starve a channel forever.
pub trait Scheduler {
    /// Pick an index into `pending` (nonempty).
    fn pick(&mut self, pending: &[EnvelopeMeta]) -> usize;
}

/// FIFO delivery (the most benign schedule).
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn pick(&mut self, _pending: &[EnvelopeMeta]) -> usize {
        0
    }
}

/// Uniformly random delivery, seeded for reproducibility.
pub struct RandomScheduler(StdRng);

impl RandomScheduler {
    /// Seeded random scheduler.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomScheduler(StdRng::seed_from_u64(seed))
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, pending: &[EnvelopeMeta]) -> usize {
        self.0.gen_range(0..pending.len())
    }
}

/// Adversarial scheduler: starves messages touching a victim set for as
/// long as fairness permits (`max_delay` steps), delivering everything else
/// first — the classic "slow process" adversary used in the paper's
/// asynchronous necessity arguments (Appendix B: "process j is faulty,
/// process d+2 is slow").
pub struct TargetedDelayScheduler {
    /// Processes whose traffic is starved.
    pub victims: Vec<ProcessId>,
    /// Fairness bound: a message older than this is delivered immediately.
    pub max_delay: u64,
    rng: StdRng,
}

impl TargetedDelayScheduler {
    /// Build with a seed for tie-breaking.
    #[must_use]
    pub fn new(victims: Vec<ProcessId>, max_delay: u64, seed: u64) -> Self {
        TargetedDelayScheduler {
            victims,
            max_delay,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn touches_victim(&self, m: &EnvelopeMeta) -> bool {
        self.victims.contains(&m.src) || self.victims.contains(&m.dst)
    }
}

impl Scheduler for TargetedDelayScheduler {
    fn pick(&mut self, pending: &[EnvelopeMeta]) -> usize {
        // Overdue messages first (fairness).
        if let Some((i, _)) = pending
            .iter()
            .enumerate()
            .find(|(_, m)| m.age >= self.max_delay)
        {
            return i;
        }
        // Prefer non-victim traffic.
        let non_victim: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, m)| !self.touches_victim(m))
            .map(|(i, _)| i)
            .collect();
        if !non_victim.is_empty() {
            return non_victim[self.rng.gen_range(0..non_victim.len())];
        }
        self.rng.gen_range(0..pending.len())
    }
}

/// Partial-synchrony scheduler (the GST model): fully adversarial
/// (random, delay-heavy) before the *global stabilization time*, then
/// effectively synchronous — oldest message first — afterwards. Protocols
/// designed for full asynchrony must work under it; the experiments use it
/// to show convergence accelerating after GST.
pub struct GstScheduler {
    /// Scheduler step at which the network stabilizes.
    pub gst: u64,
    steps: u64,
    rng: StdRng,
    /// Pre-GST fairness bound (still eventually delivers).
    pub pre_gst_max_delay: u64,
}

impl GstScheduler {
    /// Build with the stabilization step and a seed for the chaotic phase.
    #[must_use]
    pub fn new(gst: u64, pre_gst_max_delay: u64, seed: u64) -> Self {
        GstScheduler {
            gst,
            steps: 0,
            rng: StdRng::seed_from_u64(seed),
            pre_gst_max_delay,
        }
    }
}

impl Scheduler for GstScheduler {
    fn pick(&mut self, pending: &[EnvelopeMeta]) -> usize {
        self.steps += 1;
        if self.steps > self.gst {
            // Synchronous phase: oldest first (FIFO by age).
            return pending
                .iter()
                .enumerate()
                .max_by_key(|(_, m)| m.age)
                .map(|(i, _)| i)
                .unwrap_or(0);
        }
        // Chaotic phase: honor the fairness bound, otherwise prefer the
        // *youngest* messages (maximally reordering).
        if let Some((i, _)) = pending
            .iter()
            .enumerate()
            .find(|(_, m)| m.age >= self.pre_gst_max_delay)
        {
            return i;
        }
        let youngest: u64 = pending.iter().map(|m| m.age).min().unwrap_or(0);
        let candidates: Vec<usize> = pending
            .iter()
            .enumerate()
            .filter(|(_, m)| m.age <= youngest + 2)
            .map(|(i, _)| i)
            .collect();
        candidates[self.rng.gen_range(0..candidates.len())]
    }
}

struct Envelope<M> {
    src: ProcessId,
    dst: ProcessId,
    msg: M,
    born: u64,
    /// Earliest step at which the network makes this envelope deliverable
    /// (equals `born` on reliable links; later under injected delay).
    available_from: u64,
}

/// Route one protocol send through the fault layer: each surviving copy
/// becomes an envelope available at `now + delay`. Counted once as sent
/// regardless of duplication (copies are network artifacts, not sends).
fn route_send<M: Clone>(
    pending: &mut Vec<Envelope<M>>,
    trace: &mut ExecutionTrace,
    faults: &mut NetworkFaults,
    src: ProcessId,
    dst: ProcessId,
    msg: M,
    now: u64,
) {
    trace.record_message();
    for delay in faults.route(src, dst, now) {
        pending.push(Envelope {
            src,
            dst,
            msg: msg.clone(),
            born: now,
            available_from: now + delay,
        });
    }
}

/// Outcome of an asynchronous execution.
#[derive(Debug, Clone)]
pub struct AsyncOutcome<O> {
    /// Decisions of honest processes by id (`None` = Byzantine/undecided).
    pub decisions: Vec<Option<O>>,
    /// Scheduler steps executed.
    pub steps: u64,
    /// Message statistics.
    pub trace: ExecutionTrace,
    /// True iff the run ended because every honest process decided.
    pub all_decided: bool,
}

/// The asynchronous engine.
pub struct AsyncEngine<P: AsyncProtocol> {
    config: SystemConfig,
    nodes: Vec<AsyncNode<P>>,
    /// Hard fairness backstop applied on top of the scheduler.
    age_cap: u64,
    /// Structured-event sink; defaults to the no-op recorder, in which case
    /// the engine does no extra per-step work.
    obs: Obs,
}

impl<P: AsyncProtocol> AsyncEngine<P> {
    /// Build the engine; placement of Byzantine nodes must match the config.
    ///
    /// # Panics
    /// Panics on node-count or fault-placement mismatch.
    #[must_use]
    pub fn new(config: SystemConfig, nodes: Vec<AsyncNode<P>>) -> Self {
        assert_eq!(nodes.len(), config.n, "one node per process required");
        for (i, node) in nodes.iter().enumerate() {
            let is_byz = matches!(node, AsyncNode::Byzantine(_));
            assert_eq!(
                is_byz,
                config.is_faulty(i),
                "node {i} placement disagrees with fault set"
            );
        }
        AsyncEngine {
            config,
            nodes,
            age_cap: 10_000,
            obs: Obs::noop(),
        }
    }

    /// Attach a structured-event sink. Each honest node's first decision is
    /// then traced as an [`EventKind::Decide`] event tagged with the node id
    /// and the scheduler step it appeared at. Tracing never perturbs the
    /// delivery schedule or any RNG stream.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Emit one [`EventKind::Decide`] per honest node whose output appeared
    /// since the last call; `seen` carries the per-node latch.
    fn emit_fresh_decides(&self, seen: &mut [bool], step: u64) {
        for (id, node) in self.nodes.iter().enumerate() {
            if seen[id] {
                continue;
            }
            if let AsyncNode::Honest(p) = node {
                if p.output().is_some() {
                    seen[id] = true;
                    self.obs.emit(|| {
                        Event::new(EventKind::Decide)
                            .node(u32::try_from(id).unwrap_or(u32::MAX))
                            .detail(format!("step={step}"))
                    });
                }
            }
        }
    }

    /// Read access to the per-process nodes, for post-run inspection (e.g.
    /// harvesting per-node degradation errors or protocol metrics).
    #[must_use]
    pub fn nodes(&self) -> &[AsyncNode<P>] {
        &self.nodes
    }

    /// Run under `scheduler` for at most `max_steps` deliveries.
    pub fn run(&mut self, scheduler: &mut dyn Scheduler, max_steps: u64) -> AsyncOutcome<P::Output> {
        let n = self.config.n;
        let mut pending: Vec<Envelope<P::Msg>> = Vec::new();
        let mut trace = ExecutionTrace::default();
        let mut now: u64 = 0;

        // Start phase.
        for (src, node) in self.nodes.iter_mut().enumerate() {
            let sends = match node {
                AsyncNode::Honest(p) => p.on_start(),
                AsyncNode::Byzantine(a) => a.on_start(),
            };
            for (dst, msg) in sends {
                assert!(dst < n, "message to nonexistent process {dst}");
                trace.record_message();
                pending.push(Envelope {
                    src,
                    dst,
                    msg,
                    born: now,
                    available_from: now,
                });
            }
        }

        let mut decided_seen = vec![false; n];
        if self.obs.enabled() {
            self.emit_fresh_decides(&mut decided_seen, now);
        }
        let mut all_decided = self.all_honest_decided();
        while !pending.is_empty() && now < max_steps && !all_decided {
            // Fairness backstop: force-deliver anything over the age cap.
            let metas: Vec<EnvelopeMeta> = pending
                .iter()
                .map(|e| EnvelopeMeta {
                    src: e.src,
                    dst: e.dst,
                    age: now - e.born,
                })
                .collect();
            let overdue = metas.iter().position(|m| m.age >= self.age_cap);
            let idx = overdue.unwrap_or_else(|| {
                let picked = scheduler.pick(&metas);
                assert!(picked < pending.len(), "scheduler picked out of range");
                picked
            });
            let env = pending.swap_remove(idx);
            trace.record_delivery();
            trace.record_round();
            now += 1;

            let sends = match &mut self.nodes[env.dst] {
                AsyncNode::Honest(p) => p.on_message(env.src, env.msg),
                AsyncNode::Byzantine(a) => a.on_message(env.src, env.msg),
            };
            for (dst, msg) in sends {
                assert!(dst < n, "message to nonexistent process {dst}");
                trace.record_message();
                pending.push(Envelope {
                    src: env.dst,
                    dst,
                    msg,
                    born: now,
                    available_from: now,
                });
            }
            if self.obs.enabled() {
                self.emit_fresh_decides(&mut decided_seen, now);
            }
            all_decided = self.all_honest_decided();
        }

        let decisions = self
            .nodes
            .iter()
            .map(|node| match node {
                AsyncNode::Honest(p) => p.output(),
                AsyncNode::Byzantine(_) => None,
            })
            .collect();
        AsyncOutcome {
            decisions,
            steps: now,
            trace,
            all_decided,
        }
    }

    /// Run under `scheduler` with link faults injected by `faults`, for at
    /// most `max_steps` engine steps.
    ///
    /// Differences from [`AsyncEngine::run`]:
    ///
    /// * every send is routed through [`NetworkFaults::route`], which may
    ///   drop it, duplicate it, or delay its availability;
    /// * the engine clock advances every step even when nothing is
    ///   deliverable yet (idle time in front of a delayed/held envelope);
    /// * [`AsyncProtocol::on_tick`] fires on every honest node once per
    ///   [`TICK_INTERVAL`] steps, driving retransmission timers;
    /// * if `monitor` is given, every fresh decision is fed to it the step
    ///   it appears, so violations are flagged online;
    /// * the run ends early if traffic dies out completely (no pending
    ///   envelopes and [`MAX_IDLE_TICKS`] consecutive unproductive steps) —
    ///   the signature of un-recovered message loss.
    ///
    /// With `NetworkFaults::reliable()` this reproduces `run` exactly
    /// (same delivery sequence, no extra RNG draws).
    pub fn run_chaos(
        &mut self,
        scheduler: &mut dyn Scheduler,
        max_steps: u64,
        faults: &mut NetworkFaults,
        mut monitor: Option<&mut SafetyMonitor<P::Output>>,
    ) -> AsyncOutcome<P::Output>
    where
        P::Output: PartialEq,
    {
        let n = self.config.n;
        let mut pending: Vec<Envelope<P::Msg>> = Vec::new();
        let mut trace = ExecutionTrace::default();
        let mut now: u64 = 0;
        let mut reported = vec![false; n];

        for (src, node) in self.nodes.iter_mut().enumerate() {
            let sends = match node {
                AsyncNode::Honest(p) => p.on_start(),
                AsyncNode::Byzantine(a) => a.on_start(),
            };
            for (dst, msg) in sends {
                assert!(dst < n, "message to nonexistent process {dst}");
                route_send(&mut pending, &mut trace, faults, src, dst, msg, now);
            }
        }

        let mut all_decided = self.all_honest_decided();
        let mut idle_steps: u64 = 0;
        while now < max_steps && !all_decided {
            // Timer phase: drive retransmission/timeout logic.
            if now.is_multiple_of(TICK_INTERVAL) {
                for src in 0..n {
                    let sends = match &mut self.nodes[src] {
                        AsyncNode::Honest(p) => p.on_tick(),
                        AsyncNode::Byzantine(_) => Vec::new(),
                    };
                    for (dst, msg) in sends {
                        assert!(dst < n, "message to nonexistent process {dst}");
                        route_send(&mut pending, &mut trace, faults, src, dst, msg, now);
                    }
                }
            }

            // Delivery phase: the scheduler chooses among *available*
            // envelopes only; delayed ones stay invisible until due.
            let available: Vec<usize> = pending
                .iter()
                .enumerate()
                .filter(|(_, e)| e.available_from <= now)
                .map(|(i, _)| i)
                .collect();
            if available.is_empty() {
                idle_steps += 1;
                if pending.is_empty() && idle_steps > MAX_IDLE_TICKS {
                    break; // traffic died out; loss was never recovered
                }
                now += 1;
                continue;
            }
            idle_steps = 0;

            let metas: Vec<EnvelopeMeta> = available
                .iter()
                .map(|&i| {
                    let e = &pending[i];
                    EnvelopeMeta {
                        src: e.src,
                        dst: e.dst,
                        age: now - e.born,
                    }
                })
                .collect();
            let overdue = metas.iter().position(|m| m.age >= self.age_cap);
            let picked = overdue.unwrap_or_else(|| {
                let picked = scheduler.pick(&metas);
                assert!(picked < metas.len(), "scheduler picked out of range");
                picked
            });
            let env = pending.swap_remove(available[picked]);
            trace.record_delivery();
            trace.record_round();
            now += 1;

            let sends = match &mut self.nodes[env.dst] {
                AsyncNode::Honest(p) => p.on_message(env.src, env.msg),
                AsyncNode::Byzantine(a) => a.on_message(env.src, env.msg),
            };
            for (dst, msg) in sends {
                assert!(dst < n, "message to nonexistent process {dst}");
                route_send(&mut pending, &mut trace, faults, env.dst, dst, msg, now);
            }

            // Online safety check + decide tracing: handle fresh decisions
            // the step they appear.
            if monitor.is_some() || self.obs.enabled() {
                for (id, node) in self.nodes.iter().enumerate() {
                    if reported[id] {
                        continue;
                    }
                    if let AsyncNode::Honest(p) = node {
                        if let Some(out) = p.output() {
                            reported[id] = true;
                            self.obs.emit(|| {
                                Event::new(EventKind::Decide)
                                    .node(u32::try_from(id).unwrap_or(u32::MAX))
                                    .detail(format!("step={now}"))
                            });
                            if let Some(mon) = monitor.as_deref_mut() {
                                mon.observe(id, &out);
                            }
                        }
                    }
                }
            }
            all_decided = self.all_honest_decided();
        }

        let decisions = self
            .nodes
            .iter()
            .map(|node| match node {
                AsyncNode::Honest(p) => p.output(),
                AsyncNode::Byzantine(_) => None,
            })
            .collect();
        AsyncOutcome {
            decisions,
            steps: now,
            trace,
            all_decided,
        }
    }

    fn all_honest_decided(&self) -> bool {
        self.nodes.iter().all(|node| match node {
            AsyncNode::Honest(p) => p.output().is_some(),
            AsyncNode::Byzantine(_) => true,
        })
    }

    /// Access a node for post-run inspection.
    #[must_use]
    pub fn node(&self, id: ProcessId) -> &AsyncNode<P> {
        &self.nodes[id]
    }
}

/// A Byzantine async strategy that never sends anything.
pub struct SilentAsyncAdversary;

impl<M> AsyncAdversary<M> for SilentAsyncAdversary {
    fn on_start(&mut self) -> Vec<(ProcessId, M)> {
        Vec::new()
    }
    fn on_message(&mut self, _from: ProcessId, _msg: M) -> Vec<(ProcessId, M)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy protocol: broadcast the input once; decide when `quorum` distinct
    /// senders' values have arrived (sum of the first `quorum`).
    struct QuorumSum {
        n: usize,
        quorum: usize,
        input: i64,
        seen: Vec<(ProcessId, i64)>,
        decided: Option<i64>,
    }

    impl QuorumSum {
        fn new(_id: usize, n: usize, quorum: usize, input: i64) -> Self {
            QuorumSum {
                n,
                quorum,
                input,
                seen: Vec::new(),
                decided: None,
            }
        }
    }

    impl AsyncProtocol for QuorumSum {
        type Msg = i64;
        type Output = i64;

        fn on_start(&mut self) -> Vec<(ProcessId, i64)> {
            (0..self.n).map(|d| (d, self.input)).collect()
        }

        fn on_message(&mut self, from: ProcessId, msg: i64) -> Vec<(ProcessId, i64)> {
            if self.decided.is_none() && !self.seen.iter().any(|(s, _)| *s == from) {
                self.seen.push((from, msg));
                if self.seen.len() >= self.quorum {
                    let mut sorted = self.seen.clone();
                    sorted.sort_unstable();
                    self.decided = Some(sorted.iter().map(|(_, v)| v).sum());
                }
            }
            Vec::new()
        }

        fn output(&self) -> Option<i64> {
            self.decided
        }
    }

    fn build(n: usize, f: usize, faulty: Vec<usize>, quorum: usize) -> AsyncEngine<QuorumSum> {
        let config = SystemConfig::new(n, f).with_faulty(faulty.clone());
        let nodes = (0..n)
            .map(|i| {
                if faulty.contains(&i) {
                    AsyncNode::Byzantine(Box::new(SilentAsyncAdversary)
                        as Box<dyn AsyncAdversary<i64>>)
                } else {
                    AsyncNode::Honest(QuorumSum::new(i, n, quorum, i as i64))
                }
            })
            .collect();
        AsyncEngine::new(config, nodes)
    }

    #[test]
    fn fifo_schedule_decides() {
        let mut engine = build(4, 1, vec![], 4);
        let out = engine.run(&mut FifoScheduler, 1000);
        assert!(out.all_decided);
        for d in out.decisions {
            assert_eq!(d, Some(1 + 2 + 3));
        }
    }

    #[test]
    fn random_schedules_agree_with_fifo_when_waiting_for_all() {
        // Waiting for all n values makes the decision schedule-independent.
        let fifo = build(5, 0, vec![], 5).run(&mut FifoScheduler, 10_000);
        for seed in 0..5 {
            let mut engine = build(5, 0, vec![], 5);
            let out = engine.run(&mut RandomScheduler::new(seed), 10_000);
            assert!(out.all_decided);
            assert_eq!(out.decisions, fifo.decisions, "seed {seed} diverged");
        }
    }

    #[test]
    fn quorum_decision_survives_silent_fault() {
        // n = 4, f = 1 silent: waiting for n − f = 3 values must terminate.
        let mut engine = build(4, 1, vec![2], 3);
        let out = engine.run(&mut RandomScheduler::new(7), 10_000);
        assert!(out.all_decided, "asynchronous liveness with f silent");
        for (i, d) in out.decisions.iter().enumerate() {
            if i != 2 {
                assert!(d.is_some());
            }
        }
    }

    #[test]
    fn waiting_for_all_with_a_silent_fault_stalls() {
        // Waiting for n values when one process never speaks: the run must
        // NOT decide (this is exactly why asynchronous protocols wait for
        // at most n − f).
        let mut engine = build(4, 1, vec![2], 4);
        let out = engine.run(&mut FifoScheduler, 10_000);
        assert!(!out.all_decided);
    }

    #[test]
    fn targeted_delay_cannot_block_forever() {
        // Starve process 0's traffic; fairness bound still lets everyone
        // decide on quorum 4 of 4 (no faults).
        let mut engine = build(4, 1, vec![], 4);
        let mut sched = TargetedDelayScheduler::new(vec![0], 50, 3);
        let out = engine.run(&mut sched, 100_000);
        assert!(out.all_decided, "fair targeted delay must not violate liveness");
    }

    #[test]
    fn targeted_delay_reorders_but_preserves_outcome() {
        let base = build(5, 1, vec![4], 4).run(&mut FifoScheduler, 10_000);
        let mut engine = build(5, 1, vec![4], 4);
        let mut sched = TargetedDelayScheduler::new(vec![1], 20, 11);
        let out = engine.run(&mut sched, 100_000);
        assert!(out.all_decided);
        // Decision may differ per process (different quorums observed), but
        // liveness and well-formedness hold.
        assert_eq!(out.decisions.len(), base.decisions.len());
    }

    #[test]
    fn gst_scheduler_is_live_in_both_phases() {
        // Decisions must be reached whether GST falls before or after the
        // protocol finishes.
        for gst in [0u64, 5, 500] {
            let mut engine = build(4, 1, vec![3], 3);
            let mut sched = GstScheduler::new(gst, 40, 9);
            let out = engine.run(&mut sched, 100_000);
            assert!(out.all_decided, "GST = {gst} broke liveness");
        }
    }

    #[test]
    fn steps_are_bounded_by_max() {
        let mut engine = build(4, 1, vec![2], 4); // will stall
        let out = engine.run(&mut FifoScheduler, 17);
        assert!(out.steps <= 17);
    }

    #[test]
    fn chaos_with_reliable_network_matches_plain_run() {
        let plain = build(4, 1, vec![], 4).run(&mut FifoScheduler, 10_000);
        let mut engine = build(4, 1, vec![], 4);
        let mut faults = NetworkFaults::reliable();
        let out = engine.run_chaos(&mut FifoScheduler, 10_000, &mut faults, None);
        assert!(out.all_decided);
        assert_eq!(out.decisions, plain.decisions);
        assert_eq!(faults.stats.total_lost(), 0);
    }

    fn build_reliable_link(
        n: usize,
        quorum: usize,
    ) -> AsyncEngine<crate::net::ReliableLink<QuorumSum>> {
        let config = SystemConfig::new(n, 0);
        let nodes = (0..n)
            .map(|i| {
                AsyncNode::Honest(crate::net::ReliableLink::with_defaults(
                    QuorumSum::new(i, n, quorum, i as i64),
                    n,
                ))
            })
            .collect();
        AsyncEngine::new(config, nodes)
    }

    #[test]
    fn reliable_link_restores_liveness_under_heavy_loss() {
        // Raw QuorumSum waiting for all n values dies under 30% loss; the
        // ReliableLink wrapper re-earns the reliable-channel guarantee, so
        // every process must still decide the full sum — and the online
        // monitor must stay clean.
        let expected: i64 = (0..4).sum();
        for seed in 0..5u64 {
            let fault = crate::net::LinkFault {
                drop_prob: 0.3,
                dup_prob: 0.2,
                max_extra_delay: 5,
                reorder_prob: 0.1,
            };
            let mut faults = NetworkFaults::new(seed, fault);
            let mut monitor = SafetyMonitor::agreement_only(4, |a: &i64, b: &i64| {
                (a != b).then(|| format!("{a} != {b}"))
            });
            let mut engine = build_reliable_link(4, 4);
            let out = engine.run_chaos(
                &mut RandomScheduler::new(seed * 13 + 1),
                500_000,
                &mut faults,
                Some(&mut monitor),
            );
            assert!(out.all_decided, "seed {seed}: loss not recovered");
            assert!(
                faults.stats.dropped > 0,
                "seed {seed}: chaos plan injected no loss — test is vacuous"
            );
            for d in &out.decisions {
                assert_eq!(*d, Some(expected), "seed {seed}");
            }
            assert!(monitor.clean(), "seed {seed}: {:?}", monitor.alerts());
        }
    }

    #[test]
    fn retransmission_recovers_from_partition_then_heal() {
        let expected: i64 = (0..4).sum();
        let mut faults = NetworkFaults::new(3, crate::net::LinkFault::reliable())
            .with_partition(crate::net::Partition {
                side_a: vec![0, 1],
                start: 0,
                heal: 2_000,
                mode: crate::net::PartitionMode::Drop,
            });
        let mut engine = build_reliable_link(4, 4);
        let out = engine.run_chaos(&mut FifoScheduler, 500_000, &mut faults, None);
        assert!(
            out.all_decided,
            "cross-partition messages must be retransmitted after heal"
        );
        assert!(faults.stats.partition_dropped > 0, "partition never severed");
        for d in &out.decisions {
            assert_eq!(*d, Some(expected));
        }
    }

    #[test]
    fn unrecovered_total_loss_terminates_early() {
        // 100% loss and no retransmission: the run must detect that traffic
        // died and stop well before max_steps.
        let mut engine = build(4, 1, vec![], 4);
        let mut faults = NetworkFaults::new(1, crate::net::LinkFault::lossy(1.0));
        let out = engine.run_chaos(&mut FifoScheduler, 100_000_000, &mut faults, None);
        assert!(!out.all_decided);
        assert!(out.steps < 100_000, "dead network should end early");
    }
}
