//! The [`Transport`] abstraction: point-to-point delivery of encoded frames
//! over a complete `n`-process mesh, plus the in-process implementation.
//!
//! Both implementations carry the *same encoded bytes* end to end, so a
//! protocol run is byte-identical regardless of which transport moves the
//! frames — the property the cross-transport identity tests pin down.
//!
//! Degrade-don't-panic at this boundary: an outbound frame addressed to a
//! ghost peer, or a peer whose link has died, is dropped and recorded in the
//! endpoint's [`ErrorLog`]; the node keeps serving its remaining peers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use rbvc_sim::config::ProcessId;
use rbvc_sim::error::{ErrorLog, ProtocolError};
use rbvc_sim::net::NetworkFaults;

/// A link-identity verdict surfaced by an authenticating transport: each
/// completed or refused handshake becomes one event, drained by the
/// service layer through [`Transport::take_auth_events`] and re-emitted as
/// structured `auth_established` / `auth_reject` observability events (so
/// identity attacks land in the flight recorder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthEvent {
    /// A keyed challenge–response handshake from `peer` verified; the
    /// inbound link entered authenticated session `epoch`.
    Established {
        /// The proven peer identity.
        peer: ProcessId,
        /// Monotonic per-peer session epoch the replay guard binds to.
        epoch: u64,
    },
    /// A handshake failed verification and the connection was refused.
    Rejected {
        /// The *claimed* identity, when the record got far enough to claim
        /// one (`None`: rejected before any id could be parsed).
        peer: Option<ProcessId>,
        /// Stable reason label (`bad-mac`, `downgrade`, `ghost-peer`, …).
        reason: String,
    },
}

/// Point-to-point frame delivery over a complete mesh of `n` endpoints.
///
/// Contract shared by all implementations:
///
/// * [`Transport::send`] *queues* an encoded frame for `dst`; nothing hits
///   the wire until [`Transport::flush`], which writes each peer's queued
///   frames as one batch (one syscall per peer on the TCP transport).
/// * Self-addressed frames bypass the network entirely: the self-link is a
///   process-internal queue, delivered by the next
///   [`Transport::recv_timeout`] and excluded from the byte counters.
/// * [`Transport::recv_timeout`] returns every frame available within the
///   timeout as `(link peer, bytes)` pairs. The link peer is
///   *transport-authenticated* (channel index in-process, HELLO handshake
///   over TCP) — the service layer cross-checks it against the frame
///   header's claimed sender.
/// * Faults degrade, they never panic: ghost destinations and dead links
///   are recorded in [`Transport::errors`] and the frame is dropped.
pub trait Transport: Send {
    /// This endpoint's process id.
    fn local_id(&self) -> ProcessId;

    /// Mesh size.
    fn n(&self) -> usize;

    /// Queue one encoded frame for `dst`.
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] if `dst` is not a process of this mesh
    /// or its link has degraded permanently (the error is also recorded).
    fn send(&mut self, dst: ProcessId, frame: Vec<u8>) -> Result<(), ProtocolError>;

    /// Push all queued frames onto the wire, one batch per peer.
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] if any link write failed; surviving
    /// links are still flushed.
    fn flush(&mut self) -> Result<(), ProtocolError>;

    /// Receive frames, waiting up to `timeout` for the first one, then
    /// draining everything immediately available.
    fn recv_timeout(&mut self, timeout: Duration) -> Vec<(ProcessId, Vec<u8>)>;

    /// Like [`Transport::recv_timeout`], but each frame carries its arrival
    /// timestamp (µs on the `rbvc_obs::clock` timeline) so the tracing layer
    /// can split on-wire latency from time queued behind a busy poll loop.
    /// The default stamps at return — correct ordering, zero queueing
    /// visibility; the TCP endpoint overrides it with per-frame stamps
    /// taken in its reader threads.
    fn recv_timeout_stamped(&mut self, timeout: Duration) -> Vec<(ProcessId, u64, Vec<u8>)> {
        let frames = self.recv_timeout(timeout);
        let now = rbvc_obs::clock::now_us();
        frames.into_iter().map(|(peer, bytes)| (peer, now, bytes)).collect()
    }

    /// Peers whose outbound link was re-established since the last call
    /// (a TCP redial after a peer restart or write failure). The service
    /// layer replays its outbound history to the returned peers so frames
    /// lost in the gap are recovered (receivers deduplicate). Default:
    /// none — the in-process mesh never loses a link.
    fn take_reconnects(&mut self) -> Vec<ProcessId> {
        Vec::new()
    }

    /// Current health of every inbound link, for the stall detector's
    /// wire-vs-barrier blame split and the `/status` document. Default:
    /// empty — the in-process mesh has no links that can sicken, and an
    /// empty reading makes the health layer fall back to protocol-level
    /// evidence alone. The TCP endpoint overrides it with its
    /// [`rbvc_obs::LinkMonitor`] snapshot.
    fn link_health(&self) -> Vec<rbvc_obs::LinkHealth> {
        Vec::new()
    }

    /// Drain the link-identity verdicts (handshakes established/refused)
    /// observed since the last call. Default: none — only authenticating
    /// transports produce them. The service layer re-emits each as a
    /// structured observability event.
    fn take_auth_events(&mut self) -> Vec<AuthEvent> {
        Vec::new()
    }

    /// Bytes put on the wire by this endpoint (length prefixes included;
    /// self-delivery excluded).
    fn bytes_sent(&self) -> u64;

    /// Bytes received off the wire by this endpoint.
    fn bytes_received(&self) -> u64;

    /// Degradation events this endpoint has survived.
    fn errors(&self) -> ErrorLog;
}

/// An envelope in flight inside the in-process mesh.
struct Envelope {
    src: ProcessId,
    /// Mesh-clock instant at which this copy becomes deliverable.
    due: u64,
    bytes: Vec<u8>,
}

/// State shared by all endpoints of one in-process mesh.
struct MeshShared {
    txs: Vec<Sender<Envelope>>,
    /// The sim-net fault plan (drop/dup/delay/partition), shared because
    /// `NetworkFaults` draws from one seeded RNG stream.
    faults: Mutex<NetworkFaults>,
    /// Logical mesh clock: advanced by every flush and every receive poll,
    /// so held (delayed) envelopes always become due while anyone is active.
    clock: AtomicU64,
}

/// The in-process transport: the simulator's fault-injected network
/// ([`NetworkFaults`]) adapted behind the [`Transport`] trait, moving the
/// same encoded bytes a socket would.
///
/// Delay semantics: the mesh keeps a logical clock advanced on every flush
/// and poll; a delayed copy is held at the receiver until the clock passes
/// its due time. With [`NetworkFaults::reliable`] every copy is due
/// immediately and delivery is FIFO per link.
pub struct InProcEndpoint {
    id: ProcessId,
    n: usize,
    shared: Arc<MeshShared>,
    rx: Receiver<Envelope>,
    /// Frames queued by `send` awaiting `flush`, in send order.
    outbox: Vec<(ProcessId, Vec<u8>)>,
    /// Delivered-but-not-yet-due envelopes (fault-injected delays).
    held: Vec<Envelope>,
    bytes_sent: u64,
    bytes_received: u64,
    errors: ErrorLog,
}

/// Build a reliable in-process mesh of `n` endpoints.
#[must_use]
pub fn in_proc_mesh(n: usize) -> Vec<InProcEndpoint> {
    in_proc_mesh_with_faults(n, NetworkFaults::reliable())
}

/// Build an in-process mesh whose links obey `faults` (the chaos layer of
/// `rbvc_sim::net`). Self-links are exempt: a process always hears itself.
#[must_use]
pub fn in_proc_mesh_with_faults(n: usize, faults: NetworkFaults) -> Vec<InProcEndpoint> {
    assert!(n > 0, "mesh needs at least one endpoint");
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel::unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let shared = Arc::new(MeshShared {
        txs,
        faults: Mutex::new(faults),
        clock: AtomicU64::new(0),
    });
    rxs.into_iter()
        .enumerate()
        .map(|(id, rx)| InProcEndpoint {
            id,
            n,
            shared: Arc::clone(&shared),
            rx,
            outbox: Vec::new(),
            held: Vec::new(),
            bytes_sent: 0,
            bytes_received: 0,
            errors: ErrorLog::new(),
        })
        .collect()
}

impl InProcEndpoint {
    /// Move envelopes from the channel into `held`, then release everything
    /// whose due time has passed.
    fn drain_due(&mut self, now: u64, out: &mut Vec<(ProcessId, Vec<u8>)>) {
        while let Ok(env) = self.rx.try_recv() {
            self.held.push(env);
        }
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].due <= now {
                let env = self.held.swap_remove(i);
                self.bytes_received += env.bytes.len() as u64;
                out.push((env.src, env.bytes));
            } else {
                i += 1;
            }
        }
    }
}

impl Transport for InProcEndpoint {
    fn local_id(&self) -> ProcessId {
        self.id
    }

    fn n(&self) -> usize {
        self.n
    }

    fn send(&mut self, dst: ProcessId, frame: Vec<u8>) -> Result<(), ProtocolError> {
        if dst >= self.n {
            let e = ProtocolError::Transport {
                peer: Some(dst),
                reason: format!("ghost destination {dst} in a {}-process mesh", self.n),
            };
            self.errors.record(e.clone());
            return Err(e);
        }
        self.outbox.push((dst, frame));
        Ok(())
    }

    fn flush(&mut self) -> Result<(), ProtocolError> {
        if self.outbox.is_empty() {
            return Ok(());
        }
        let now = self.shared.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut faults = self.shared.faults.lock();
        for (dst, bytes) in self.outbox.drain(..) {
            if dst == self.id {
                // Self-link: process-internal, exempt from faults and from
                // the wire byte counters.
                let _ = self.shared.txs[dst].send(Envelope {
                    src: self.id,
                    due: 0,
                    bytes,
                });
                continue;
            }
            self.bytes_sent += bytes.len() as u64;
            for delay in faults.route(self.id, dst, now) {
                // A dead receiver is indistinguishable from a slow one in an
                // asynchronous network; dropping the envelope is the honest
                // semantics, not an error.
                let _ = self.shared.txs[dst].send(Envelope {
                    src: self.id,
                    due: now + delay,
                    bytes: bytes.clone(),
                });
            }
        }
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Vec<(ProcessId, Vec<u8>)> {
        let now = self.shared.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut out = Vec::new();
        self.drain_due(now, &mut out);
        if out.is_empty() && self.held.is_empty() {
            // Nothing pending at all: block for the first arrival.
            if let Ok(env) = self.rx.recv_timeout(timeout) {
                self.held.push(env);
                self.drain_due(now, &mut out);
            }
        }
        out
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    fn errors(&self) -> ErrorLog {
        self.errors.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_flow_between_endpoints() {
        let mut mesh = in_proc_mesh(3);
        mesh[0].send(1, vec![1, 2, 3]).unwrap();
        mesh[0].send(2, vec![4]).unwrap();
        mesh[0].send(0, vec![9]).unwrap(); // self
        mesh[0].flush().unwrap();
        let got = mesh[1].recv_timeout(Duration::from_millis(100));
        assert_eq!(got, vec![(0, vec![1, 2, 3])]);
        let got = mesh[2].recv_timeout(Duration::from_millis(100));
        assert_eq!(got, vec![(0, vec![4])]);
        let got = mesh[0].recv_timeout(Duration::from_millis(100));
        assert_eq!(got, vec![(0, vec![9])]);
        assert_eq!(mesh[0].bytes_sent(), 4, "self-delivery is not wire bytes");
        assert_eq!(mesh[1].bytes_received(), 3);
    }

    #[test]
    fn ghost_destination_degrades_and_is_recorded() {
        let mut mesh = in_proc_mesh(2);
        let e = mesh[0].send(7, vec![1]).expect_err("ghost must fail");
        assert!(matches!(e, ProtocolError::Transport { peer: Some(7), .. }));
        assert_eq!(mesh[0].errors().total(), 1);
        // The endpoint keeps working afterwards.
        mesh[0].send(1, vec![2]).unwrap();
        mesh[0].flush().unwrap();
        assert_eq!(
            mesh[1].recv_timeout(Duration::from_millis(100)),
            vec![(0, vec![2])]
        );
    }

    #[test]
    fn lossy_links_drop_frames_but_polling_releases_delays() {
        use rbvc_sim::net::LinkFault;
        // 100% duplication with extra delay: copies are held, then released
        // as subsequent polls advance the mesh clock.
        let fault = LinkFault {
            dup_prob: 1.0,
            max_extra_delay: 3,
            ..LinkFault::reliable()
        };
        let mut mesh = in_proc_mesh_with_faults(2, NetworkFaults::new(5, fault));
        mesh[0].send(1, vec![8]).unwrap();
        mesh[0].flush().unwrap();
        let mut got = Vec::new();
        for _ in 0..10 {
            got.extend(mesh[1].recv_timeout(Duration::from_millis(10)));
            if got.len() >= 2 {
                break;
            }
        }
        assert_eq!(got.len(), 2, "duplicated copy must arrive after polling");
    }
}
