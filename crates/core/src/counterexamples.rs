//! Executable forms of the paper's impossibility constructions.
//!
//! A lower bound cannot be "run", but each proof in the paper is built
//! around an explicit adversarial input matrix whose feasible-output set is
//! empty (or forces an ε-agreement violation). This module constructs those
//! matrices and checks the emptiness/violation with LP certificates:
//!
//! * [`theorem3_inputs`] — synchronous k-relaxed, `k = 2`, `n = d + 1`:
//!   the matrix `S(γ, ε)` of Theorem 3; [`theorem3_psi_empty`] certifies
//!   `Ψ(Y) = ⋂_T H_k(T) = ∅`.
//! * [`theorem5_inputs`] — synchronous (δ,∞), `n = d + 1`: the scaled
//!   identity matrix with `x > 2dδ`; [`theorem5_contradiction`] certifies
//!   the Observation-1/Observation-2 clash.
//! * [`theorem4_inputs`] / [`theorem6_inputs`] — the asynchronous variants
//!   with `d + 2` processes; their checkers certify that the per-process
//!   feasible sets `Ψ₁`, `Ψ₂` are ≥ 2ε apart (ε-agreement impossible).
//! * [`figure1`] — the Lemma 10 ring construction (scenarios A/B/C) showing
//!   input-dependent (δ,p)-consensus impossible for `n ≤ 3f`.

use rbvc_geometry::combinatorics::combinations;
use rbvc_geometry::projection::all_projections;
use rbvc_geometry::lp::{LpBuilder, LpOutcome, VarId};
use rbvc_linalg::{Tol, VecD};

/// Theorem 3 inputs: `d + 1` columns in `R^d`; column `i < d` has zeros
/// above position `i`, `γ` at `i`, `ε` below; column `d` is all `−γ`.
/// Requires `0 < ε ≤ γ`.
#[must_use]
pub fn theorem3_inputs(d: usize, gamma: f64, eps: f64) -> Vec<VecD> {
    assert!(d >= 3, "Theorem 3 needs d >= 3");
    assert!(0.0 < eps && eps <= gamma, "need 0 < ε ≤ γ");
    let mut cols = Vec::with_capacity(d + 1);
    for i in 0..d {
        let mut c = vec![0.0; d];
        c[i] = gamma;
        for item in c.iter_mut().take(d).skip(i + 1) {
            *item = eps;
        }
        cols.push(VecD(c));
    }
    cols.push(VecD(vec![-gamma; d]));
    cols
}

/// Theorem 4 inputs (asynchronous): `d + 2` columns; like Theorem 3 with
/// `2ε` in place of `ε` (requires `0 < 2ε < γ`) plus an all-zero column.
#[must_use]
pub fn theorem4_inputs(d: usize, gamma: f64, eps: f64) -> Vec<VecD> {
    assert!(d >= 3, "Theorem 4 needs d >= 3");
    assert!(0.0 < 2.0 * eps && 2.0 * eps < gamma, "need 0 < 2ε < γ");
    let mut cols = theorem3_inputs(d, gamma, 2.0 * eps);
    cols.push(VecD::zeros(d));
    cols
}

/// Theorem 5 inputs: `d + 1` columns; column `i < d` is `x·e_i`, column `d`
/// is all-zero. The contradiction needs `x > 2dδ`.
#[must_use]
pub fn theorem5_inputs(d: usize, x: f64) -> Vec<VecD> {
    assert!(d >= 2, "Theorem 5 necessity argument needs d >= 2");
    assert!(x > 0.0);
    let mut cols: Vec<VecD> = (0..d).map(|i| VecD::scaled_basis(d, i, x)).collect();
    cols.push(VecD::zeros(d));
    cols
}

/// Theorem 6 inputs (asynchronous): Theorem 5's columns plus a second
/// all-zero column (`d + 2` processes). Needs `x > 2dδ + ε`.
#[must_use]
pub fn theorem6_inputs(d: usize, x: f64) -> Vec<VecD> {
    let mut cols = theorem5_inputs(d, x);
    cols.push(VecD::zeros(d));
    cols
}

/// Certify `Ψ(Y) = ⋂_{|T| = |Y|−f} H_k(T) = ∅` by LP: a single feasibility
/// problem with one hull-membership block per `(T, D)` pair. Returns `true`
/// iff the set is certified empty.
#[must_use]
pub fn psi_k_empty(points: &[VecD], f: usize, k: usize, tol: Tol) -> bool {
    psi_k_point(points, f, k, tol).is_none()
}

/// Find a point of `Ψ(Y)` (the output set any correct k-relaxed algorithm
/// must hit), or `None` when it is empty.
#[must_use]
pub fn psi_k_point(points: &[VecD], f: usize, k: usize, tol: Tol) -> Option<VecD> {
    let n = points.len();
    let d = points[0].dim();
    let mut lp = LpBuilder::new();
    let x = lp.free_vars(d);
    for t_idx in combinations(n, n - f) {
        for proj in all_projections(d, k) {
            add_projected_membership(&mut lp, &x, points, &t_idx, proj.indices());
        }
    }
    lp.minimize(vec![]);
    match lp.solve(tol) {
        LpOutcome::Optimal { x: sol, .. } => Some(VecD((0..d).map(|i| sol[i]).collect())),
        _ => None,
    }
}

/// Add rows stating `g_D(x) ∈ H(g_D({points[j] : j ∈ subset}))`.
fn add_projected_membership(
    lp: &mut LpBuilder,
    x: &[VarId],
    points: &[VecD],
    subset: &[usize],
    coords: &[usize],
) {
    let lam = lp.nonneg_vars(subset.len());
    lp.eq(lam.iter().map(|&v| (v, 1.0)).collect(), 1.0);
    for &c in coords {
        let mut row: Vec<_> = lam
            .iter()
            .zip(subset)
            .map(|(&v, &j)| (v, points[j][c]))
            .collect();
        row.push((x[c], -1.0));
        lp.eq(row, 0.0);
    }
}

/// Theorem 3's end-to-end certificate for the given dimension: at
/// `n = d + 1`, `f = 1`, `k = 2`, the matrix `S(γ, ε)` has empty `Ψ(Y)`.
#[must_use]
pub fn theorem3_psi_empty(d: usize, tol: Tol) -> bool {
    let inputs = theorem3_inputs(d, 1.0, 0.5);
    psi_k_empty(&inputs, 1, 2, tol)
}

/// The `f > 1` extension via the simulation approach [12] made executable:
/// replicate each of the `d + 1` columns `f` times, giving `n = (d+1)f`
/// inputs, and certify that `Ψ(Y)` with `f` faults is still empty. (Any
/// `(n−f)`-subset omits at most `f` inputs; the binding subsets are those
/// omitting all `f` copies of one column — exactly the `f = 1`
/// constraints — so emptiness transfers.)
#[must_use]
pub fn theorem3_psi_empty_replicated(d: usize, f: usize, tol: Tol) -> bool {
    assert!(f >= 1);
    let base = theorem3_inputs(d, 1.0, 0.5);
    let inputs = replicate_inputs(&base, f);
    psi_k_empty(&inputs, f, 2, tol)
}

/// Theorem 5's `f > 1` extension by the same column replication: `n =
/// (d+1)f` inputs, `⋂_{|T|=n−f} H_(δ,∞)(T) = ∅` for `x > 2dδ`.
#[must_use]
pub fn theorem5_contradiction_replicated(d: usize, f: usize, delta: f64, tol: Tol) -> bool {
    let x = 2.0 * d as f64 * delta * 1.01 + 1.0;
    let base = theorem5_inputs(d, x);
    let inputs = replicate_inputs(&base, f);
    rbvc_geometry::gamma::gamma_delta_point(&inputs, f, delta, rbvc_linalg::Norm::LInf, tol)
        .is_none()
}

/// Repeat each input `f` times (the multiset replication of the simulation
/// argument — each group of `f` identical inputs stands for one simulated
/// process of the `f = 1` construction).
#[must_use]
pub fn replicate_inputs(base: &[VecD], f: usize) -> Vec<VecD> {
    base.iter()
        .flat_map(|v| std::iter::repeat_n(v.clone(), f))
        .collect()
}

/// Theorem 5's contradiction at `n = d + 1`, `f = 1`: with the identity
/// matrix scaled by `x > 2dδ`, the intersection
/// `⋂_{|T| = n−1} H_(δ,∞)(T)` is empty. Certified by LP.
#[must_use]
pub fn theorem5_contradiction(d: usize, delta: f64, tol: Tol) -> bool {
    let x = 2.0 * d as f64 * delta * 1.01 + 1.0; // safely above the threshold
    let inputs = theorem5_inputs(d, x);
    rbvc_geometry::gamma::gamma_delta_point(&inputs, 1, delta, rbvc_linalg::Norm::LInf, tol)
        .is_none()
}

/// The feasible-output set `Ψ_i(S)` of process `i` in the asynchronous
/// necessity arguments (Appendix B/C): the intersection over all
/// `j ∉ {i, d+2}` of the relaxed hulls of `S^j = S − {s_j}` (process `i`
/// cannot trust any single other process, and `d+2` may be slow).
/// Returns a witness point minimizing nothing (pure feasibility), over the
/// k-relaxed hulls.
#[must_use]
pub fn async_psi_k_point(
    points: &[VecD],
    i: usize,
    k: usize,
    tol: Tol,
) -> Option<VecD> {
    let n = points.len(); // d + 2 processes, ids 0..n-1; "slow" one is n-1
    let d = points[0].dim();
    let mut lp = LpBuilder::new();
    let x = lp.free_vars(d);
    for j in 0..n - 1 {
        if j == i {
            continue;
        }
        // S^j = all inputs except j's (the potentially-faulty process),
        // and except the slow process n−1 which contributed nothing yet —
        // matching the proof's S^j = {s_l : 1 ≤ l ≤ d+1, l ≠ j}.
        let subset: Vec<usize> = (0..n - 1).filter(|&l| l != j).collect();
        for proj in all_projections(d, k) {
            add_projected_membership(&mut lp, &x, points, &subset, proj.indices());
        }
    }
    lp.minimize(vec![]);
    match lp.solve(tol) {
        LpOutcome::Optimal { x: sol, .. } => Some(VecD((0..d).map(|c| sol[c]).collect())),
        _ => None,
    }
}

/// Theorem 4's quantitative violation: for the `S(γ, 2ε)` construction the
/// feasible sets of processes 1 and 2 are at L∞ distance ≥ 2ε, hence
/// ε-agreement is impossible at `n = d + 2`. Returns the certified minimum
/// separation `min_{v₁ ∈ Ψ₁, v₂ ∈ Ψ₂} ||v₁ − v₂||_∞` lower bound witness:
/// here we exploit the proof's structure — coordinate 0 is pinned to
/// `≥ 2ε` on Ψ₁ and to `0` on Ψ₂ — and return the separation in
/// coordinate 0 of the two witness points.
#[must_use]
pub fn theorem4_separation(d: usize, gamma: f64, eps: f64, tol: Tol) -> Option<f64> {
    let inputs = theorem4_inputs(d, gamma, eps);
    let p1 = async_psi_k_point(&inputs, 0, 2, tol)?;
    let p2 = async_psi_k_point(&inputs, 1, 2, tol)?;
    // The proof pins coordinate 0 (paper's first coordinate).
    Some((p1[0] - p2[0]).abs())
}

/// Lemma 10 / Figure 1: the three-scenario ring construction showing
/// input-dependent (δ,p)-consensus impossible for `n = 3, f = 1`.
pub mod figure1 {
    use rbvc_linalg::VecD;

    /// One of the three executions in Figure 1.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Scenario {
        /// Six processes `p₀ q₀ r₀ p₁ q₁ r₁` joined into a ring; the first
        /// three start with `0^d`, the rest with `1^d`.
        Ring,
        /// `p, q` correct with input `0^d`; `r` Byzantine replaying the ring.
        BothZero,
        /// `p` correct with `0^d`, `r` correct with `1^d`; `q` Byzantine.
        Mixed,
    }

    /// What validity forces in each scenario, for any algorithm solving
    /// input-dependent (δ,p)-consensus (δ ≤ κ·max-edge, and max-edge = 0
    /// when all correct inputs coincide — so no relaxation is available).
    #[derive(Debug, Clone)]
    pub struct ForcedOutcome {
        /// Required output of the correct processes, or `None` if the
        /// scenario leaves the output unconstrained.
        pub required: Option<VecD>,
        /// Human-readable reason.
        pub reason: &'static str,
    }

    /// The validity constraint analysis of the proof.
    #[must_use]
    pub fn forced_outcome(scenario: Scenario, d: usize) -> ForcedOutcome {
        match scenario {
            Scenario::Ring => ForcedOutcome {
                required: None,
                reason: "the ring is a single (contradiction-deriving) execution",
            },
            Scenario::BothZero => ForcedOutcome {
                required: Some(VecD::zeros(d)),
                reason: "correct inputs identical ⇒ max-edge = 0 ⇒ δ = 0 ⇒ output = 0^d",
            },
            Scenario::Mixed => ForcedOutcome {
                required: None,
                reason: "p and r must agree on one output despite inputs 0^d and 1^d",
            },
        }
    }

    /// The contradiction of the proof: scenario `BothZero` forces `p` to
    /// output `0^d` in the ring (as `p₀`); symmetrically `r₁` outputs
    /// `1^d`; but scenario `Mixed` makes `p₀` and `r₁` parts of one
    /// correct pair that must agree. Returns the pair of irreconcilable
    /// required outputs.
    #[must_use]
    pub fn contradiction(d: usize) -> (VecD, VecD) {
        (VecD::zeros(d), VecD::ones(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbvc_geometry::relaxed::KRelaxedHull;
    use rbvc_linalg::Norm;

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn theorem3_matrix_shape_matches_paper() {
        // d = 4, γ = 1, ε = 0.5: check a few entries against the displayed
        // matrix (column i has γ at i, 0 above, ε below; last column −γ).
        let s = theorem3_inputs(4, 1.0, 0.5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0].as_slice(), &[1.0, 0.5, 0.5, 0.5]);
        assert_eq!(s[1].as_slice(), &[0.0, 1.0, 0.5, 0.5]);
        assert_eq!(s[3].as_slice(), &[0.0, 0.0, 0.0, 1.0]);
        assert_eq!(s[4].as_slice(), &[-1.0, -1.0, -1.0, -1.0]);
    }

    #[test]
    fn theorem3_psi_is_empty_for_small_dimensions() {
        for d in 3..=5 {
            assert!(
                theorem3_psi_empty(d, t()),
                "Theorem 3 Ψ(Y) unexpectedly nonempty at d = {d}"
            );
        }
    }

    #[test]
    fn theorem3_observations_hold_individually() {
        // Observation 4: with T = Y − {s_{d+1}} and D = {d−2, d−1}, the last
        // coordinate of any feasible point is ≥ ε. Check via the k-hull.
        let d = 3;
        let eps = 0.5;
        let s = theorem3_inputs(d, 1.0, eps);
        let t_set: Vec<VecD> = s[..d].to_vec(); // drop the last input
        let hk = KRelaxedHull::new(t_set, 2);
        // A point with last coordinate 0 violates the projected hull.
        let candidate = VecD::from_slice(&[0.0, 0.0, 0.0]);
        assert!(
            !hk.contains(&candidate, t()),
            "Observation 4: 0 in the last coordinate must be infeasible"
        );
    }

    #[test]
    fn theorem3_with_one_more_process_becomes_feasible() {
        // Ψ is empty at n = d+1 but Γ-style feasibility returns at
        // n = (d+1)f+1 = d+2 (add the origin as an extra input).
        let d = 3;
        let mut inputs = theorem3_inputs(d, 1.0, 0.5);
        inputs.push(VecD::zeros(d));
        assert!(
            psi_k_point(&inputs, 1, 2, t()).is_some(),
            "one more process must restore feasibility"
        );
    }

    #[test]
    fn theorem3_replication_extends_to_f2() {
        // The simulation argument: the same construction with every column
        // doubled is infeasible at n = (d+1)·2 with f = 2.
        assert!(theorem3_psi_empty_replicated(3, 2, t()));
    }

    #[test]
    fn theorem5_replication_extends_to_f2() {
        assert!(theorem5_contradiction_replicated(3, 2, 0.25, t()));
    }

    #[test]
    fn replicate_inputs_shape() {
        let base = vec![VecD::zeros(2), VecD::ones(2)];
        let rep = replicate_inputs(&base, 3);
        assert_eq!(rep.len(), 6);
        assert_eq!(rep[0], rep[2]);
        assert_eq!(rep[3], rep[5]);
        assert_ne!(rep[2], rep[3]);
    }

    #[test]
    fn theorem5_matrix_shape() {
        let s = theorem5_inputs(3, 10.0);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].as_slice(), &[10.0, 0.0, 0.0]);
        assert_eq!(s[2].as_slice(), &[0.0, 0.0, 10.0]);
        assert_eq!(s[3].as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn theorem5_contradiction_certified() {
        for d in 2..=5 {
            assert!(
                theorem5_contradiction(d, 0.25, t()),
                "Theorem 5 intersection unexpectedly nonempty at d = {d}"
            );
        }
    }

    #[test]
    fn theorem5_small_x_is_feasible() {
        // With x ≤ 2δ the fattened hulls DO intersect (the bound on x is
        // what drives the contradiction).
        let d = 3;
        let delta = 0.25;
        let inputs = theorem5_inputs(d, 0.4); // 0.4 < 2δ(d…) threshold
        assert!(
            rbvc_geometry::gamma::gamma_delta_point(&inputs, 1, delta, Norm::LInf, t())
                .is_some(),
            "small x must not produce a contradiction"
        );
    }

    #[test]
    fn theorem4_separation_is_at_least_two_eps() {
        let (gamma, eps) = (1.0, 0.1);
        for d in 3..=4 {
            let sep = theorem4_separation(d, gamma, eps, t())
                .expect("both Ψ sets nonempty");
            assert!(
                sep >= 2.0 * eps - 1e-6,
                "Theorem 4 separation {sep} < 2ε at d = {d}"
            );
        }
    }

    #[test]
    fn theorem6_inputs_have_d_plus_2_columns() {
        let s = theorem6_inputs(3, 50.0);
        assert_eq!(s.len(), 5);
        assert_eq!(s[3], VecD::zeros(3));
        assert_eq!(s[4], VecD::zeros(3));
    }

    #[test]
    fn figure1_forced_outcomes() {
        use figure1::*;
        let f = forced_outcome(Scenario::BothZero, 3);
        assert_eq!(f.required, Some(VecD::zeros(3)));
        let (a, b) = contradiction(3);
        assert_ne!(a, b, "the two forced outputs must be irreconcilable");
    }

    #[test]
    #[should_panic(expected = "0 < ε ≤ γ")]
    fn theorem3_rejects_bad_parameters() {
        let _ = theorem3_inputs(3, 1.0, 2.0);
    }
}
