//! Run the complete experiment suite (E1–E14) at EXPERIMENTS.md scale and
//! print every table — the one-command reproduction entry point.
//!
//! Usage: `exp_all [--quick]` (`--quick` cuts trial counts ~4x)

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (t_big, t_mid, t_small) = if quick { (25, 8, 3) } else { (100, 25, 10) };
    let bins: Vec<(&str, Vec<String>)> = vec![
        ("exp_table1", vec![t_big.to_string(), "2024".into(), "--p-sweep".into()]),
        ("exp_figure1", vec!["3".into()]),
        ("exp_thm3", vec!["6".into()]),
        ("exp_thm4", vec!["5".into()]),
        ("exp_thm5", vec!["6".into()]),
        ("exp_thm6", vec!["5".into()]),
        ("exp_lemmas", vec![t_big.to_string(), "7".into()]),
        ("exp_tverberg", vec![t_mid.to_string(), "3".into()]),
        ("exp_async_delta", vec![t_small.to_string(), "5".into()]),
        ("exp_convergence", vec!["8".into()]),
        (
            "exp_conjectures",
            vec!["2".into(), if quick { "40".into() } else { "120".into() }, "1".into()],
        ),
        ("exp_broadcast", vec!["5".into()]),
    ];
    // Resolve sibling binaries from our own path so `cargo run --bin
    // exp_all` works in any profile directory.
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for (bin, args) in bins {
        println!("\n################ {bin} {} ################", args.join(" "));
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
    println!("\nAll experiments completed.");
}
