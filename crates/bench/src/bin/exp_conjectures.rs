//! E14 — adversarial stress-search of the paper's Conjectures 1–2 (and the
//! proven Theorem 9/12 bounds as controls).
//!
//! Usage: `exp_conjectures [restarts] [iters] [seed]`

use rbvc_bench::experiments::conjecture_hunt::{hunt_sweep, HuntTarget};
use rbvc_bench::report::{fnum, print_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let restarts: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(3);
    let iters: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(120);
    let seed: u64 = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(1);
    println!(
        "E14 — (1+1) hill-climb maximizing δ*/bound with adversarial fault \
         designation. Ratio ≥ 1 would refute the statement; the supremum \
         found is tightness evidence. Proven bounds serve as controls."
    );
    let rows: Vec<Vec<String>> = hunt_sweep(restarts, iters, seed)
        .into_iter()
        .map(|r| {
            let label = match r.target {
                HuntTarget::Theorem9 => "Thm 9 (control)",
                HuntTarget::Theorem12 => "Thm 12 (control)",
                HuntTarget::Conjecture => "Conjecture 1",
            };
            vec![
                label.to_string(),
                r.n.to_string(),
                r.f.to_string(),
                r.d.to_string(),
                r.evaluations.to_string(),
                fnum(r.best_ratio),
                r.violation_found.to_string(),
            ]
        })
        .collect();
    print_table(
        "Conjecture stress-search",
        &["target", "n", "f", "d", "evals", "best δ*/bound", "violation"],
        &rows,
    );
    println!("\nno violation found ⇒ the conjectures survive adversarial search at these sizes.");
}
