//! Bracha's asynchronous reliable broadcast (init / echo / ready).
//!
//! The paper's asynchronous algorithm (§10, Relaxed Verified Averaging)
//! inherits reliable broadcast from Bracha [4]: with `n ≥ 3f + 1`,
//!
//! * if the broadcaster is correct, every correct process delivers its
//!   value (validity);
//! * if any correct process delivers `v`, every correct process delivers
//!   `v` (totality + consistency) — a Byzantine broadcaster cannot make two
//!   correct processes deliver different values.
//!
//! Thresholds used (the classic ones): echo on first INIT; ready on
//! `⌈(n+f+1)/2⌉` matching ECHOs or `f+1` matching READYs; deliver on
//! `2f+1` matching READYs.
//!
//! [`BrachaInstance`] is a pure state machine keyed by one `(broadcaster,
//! tag)` pair; protocols embed as many instances as they need (Verified
//! Averaging uses one per process per round).

use crate::config::ProcessId;

/// Wire message of one reliable-broadcast instance.
#[derive(Debug, Clone, PartialEq)]
pub enum BrachaMsg<V> {
    /// Broadcaster's initial proposal.
    Init(V),
    /// Witness echo.
    Echo(V),
    /// Delivery vote.
    Ready(V),
}

/// Per-instance state machine. `V` must support exact equality (honest
/// processes relay bit-exact copies).
#[derive(Debug, Clone)]
pub struct BrachaInstance<V> {
    n: usize,
    f: usize,
    sent_echo: bool,
    sent_ready: bool,
    delivered: Option<V>,
    /// (value, distinct echo senders)
    echoes: Vec<(V, Vec<ProcessId>)>,
    /// (value, distinct ready senders)
    readies: Vec<(V, Vec<ProcessId>)>,
    // (the `Tallies` alias is defined below `record`)
}

/// Actions the caller must perform after feeding an event.
#[derive(Debug, Clone, Default)]
pub struct BrachaActions<V> {
    /// Messages to broadcast to every process (including self).
    pub broadcast: Vec<BrachaMsg<V>>,
    /// Value delivered by this event, if any (at most once per instance).
    pub delivered: Option<V>,
}

impl<V: Clone + PartialEq> BrachaInstance<V> {
    /// New instance for a system of `n` processes, up to `f` Byzantine.
    ///
    /// # Panics
    /// Panics unless `n ≥ 3f + 1` (Bracha's requirement).
    #[must_use]
    pub fn new(n: usize, f: usize) -> Self {
        assert!(n > 3 * f, "Bracha RB requires n >= 3f + 1");
        BrachaInstance {
            n,
            f,
            sent_echo: false,
            sent_ready: false,
            delivered: None,
            echoes: Vec::new(),
            readies: Vec::new(),
        }
    }

    /// Echo quorum `⌈(n + f + 1) / 2⌉`.
    #[must_use]
    pub fn echo_quorum(&self) -> usize {
        (self.n + self.f + 1).div_ceil(2)
    }

    /// Start the broadcast as the broadcaster: emits INIT.
    #[must_use]
    pub fn start(&mut self, value: V) -> BrachaActions<V> {
        BrachaActions {
            broadcast: vec![BrachaMsg::Init(value)],
            delivered: None,
        }
    }

    /// Feed a received message; returns the actions to take.
    #[must_use]
    pub fn on_message(
        &mut self,
        from: ProcessId,
        broadcaster: ProcessId,
        msg: BrachaMsg<V>,
    ) -> BrachaActions<V> {
        let mut actions = BrachaActions {
            broadcast: Vec::new(),
            delivered: None,
        };
        // Receive-boundary hardening: a message claiming an out-of-range
        // sender or broadcaster id is malformed by construction (no such
        // process exists) and must not touch the tallies.
        if from >= self.n || broadcaster >= self.n {
            return actions;
        }
        match msg {
            BrachaMsg::Init(v) => {
                // Only the broadcaster's own INIT counts.
                if from == broadcaster && !self.sent_echo {
                    self.sent_echo = true;
                    actions.broadcast.push(BrachaMsg::Echo(v));
                }
            }
            BrachaMsg::Echo(v) => {
                let count = record(&mut self.echoes, &v, from);
                if count >= self.echo_quorum() && !self.sent_ready {
                    self.sent_ready = true;
                    actions.broadcast.push(BrachaMsg::Ready(v));
                }
            }
            BrachaMsg::Ready(v) => {
                let count = record(&mut self.readies, &v, from);
                if count > self.f && !self.sent_ready {
                    self.sent_ready = true;
                    actions.broadcast.push(BrachaMsg::Ready(v.clone()));
                }
                if count > 2 * self.f && self.delivered.is_none() {
                    self.delivered = Some(v.clone());
                    actions.delivered = Some(v);
                }
            }
        }
        actions
    }

    /// The delivered value, if any.
    #[must_use]
    pub fn delivered(&self) -> Option<&V> {
        self.delivered.as_ref()
    }
}

/// Vote tallies: one entry per distinct value, with its distinct senders.
type Tallies<V> = Vec<(V, Vec<ProcessId>)>;

/// Record `sender` as having voted for `value`; return the updated count of
/// distinct senders for that value.
///
/// One vote per sender, across *all* values: an honest process sends at
/// most one ECHO and one READY per instance, so only equivocators are
/// affected — and crediting an equivocator's first value only weakens it.
/// The side effect is a hard memory bound: the tally holds at most one
/// entry per process, so a Byzantine value-flood (a fresh value in every
/// message) cannot grow state without bound.
fn record<V: Clone + PartialEq>(
    tallies: &mut Tallies<V>,
    value: &V,
    sender: ProcessId,
) -> usize {
    let already_voted = tallies.iter().any(|(_, senders)| senders.contains(&sender));
    if let Some((_, senders)) = tallies.iter_mut().find(|(v, _)| v == value) {
        if !already_voted {
            senders.push(sender);
        }
        return senders.len();
    }
    if already_voted {
        return 0;
    }
    tallies.push((value.clone(), vec![sender]));
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a full broadcast among honest processes "by hand": a tiny
    /// synchronous interpretation sufficient for state-machine unit tests.
    /// (End-to-end asynchronous runs live in the consensus-layer tests.)
    fn run_honest_broadcast(n: usize, f: usize, value: i64) -> Vec<Option<i64>> {
        let broadcaster: ProcessId = 0;
        let mut instances: Vec<BrachaInstance<i64>> =
            (0..n).map(|_| BrachaInstance::new(n, f)).collect();
        let mut inflight: Vec<(ProcessId, ProcessId, BrachaMsg<i64>)> = Vec::new();

        let start = instances[broadcaster].start(value);
        for m in start.broadcast {
            for dst in 0..n {
                inflight.push((broadcaster, dst, m.clone()));
            }
        }
        let mut delivered: Vec<Option<i64>> = vec![None; n];
        while let Some((src, dst, msg)) = inflight.pop() {
            let actions = instances[dst].on_message(src, broadcaster, msg);
            if let Some(v) = actions.delivered {
                delivered[dst] = Some(v);
            }
            for m in actions.broadcast {
                for to in 0..n {
                    inflight.push((dst, to, m.clone()));
                }
            }
        }
        delivered
    }

    #[test]
    fn honest_broadcast_delivers_everywhere() {
        for (n, f) in [(4, 1), (7, 2), (10, 3)] {
            let delivered = run_honest_broadcast(n, f, 42);
            for (i, d) in delivered.iter().enumerate() {
                assert_eq!(*d, Some(42), "process {i} failed to deliver (n={n},f={f})");
            }
        }
    }

    #[test]
    fn echo_quorum_values() {
        let inst = BrachaInstance::<i64>::new(4, 1);
        assert_eq!(inst.echo_quorum(), 3);
        let inst = BrachaInstance::<i64>::new(7, 2);
        assert_eq!(inst.echo_quorum(), 5);
    }

    #[test]
    #[should_panic(expected = "n >= 3f + 1")]
    fn rejects_insufficient_n() {
        let _ = BrachaInstance::<i64>::new(3, 1);
    }

    #[test]
    fn init_from_non_broadcaster_is_ignored() {
        let mut inst = BrachaInstance::new(4, 1);
        let a = inst.on_message(2, 0, BrachaMsg::Init(5));
        assert!(a.broadcast.is_empty(), "forged INIT must not trigger an echo");
        let a = inst.on_message(0, 0, BrachaMsg::Init(5));
        assert_eq!(a.broadcast, vec![BrachaMsg::Echo(5)]);
    }

    #[test]
    fn echo_threshold_triggers_single_ready() {
        let mut inst = BrachaInstance::new(4, 1);
        assert!(inst.on_message(0, 0, BrachaMsg::Echo(9)).broadcast.is_empty());
        assert!(inst.on_message(1, 0, BrachaMsg::Echo(9)).broadcast.is_empty());
        let a = inst.on_message(2, 0, BrachaMsg::Echo(9));
        assert_eq!(a.broadcast, vec![BrachaMsg::Ready(9)]);
        // Further echoes do not re-trigger.
        let a = inst.on_message(3, 0, BrachaMsg::Echo(9));
        assert!(a.broadcast.is_empty());
    }

    #[test]
    fn duplicate_senders_do_not_inflate_tallies() {
        let mut inst = BrachaInstance::new(4, 1);
        for _ in 0..10 {
            let a = inst.on_message(1, 0, BrachaMsg::Echo(7));
            assert!(a.broadcast.is_empty(), "one sender cannot reach quorum alone");
        }
    }

    #[test]
    fn ready_amplification_from_f_plus_one() {
        // f+1 READYs make a process send READY even without echo quorum.
        let mut inst = BrachaInstance::new(4, 1);
        assert!(inst.on_message(1, 0, BrachaMsg::Ready(3)).broadcast.is_empty());
        let a = inst.on_message(2, 0, BrachaMsg::Ready(3));
        assert_eq!(a.broadcast, vec![BrachaMsg::Ready(3)]);
    }

    #[test]
    fn delivery_needs_two_f_plus_one_readies() {
        let mut inst = BrachaInstance::new(4, 1);
        let _ = inst.on_message(1, 0, BrachaMsg::Ready(3));
        let _ = inst.on_message(2, 0, BrachaMsg::Ready(3));
        assert!(inst.delivered().is_none());
        let a = inst.on_message(3, 0, BrachaMsg::Ready(3));
        assert_eq!(a.delivered, Some(3));
        assert_eq!(inst.delivered(), Some(&3));
        // Delivery happens at most once.
        let a = inst.on_message(0, 0, BrachaMsg::Ready(3));
        assert!(a.delivered.is_none());
    }

    #[test]
    fn out_of_range_sender_is_rejected() {
        let mut inst = BrachaInstance::new(4, 1);
        for bogus in [4usize, 7, usize::MAX] {
            let a = inst.on_message(bogus, 0, BrachaMsg::Echo(9));
            assert!(a.broadcast.is_empty());
        }
        assert!(inst.echoes.is_empty(), "malformed senders must not tally");
        let a = inst.on_message(0, 9, BrachaMsg::Init(9));
        assert!(a.broadcast.is_empty(), "out-of-range broadcaster rejected");
    }

    #[test]
    fn value_flood_from_one_sender_is_memory_bounded() {
        // A Byzantine sender spraying a fresh value per message used to
        // allocate a tally entry each time; now only its first vote lands.
        let mut inst = BrachaInstance::new(4, 1);
        for v in 0..1000i64 {
            let _ = inst.on_message(1, 0, BrachaMsg::Echo(v));
        }
        assert_eq!(inst.echoes.len(), 1, "one entry per sender, ever");
        // The flood must not have poisoned quorum progress for the honest
        // value: three *other* senders still reach the echo quorum.
        let _ = inst.on_message(0, 0, BrachaMsg::Echo(7));
        let _ = inst.on_message(2, 0, BrachaMsg::Echo(7));
        let a = inst.on_message(3, 0, BrachaMsg::Echo(7));
        assert_eq!(a.broadcast, vec![BrachaMsg::Ready(7)]);
    }

    #[test]
    fn equivocating_sender_gets_only_first_vote() {
        let mut inst = BrachaInstance::new(4, 1);
        let _ = inst.on_message(1, 0, BrachaMsg::Ready(1));
        let _ = inst.on_message(1, 0, BrachaMsg::Ready(2));
        let _ = inst.on_message(2, 0, BrachaMsg::Ready(2));
        // Sender 1's vote for 2 was discarded (it voted 1 first), so value
        // 2 has a single distinct voter — below the f+1 amplification bar.
        let a = inst.on_message(2, 0, BrachaMsg::Ready(2));
        assert!(a.broadcast.is_empty());
    }

    #[test]
    fn split_echoes_cannot_produce_two_readies() {
        // A two-faced broadcaster splits echoes between values 1 and 2:
        // with n = 4, f = 1 the echo quorum is 3, so at most one value can
        // reach it (2 + 2 split never does).
        let mut inst = BrachaInstance::new(4, 1);
        let _ = inst.on_message(0, 0, BrachaMsg::Echo(1));
        let _ = inst.on_message(1, 0, BrachaMsg::Echo(1));
        let _ = inst.on_message(2, 0, BrachaMsg::Echo(2));
        let a = inst.on_message(3, 0, BrachaMsg::Echo(2));
        assert!(a.broadcast.is_empty(), "neither split side may reach quorum");
    }
}
