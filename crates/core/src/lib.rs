#![warn(missing_docs)]

//! # rbvc-core
//!
//! Relaxed Byzantine vector consensus — the algorithms, bounds, validity
//! checkers and impossibility constructions of Xiang & Vaidya, *Relaxed
//! Byzantine Vector Consensus* (SPAA 2016 brief announcement / arXiv
//! 1601.08067).
//!
//! * [`problem`] — the six consensus problems as machine-checkable
//!   agreement/validity/termination conditions.
//! * [`bounds`] — every tight process-count bound (Theorems 1–6) and δ
//!   bound (Table 1, Theorems 9/12/14/15, Conjectures 1–4) as functions.
//! * [`rules`] — the deterministic Step-2 decision rules over the common
//!   broadcast multiset `S`.
//! * [`sync_protocols`] — broadcast-then-decide synchronous protocols:
//!   Exact BVC, k-relaxed consensus, and ALGO (§9).
//! * [`sync_ds`] — the same protocols over Dolev–Strong authenticated
//!   broadcast (substrate ablation).
//! * [`verified_avg`] — the asynchronous (Relaxed) Verified Averaging
//!   algorithm (§10) over Bracha reliable broadcast.
//! * [`counterexamples`] — the impossibility matrices of Theorems 3–6 and
//!   the Figure 1 (Lemma 10) scenario analysis, with LP certificates.
//! * [`runner`] — one-call experiment orchestration.
//! * [`error`] — typed protocol/runner errors; malformed input degrades one
//!   node instead of panicking the run.

pub mod bounds;
pub mod counterexamples;
pub mod error;
pub mod hull_consensus;
pub mod problem;
pub mod rules;
pub mod runner;
pub mod sync_ds;
pub mod sync_protocols;
pub mod verified_avg;

pub use bounds::{exact_bvc_min_n, approx_bvc_min_n, kappa_l2, kappa_lp, kappa_async};
pub use error::ProtocolError;
pub use problem::{check_execution, Agreement, Validity, Verdict};
pub use rules::DecisionRule;
pub use sync_protocols::{ByzantineStrategy, SyncBvc};
pub use verified_avg::{DeltaMode, VerifiedAveraging};
