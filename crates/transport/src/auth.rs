//! Cryptographic link identity: SHA-256, HMAC-SHA-256, pairwise key
//! derivation, and the challenge–response handshake codec.
//!
//! The TCP mesh's plaintext HELLO authenticates a link only in the
//! weakest sense — a peer is whoever claims its process id. This module
//! supplies the primitives that make link identity *forgery-proof*: no
//! crypto crates are vendored (the build is offline), so SHA-256 and
//! HMAC-SHA-256 are implemented here from scratch and validated against
//! the FIPS 180-4 and RFC 4231 known-answer vectors in the test module.
//!
//! ## Key model
//!
//! Every mesh shares one 32-byte **seed key**, distributed out of band
//! (the campaigns thread it through the harness; a deployment would
//! provision it like any other secret). Each unordered pair `{a, b}`
//! derives its **pairwise pre-shared key** deterministically:
//!
//! ```text
//! key_ab = HMAC-SHA256(seed, "rbvc-key-v1" ‖ min(a,b) ‖ max(a,b))
//! ```
//!
//! A node holds only the `n − 1` keys for pairs it belongs to
//! ([`MeshAuth`]); compromising one node therefore forfeits exactly that
//! node's links, not the whole mesh's (the seed itself never travels and
//! is dropped after derivation — see [`MeshAuth::derive`]).
//!
//! ## Handshake (three messages, dialer `d` → responder `r`)
//!
//! ```text
//! d → r   HELLO      "RBH" ver=3  d u32        t0 u64          (16 B)
//! r → d   CHALLENGE  "RBN" ver=3  nonce [16]                   (20 B)
//! d → r   RESPONSE   "RBA" ver=3  d u32  gen u64  t_tx u64
//!                    mac = HMAC(key_dr, "rbvc-hs-v1" ‖ nonce ‖
//!                               d ‖ r ‖ gen ‖ t_tx)  [32]      (56 B)
//! ```
//!
//! The responder picks a fresh random nonce per connection, so a captured
//! handshake can never be replayed — the old MAC covers the old nonce.
//! The MAC binds both endpoint ids (direction binding: a response
//! harvested from the `a → b` direction never verifies as `b → a`, and a
//! reflected challenge is just bytes, not a MAC), the dialer's handshake
//! generation counter, and the send timestamp the skew gauges need. The
//! link only goes live after the responder verifies the MAC.
//!
//! What this layer does **not** provide: confidentiality (frames travel
//! in the clear) and per-frame integrity (a link, once authenticated, is
//! trusted for its lifetime — tampering *within* an established TCP
//! stream is outside the model, which targets forged *connections*).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use rbvc_sim::config::ProcessId;

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4)
// ---------------------------------------------------------------------------

/// SHA-256 round constants: the first 32 bits of the fractional parts of
/// the cube roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a_2f98, 0x7137_4491, 0xb5c0_fbcf, 0xe9b5_dba5, 0x3956_c25b, 0x59f1_11f1, 0x923f_82a4,
    0xab1c_5ed5, 0xd807_aa98, 0x1283_5b01, 0x2431_85be, 0x550c_7dc3, 0x72be_5d74, 0x80de_b1fe,
    0x9bdc_06a7, 0xc19b_f174, 0xe49b_69c1, 0xefbe_4786, 0x0fc1_9dc6, 0x240c_a1cc, 0x2de9_2c6f,
    0x4a74_84aa, 0x5cb0_a9dc, 0x76f9_88da, 0x983e_5152, 0xa831_c66d, 0xb003_27c8, 0xbf59_7fc7,
    0xc6e0_0bf3, 0xd5a7_9147, 0x06ca_6351, 0x1429_2967, 0x27b7_0a85, 0x2e1b_2138, 0x4d2c_6dfc,
    0x5338_0d13, 0x650a_7354, 0x766a_0abb, 0x81c2_c92e, 0x9272_2c85, 0xa2bf_e8a1, 0xa81a_664b,
    0xc24b_8b70, 0xc76c_51a3, 0xd192_e819, 0xd699_0624, 0xf40e_3585, 0x106a_a070, 0x19a4_c116,
    0x1e37_6c08, 0x2748_774c, 0x34b0_bcb5, 0x391c_0cb3, 0x4ed8_aa4a, 0x5b9c_ca4f, 0x682e_6ff3,
    0x748f_82ee, 0x78a5_636f, 0x84c8_7814, 0x8cc7_0208, 0x90be_fffa, 0xa450_6ceb, 0xbef9_a3f7,
    0xc671_78f2,
];

/// Initial hash state: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09_e667, 0xbb67_ae85, 0x3c6e_f372, 0xa54f_f53a, 0x510e_527f, 0x9b05_688c, 0x1f83_d9ab,
    0x5be0_cd19,
];

/// Incremental SHA-256 (FIPS 180-4). Feed bytes with [`Sha256::update`],
/// close with [`Sha256::finalize`].
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partial block awaiting compression.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    #[must_use]
    pub fn new() -> Sha256 {
        Sha256 { state: H0, buf: [0u8; 64], buf_len: 0, len: 0 }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Close the hash: pad (0x80, zeros, 64-bit big-endian bit length) and
    /// return the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length goes straight into the buffer (update would recount it).
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// One compression round over a 64-byte block (FIPS 180-4 §6.2.2).
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (t, chunk) in block.chunks_exact(4).enumerate() {
            w[t] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256 of `data`.
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

// ---------------------------------------------------------------------------
// HMAC-SHA-256 (RFC 2104 / FIPS 198-1)
// ---------------------------------------------------------------------------

/// HMAC-SHA-256 of `msg` under `key` (any key length: keys longer than
/// the 64-byte block are hashed first, per the spec).
#[must_use]
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time 32-byte comparison: the verdict leaks, the mismatch
/// position does not.
#[must_use]
pub fn mac_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

// ---------------------------------------------------------------------------
// Pairwise key derivation
// ---------------------------------------------------------------------------

/// Domain-separation label of the key-derivation MAC.
const KEY_LABEL: &[u8] = b"rbvc-key-v1";

/// The pairwise pre-shared key of the unordered pair `{a, b}`:
/// `HMAC-SHA256(seed, "rbvc-key-v1" ‖ min ‖ max)` (ids as little-endian
/// u32). Symmetric by construction — both ends derive the same key.
#[must_use]
pub fn derive_pair_key(seed: &[u8; 32], a: ProcessId, b: ProcessId) -> [u8; 32] {
    let (lo, hi) = (a.min(b) as u32, a.max(b) as u32);
    let mut msg = Vec::with_capacity(KEY_LABEL.len() + 8);
    msg.extend_from_slice(KEY_LABEL);
    msg.extend_from_slice(&lo.to_le_bytes());
    msg.extend_from_slice(&hi.to_le_bytes());
    hmac_sha256(seed, &msg)
}

/// One node's share of the mesh key material: the pairwise keys for every
/// link this node belongs to, plus the per-process handshake generation
/// counter the dialer binds into its MAC.
pub struct MeshAuth {
    local: ProcessId,
    /// `keys[p]` = pairwise key of `{local, p}` (`keys[local]` is the
    /// degenerate self-pair, present only to keep indexing direct).
    keys: Vec<[u8; 32]>,
    /// Dialer-side handshake counter ("generation" in the response MAC):
    /// strictly increasing per process, so two handshakes from one
    /// process are distinguishable even at equal clock reads.
    generation: AtomicU64,
}

impl MeshAuth {
    /// Derive node `local`'s key share for an `n`-process mesh from the
    /// shared seed. The seed itself is not retained.
    #[must_use]
    pub fn derive(seed: &[u8; 32], local: ProcessId, n: usize) -> MeshAuth {
        let keys = (0..n).map(|p| derive_pair_key(seed, local, p)).collect();
        MeshAuth { local, keys, generation: AtomicU64::new(0) }
    }

    /// The node this share belongs to.
    #[must_use]
    pub fn local(&self) -> ProcessId {
        self.local
    }

    /// Mesh size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.keys.len()
    }

    /// The pairwise key shared with `peer`.
    #[must_use]
    pub fn key(&self, peer: ProcessId) -> &[u8; 32] {
        &self.keys[peer]
    }

    /// Claim the next handshake generation.
    #[must_use]
    pub fn next_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::SeqCst) + 1
    }
}

// ---------------------------------------------------------------------------
// Handshake codec
// ---------------------------------------------------------------------------

/// Handshake version carried by every authenticated-handshake record
/// (plaintext HELLOs are version 2 — see [`crate::tcp::HELLO_VERSION`]).
pub const AUTH_VERSION: u8 = 3;
/// Challenge magic.
pub const CHALLENGE_MAGIC: [u8; 3] = *b"RBN";
/// Response magic.
pub const RESPONSE_MAGIC: [u8; 3] = *b"RBA";
/// Challenge size on the wire: magic + version + 16-byte nonce.
pub const CHALLENGE_LEN: usize = 20;
/// Response size on the wire: magic + version + dialer u32 +
/// generation u64 + `t_tx` u64 + 32-byte MAC.
pub const RESPONSE_LEN: usize = 56;
/// Domain-separation label of the response MAC.
const HS_LABEL: &[u8] = b"rbvc-hs-v1";
/// How long either side waits for the other's next handshake record
/// before giving the connection up.
pub const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Encode a challenge carrying `nonce`.
#[must_use]
pub fn encode_challenge(nonce: &[u8; 16]) -> [u8; CHALLENGE_LEN] {
    let mut out = [0u8; CHALLENGE_LEN];
    out[..3].copy_from_slice(&CHALLENGE_MAGIC);
    out[3] = AUTH_VERSION;
    out[4..].copy_from_slice(nonce);
    out
}

/// Decode a challenge; returns the nonce.
///
/// # Errors
/// A human-readable reason when magic or version are wrong. Never panics
/// on any input.
pub fn decode_challenge(buf: &[u8; CHALLENGE_LEN]) -> Result<[u8; 16], String> {
    if buf[..3] != CHALLENGE_MAGIC {
        return Err("challenge magic mismatch".into());
    }
    if buf[3] != AUTH_VERSION {
        return Err(format!("challenge version {} (expected {AUTH_VERSION})", buf[3]));
    }
    let mut nonce = [0u8; 16];
    nonce.copy_from_slice(&buf[4..]);
    Ok(nonce)
}

/// The fields of a decoded handshake response (MAC not yet verified).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeResponse {
    /// The id the dialer claims.
    pub dialer: u32,
    /// The dialer's handshake generation counter.
    pub generation: u64,
    /// The dialer's monotonic send timestamp (µs) — feeds the skew gauge.
    pub t_tx: u64,
    /// `HMAC(key, "rbvc-hs-v1" ‖ nonce ‖ dialer ‖ responder ‖ generation ‖ t_tx)`.
    pub mac: [u8; 32],
}

/// Encode a response record.
#[must_use]
pub fn encode_response(r: &HandshakeResponse) -> [u8; RESPONSE_LEN] {
    let mut out = [0u8; RESPONSE_LEN];
    out[..3].copy_from_slice(&RESPONSE_MAGIC);
    out[3] = AUTH_VERSION;
    out[4..8].copy_from_slice(&r.dialer.to_le_bytes());
    out[8..16].copy_from_slice(&r.generation.to_le_bytes());
    out[16..24].copy_from_slice(&r.t_tx.to_le_bytes());
    out[24..].copy_from_slice(&r.mac);
    out
}

/// Decode a response record (structure only — verify the MAC separately
/// with [`response_mac`] + [`mac_eq`]).
///
/// # Errors
/// A human-readable reason when magic or version are wrong. Never panics
/// on any input.
pub fn decode_response(buf: &[u8; RESPONSE_LEN]) -> Result<HandshakeResponse, String> {
    if buf[..3] != RESPONSE_MAGIC {
        return Err("response magic mismatch".into());
    }
    if buf[3] != AUTH_VERSION {
        return Err(format!("response version {} (expected {AUTH_VERSION})", buf[3]));
    }
    let mut mac = [0u8; 32];
    mac.copy_from_slice(&buf[24..]);
    Ok(HandshakeResponse {
        dialer: u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")),
        generation: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
        t_tx: u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes")),
        mac,
    })
}

/// The MAC a correct dialer puts in its response:
/// `HMAC(key, "rbvc-hs-v1" ‖ nonce ‖ dialer ‖ responder ‖ generation ‖ t_tx)`.
/// Both endpoint ids are bound (direction binding), so a response
/// harvested from one direction of a pair never verifies for the other.
#[must_use]
pub fn response_mac(
    key: &[u8; 32],
    nonce: &[u8; 16],
    dialer: u32,
    responder: u32,
    generation: u64,
    t_tx: u64,
) -> [u8; 32] {
    let mut msg = Vec::with_capacity(HS_LABEL.len() + 16 + 4 + 4 + 8 + 8);
    msg.extend_from_slice(HS_LABEL);
    msg.extend_from_slice(nonce);
    msg.extend_from_slice(&dialer.to_le_bytes());
    msg.extend_from_slice(&responder.to_le_bytes());
    msg.extend_from_slice(&generation.to_le_bytes());
    msg.extend_from_slice(&t_tx.to_le_bytes());
    hmac_sha256(key, &msg)
}

// ---------------------------------------------------------------------------
// Nonce generation
// ---------------------------------------------------------------------------

/// Per-process nonce seed: 32 bytes from `/dev/urandom` where available,
/// otherwise a hash of whatever per-process entropy `std` exposes. The
/// seed only has to be unpredictable to remote forgers; per-connection
/// uniqueness comes from the counter mixed in below.
fn nonce_seed() -> &'static [u8; 32] {
    static SEED: OnceLock<[u8; 32]> = OnceLock::new();
    SEED.get_or_init(|| {
        let mut seed = [0u8; 32];
        let from_os = std::fs::File::open("/dev/urandom")
            .and_then(|mut f| f.read_exact(&mut seed))
            .is_ok();
        if !from_os {
            let mut h = Sha256::new();
            h.update(&std::process::id().to_le_bytes());
            h.update(&rbvc_obs::clock::now_us().to_le_bytes());
            h.update(&(&seed as *const _ as usize).to_le_bytes());
            h.update(&std::time::UNIX_EPOCH.elapsed().map_or(0, |d| d.as_nanos() as u64).to_le_bytes());
            seed = h.finalize();
        }
        seed
    })
}

/// A fresh 16-byte challenge nonce: `SHA256(seed ‖ counter ‖ clock)`
/// truncated. Unique per call (the counter) and unpredictable to anyone
/// without the process seed.
#[must_use]
pub fn fresh_nonce() -> [u8; 16] {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut h = Sha256::new();
    h.update(nonce_seed());
    h.update(&COUNTER.fetch_add(1, Ordering::Relaxed).to_le_bytes());
    h.update(&rbvc_obs::clock::now_us().to_le_bytes());
    let digest = h.finalize();
    let mut nonce = [0u8; 16];
    nonce.copy_from_slice(&digest[..16]);
    nonce
}

// ---------------------------------------------------------------------------
// Dialer-side handshake driver
// ---------------------------------------------------------------------------

/// Run the dialer side of the handshake on a fresh stream: write the v3
/// HELLO, read the challenge, answer it with a MAC under `key`. The
/// caller picks `generation` and `t_tx` (legitimate endpoints use
/// [`MeshAuth::next_generation`] and the current clock; tests and the
/// attack registry pass forged values). Read timeouts are set for the
/// handshake and cleared before returning.
///
/// # Errors
/// A human-readable reason on any IO failure, timeout, or malformed
/// challenge. The stream should be discarded on error.
pub fn dial_handshake(
    stream: &mut TcpStream,
    claimed_id: ProcessId,
    responder: ProcessId,
    key: &[u8; 32],
    generation: u64,
    t_tx: u64,
) -> Result<(), String> {
    stream
        .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
        .map_err(|e| format!("set handshake timeout: {e}"))?;
    let mut hello = [0u8; 16];
    hello[..3].copy_from_slice(&crate::tcp::HELLO_MAGIC);
    hello[3] = AUTH_VERSION;
    hello[4..8].copy_from_slice(&(claimed_id as u32).to_le_bytes());
    hello[8..].copy_from_slice(&t_tx.to_le_bytes());
    stream.write_all(&hello).map_err(|e| format!("HELLO write failed: {e}"))?;
    let mut challenge = [0u8; CHALLENGE_LEN];
    stream
        .read_exact(&mut challenge)
        .map_err(|e| format!("challenge read failed: {e}"))?;
    let nonce = decode_challenge(&challenge)?;
    let mac = response_mac(
        key,
        &nonce,
        claimed_id as u32,
        responder as u32,
        generation,
        t_tx,
    );
    let response = encode_response(&HandshakeResponse {
        dialer: claimed_id as u32,
        generation,
        t_tx,
        mac,
    });
    stream.write_all(&response).map_err(|e| format!("response write failed: {e}"))?;
    stream.set_read_timeout(None).map_err(|e| format!("clear handshake timeout: {e}"))?;
    Ok(())
}

/// Bytes a dialer-side handshake puts on the wire (HELLO + response) —
/// the accounting constant for `bytes_sent`.
pub const DIAL_HANDSHAKE_TX_LEN: u64 = 16 + RESPONSE_LEN as u64;

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    #[test]
    fn sha256_fips_180_4_known_answers() {
        // FIPS 180-4 / NIST CAVP canonical vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                  hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            )),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
        // One million 'a' (the long-message vector).
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_incremental_matches_oneshot_at_every_split() {
        let msg: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let oneshot = sha256(&msg);
        for split in 0..msg.len() {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn hmac_sha256_rfc_4231_known_answers() {
        // RFC 4231 test cases 1–4, 6, 7 (case 5 truncates the output and
        // is skipped — we never truncate MACs).
        let cases: [(&str, &str, &str); 6] = [
            (
                "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
                &hex(b"Hi There"),
                "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
            ),
            (
                &hex(b"Jefe"),
                &hex(b"what do ya want for nothing?"),
                "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
            ),
            (
                "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
                &"dd".repeat(50),
                "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
            ),
            (
                "0102030405060708090a0b0c0d0e0f10111213141516171819",
                &"cd".repeat(50),
                "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
            ),
            (
                &"aa".repeat(131),
                &hex(b"Test Using Larger Than Block-Size Key - Hash Key First"),
                "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
            ),
            (
                &"aa".repeat(131),
                &hex(
                    b"This is a test using a larger than block-size key and a \
                      larger than block-size data. The key needs to be hashed \
                      before being used by the HMAC algorithm.",
                ),
                "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
            ),
        ];
        for (i, (key, msg, want)) in cases.iter().enumerate() {
            let got = hmac_sha256(&unhex(key), &unhex(msg));
            assert_eq!(hex(&got), *want, "RFC 4231 case {}", i + 1);
        }
    }

    #[test]
    fn pairwise_keys_are_symmetric_distinct_and_seed_bound() {
        let seed_a = [7u8; 32];
        let seed_b = [8u8; 32];
        assert_eq!(derive_pair_key(&seed_a, 2, 5), derive_pair_key(&seed_a, 5, 2));
        assert_ne!(derive_pair_key(&seed_a, 2, 5), derive_pair_key(&seed_a, 2, 6));
        assert_ne!(derive_pair_key(&seed_a, 2, 5), derive_pair_key(&seed_b, 2, 5));
        let auth = MeshAuth::derive(&seed_a, 3, 7);
        assert_eq!(auth.key(0), &derive_pair_key(&seed_a, 0, 3));
        assert_eq!(auth.key(6), &derive_pair_key(&seed_a, 3, 6));
        assert_eq!(auth.n(), 7);
        assert_eq!(auth.local(), 3);
        let g1 = auth.next_generation();
        let g2 = auth.next_generation();
        assert!(g2 > g1 && g1 >= 1);
    }

    #[test]
    fn handshake_codec_round_trips() {
        let nonce = fresh_nonce();
        let challenge = encode_challenge(&nonce);
        assert_eq!(decode_challenge(&challenge), Ok(nonce));
        let r = HandshakeResponse {
            dialer: 4,
            generation: 99,
            t_tx: 123_456_789,
            mac: sha256(b"not a real mac"),
        };
        let bytes = encode_response(&r);
        assert_eq!(decode_response(&bytes), Ok(r));
    }

    #[test]
    fn handshake_codec_rejects_any_single_bit_flip_in_header() {
        // Flipping any bit of the magic/version prefix must be rejected;
        // flips in the body land in the MAC check instead, which the
        // verifier covers (decode is structure-only by design).
        let challenge = encode_challenge(&[9u8; 16]);
        for byte in 0..4 {
            for bit in 0..8 {
                let mut c = challenge;
                c[byte] ^= 1 << bit;
                assert!(decode_challenge(&c).is_err(), "byte {byte} bit {bit}");
            }
        }
        let resp = encode_response(&HandshakeResponse {
            dialer: 1,
            generation: 2,
            t_tx: 3,
            mac: [0xAB; 32],
        });
        for byte in 0..4 {
            for bit in 0..8 {
                let mut r = resp;
                r[byte] ^= 1 << bit;
                assert!(decode_response(&r).is_err(), "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn response_mac_binds_every_field() {
        let key = derive_pair_key(&[1u8; 32], 0, 1);
        let nonce = [5u8; 16];
        let base = response_mac(&key, &nonce, 0, 1, 7, 1000);
        assert_ne!(base, response_mac(&key, &[6u8; 16], 0, 1, 7, 1000), "nonce");
        assert_ne!(base, response_mac(&key, &nonce, 2, 1, 7, 1000), "dialer id");
        assert_ne!(base, response_mac(&key, &nonce, 0, 2, 7, 1000), "responder id");
        assert_ne!(base, response_mac(&key, &nonce, 1, 0, 7, 1000), "direction");
        assert_ne!(base, response_mac(&key, &nonce, 0, 1, 8, 1000), "generation");
        assert_ne!(base, response_mac(&key, &nonce, 0, 1, 7, 1001), "t_tx");
        let other_key = derive_pair_key(&[1u8; 32], 0, 2);
        assert_ne!(base, response_mac(&other_key, &nonce, 0, 1, 7, 1000), "key");
        assert!(mac_eq(&base, &base));
        let mut flipped = base;
        flipped[31] ^= 1;
        assert!(!mac_eq(&base, &flipped));
    }

    #[test]
    fn nonces_never_repeat_across_a_burst() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4096 {
            assert!(seen.insert(fresh_nonce()), "nonce repeated");
        }
    }
}
