//! Typed protocol errors — re-exported from `rbvc-sim`.
//!
//! [`ProtocolError`] historically lived here; it moved down into
//! `rbvc_sim::error` so the message-passing substrates (`rbvc_sim::net`,
//! `rbvc_sim::threads`) and the socket transport (`rbvc-transport`) can
//! degrade through the same typed error without a dependency cycle.  This
//! module re-exports it so every existing `rbvc_core::ProtocolError` /
//! `crate::error::ProtocolError` call site keeps compiling unchanged.
//!
//! See `rbvc_sim::error` for the degrade-don't-panic contract every receive
//! boundary follows.

pub use rbvc_sim::error::{ErrorLog, ProtocolError};
