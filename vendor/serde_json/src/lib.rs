//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the serde stub's [`Value`] tree as JSON text (`to_value`,
//! `to_string`, `to_string_pretty`, and a `json!` macro covering
//! object/array/literal composition with embedded Rust expressions), and
//! parses JSON text back into a [`Value`] tree with [`from_str`] — the
//! surface the experiment records and the `rbvc-obs` trace analyzer use.
//! Unlike real serde_json there is no typed deserialization; readers walk
//! the [`Value`] tree through its accessors (`get`, `as_str`, `as_u64`).

use std::fmt;

pub use serde::Value;
use serde::Serialize;

/// Serialization or parse error. The stub renderer is total (non-finite
/// floats become `null`), so only [`from_str`] actually produces errors:
/// the byte offset and a short message for the first malformed construct.
#[derive(Debug)]
pub struct Error {
    detail: Option<(usize, String)>,
}

impl Error {
    fn parse(pos: usize, msg: impl Into<String>) -> Error {
        Error {
            detail: Some((pos, msg.into())),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.detail {
            Some((pos, msg)) => write!(f, "JSON parse error at byte {pos}: {msg}"),
            None => f.write_str("JSON serialization error"),
        }
    }
}

impl std::error::Error for Error {}

/// Parse one JSON document into a [`Value`] tree.
///
/// Full JSON: objects, arrays, strings with escapes (including `\uXXXX`
/// and surrogate pairs), numbers, booleans, null. Integers that fit are
/// kept exact (`UInt` when non-negative, `Int` when negative); everything
/// else becomes `Float`. Trailing whitespace is allowed, trailing content
/// is an error.
///
/// # Errors
/// Byte offset and message of the first malformed construct.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(p.pos, "trailing content after document"));
    }
    Ok(value)
}

/// Recursion guard: deeper nesting than this is rejected rather than
/// risking a stack overflow on hostile input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected '{kw}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::parse(self.pos, "nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(Error::parse(self.pos, "unexpected character")),
            None => Err(Error::parse(self.pos, "unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::parse(self.pos, "unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(Error::parse(self.pos, "unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::parse(self.pos, "invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(Error::parse(self.pos, "invalid unicode escape"))
                                }
                            }
                        }
                        _ => return Err(Error::parse(self.pos - 1, "unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so byte
                    // boundaries are valid; find the char at this offset).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse(self.pos, "invalid utf-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos;
        let Some(hex) = self.bytes.get(start..start + 4) else {
            return Err(Error::parse(start, "truncated unicode escape"));
        };
        let s = std::str::from_utf8(hex).map_err(|_| Error::parse(start, "invalid hex"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::parse(start, "invalid hex"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse(start, "invalid number"))?;
        if integral {
            // Prefer Int so parsed documents compare equal to ones built
            // by the `Serialize` impls (integer literals encode as Int);
            // UInt is only needed above i64::MAX.
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse(start, "invalid number"))
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Compact single-line JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out);
    Ok(out)
}

/// Pretty JSON with two-space indentation.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render_indented(&mut out, 2, 0);
    Ok(out)
}

/// Build a [`Value`] from a JSON-shaped literal with embedded expressions.
///
/// Object values and array elements are ordinary Rust expressions (any
/// `T: Serialize`); nest documents with an inner `json!({...})` call
/// rather than a bare `{...}` literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![
            $( $crate::to_value($elem).expect("json! element must serialize") ),*
        ])
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( ($crate::json_key!($key),
                $crate::to_value($value).expect("json! value must serialize")) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value($other).expect("json! value must serialize")
    };
}

/// Internal helper for `json!` object keys (string literals or idents).
#[macro_export]
macro_rules! json_key {
    ($key:literal) => {
        ::std::string::String::from($key)
    };
    ($key:ident) => {
        ::std::string::String::from(stringify!($key))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_docs() {
        let xs = vec![1u32, 2, 3];
        let doc = json!({
            "name": "chaos",
            "count": xs.len(),
            "rows": xs,
            "nested": json!({ "ok": true, "nothing": json!(null) }),
            "list": json!([1, "two", 3.0]),
        });
        let text = to_string(&doc).unwrap();
        assert_eq!(
            text,
            r#"{"name":"chaos","count":3,"rows":[1,2,3],"nested":{"ok":true,"nothing":null},"list":[1,"two",3.0]}"#
        );
    }

    #[test]
    fn pretty_rendering_is_indented() {
        let doc = json!({ "a": [1, 2] });
        let text = to_string_pretty(&doc).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn parser_round_trips_rendered_documents() {
        let doc = json!({
            "name": "tr\"ace\n",
            "count": 3,
            "neg": -17,
            "pi": 3.5,
            "flag": true,
            "none": json!(null),
            "rows": json!([1, "two", json!([]), json!({})]),
        });
        let text = to_string(&doc).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = from_str(r#""a\u0041\n\t\u00e9\ud83d\ude00b""#).unwrap();
        assert_eq!(v, Value::Str("aA\n\té😀b".to_string()));
        assert_eq!(from_str("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn parser_number_taxonomy() {
        assert_eq!(from_str("0").unwrap(), Value::Int(0));
        assert_eq!(from_str("18446744073709551615").unwrap(), Value::UInt(u64::MAX));
        assert_eq!(from_str("-5").unwrap(), Value::Int(-5));
        assert_eq!(from_str("1.5e3").unwrap(), Value::Float(1500.0));
        assert_eq!(from_str("  [1, 2]  ").unwrap(), Value::Array(vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "tru", "\"abc", "{\"a\" 1}", "1 2", "{\"a\":}", "\"\\q\""] {
            assert!(from_str(bad).is_err(), "must reject {bad:?}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err(), "depth guard");
    }
}
