//! Replicated controller state under real OS threads — the crossbeam
//! threaded runtime with per-coordinate (1-relaxed) consensus semantics in
//! dimension 5 at only `n = 3f + 1` processes.
//!
//! Scenario: seven replicas (f = 2) of a plant controller periodically
//! agree on a 5-dimensional setpoint vector. Full vector validity would
//! need `n ≥ (d+1)f + 1 = 13` replicas; 1-relaxed validity (each
//! coordinate within the range of honest values for that coordinate,
//! paper §5.3) is the natural contract for independent setpoints and needs
//! only 7. The synchronous lockstep run is repeated on the threaded
//! runtime to show the protocols working under genuine concurrency.
//!
//! ```sh
//! cargo run --example replicated_state
//! ```

use std::time::Duration;

use rbvc_core::problem::{check_execution, Agreement, Validity};
use rbvc_core::rules::DecisionRule;
use rbvc_core::runner::{run_sync, SyncSpec};
use rbvc_core::sync_protocols::ByzantineStrategy;
use rbvc_core::verified_avg::{DeltaMode, VerifiedAveraging};
use rbvc_linalg::{Norm, Tol, VecD};
use rbvc_sim::config::SystemConfig;
use rbvc_sim::threads::{run_threaded, ThreadedNode};

fn main() {
    let (n, f, d) = (7, 2, 5);
    assert!(n == 3 * f + 1, "the 1-relaxed bound");

    // Honest replicas' proposed setpoints; replicas 2 and 5 are Byzantine.
    let inputs: Vec<VecD> = (0..n)
        .map(|i| VecD((0..d).map(|c| (i + c) as f64 / 2.0).collect()))
        .collect();

    // --- Part 1: lockstep synchronous run, per-coordinate rule. ---
    let spec = SyncSpec {
        n,
        f,
        d,
        rule: DecisionRule::CoordinateTrimmedMidpoint,
        inputs: inputs.clone(),
        adversaries: vec![
            (
                2,
                ByzantineStrategy::TwoFaced(
                    (0..n).map(|j| VecD(vec![j as f64 * 100.0; d])).collect(),
                ),
            ),
            (
                5,
                ByzantineStrategy::LyingRelay {
                    input: VecD(vec![-1000.0; d]),
                    corrupt: VecD(vec![7e7; d]),
                },
            ),
        ],
        agreement: Agreement::Exact,
        validity: Validity::KRelaxed(1),
    };
    let report = run_sync(&spec, Tol::default());
    println!("lockstep run — agreed setpoint: {}", report.decisions[0].clone().unwrap());
    println!("lockstep verdict: {:?}", report.verdict);
    assert!(report.verdict.ok());

    // --- Part 2: the same inputs on the threaded runtime (asynchronous
    // Relaxed Verified Averaging), one OS thread per replica. ---
    let faulty = vec![2usize, 5];
    let config = SystemConfig::new(n, f).with_faulty(faulty.clone());
    let nodes: Vec<ThreadedNode<VerifiedAveraging>> = (0..n)
        .map(|i| {
            let proto = VerifiedAveraging::new(
                i,
                n,
                f,
                inputs[i].clone(),
                DeltaMode::MinDelta(Norm::L2),
                20,
                Tol::default(),
            );
            if faulty.contains(&i) {
                // Byzantine-but-protocol-following with adversarial inputs:
                // the strongest behaviour that still lets threads interleave
                // freely (message-corrupting strategies are exercised in the
                // deterministic engine tests).
                ThreadedNode::Byzantine(Box::new(
                    rbvc_core::verified_avg::HonestFacade(proto),
                ))
            } else {
                ThreadedNode::Honest(proto)
            }
        })
        .collect();
    let out = run_threaded(&config, nodes, Duration::from_secs(60));
    assert!(out.all_decided, "threaded run must decide");
    let correct_inputs: Vec<VecD> = config
        .correct_ids()
        .into_iter()
        .map(|i| inputs[i].clone())
        .collect();
    let decisions: Vec<Option<VecD>> = config
        .correct_ids()
        .into_iter()
        .map(|i| out.decisions[i].clone())
        .collect();
    let verdict = check_execution(
        &correct_inputs,
        &decisions,
        Agreement::Epsilon(1e-3),
        &Validity::InputDependentDeltaP {
            kappa: 1.0,
            norm: Norm::L2,
        },
        Tol::default(),
    );
    println!(
        "\nthreaded run ({} OS threads, {:?}):",
        n, out.elapsed
    );
    for dec in decisions.iter().flatten().take(2) {
        println!("  agreed value: {dec}");
    }
    println!("threaded verdict: {verdict:?}");
    assert!(verdict.ok());
    println!("\nboth runtimes agree: 7 replicas, 2 Byzantine, 5-dimensional state.");
}
