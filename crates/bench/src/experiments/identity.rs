//! E23 — the impersonation campaign: the keyed link-identity layer under
//! live identity attacks, end to end over real TCP.
//!
//! E20 established that Byzantine *payloads* cannot corrupt honest
//! decisions. E23 attacks the layer below: the adversary tries to *become
//! someone else* — claiming an honest node's id in the handshake, replaying
//! a captured handshake against a fresh nonce, reflecting the challenge
//! nonce as a MAC, flipping a bit in an otherwise valid MAC, and
//! downgrading to the plaintext v2 HELLO while claiming an honest id. The
//! threat model is deliberately sharp: the attacker holds its *own*
//! pairwise keys (the keyring a compromised node would really have), never
//! the mesh seed or any honest-pair key.
//!
//! Each seeded run reuses E20's three-phase machinery (in-proc honest
//! baseline → clean authenticated TCP reference → attack run) with the mix
//! list widened to the full registry: the five identity mixes plus every
//! classic mix, the latter now speaking the authenticated protocol (their
//! raw wire attacks upgrade to captured-response replays and keyed redial
//! storms when a keyring is present). The campaign passes only if:
//!
//! * every run converges and every honest decision is **bit-identical** to
//!   the honest-only baseline — no forged frame ever reached delivery;
//! * the online safety monitor never fires;
//! * zero gate rejections and zero handshake rejections are attributed to
//!   honest traffic during the clean references;
//! * every identity mix's forgeries were *refused* — its attack runs
//!   produced `auth_rejects > 0` (a silent zero would mean the attack never
//!   exercised the layer);
//! * the handshake overhead is bounded: standing up the 7-node
//!   authenticated mesh stays within an absolute budget, measured against
//!   a plaintext control.
//!
//! Results land in `BENCH_identity.json` (picked up by `exp_trajectory`).

use std::time::Instant;

use rbvc_transport::byzantine::AttackRegistry;
use rbvc_transport::{tcp_mesh_loopback, tcp_mesh_loopback_authenticated};

use crate::experiments::byzantine::{
    mesh_seed, run_campaign, ByzantineConfig, ByzantineOutcome,
};

/// The five identity mixes (registry names), in registry order.
pub const IDENTITY_ATTACKS: [&str; 5] =
    ["impersonate", "hs-replay", "nonce-reflect", "mac-flip", "downgrade"];

/// Absolute budget for standing up one 7-node authenticated mesh, ms.
/// Loopback handshakes cost tens of microseconds; the budget is three
/// orders of magnitude of slack for a loaded CI box, while still catching
/// a handshake that spins or serializes the whole mesh.
pub const HANDSHAKE_BUDGET_MS: f64 = 2_000.0;

/// Campaign configuration: E20's three-phase config plus the
/// handshake-overhead probe.
#[derive(Clone)]
pub struct IdentityConfig {
    /// The underlying three-phase campaign config. `auth` is always
    /// `Some` here — a plaintext E23 would be vacuous.
    pub campaign: ByzantineConfig,
    /// Mesh constructions per arm of the handshake-overhead probe.
    pub handshake_trials: usize,
}

impl IdentityConfig {
    /// Full profile: 7 nodes, `f = 2`, the whole 14-mix registry cycled
    /// `runs` times (42 by default — three passes over the registry).
    #[must_use]
    pub fn full(runs: usize, seed: u64) -> Self {
        let mut campaign = ByzantineConfig::full(runs, seed);
        campaign.attacks = AttackRegistry::NAMES.to_vec();
        campaign.auth = Some(mesh_seed(seed ^ 0xE23));
        IdentityConfig { campaign, handshake_trials: 5 }
    }

    /// CI-sized profile: one run per identity mix, smaller instances.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        let mut campaign = ByzantineConfig::smoke(seed);
        campaign.attacks = IDENTITY_ATTACKS.to_vec();
        campaign.runs = default_runs(true);
        campaign.auth = Some(mesh_seed(seed ^ 0xE23));
        IdentityConfig { campaign, handshake_trials: 2 }
    }
}

/// Default run counts: one run per identity mix for `--smoke`, 42 for the
/// full campaign (three passes over the 14-mix registry, clearing the
/// acceptance floor of 40).
#[must_use]
pub fn default_runs(smoke: bool) -> usize {
    if smoke {
        IDENTITY_ATTACKS.len()
    } else {
        AttackRegistry::NAMES.len() * 3
    }
}

/// The handshake-overhead probe: wall clock to stand up an `n`-node
/// loopback mesh, authenticated vs plaintext, averaged over trials.
#[derive(Debug, Clone)]
pub struct HandshakeOverhead {
    /// Mesh size probed.
    pub n: usize,
    /// Trials per arm.
    pub trials: usize,
    /// Mean plaintext mesh construction, ms.
    pub plain_ms: f64,
    /// Mean authenticated mesh construction, ms.
    pub auth_ms: f64,
    /// `auth_ms / plain_ms` (informational — construction wall clock is
    /// dominated by thread spawn and TCP accept, so the keyed handshake
    /// typically hides inside the noise).
    pub ratio: f64,
}

impl HandshakeOverhead {
    /// Within the absolute budget?
    #[must_use]
    pub fn bounded(&self) -> bool {
        self.auth_ms.is_finite() && self.auth_ms < HANDSHAKE_BUDGET_MS
    }
}

/// Measure mesh-construction wall clock, authenticated vs plaintext.
/// Arms alternate so a load spike on the host hits both.
#[must_use]
pub fn measure_handshake_overhead(n: usize, trials: usize, seed: u64) -> HandshakeOverhead {
    let auth_seed = mesh_seed(seed ^ 0x4853); // "HS"
    let mut plain_total = 0.0;
    let mut auth_total = 0.0;
    for _ in 0..trials.max(1) {
        let t0 = Instant::now();
        drop(tcp_mesh_loopback(n).expect("plaintext mesh"));
        plain_total += t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        drop(tcp_mesh_loopback_authenticated(n, &auth_seed).expect("authenticated mesh"));
        auth_total += t1.elapsed().as_secs_f64() * 1e3;
    }
    let trials = trials.max(1);
    let plain_ms = plain_total / trials as f64;
    let auth_ms = auth_total / trials as f64;
    let ratio = if plain_ms > 0.0 { auth_ms / plain_ms } else { f64::NAN };
    HandshakeOverhead { n, trials, plain_ms, auth_ms, ratio }
}

/// Campaign outcome: the three-phase campaign verdicts plus the
/// identity-specific gates.
#[derive(Debug, Clone)]
pub struct IdentityOutcome {
    /// The underlying campaign (convergence, bit-identity, monitor,
    /// attribution, per-mix reports).
    pub campaign: ByzantineOutcome,
    /// The handshake-overhead probe.
    pub overhead: HandshakeOverhead,
}

impl IdentityOutcome {
    /// Per-identity-mix `(name, auth_rejects, runs)` rows, registry order,
    /// only mixes that actually ran.
    #[must_use]
    pub fn identity_rows(&self) -> Vec<(&str, u64, usize)> {
        self.campaign
            .reports
            .iter()
            .filter(|r| IDENTITY_ATTACKS.contains(&r.attack.as_str()))
            .map(|r| (r.attack.as_str(), r.auth_rejects, r.runs))
            .collect()
    }

    /// Identity mixes that ran but whose forgeries were never refused —
    /// a silent zero means the attack never exercised the auth layer.
    #[must_use]
    pub fn silent_identity_mixes(&self) -> Vec<&str> {
        self.identity_rows()
            .into_iter()
            .filter(|&(_, rejects, runs)| runs > 0 && rejects == 0)
            .map(|(name, _, _)| name)
            .collect()
    }

    /// The campaign's pass verdict (see the module docs for the gates).
    #[must_use]
    pub fn clean(&self) -> bool {
        self.campaign.clean()
            && self.silent_identity_mixes().is_empty()
            && self.overhead.bounded()
    }
}

/// Run the campaign: the three-phase mix cycle, then the
/// handshake-overhead probe.
#[must_use]
pub fn run(cfg: &IdentityConfig) -> IdentityOutcome {
    assert!(cfg.campaign.auth.is_some(), "E23 requires an authenticated mesh");
    let campaign = run_campaign(&cfg.campaign);
    let overhead =
        measure_handshake_overhead(cfg.campaign.n, cfg.handshake_trials, cfg.campaign.seed);
    IdentityOutcome { campaign, overhead }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// One run per identity mix, tiny instances: every forgery family is
    /// refused with rejects attributed, honest decisions stay bit-identical
    /// to the oracle, and the overhead probe returns sane numbers.
    #[test]
    fn micro_identity_campaign_refuses_every_forgery_family() {
        let mut campaign = ByzantineConfig::full(IDENTITY_ATTACKS.len(), 0xE23_0001);
        campaign.attacks = IDENTITY_ATTACKS.to_vec();
        campaign.auth = Some(mesh_seed(0xE23_0001));
        campaign.instances = 1;
        campaign.va_rounds = 2;
        campaign.client_requests = 0;
        campaign.poll_timeout = Duration::from_millis(1);
        let cfg = IdentityConfig { campaign, handshake_trials: 1 };
        let out = run(&cfg);
        assert!(
            out.campaign.clean(),
            "campaign not clean: converged {}/{} identical {}/{} violations {} honest-gates {} clean-auth {}",
            out.campaign.converged_runs,
            out.campaign.runs,
            out.campaign.identical_runs,
            out.campaign.runs,
            out.campaign.monitor_violations,
            out.campaign.honest_attributed_rejections,
            out.campaign.clean_auth_rejects,
        );
        assert_eq!(out.identity_rows().len(), IDENTITY_ATTACKS.len(), "every mix must report");
        assert!(
            out.silent_identity_mixes().is_empty(),
            "identity mixes with zero auth rejects: {:?} (rows: {:?})",
            out.silent_identity_mixes(),
            out.identity_rows(),
        );
        assert!(out.overhead.auth_ms > 0.0 && out.overhead.plain_ms > 0.0);
        assert!(out.clean());
    }
}
