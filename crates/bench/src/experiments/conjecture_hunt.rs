//! E14 (extension) — adversarial stress-search for the paper's open
//! conjectures.
//!
//! Conjecture 1 claims `δ*(S) < max-edge(E₊) / (⌊n/f⌋ − 2)` for
//! `3f+1 ≤ n < (d+1)f`; Conjecture 2 extends it to all
//! `3f+1 ≤ n ≤ (d+1)f`. Monte-Carlo sampling (E1) only probes typical
//! configurations; this module runs a **(1+1) evolutionary hill-climb on
//! the input points that maximizes the ratio δ*/bound**, with the fault
//! designation chosen adversarially (the `f` points whose removal
//! *minimizes* the remaining max-edge are declared faulty, which minimizes
//! the bound). A ratio reaching 1 would *refute* the conjecture; the
//! supremum found is tightness evidence. The same hunter runs against the
//! proven Theorem 9 bounds as a calibration control (it must stay < 1).

use rbvc_geometry::combinatorics::combinations;
use rbvc_geometry::minmax::{delta_star, MinMaxOptions};
use rbvc_geometry::pairwise_edges;
use rbvc_linalg::{Norm, Tol, VecD};
use rand::rngs::StdRng;
use rand::Rng;

use crate::workloads::rng;

/// Result of one hunt.
#[derive(Debug, Clone, serde::Serialize)]
pub struct HuntResult {
    /// Configuration.
    pub n: usize,
    /// Fault bound.
    pub f: usize,
    /// Dimension.
    pub d: usize,
    /// Which bound was hunted.
    pub target: HuntTarget,
    /// Best (largest) δ*/bound ratio found.
    pub best_ratio: f64,
    /// Evaluations spent.
    pub evaluations: usize,
    /// True iff a violation (ratio ≥ 1) was found — refuting the statement.
    pub violation_found: bool,
}

/// Which statement the hunter attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum HuntTarget {
    /// Theorem 9: min(min-edge/2, max-edge/(n−2)), f = 1 (control).
    Theorem9,
    /// Theorem 12: max-edge/(d−1) at n = (d+1)f, f ≥ 2 (control).
    Theorem12,
    /// Conjecture 1/2: max-edge/(⌊n/f⌋−2), 3f+1 ≤ n ≤ (d+1)f.
    Conjecture,
}

/// Ratio of `δ*(S)` to the target bound, with the fault designation chosen
/// adversarially (the bound minimized over all size-`f` fault sets).
#[must_use]
pub fn adversarial_ratio(
    points: &[VecD],
    f: usize,
    target: HuntTarget,
    tol: Tol,
) -> f64 {
    let n = points.len();
    let delta = delta_star(points, f, Norm::L2, tol, MinMaxOptions::default()).delta;
    if delta <= 0.0 {
        return 0.0;
    }
    // Adversarial designation: minimize the bound over fault sets.
    let mut min_bound = f64::INFINITY;
    for faulty in combinations(n, f) {
        let correct: Vec<VecD> = (0..n)
            .filter(|i| !faulty.contains(i))
            .map(|i| points[i].clone())
            .collect();
        let edges = pairwise_edges(&correct);
        let max_edge = edges.iter().copied().fold(0.0_f64, f64::max);
        let min_edge = edges.iter().copied().fold(f64::INFINITY, f64::min);
        let d = points[0].dim();
        let bound = match target {
            HuntTarget::Theorem9 => (min_edge / 2.0).min(max_edge / (n as f64 - 2.0)),
            HuntTarget::Theorem12 => max_edge / (d as f64 - 1.0),
            HuntTarget::Conjecture => max_edge / ((n / f) as f64 - 2.0),
        };
        min_bound = min_bound.min(bound);
    }
    if min_bound <= 0.0 {
        // All correct inputs coincide: δ* should be 0 too; treat as no-signal.
        return 0.0;
    }
    delta / min_bound
}

/// Run a (1+1) hill-climb with restarts.
#[must_use]
pub fn hunt(
    n: usize,
    f: usize,
    d: usize,
    target: HuntTarget,
    restarts: usize,
    iters_per_restart: usize,
    seed: u64,
) -> HuntResult {
    let tol = Tol::default();
    let mut best_overall = 0.0_f64;
    let mut evaluations = 0usize;
    for restart in 0..restarts {
        let mut r = rng(seed + restart as u64 * 7919);
        let mut current: Vec<VecD> = (0..n)
            .map(|_| VecD((0..d).map(|_| r.gen_range(-1.0..1.0)).collect()))
            .collect();
        let mut current_ratio = adversarial_ratio(&current, f, target, tol);
        evaluations += 1;
        let mut step = 0.4_f64;
        for it in 0..iters_per_restart {
            let candidate = mutate(&current, &mut r, step);
            let ratio = adversarial_ratio(&candidate, f, target, tol);
            evaluations += 1;
            if ratio > current_ratio {
                current = candidate;
                current_ratio = ratio;
            } else if it % 20 == 19 {
                step *= 0.8; // anneal when progress stalls
            }
        }
        best_overall = best_overall.max(current_ratio);
    }
    HuntResult {
        n,
        f,
        d,
        target,
        best_ratio: best_overall,
        evaluations,
        violation_found: best_overall >= 1.0,
    }
}

fn mutate(points: &[VecD], r: &mut StdRng, step: f64) -> Vec<VecD> {
    let mut out = points.to_vec();
    let which = r.gen_range(0..out.len());
    let coord = r.gen_range(0..out[which].dim());
    out[which][coord] += r.gen_range(-step..step);
    out
}

/// The standard hunt sweep: proven controls + the conjecture rows.
#[must_use]
pub fn hunt_sweep(restarts: usize, iters: usize, seed: u64) -> Vec<HuntResult> {
    vec![
        // Controls (proven theorems — ratios must stay < 1).
        hunt(4, 1, 3, HuntTarget::Theorem9, restarts, iters, seed),
        hunt(8, 2, 3, HuntTarget::Theorem12, restarts.min(2), iters / 2, seed + 1),
        // Conjecture 1 regime.
        hunt(7, 2, 5, HuntTarget::Conjecture, restarts.min(2), iters / 2, seed + 2),
        hunt(8, 2, 4, HuntTarget::Conjecture, restarts.min(2), iters / 2, seed + 3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem9_control_stays_below_one() {
        let result = hunt(4, 1, 3, HuntTarget::Theorem9, 2, 60, 11);
        assert!(!result.violation_found, "proven bound refuted?! {result:?}");
        assert!(result.best_ratio > 0.1, "hunter made no progress: {result:?}");
        assert!(result.best_ratio < 1.0);
    }

    #[test]
    fn conjecture_hunt_runs_and_reports() {
        let result = hunt(7, 2, 5, HuntTarget::Conjecture, 1, 15, 3);
        assert!(result.evaluations >= 16);
        assert!(
            result.best_ratio < 1.0,
            "conjecture violation claimed — investigate immediately: {result:?}"
        );
    }

    #[test]
    fn adversarial_designation_minimizes_bound() {
        // With one extreme outlier, the adversarial fault set must include
        // it (removing it shrinks max-edge the most → smallest bound).
        let points = vec![
            VecD::from_slice(&[0.0, 0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0, 0.0]),
            VecD::from_slice(&[100.0, 100.0, 100.0]),
        ];
        let with_outlier = adversarial_ratio(&points, 1, HuntTarget::Theorem9, Tol::default());
        // Ratio computed against the small cluster's edges — so a large δ*
        // (driven by the far-away simplex geometry) against a small bound.
        assert!(with_outlier > 0.0);
    }
}
