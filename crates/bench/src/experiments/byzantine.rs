//! E20 — live Byzantine adversaries over real TCP: the paper's universally
//! quantified "survives f Byzantine nodes" claim, tested end to end through
//! the wire codec, HELLO authentication, receive gates, and reconnection
//! machinery instead of only inside the simulator.
//!
//! Each seeded run stands up an `n = 7` loopback TCP mesh, samples `f = 2`
//! malicious nodes, and wraps every endpoint in a
//! [`ByzantineEndpoint`] — honest nodes under the passthrough policy,
//! malicious ones under one of the attack registry's mixes (the runs cycle
//! through all of them). Three phases per run:
//!
//! 1. **in-proc baseline** — the `n - f` honest nodes alone over the
//!    in-process transport: the decision oracle;
//! 2. **clean TCP reference** — the same honest nodes over TCP with the
//!    Byzantine slots idle: the honest-path timing reference;
//! 3. **attack run** — all `n` nodes over TCP, the `f` malicious ones
//!    actively equivocating / lying / muting / spraying / replaying.
//!
//! The baseline and reference run honest nodes *only* because that is the
//! oracle the attack run must match: every registry mix equivocates or
//! mutes the adversary's own states (see `rbvc_transport::byzantine`), so
//! Byzantine-origin states never reach Bracha delivery at honest nodes and
//! honest progress is a pure function of the honest inputs. An online
//! [`ServiceMonitor`] checks agreement + box validity over the honest
//! inputs during both TCP phases, and the campaign asserts the attack-run
//! decisions are **bit-identical** to the baseline. The honest-path
//! slowdown (wall clock, p50/p99 submit→decide latency) and the per-gate ×
//! per-sender rejection attribution land in `BENCH_byzantine.json`.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::thread;
use std::time::{Duration, Instant};

use rand::Rng;
use rbvc_client::ClientHandle;
use rbvc_core::verified_avg::{DeltaMode, VerifiedAveraging};
use rbvc_linalg::{Norm, Tol, VecD};
use rbvc_sim::monitor::{box_validity, epsilon_agreement, SafetyMonitor, ServiceMonitor};
use rbvc_transport::byzantine::{AttackPolicy, AttackRegistry, AttackStats, ByzantineEndpoint};
use rbvc_transport::service::{
    ClientConfig, ConsensusService, InstanceProto, CLIENT_INSTANCE_BASE,
};
use rbvc_transport::tcp::TcpEndpoint;
use rbvc_transport::transport::in_proc_mesh;
use rbvc_transport::ClientPort;

use crate::experiments::service::percentile;
use crate::workloads::{max_edge, rng};

/// Campaign configuration.
#[derive(Clone)]
pub struct ByzantineConfig {
    /// Mesh size (the paper regime `n > 3f` with room to spare: 7 > 6).
    pub n: usize,
    /// Byzantine nodes per run.
    pub f: usize,
    /// Vector dimension.
    pub d: usize,
    /// Concurrent VA instances per run (ids `1..=instances`).
    pub instances: usize,
    /// Averaging rounds per VA instance.
    pub va_rounds: usize,
    /// Seeded runs (each picks its own Byzantine set and attack mix).
    pub runs: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Receive-wait per service poll.
    pub poll_timeout: Duration,
    /// Sweep budget per mesh phase before the run is declared stuck.
    pub max_sweeps: usize,
    /// Honest-client submits per TCP phase (session owned by an honest
    /// node, driven through a real `ClientPort` while the attack's
    /// "client-spray" volleys hammer the same ports). `0` disables the
    /// client plane entirely.
    pub client_requests: usize,
    /// Keyed link identity: `Some(seed)` runs both TCP phases over an
    /// *authenticated* mesh (pairwise PSKs derived from the seed, keyed
    /// challenge–response handshakes), and hands each Byzantine endpoint
    /// its own keyring so the raw wire attacks speak the authenticated
    /// protocol. `None` is the legacy plaintext HELLO mesh.
    pub auth: Option<[u8; 32]>,
    /// The attack mixes this campaign cycles through (`run % len` picks).
    pub attacks: Vec<&'static str>,
    /// Shared `/status` board the services publish into (per-link auth
    /// state rides the snapshot rows); `None` skips publishing.
    pub status: Option<rbvc_obs::StatusBoard>,
}

/// The classic E20 cycle: every pre-identity registry mix. The five
/// identity mixes live in the E23 campaign (`exp_identity`), which needs
/// an authenticated mesh to mean anything.
pub const E20_ATTACKS: [&str; 9] = [
    "equivocate",
    "lying-witness",
    "mute",
    "garbage",
    "gate-spray",
    "hello-replay",
    "redial-storm",
    "client-spray",
    "combined",
];

/// A 32-byte mesh-auth seed derived from a campaign seed.
#[must_use]
pub fn mesh_seed(seed: u64) -> [u8; 32] {
    rbvc_transport::sha256(&seed.to_le_bytes())
}

impl ByzantineConfig {
    /// The full campaign profile: 7 nodes, `f = 2`, two instances.
    #[must_use]
    pub fn full(runs: usize, seed: u64) -> Self {
        ByzantineConfig {
            n: 7,
            f: 2,
            d: 2,
            instances: 2,
            va_rounds: 3,
            runs,
            seed,
            poll_timeout: Duration::from_millis(1),
            max_sweeps: 40_000,
            client_requests: 3,
            auth: Some(mesh_seed(seed)),
            attacks: E20_ATTACKS.to_vec(),
            status: None,
        }
    }

    /// CI-sized profile — still 7 nodes and `f = 2` (shrinking the mesh
    /// would change the Byzantine regime, which is the whole point), but
    /// one instance, fewer rounds, fewer runs.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        ByzantineConfig {
            n: 7,
            f: 2,
            d: 2,
            instances: 1,
            va_rounds: 2,
            runs: default_runs(true),
            seed,
            poll_timeout: Duration::from_millis(1),
            max_sweeps: 40_000,
            client_requests: 2,
            auth: Some(mesh_seed(seed)),
            attacks: E20_ATTACKS.to_vec(),
            status: None,
        }
    }
}

/// Default run counts: 9 for `--smoke` (one run per classic mix, so CI
/// exercises every attack including the client-spray), 50 for the full
/// campaign (the acceptance floor).
#[must_use]
pub fn default_runs(smoke: bool) -> usize {
    if smoke {
        E20_ATTACKS.len()
    } else {
        50
    }
}

/// Per-attack aggregation across the campaign's runs.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Registry name of the mix.
    pub attack: String,
    /// Runs that cycled onto this mix.
    pub runs: usize,
    /// Honest wall-clock seconds, summed over this mix's clean references.
    pub clean_secs: f64,
    /// Honest wall-clock seconds, summed over this mix's attack runs.
    pub attack_secs: f64,
    /// Honest-path slowdown: attack wall over clean wall (1.0 = free).
    pub slowdown: f64,
    /// Median honest submit→decide latency, clean reference, ms.
    pub clean_p50_ms: f64,
    /// 99th-percentile honest submit→decide latency, clean reference, ms.
    pub clean_p99_ms: f64,
    /// Median honest submit→decide latency under attack, ms.
    pub attack_p50_ms: f64,
    /// 99th-percentile honest submit→decide latency under attack, ms.
    pub attack_p99_ms: f64,
    /// Gate rejections at honest nodes attributed to Byzantine senders,
    /// `[decode, auth, instance, kind]`.
    pub gates_from_byz: [u64; 4],
    /// Gate rejections attributed to honest senders (must stay 0 — honest
    /// traffic never trips a gate).
    pub gates_from_honest: [u64; 4],
    /// What the attackers did (summed endpoint stats).
    pub stats: AttackStats,
    /// Stale HELLO replays refused by the transport guard.
    pub stale_hellos: u64,
    /// Forged / replayed / downgraded handshakes refused by the keyed
    /// link-identity layer during the attack runs (0 on a plaintext mesh).
    pub auth_rejects: u64,
    /// Median honest-client submit→reply latency, clean reference, ms.
    pub client_clean_p50_ms: f64,
    /// 99th-percentile honest-client latency, clean reference, ms.
    pub client_clean_p99_ms: f64,
    /// Median honest-client submit→reply latency under attack, ms.
    pub client_attack_p50_ms: f64,
    /// 99th-percentile honest-client latency under attack, ms.
    pub client_attack_p99_ms: f64,
    /// Client-port frame rejections during the attack runs (crafted spray
    /// frames counted at the port before they can touch the client table).
    pub client_rejects: u64,
    /// Client-table redirects during the attack runs (the sprays' valid
    /// probe submits carry foreign sessions, so they draw `Redirect`
    /// instead of admission).
    pub client_redirects: u64,
}

/// Campaign outcome.
#[derive(Debug, Clone)]
pub struct ByzantineOutcome {
    /// Runs executed.
    pub runs: usize,
    /// Byzantine nodes per run.
    pub f: usize,
    /// Runs whose three phases all converged.
    pub converged_runs: usize,
    /// Runs whose attack-run honest decisions matched the in-proc baseline
    /// bit for bit (and the clean TCP reference too).
    pub identical_runs: usize,
    /// Online safety-monitor violations across every phase (must be 0).
    pub monitor_violations: usize,
    /// Gate rejections attributed to honest senders across the campaign
    /// (must be 0).
    pub honest_attributed_rejections: u64,
    /// Client-port rejections during the *clean* references (must be 0 —
    /// the honest client never sends a malformed frame, so any clean-phase
    /// reject would be a misattribution).
    pub client_honest_rejections: u64,
    /// Honest-client replies whose decision strayed from the submitted
    /// value by more than the agreement tolerance (must be 0).
    pub client_reply_errors: u64,
    /// Handshake rejections during the *clean* references (must be 0 —
    /// every clean-phase handshake is genuine, so any reject there would
    /// mean the auth layer is refusing honest identity).
    pub clean_auth_rejects: u64,
    /// Per-attack aggregation, in registry order.
    pub reports: Vec<AttackReport>,
    /// Campaign wall clock, seconds.
    pub wall_secs: f64,
}

impl ByzantineOutcome {
    /// The campaign's pass verdict: everything converged, every honest
    /// decision matched the oracle, no monitor violation, every gate
    /// rejection attributed to an attacker, and the client plane clean —
    /// no clean-phase port reject, no wrong reply to the honest client.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.converged_runs == self.runs
            && self.identical_runs == self.runs
            && self.monitor_violations == 0
            && self.honest_attributed_rejections == 0
            && self.client_honest_rejections == 0
            && self.client_reply_errors == 0
            && self.clean_auth_rejects == 0
    }
}

/// One run's raw facts (shared with the E23 identity campaign, which
/// drives the same three-phase machinery over its own mix list).
pub(crate) struct RunFacts {
    pub(crate) attack: &'static str,
    pub(crate) converged: bool,
    pub(crate) identical: bool,
    pub(crate) violations: usize,
    pub(crate) clean_secs: f64,
    pub(crate) attack_secs: f64,
    pub(crate) clean_latencies: Vec<f64>,
    pub(crate) attack_latencies: Vec<f64>,
    pub(crate) gates_from_byz: [u64; 4],
    pub(crate) gates_from_honest: [u64; 4],
    pub(crate) stats: AttackStats,
    pub(crate) stale_hellos: u64,
    pub(crate) auth_rejects_clean: u64,
    pub(crate) auth_rejects_attack: u64,
    pub(crate) clean_client_latencies: Vec<f64>,
    pub(crate) attack_client_latencies: Vec<f64>,
    pub(crate) client_rejects_clean: u64,
    pub(crate) client_rejects_attack: u64,
    pub(crate) client_redirects_attack: u64,
    pub(crate) client_reply_errors: u64,
}

fn va_instance(
    cfg: &ByzantineConfig,
    id: usize,
    input: &VecD,
) -> InstanceProto {
    InstanceProto::Va(VerifiedAveraging::new(
        id,
        cfg.n,
        cfg.f,
        input.clone(),
        DeltaMode::MinDelta(Norm::L2),
        cfg.va_rounds,
        Tol::default(),
    ))
}

/// Stand up a TCP mesh on pre-bound loopback addresses, returning the
/// addresses so the attack registry's raw-socket attacks know where the
/// listeners live. `auth: Some(seed)` makes every link run the keyed
/// challenge–response handshake.
fn stable_tcp_mesh(n: usize, auth: Option<&[u8; 32]>) -> (Vec<TcpEndpoint>, Vec<SocketAddr>) {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback"))
        .collect();
    let addrs: Vec<SocketAddr> =
        listeners.iter().map(|l| l.local_addr().expect("local addr")).collect();
    let auth = auth.copied();
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| {
            let addrs = addrs.clone();
            thread::spawn(move || match auth {
                Some(seed) => TcpEndpoint::connect_with_auth(id, listener, &addrs, &seed),
                None => TcpEndpoint::connect(id, listener, &addrs),
            })
        })
        .collect();
    let mesh = handles
        .into_iter()
        .map(|h| h.join().expect("no panic").expect("tcp connect"))
        .collect();
    (mesh, addrs)
}

/// The honest-only in-process baseline: the decision oracle. Byzantine
/// slots exist as endpoints (so sends to them don't error) but run no
/// service and stay silent.
fn baseline_decisions(
    cfg: &ByzantineConfig,
    inputs: &[Vec<VecD>],
    byz: &[usize],
) -> Option<Vec<BTreeMap<u64, VecD>>> {
    let mut endpoints = in_proc_mesh(cfg.n);
    let mut idle = Vec::new();
    let mut services: Vec<(usize, ConsensusService<_>)> = Vec::new();
    for i in (0..cfg.n).rev() {
        let ep = endpoints.pop().expect("mesh endpoint");
        if byz.contains(&i) {
            idle.push(ep);
        } else {
            let mut svc = ConsensusService::new(ep);
            for (j, per_node) in inputs.iter().enumerate() {
                svc.add_instance(j as u64 + 1, va_instance(cfg, i, &per_node[i]))
                    .expect("unique instance ids");
            }
            svc.start().expect("start baseline service");
            services.push((i, svc));
        }
    }
    services.sort_by_key(|(i, _)| *i);
    for _ in 0..cfg.max_sweeps {
        if services.iter().all(|(_, s)| s.all_decided()) {
            let mut out = vec![BTreeMap::new(); cfg.n];
            for (i, svc) in &services {
                out[*i] = (1..=cfg.instances as u64)
                    .filter_map(|k| svc.decision(k).map(|v| (k, v)))
                    .collect();
            }
            drop(idle);
            return Some(out);
        }
        for (_, svc) in &mut services {
            let _ = svc.poll(cfg.poll_timeout);
        }
    }
    None
}

/// One TCP mesh phase. `attack`: `Some(mix)` starts the Byzantine nodes'
/// services behind attacking endpoints; `None` is the clean reference —
/// the Byzantine slots stay idle so the honest trajectory matches the
/// baseline exactly.
struct MeshRun {
    converged: bool,
    wall_secs: f64,
    latencies_ms: Vec<f64>,
    decisions: Vec<BTreeMap<u64, VecD>>,
    gates_by_sender: Vec<[u64; 4]>,
    stats: AttackStats,
    client_latencies_ms: Vec<f64>,
    client_rejects: u64,
    client_redirects: u64,
    client_reply_errors: u64,
}

fn run_tcp_mesh(
    cfg: &ByzantineConfig,
    inputs: &[Vec<VecD>],
    byz: &[usize],
    attack: Option<&str>,
    run_seed: u64,
    monitor: &mut ServiceMonitor<Vec<f64>>,
) -> MeshRun {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let (endpoints, addrs) = stable_tcp_mesh(cfg.n, cfg.auth.as_ref());
    // One client port per node: the external submit plane. The attack
    // registry's "client-spray" mix targets these addresses, and an honest
    // client drives real submits through them during both TCP phases.
    let mut ports: Vec<ClientPort> = (0..cfg.n)
        .map(|_| {
            ClientPort::bind("127.0.0.1:0".parse().expect("loopback addr"))
                .expect("bind client port")
        })
        .collect();
    let client_addrs: Vec<SocketAddr> = ports.iter().map(|p| p.local_addr()).collect();
    let mut active = vec![false; cfg.n];
    let mut services: Vec<ConsensusService<ByzantineEndpoint<TcpEndpoint>>> = endpoints
        .into_iter()
        .enumerate()
        .map(|(i, ep)| {
            let is_byz = byz.contains(&i);
            let policy = match (is_byz, attack) {
                (true, Some(mix)) => AttackRegistry::policy(
                    mix,
                    run_seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                ),
                _ => AttackPolicy::honest(),
            };
            let mut wrapped = ByzantineEndpoint::new(ep, policy)
                .with_wire_targets(&addrs)
                .with_client_targets(&client_addrs);
            if let (true, Some(seed)) = (is_byz, cfg.auth.as_ref()) {
                // The compromise model: the attacker knows its own pairwise
                // keys (it is a mesh member) and nothing else — never the
                // seed, never a key between two honest nodes.
                let keyring: Vec<[u8; 32]> = (0..cfg.n)
                    .map(|p| rbvc_transport::derive_pair_key(seed, i, p))
                    .collect();
                wrapped = wrapped.with_identity_keys(keyring);
            }
            let mut svc = ConsensusService::new(wrapped);
            if cfg.auth.is_some() {
                svc.enable_auth();
            }
            if let Some(board) = &cfg.status {
                // Publish `/status` snapshots (per-link auth state) without
                // arming a flight recorder; the stall deadlines are pushed
                // far past the sweep budget so detection noise from the
                // attack phases never lands in the campaign's metrics.
                svc.enable_health(rbvc_transport::service::HealthConfig {
                    stall: rbvc_obs::StallConfig {
                        deadline_us: 60_000_000,
                        dump_deadline_us: 120_000_000,
                    },
                    flight_dir: None,
                    flight_capacity: 0,
                    status: Some(board.clone()),
                });
            }
            // Client instances must tolerate the run's f (in the clean
            // reference the Byzantine slots are idle, i.e. crashed).
            svc.enable_client(ClientConfig {
                f: cfg.f,
                rounds: cfg.va_rounds,
                ..ClientConfig::default()
            });
            for (j, per_node) in inputs.iter().enumerate() {
                svc.add_instance(j as u64 + 1, va_instance(cfg, i, &per_node[i]))
                    .expect("unique instance ids");
            }
            active[i] = !is_byz || attack.is_some();
            svc
        })
        .collect();
    for (i, svc) in services.iter_mut().enumerate() {
        if active[i] {
            svc.start().expect("start service");
        }
    }

    // The honest client: a session owned by an honest node, submitted
    // through the real client port while the mesh (and, in the attack
    // phase, the sprays) run. Latency is measured where it matters — at
    // the client — and every reply is checked against the submitted value.
    let client_done = Arc::new(AtomicBool::new(cfg.client_requests == 0));
    let client_thread = (cfg.client_requests > 0).then(|| {
        let owner = (0..cfg.n).find(|i| !byz.contains(i)).expect("an honest node exists");
        let addrs = client_addrs.clone();
        let done = Arc::clone(&client_done);
        let (requests, d) = (cfg.client_requests, cfg.d);
        thread::spawn(move || {
            let mut handle = ClientHandle::new(owner as u64, addrs);
            let mut latencies = Vec::with_capacity(requests);
            let mut errors = 0u64;
            for k in 0..requests {
                let value = VecD::from_slice(
                    &(0..d).map(|j| (k * d + j) as f64 / 4.0 - 1.0).collect::<Vec<f64>>(),
                );
                let t0 = Instant::now();
                match handle.submit(&value) {
                    Ok(reply) => {
                        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                        let off = reply
                            .as_slice()
                            .iter()
                            .zip(value.as_slice())
                            .map(|(a, b)| (a - b).abs())
                            .fold(0.0, f64::max);
                        if off > 1e-6 {
                            errors += 1;
                        }
                    }
                    Err(_) => errors += 1,
                }
            }
            done.store(true, Ordering::SeqCst);
            (latencies, errors)
        })
    });

    // Single-thread round-robin sweep: deterministic scheduling, and the
    // Byzantine services get polled (driving their injections) without a
    // thread ever spinning on a node that may never decide. Termination is
    // *honest* convergence only — protocol instances plus the client's.
    let start = Instant::now();
    let mut latencies_ms = Vec::new();
    let mut sweeps = 0usize;
    let converged = loop {
        let mut honest_done = true;
        for i in 0..cfg.n {
            if !active[i] {
                continue;
            }
            let is_byz = byz.contains(&i);
            for ev in services[i].poll(cfg.poll_timeout) {
                // Client instances have their own oracle (the reply check
                // at the client); the per-instance safety envelope indexes
                // the campaign's seeded inputs.
                if !is_byz && ev.instance < CLIENT_INSTANCE_BASE {
                    monitor.observe(ev.instance, i, &ev.value.as_slice().to_vec());
                    latencies_ms.push(ev.latency.as_secs_f64() * 1e3);
                }
            }
            if !is_byz {
                ports[i].pump(&mut services[i]);
                honest_done &= services[i].all_decided();
            }
        }
        if honest_done && client_done.load(Ordering::SeqCst) {
            break true;
        }
        sweeps += 1;
        if sweeps >= cfg.max_sweeps {
            break false;
        }
    };
    let wall_secs = start.elapsed().as_secs_f64();
    let (mut client_latencies_ms, mut client_reply_errors) = (Vec::new(), 0u64);
    if let Some(h) = client_thread {
        let (lat, errors) = h.join().expect("client thread");
        client_latencies_ms = lat;
        client_reply_errors = errors;
    }

    let mut gates_by_sender = vec![[0u64; 4]; cfg.n];
    let mut decisions = vec![BTreeMap::new(); cfg.n];
    let mut stats = AttackStats::default();
    let mut client_rejects = 0u64;
    let mut client_redirects = 0u64;
    for (i, svc) in services.iter().enumerate() {
        if byz.contains(&i) {
            stats += svc.transport().stats();
            continue;
        }
        client_rejects += ports[i].rejects();
        client_redirects += svc.client_stats().redirects;
        for (sender, per_gate) in svc.gate_rejections_by_sender().iter().enumerate() {
            for g in 0..4 {
                gates_by_sender[sender][g] += per_gate[g];
            }
        }
        decisions[i] = (1..=cfg.instances as u64)
            .filter_map(|k| svc.decision(k).map(|v| (k, v)))
            .collect();
    }
    latencies_ms.sort_by(f64::total_cmp);
    client_latencies_ms.sort_by(f64::total_cmp);
    MeshRun {
        converged,
        wall_secs,
        latencies_ms,
        decisions,
        gates_by_sender,
        stats,
        client_latencies_ms,
        client_rejects,
        client_redirects,
        client_reply_errors,
    }
}

/// One seeded run: baseline, clean reference, attack — then the verdicts.
pub(crate) fn one_run(cfg: &ByzantineConfig, run: usize) -> RunFacts {
    let run_seed = cfg.seed.wrapping_add(run as u64 * 7919);
    let mut rand = rng(run_seed);
    let attack = cfg.attacks[run % cfg.attacks.len()];

    // Per-instance, per-node seeded inputs.
    let inputs: Vec<Vec<VecD>> = (0..cfg.instances)
        .map(|_| {
            (0..cfg.n)
                .map(|_| {
                    VecD::from_slice(
                        &(0..cfg.d).map(|_| rand.gen_range(-8.0..8.0)).collect::<Vec<f64>>(),
                    )
                })
                .collect()
        })
        .collect();

    // Sample the f Byzantine nodes.
    let mut byz: Vec<usize> = Vec::new();
    while byz.len() < cfg.f {
        let c = rand.gen_range(0..cfg.n);
        if !byz.contains(&c) {
            byz.push(c);
        }
    }
    byz.sort_unstable();

    // Safety envelope over the *honest* inputs: agreement plus box
    // validity with the paper's δ* ≤ max-pairwise-distance slack.
    let honest_inputs: Vec<Vec<VecD>> = inputs
        .iter()
        .map(|per_node| {
            (0..cfg.n).filter(|i| !byz.contains(i)).map(|i| per_node[i].clone()).collect()
        })
        .collect();
    let mk_monitor = || {
        let honest_inputs = honest_inputs.clone();
        let n = cfg.n;
        ServiceMonitor::new(move |inst| {
            let points = &honest_inputs[inst as usize - 1];
            let flat: Vec<Vec<f64>> = points.iter().map(|v| v.as_slice().to_vec()).collect();
            SafetyMonitor::new(n, epsilon_agreement(1e-9), box_validity(&flat, max_edge(points)))
        })
    };

    let stale_counter = rbvc_obs::Registry::global().counter("tcp.hello.stale_rejected_total");
    let auth_counter = rbvc_obs::Registry::global().counter("auth.reject_total");
    let stale_before = stale_counter.get();
    let auth_before = auth_counter.get();

    let baseline = baseline_decisions(cfg, &inputs, &byz);
    let mut clean_monitor = mk_monitor();
    let clean = run_tcp_mesh(cfg, &inputs, &byz, None, run_seed, &mut clean_monitor);
    let auth_after_clean = auth_counter.get();
    let mut attack_monitor = mk_monitor();
    let attacked = run_tcp_mesh(cfg, &inputs, &byz, Some(attack), run_seed, &mut attack_monitor);

    let stale_hellos = stale_counter.get().saturating_sub(stale_before);
    let auth_rejects_clean = auth_after_clean.saturating_sub(auth_before);
    let auth_rejects_attack = auth_counter.get().saturating_sub(auth_after_clean);

    let converged = baseline.is_some() && clean.converged && attacked.converged;
    let identical = match &baseline {
        Some(oracle) => {
            converged && clean.decisions == *oracle && attacked.decisions == *oracle
        }
        None => false,
    };

    let mut gates_from_byz = [0u64; 4];
    let mut gates_from_honest = [0u64; 4];
    for (sender, per_gate) in attacked.gates_by_sender.iter().enumerate() {
        let bucket = if byz.contains(&sender) {
            &mut gates_from_byz
        } else {
            &mut gates_from_honest
        };
        for g in 0..4 {
            bucket[g] += per_gate[g];
        }
    }
    // The clean reference must not reject anything at all.
    for per_gate in &clean.gates_by_sender {
        for g in 0..4 {
            gates_from_honest[g] += per_gate[g];
        }
    }

    RunFacts {
        attack,
        converged,
        identical,
        violations: clean_monitor.violation_count() + attack_monitor.violation_count(),
        clean_secs: clean.wall_secs,
        attack_secs: attacked.wall_secs,
        clean_latencies: clean.latencies_ms,
        attack_latencies: attacked.latencies_ms,
        gates_from_byz,
        gates_from_honest,
        stats: attacked.stats,
        stale_hellos,
        auth_rejects_clean,
        auth_rejects_attack,
        clean_client_latencies: clean.client_latencies_ms,
        attack_client_latencies: attacked.client_latencies_ms,
        client_rejects_clean: clean.client_rejects,
        client_rejects_attack: attacked.client_rejects,
        client_redirects_attack: attacked.client_redirects,
        client_reply_errors: clean.client_reply_errors + attacked.client_reply_errors,
    }
}

/// Run the campaign and publish the per-attack honest-path slowdown into
/// the global metrics registry
/// (`exp.byzantine.slowdown_permille{attack=...}` plus per-attack gate
/// rejection counters) so a live `/metrics` endpoint can surface it.
#[must_use]
pub fn run_campaign(cfg: &ByzantineConfig) -> ByzantineOutcome {
    struct Accum {
        runs: usize,
        clean_secs: f64,
        attack_secs: f64,
        clean_lat: Vec<f64>,
        attack_lat: Vec<f64>,
        gates_from_byz: [u64; 4],
        gates_from_honest: [u64; 4],
        stats: AttackStats,
        stale_hellos: u64,
        auth_rejects: u64,
        clean_client_lat: Vec<f64>,
        attack_client_lat: Vec<f64>,
        client_rejects: u64,
        client_redirects: u64,
    }
    let started = Instant::now();
    let mut by_attack: BTreeMap<&'static str, Accum> = BTreeMap::new();
    let mut converged_runs = 0;
    let mut identical_runs = 0;
    let mut monitor_violations = 0;
    let mut honest_attributed: u64 = 0;
    let mut client_honest_rejections: u64 = 0;
    let mut client_reply_errors: u64 = 0;
    let mut clean_auth_rejects: u64 = 0;

    for run in 0..cfg.runs {
        let facts = one_run(cfg, run);
        if facts.converged {
            converged_runs += 1;
        }
        if facts.identical {
            identical_runs += 1;
        }
        monitor_violations += facts.violations;
        honest_attributed += facts.gates_from_honest.iter().sum::<u64>();
        client_honest_rejections += facts.client_rejects_clean;
        client_reply_errors += facts.client_reply_errors;
        clean_auth_rejects += facts.auth_rejects_clean;
        if !facts.converged || !facts.identical || facts.violations > 0 {
            eprintln!(
                "E20 run {run} [{}]: converged={} identical={} violations={}",
                facts.attack, facts.converged, facts.identical, facts.violations
            );
        }
        let acc = by_attack.entry(facts.attack).or_insert_with(|| Accum {
            runs: 0,
            clean_secs: 0.0,
            attack_secs: 0.0,
            clean_lat: Vec::new(),
            attack_lat: Vec::new(),
            gates_from_byz: [0; 4],
            gates_from_honest: [0; 4],
            stats: AttackStats::default(),
            stale_hellos: 0,
            auth_rejects: 0,
            clean_client_lat: Vec::new(),
            attack_client_lat: Vec::new(),
            client_rejects: 0,
            client_redirects: 0,
        });
        acc.runs += 1;
        acc.clean_secs += facts.clean_secs;
        acc.attack_secs += facts.attack_secs;
        acc.clean_lat.extend(facts.clean_latencies);
        acc.attack_lat.extend(facts.attack_latencies);
        for g in 0..4 {
            acc.gates_from_byz[g] += facts.gates_from_byz[g];
            acc.gates_from_honest[g] += facts.gates_from_honest[g];
        }
        acc.stats += facts.stats;
        acc.stale_hellos += facts.stale_hellos;
        acc.auth_rejects += facts.auth_rejects_attack;
        acc.clean_client_lat.extend(facts.clean_client_latencies);
        acc.attack_client_lat.extend(facts.attack_client_latencies);
        acc.client_rejects += facts.client_rejects_attack;
        acc.client_redirects += facts.client_redirects_attack;
    }

    let mut reports = Vec::new();
    for name in AttackRegistry::NAMES {
        let Some(mut acc) = by_attack.remove(name) else {
            continue;
        };
        acc.clean_lat.sort_by(f64::total_cmp);
        acc.attack_lat.sort_by(f64::total_cmp);
        acc.clean_client_lat.sort_by(f64::total_cmp);
        acc.attack_client_lat.sort_by(f64::total_cmp);
        let slowdown = if acc.clean_secs > 0.0 { acc.attack_secs / acc.clean_secs } else { f64::NAN };
        let report = AttackReport {
            attack: name.to_string(),
            runs: acc.runs,
            clean_secs: acc.clean_secs,
            attack_secs: acc.attack_secs,
            slowdown,
            clean_p50_ms: percentile(&acc.clean_lat, 50.0),
            clean_p99_ms: percentile(&acc.clean_lat, 99.0),
            attack_p50_ms: percentile(&acc.attack_lat, 50.0),
            attack_p99_ms: percentile(&acc.attack_lat, 99.0),
            gates_from_byz: acc.gates_from_byz,
            gates_from_honest: acc.gates_from_honest,
            stats: acc.stats,
            stale_hellos: acc.stale_hellos,
            auth_rejects: acc.auth_rejects,
            client_clean_p50_ms: percentile(&acc.clean_client_lat, 50.0),
            client_clean_p99_ms: percentile(&acc.clean_client_lat, 99.0),
            client_attack_p50_ms: percentile(&acc.attack_client_lat, 50.0),
            client_attack_p99_ms: percentile(&acc.attack_client_lat, 99.0),
            client_rejects: acc.client_rejects,
            client_redirects: acc.client_redirects,
        };
        publish_metrics(&report);
        reports.push(report);
    }

    ByzantineOutcome {
        runs: cfg.runs,
        f: cfg.f,
        converged_runs,
        identical_runs,
        monitor_violations,
        honest_attributed_rejections: honest_attributed,
        client_honest_rejections,
        client_reply_errors,
        clean_auth_rejects,
        reports,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// Publish one attack's aggregates into the global registry for the live
/// `/metrics` endpoint (`exp_service --metrics` plumbing, reused by
/// `exp_byzantine`).
fn publish_metrics(report: &AttackReport) {
    let reg = rbvc_obs::Registry::global();
    let labels = [("attack", report.attack.as_str())];
    if report.slowdown.is_finite() {
        reg.gauge_with("exp.byzantine.slowdown_permille", &labels)
            .set((report.slowdown * 1000.0) as i64);
    }
    reg.gauge_with("exp.byzantine.attack_p99_us", &labels)
        .set((report.attack_p99_ms * 1000.0) as i64);
    reg.counter_with("exp.byzantine.gate_rejects", &[("attack", report.attack.as_str()), ("origin", "byzantine")])
        .add(report.gates_from_byz.iter().sum());
    reg.counter_with("exp.byzantine.gate_rejects", &[("attack", report.attack.as_str()), ("origin", "honest")])
        .add(report.gates_from_honest.iter().sum());
    reg.counter_with("exp.byzantine.client_rejects", &labels).add(report.client_rejects);
    reg.counter_with("exp.byzantine.client_redirects", &labels).add(report.client_redirects);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-run micro-campaign (equivocate + lying-witness) through the
    /// full three-phase machinery: zero violations, bit-identical honest
    /// decisions, and every rejection attributed to an attacker.
    #[test]
    fn micro_campaign_is_clean_and_attributes_rejections() {
        let mut cfg = ByzantineConfig::smoke(42);
        cfg.runs = 2;
        let out = run_campaign(&cfg);
        assert_eq!(out.converged_runs, 2, "both runs must converge");
        assert_eq!(out.identical_runs, 2, "honest decisions must match the oracle");
        assert_eq!(out.monitor_violations, 0);
        assert_eq!(out.honest_attributed_rejections, 0);
        assert!(out.clean());
        assert_eq!(out.reports.len(), 2);
        for r in &out.reports {
            assert!(r.stats.frames_mutated + r.stats.frames_dropped > 0, "{} attacked", r.attack);
            // The honest client was served in both phases of both runs.
            assert!(r.client_clean_p50_ms > 0.0 && r.client_attack_p50_ms > 0.0);
        }
    }

    /// The client-spray mix alone: crafted client frames hammer the live
    /// ports, yet the run converges bit-identically, the honest client is
    /// still served (correct replies, finite latency), and the sprays are
    /// accounted — rejected at the port or redirected by the table, never
    /// admitted.
    #[test]
    fn client_spray_run_is_survived_and_every_spray_accounted() {
        let cfg = ByzantineConfig::smoke(77);
        let idx = AttackRegistry::NAMES
            .iter()
            .position(|m| *m == "client-spray")
            .expect("client-spray is registered");
        let facts = one_run(&cfg, idx);
        assert_eq!(facts.attack, "client-spray");
        assert!(facts.converged, "run must converge under client sprays");
        assert!(facts.identical, "honest decisions must match the oracle");
        assert_eq!(facts.violations, 0);
        assert_eq!(facts.client_reply_errors, 0, "honest client got wrong replies");
        assert_eq!(facts.client_rejects_clean, 0, "clean phase must not reject");
        assert!(facts.stats.client_sprays > 0, "the mix actually sprayed");
        assert!(
            facts.client_rejects_attack + facts.client_redirects_attack > 0,
            "sprays must surface as port rejects or table redirects"
        );
        assert!(
            !facts.attack_client_latencies.is_empty(),
            "honest client must be served while the ports are sprayed"
        );
    }
}
