//! End-to-end client tests over real TCP (ISSUE 8): submit → decision,
//! redirect-following, retry idempotence across two different nodes, and
//! `Busy` backpressure.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rbvc_client::{ClientError, ClientHandle, RetryPolicy};
use rbvc_linalg::VecD;
use rbvc_transport::{
    tcp_mesh_loopback, ClientConfig, ClientPort, ConsensusService, TcpEndpoint,
};

type NodeResult = (ConsensusService<TcpEndpoint>, ClientPort);

/// Stand up an `n`-node TCP mesh with a client port per node, each driven
/// by its own poll+pump thread until `stop` is raised. Returns the client
/// port addresses (indexed by node id) and the join handles, which yield
/// each node's service and port for post-run inspection.
fn spawn_mesh(
    n: usize,
    cfg: ClientConfig,
    stop: &Arc<AtomicBool>,
) -> (Vec<SocketAddr>, Vec<thread::JoinHandle<NodeResult>>) {
    let endpoints = tcp_mesh_loopback(n).expect("tcp mesh");
    let mut ports = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let port = ClientPort::bind("127.0.0.1:0".parse().expect("addr")).expect("bind");
        addrs.push(port.local_addr());
        ports.push(port);
    }
    let handles = endpoints
        .into_iter()
        .zip(ports)
        .map(|(ep, mut port)| {
            let stop = Arc::clone(stop);
            thread::spawn(move || {
                let mut svc = ConsensusService::new(ep);
                svc.enable_client(cfg);
                svc.start_deferred();
                while !stop.load(Ordering::Relaxed) {
                    let _ = svc.poll(Duration::from_millis(1));
                    port.pump(&mut svc);
                }
                (svc, port)
            })
        })
        .collect();
    (addrs, handles)
}

/// One submit round-trips to a decision that is the submitted point (all
/// honest inputs are identical), and a retry of the same `(session, reqno)`
/// sent to a *different* node follows the redirect and comes back
/// bit-identical, with exactly one consensus instance mesh-wide.
#[test]
fn submit_decides_and_cross_node_retry_is_bit_identical() {
    let n = 3;
    let stop = Arc::new(AtomicBool::new(false));
    let (addrs, handles) = spawn_mesh(n, ClientConfig::default(), &stop);

    let session = 5; // owner = 5 % 3 = node 2
    let owner = 2;
    let value = VecD::from_slice(&[1.25, -0.5, 3.0]);
    let mut client = ClientHandle::new(session, addrs);
    let first = client.submit(&value).expect("first submit decides");
    for (a, b) in first.as_slice().iter().zip(value.as_slice()) {
        assert!((a - b).abs() < 1e-6, "decision {first:?} vs submitted {value:?}");
    }

    // Retry the SAME request against a non-owning node: it redirects, the
    // owner answers from its reply cache, and the bytes are identical.
    client.set_target((owner + 1) % n);
    let retried = client.submit_as(1, &value).expect("retry answered");
    assert_eq!(first.as_slice(), retried.as_slice(), "cached reply must be bit-identical");
    assert!(client.stats().redirects_followed >= 1, "{:?}", client.stats());

    stop.store(true, Ordering::Relaxed);
    let results: Vec<NodeResult> = handles.into_iter().map(|h| h.join().expect("node")).collect();
    // Exactly one instance ran, everywhere; the retry was a dedup hit.
    for (svc, port) in &results {
        assert_eq!(svc.instance_count(), 1);
        assert_eq!(port.rejects(), 0);
    }
    assert!(
        results[owner].0.client_stats().dedup_hits >= 1,
        "owner stats: {:?}",
        results[owner].0.client_stats()
    );
    let non_owner = (owner + 1) % n;
    assert!(results[non_owner].0.client_stats().redirects >= 1);
}

/// With zero admission capacity every submit is shed with `Busy`: the
/// handle backs off, retries, and surfaces `Exhausted` — and the service
/// counts every shed request.
#[test]
fn zero_capacity_node_sheds_with_busy() {
    let stop = Arc::new(AtomicBool::new(false));
    let cfg = ClientConfig { max_inflight: 0, queue_cap: 0, ..ClientConfig::default() };
    let (addrs, handles) = spawn_mesh(1, cfg, &stop);

    let mut client = ClientHandle::new(0, addrs).with_policy(RetryPolicy {
        attempt_timeout: Duration::from_millis(500),
        max_attempts: 3,
        backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
    });
    let err = client.submit(&VecD::from_slice(&[1.0])).expect_err("must shed");
    assert_eq!(err, ClientError::Exhausted { attempts: 3 });
    assert!(client.stats().busy_backoffs >= 1, "{:?}", client.stats());

    stop.store(true, Ordering::Relaxed);
    let (svc, _port) = handles.into_iter().next().expect("one node").join().expect("node");
    assert!(svc.client_stats().shed >= 3, "{:?}", svc.client_stats());
    assert_eq!(svc.instance_count(), 0);
}

/// Garbage on the client port — truncated frames, forged lengths, a valid
/// header followed by junk — never panics the node and never reaches the
/// client table; an honest submit on a fresh connection still succeeds.
#[test]
fn port_survives_garbage_and_still_serves_honest_clients() {
    use std::io::Write as _;
    use std::net::TcpStream;

    let stop = Arc::new(AtomicBool::new(false));
    let (addrs, handles) = spawn_mesh(1, ClientConfig::default(), &stop);

    // A length prefix promising 16 MiB, then nothing; a zero length; raw
    // junk; and a valid-looking prefix with garbage body.
    let attacks: Vec<Vec<u8>> = vec![
        (1u32 << 24).to_le_bytes().to_vec(),
        0u32.to_le_bytes().to_vec(),
        vec![0xFF; 37],
        {
            let mut b = 12u32.to_le_bytes().to_vec();
            b.extend_from_slice(b"RC\x01\x09garbage!");
            b
        },
    ];
    for bytes in &attacks {
        let mut s = TcpStream::connect(addrs[0]).expect("dial");
        s.write_all(bytes).expect("write");
        // Give the reader a moment to ingest before the connection drops.
        thread::sleep(Duration::from_millis(20));
    }

    let mut client = ClientHandle::new(0, addrs);
    let v = VecD::from_slice(&[7.0, -2.0]);
    let decision = client.submit(&v).expect("honest client unaffected");
    for (a, b) in decision.as_slice().iter().zip(v.as_slice()) {
        assert!((a - b).abs() < 1e-6);
    }

    stop.store(true, Ordering::Relaxed);
    let (svc, port) = handles.into_iter().next().expect("one node").join().expect("node");
    // The decodable-but-wrong frame was counted; the framing violations
    // poisoned their connections. Nothing reached the client table except
    // the honest submit.
    assert!(port.rejects() >= 1, "crafted frame must be counted");
    assert_eq!(svc.instance_count(), 1);
    assert_eq!(svc.client_stats().admitted, 1);
}
