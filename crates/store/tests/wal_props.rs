//! Property/fuzz tests for the WAL codec and recovery path (ISSUE 5,
//! satellite: "random record sequences round-trip; any truncation or
//! single-byte corruption is detected and recovery yields the longest
//! valid prefix — never a panic, never a silent bad record").
//!
//! The file-level cases build a log in a temp directory, mutilate the raw
//! bytes, and reopen: the reopened log must hold exactly the records whose
//! frames precede the first damaged byte, regardless of where the damage
//! lands.

use proptest::prelude::*;
use rbvc_store::{decode_record, encode_record, Wal, WalRecord, WAL_MAGIC};

/// Deterministic record zoo driven by the proptest RNG stream: covers
/// every tag with variable-length fields of seeded sizes.
fn record_from(words: &[u64]) -> WalRecord {
    let pick = words[0] % 8;
    let a = words[1];
    let blob = |n: u64| -> Vec<u8> {
        let len = (n % 200) as usize;
        (0..len).map(|i| (n.wrapping_mul(31).wrapping_add(i as u64)) as u8).collect()
    };
    match pick {
        0 => WalRecord::Registered { instance: a, spec: blob(words[2]) },
        1 => WalRecord::Launched { instance: a },
        2 => WalRecord::Inbound { from: (a % 64) as u32, bytes: blob(words[2]) },
        3 => WalRecord::Sent { dst: (a % 64) as u32, bytes: blob(words[2]) },
        4 => WalRecord::WitnessCommit { instance: a, count: words[2] },
        5 => {
            let d = (words[2] % 9) as usize;
            let value = (0..d).map(|i| (words[3].rotate_left(i as u32) as f64) / 1e9).collect();
            WalRecord::Decided { instance: a, value }
        }
        6 => {
            let d = (words[3] % 6) as usize;
            let value = (0..d).map(|i| (words[3].rotate_right(i as u32) as f64) / 1e6).collect();
            WalRecord::ClientReply {
                instance: a,
                session: words[2],
                reqno: words[3] % 1024,
                value,
            }
        }
        _ => WalRecord::Compacted { retained: a, dropped: words[2] },
    }
}

fn tmp_wal(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rbvc-wal-props-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mk tmp dir");
    dir.join("log.wal")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode → decode is the identity on arbitrary record sequences.
    #[test]
    fn typed_records_round_trip(
        seeds in prop::collection::vec(
            prop::collection::vec(0u64..u64::MAX, 4), 16),
    ) {
        for words in &seeds {
            let rec = record_from(words);
            let bytes = encode_record(&rec);
            prop_assert_eq!(decode_record(&bytes), Some(rec));
        }
    }

    /// `decode_record` is total: arbitrary byte soup never panics, and
    /// anything it does accept re-encodes to the identical bytes (no
    /// silent normalization that would desync a replay).
    #[test]
    fn decode_never_panics_and_accepts_only_canonical_bytes(
        raw in prop::collection::vec(0u64..u64::MAX, 24),
        len in 0usize..192,
    ) {
        let bytes: Vec<u8> = raw
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .take(len)
            .collect();
        if let Some(rec) = decode_record(&bytes) {
            prop_assert_eq!(encode_record(&rec), bytes);
        }
    }

    /// A log truncated at ANY byte offset recovers exactly the records
    /// whose frames fit entirely within the kept prefix.
    #[test]
    fn truncation_anywhere_yields_longest_valid_prefix(
        seeds in prop::collection::vec(
            prop::collection::vec(0u64..u64::MAX, 4), 6),
        cut_word in 0u64..u64::MAX,
    ) {
        let path = tmp_wal("trunc", cut_word);
        let records: Vec<WalRecord> = seeds.iter().map(|w| record_from(w)).collect();
        // Frame boundaries: offsets[i] = file length after i records.
        let mut offsets = vec![WAL_MAGIC.len() as u64];
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for rec in &records {
                wal.append(&encode_record(rec)).unwrap();
                offsets.push(wal.len());
            }
            wal.sync().unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let cut = (WAL_MAGIC.len() as u64 + cut_word % (full.len() as u64 - 7)) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();

        let (_, report) = Wal::open(&path).unwrap();
        let survivors = offsets.iter().filter(|&&o| o <= cut as u64).count() - 1;
        prop_assert!(report.records.len() == survivors,
            "cut at {} recovered {} of {} expected (boundaries {:?})",
            cut, report.records.len(), survivors, offsets);
        for (got, want) in report.records.iter().zip(&records) {
            let decoded = decode_record(got);
            prop_assert_eq!(decoded.as_ref(), Some(want));
        }
        prop_assert_eq!(report.valid_len, offsets[survivors]);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    /// Flipping ANY single bit anywhere past the magic is detected: the
    /// reopened log holds a prefix of the original records (the checksum
    /// or framing catches the damage; nothing corrupted is replayed).
    #[test]
    fn single_bit_corruption_never_yields_a_bad_record(
        seeds in prop::collection::vec(
            prop::collection::vec(0u64..u64::MAX, 4), 5),
        flip_word in 0u64..u64::MAX,
        bit in 0u64..8,
    ) {
        let path = tmp_wal("flip", flip_word ^ bit);
        let records: Vec<WalRecord> = seeds.iter().map(|w| record_from(w)).collect();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for rec in &records {
                wal.append(&encode_record(rec)).unwrap();
            }
            wal.sync().unwrap();
        }
        let mut raw = std::fs::read(&path).unwrap();
        let idx = WAL_MAGIC.len()
            + (flip_word % (raw.len() - WAL_MAGIC.len()) as u64) as usize;
        raw[idx] ^= 1u8 << bit;
        std::fs::write(&path, &raw).unwrap();

        let (_, report) = Wal::open(&path).unwrap();
        // Every recovered record must be byte-identical to the original at
        // its position — corruption may shorten the log, never alter it.
        // (A flip in a length field can also *lengthen* a frame so that it
        // swallows its successors and fails the checksum — still caught.)
        prop_assert!(report.records.len() <= records.len());
        for (got, want) in report.records.iter().zip(&records) {
            prop_assert!(decode_record(got).as_ref() == Some(want),
                "flip at byte {} bit {} altered a recovered record", idx, bit);
        }
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
