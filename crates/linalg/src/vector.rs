//! [`VecD`]: the `d`-dimensional real column vector used for process inputs,
//! decision values, and all geometric computation.
//!
//! The paper (§3) views inputs both as column vectors and as points in
//! `R^d`; `VecD` is that object. Coordinates are indexed `0..d` here
//! (the paper indexes `1..=d`).

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::norms::Norm;
use crate::tolerance::Tol;

/// A `d`-dimensional real vector / point in `R^d`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VecD(pub Vec<f64>);

impl VecD {
    /// Create from raw coordinates.
    #[must_use]
    pub fn new(coords: Vec<f64>) -> Self {
        VecD(coords)
    }

    /// Create from a slice.
    #[must_use]
    pub fn from_slice(coords: &[f64]) -> Self {
        VecD(coords.to_vec())
    }

    /// The all-zero vector `0^d` (used in the Lemma 10 scenarios).
    #[must_use]
    pub fn zeros(d: usize) -> Self {
        VecD(vec![0.0; d])
    }

    /// The all-one vector `1^d` (used in the Lemma 10 scenarios).
    #[must_use]
    pub fn ones(d: usize) -> Self {
        VecD(vec![1.0; d])
    }

    /// The `i`-th standard basis vector scaled by `x` in dimension `d`.
    #[must_use]
    pub fn scaled_basis(d: usize, i: usize, x: f64) -> Self {
        let mut v = vec![0.0; d];
        v[i] = x;
        VecD(v)
    }

    /// Dimension `d` of the vector.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Coordinates as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Dot product `<self, other>`.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    #[must_use]
    pub fn dot(&self, other: &VecD) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dot: dimension mismatch");
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Squared Euclidean norm.
    #[must_use]
    pub fn norm2_sq(&self) -> f64 {
        self.dot(self)
    }

    /// Lp norm of the vector, `p` given as a [`Norm`].
    #[must_use]
    pub fn norm(&self, p: Norm) -> f64 {
        p.of(&self.0)
    }

    /// Euclidean (L2) norm.
    #[must_use]
    pub fn norm2(&self) -> f64 {
        self.norm2_sq().sqrt()
    }

    /// Distance `||self - other||_p`.
    #[must_use]
    pub fn dist(&self, other: &VecD, p: Norm) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dist: dimension mismatch");
        p.of_iter(self.0.iter().zip(&other.0).map(|(a, b)| a - b))
    }

    /// Euclidean distance.
    #[must_use]
    pub fn dist2(&self, other: &VecD) -> f64 {
        self.dist(other, Norm::L2)
    }

    /// Scale by a scalar.
    #[must_use]
    pub fn scale(&self, s: f64) -> VecD {
        VecD(self.0.iter().map(|x| x * s).collect())
    }

    /// `self + s * other` (axpy).
    #[must_use]
    pub fn axpy(&self, s: f64, other: &VecD) -> VecD {
        assert_eq!(self.dim(), other.dim(), "axpy: dimension mismatch");
        VecD(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a + s * b)
                .collect(),
        )
    }

    /// Convex combination `(1 - t) * self + t * other`, `t ∈ [0, 1]` not enforced.
    #[must_use]
    pub fn lerp(&self, other: &VecD, t: f64) -> VecD {
        self.scale(1.0 - t) + other.scale(t)
    }

    /// Componentwise approximate equality.
    #[must_use]
    pub fn approx_eq(&self, other: &VecD, tol: Tol) -> bool {
        self.dim() == other.dim()
            && self
                .0
                .iter()
                .zip(&other.0)
                .all(|(a, b)| tol.eq(*a, *b))
    }

    /// Centroid (arithmetic mean) of a set of points.
    ///
    /// # Panics
    /// Panics if `points` is empty or dimensions differ.
    #[must_use]
    pub fn centroid(points: &[VecD]) -> VecD {
        assert!(!points.is_empty(), "centroid of empty set");
        let d = points[0].dim();
        let mut acc = VecD::zeros(d);
        for p in points {
            acc += p.clone();
        }
        acc.scale(1.0 / points.len() as f64)
    }

    /// Convex combination `Σ w_i p_i`. Weights are not checked to sum to 1.
    #[must_use]
    pub fn combination(points: &[VecD], weights: &[f64]) -> VecD {
        assert_eq!(points.len(), weights.len(), "combination: length mismatch");
        assert!(!points.is_empty(), "combination of empty set");
        let mut acc = VecD::zeros(points[0].dim());
        for (p, &w) in points.iter().zip(weights) {
            acc = acc.axpy(w, p);
        }
        acc
    }

    /// Largest absolute coordinate (∞-norm), convenient for scaling tolerances.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.0.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// True iff every coordinate is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }
}

impl Index<usize> for VecD {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for VecD {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl Add for VecD {
    type Output = VecD;
    fn add(self, rhs: VecD) -> VecD {
        self.axpy(1.0, &rhs)
    }
}

impl<'a> Add<&'a VecD> for &'a VecD {
    type Output = VecD;
    fn add(self, rhs: &VecD) -> VecD {
        self.axpy(1.0, rhs)
    }
}

impl Sub for VecD {
    type Output = VecD;
    fn sub(self, rhs: VecD) -> VecD {
        self.axpy(-1.0, &rhs)
    }
}

impl<'a> Sub<&'a VecD> for &'a VecD {
    type Output = VecD;
    fn sub(self, rhs: &VecD) -> VecD {
        self.axpy(-1.0, rhs)
    }
}

impl AddAssign for VecD {
    fn add_assign(&mut self, rhs: VecD) {
        assert_eq!(self.dim(), rhs.dim(), "+=: dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&rhs.0) {
            *a += b;
        }
    }
}

impl SubAssign for VecD {
    fn sub_assign(&mut self, rhs: VecD) {
        assert_eq!(self.dim(), rhs.dim(), "-=: dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&rhs.0) {
            *a -= b;
        }
    }
}

impl Mul<f64> for VecD {
    type Output = VecD;
    fn mul(self, s: f64) -> VecD {
        self.scale(s)
    }
}

impl Neg for VecD {
    type Output = VecD;
    fn neg(self) -> VecD {
        self.scale(-1.0)
    }
}

impl fmt::Display for VecD {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_basis() {
        assert_eq!(VecD::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(VecD::ones(2).as_slice(), &[1.0, 1.0]);
        assert_eq!(VecD::scaled_basis(3, 1, 5.0).as_slice(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn dot_and_norms() {
        let a = VecD::from_slice(&[3.0, 4.0]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.norm2(), 5.0);
        assert_eq!(a.norm(Norm::L1), 7.0);
        assert_eq!(a.norm(Norm::LInf), 4.0);
    }

    #[test]
    fn distance_by_norm() {
        let a = VecD::from_slice(&[1.0, 1.0]);
        let b = VecD::from_slice(&[4.0, 5.0]);
        assert_eq!(a.dist2(&b), 5.0);
        assert_eq!(a.dist(&b, Norm::L1), 7.0);
        assert_eq!(a.dist(&b, Norm::LInf), 4.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = VecD::from_slice(&[1.0, 2.0]);
        let b = VecD::from_slice(&[10.0, 20.0]);
        assert_eq!((a.clone() + b.clone()).as_slice(), &[11.0, 22.0]);
        assert_eq!((b.clone() - a.clone()).as_slice(), &[9.0, 18.0]);
        assert_eq!((a.clone() * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!((-a.clone()).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += b.clone();
        assert_eq!(c.as_slice(), &[11.0, 22.0]);
        c -= b;
        assert!(c.approx_eq(&a, Tol::default()));
    }

    #[test]
    fn lerp_interpolates_endpoints() {
        let a = VecD::from_slice(&[0.0, 0.0]);
        let b = VecD::from_slice(&[2.0, 4.0]);
        assert!(a.lerp(&b, 0.0).approx_eq(&a, Tol::default()));
        assert!(a.lerp(&b, 1.0).approx_eq(&b, Tol::default()));
        assert_eq!(a.lerp(&b, 0.5).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn centroid_and_combination() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[0.0, 2.0]),
        ];
        let c = VecD::centroid(&pts);
        assert!(c.approx_eq(
            &VecD::from_slice(&[2.0 / 3.0, 2.0 / 3.0]),
            Tol::default()
        ));
        let w = VecD::combination(&pts, &[0.5, 0.25, 0.25]);
        assert!(w.approx_eq(&VecD::from_slice(&[0.5, 0.5]), Tol::default()));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_rejects_mismatched_dims() {
        let _ = VecD::zeros(2).dot(&VecD::zeros(3));
    }

    #[test]
    fn max_abs_and_finite() {
        let v = VecD::from_slice(&[-3.0, 2.0]);
        assert_eq!(v.max_abs(), 3.0);
        assert!(v.is_finite());
        assert!(!VecD::from_slice(&[f64::NAN]).is_finite());
    }
}
