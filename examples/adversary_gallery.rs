//! The Byzantine adversary gallery: run the same Exact BVC instance
//! against every structured attack in the library and print the outcome
//! table — a compact demonstration that the guarantees are adversary-
//! universal, and of what each attack actually does on the wire.
//!
//! ```sh
//! cargo run --example adversary_gallery
//! ```

use relaxed_bvc::consensus::problem::{Agreement, Validity};
use relaxed_bvc::consensus::rules::DecisionRule;
use relaxed_bvc::consensus::runner::{run_sync, SyncSpec};
use relaxed_bvc::consensus::sync_protocols::ByzantineStrategy;
use relaxed_bvc::linalg::{Tol, VecD};

fn main() {
    let (n, f, d) = (5, 1, 2);
    let inputs = vec![
        VecD::from_slice(&[0.0, 0.0]),
        VecD::from_slice(&[2.0, 0.0]),
        VecD::from_slice(&[0.0, 2.0]),
        VecD::from_slice(&[2.0, 2.0]),
        VecD::zeros(2), // slot of the Byzantine process
    ];

    let gallery: Vec<(&str, ByzantineStrategy)> = vec![
        ("silent (omission)", ByzantineStrategy::Silent),
        (
            "two-faced (input equivocation)",
            ByzantineStrategy::TwoFaced(
                (0..n)
                    .map(|j| VecD::from_slice(&[j as f64 * 100.0, -100.0]))
                    .collect(),
            ),
        ),
        (
            "lying relay (corrupts forwarded values)",
            ByzantineStrategy::LyingRelay {
                input: VecD::from_slice(&[50.0, 50.0]),
                corrupt: VecD::from_slice(&[-9e6, 9e6]),
            },
        ),
        (
            "protocol-following (adversarial input only)",
            ByzantineStrategy::FollowProtocol(VecD::from_slice(&[1000.0, 1000.0])),
        ),
    ];

    println!(
        "Exact BVC, n = {n}, f = {f}, d = {d} (Theorem 1 bound is {}), process 4 Byzantine:\n",
        relaxed_bvc::consensus::bounds::exact_bvc_min_n(f, d)
    );
    println!(
        "{:<44} {:>10} {:>9} {:>9} {:>10}",
        "attack", "agreement", "validity", "messages", "decision"
    );
    for (name, strategy) in gallery {
        let spec = SyncSpec {
            n,
            f,
            d,
            rule: DecisionRule::GammaPoint,
            inputs: inputs.clone(),
            adversaries: vec![(n - 1, strategy)],
            agreement: Agreement::Exact,
            validity: Validity::Exact,
        };
        let report = run_sync(&spec, Tol::default());
        let decision = report.decisions[0]
            .as_ref()
            .map_or("—".to_string(), ToString::to_string);
        println!(
            "{:<44} {:>10} {:>9} {:>9} {:>10}",
            name,
            report.verdict.agreement,
            report.verdict.validity,
            report.trace.messages_sent,
            decision
        );
        assert!(report.verdict.ok(), "{name} broke the protocol!");
    }
    println!("\nEvery attack is absorbed: agreement and validity hold universally.");
}
