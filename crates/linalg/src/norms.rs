//! The Lp norm family used throughout the paper.
//!
//! The paper's `(δ, p)`-relaxed hulls measure distance with an Lp norm
//! (`p ≥ 1`, including `p = ∞`). [`Norm`] encodes the norm choice; the
//! Hölder comparison constants of Theorem 13 live in
//! [`holder_upper_constant`] / [`norm_le`].

use serde::{Deserialize, Serialize};

/// A choice of Lp norm, `p ≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Norm {
    /// L1 norm: sum of absolute values.
    L1,
    /// L2 (Euclidean) norm.
    L2,
    /// L∞ norm: maximum absolute value.
    LInf,
    /// General Lp norm for finite `p ≥ 1`.
    Lp(f64),
}

impl Norm {
    /// Construct from a finite `p ≥ 1`, normalising `1` and `2` to the
    /// dedicated variants.
    ///
    /// # Panics
    /// Panics if `p < 1` or `p` is not finite (use [`Norm::LInf`] for ∞).
    #[must_use]
    pub fn lp(p: f64) -> Norm {
        assert!(p.is_finite() && p >= 1.0, "Lp norm requires finite p >= 1");
        if (p - 1.0).abs() < 1e-12 {
            Norm::L1
        } else if (p - 2.0).abs() < 1e-12 {
            Norm::L2
        } else {
            Norm::Lp(p)
        }
    }

    /// The exponent `p`, with `∞` mapped to `f64::INFINITY`.
    #[must_use]
    pub fn p(self) -> f64 {
        match self {
            Norm::L1 => 1.0,
            Norm::L2 => 2.0,
            Norm::LInf => f64::INFINITY,
            Norm::Lp(p) => p,
        }
    }

    /// Norm of a slice.
    #[must_use]
    pub fn of(self, xs: &[f64]) -> f64 {
        self.of_iter(xs.iter().copied())
    }

    /// Norm of an iterator of coordinates.
    pub fn of_iter<I: IntoIterator<Item = f64>>(self, xs: I) -> f64 {
        match self {
            Norm::L1 => xs.into_iter().map(f64::abs).sum(),
            Norm::L2 => xs.into_iter().map(|x| x * x).sum::<f64>().sqrt(),
            Norm::LInf => xs.into_iter().fold(0.0_f64, |m, x| m.max(x.abs())),
            Norm::Lp(p) => xs
                .into_iter()
                .map(|x| x.abs().powf(p))
                .sum::<f64>()
                .powf(1.0 / p),
        }
    }
}

/// Hölder comparison (Theorem 13 in the paper): for `1 ≤ r ≤ p` and
/// `x ∈ R^d`,
///
/// ```text
/// ||x||_p  ≤  ||x||_r  ≤  d^(1/r − 1/p) ||x||_p .
/// ```
///
/// Returns the constant `d^(1/r − 1/p)` bounding `||x||_r / ||x||_p`.
/// For `p = ∞`, `1/p = 0`.
///
/// # Panics
/// Panics unless `1 ≤ r ≤ p`.
#[must_use]
pub fn holder_upper_constant(d: usize, r: Norm, p: Norm) -> f64 {
    let (rp, pp) = (r.p(), p.p());
    assert!(rp >= 1.0 && rp <= pp, "holder constant requires 1 <= r <= p");
    let inv_p = if pp.is_infinite() { 0.0 } else { 1.0 / pp };
    (d as f64).powf(1.0 / rp - inv_p)
}

/// `||x||_p ≤ ||x||_r` whenever `r ≤ p` (norm monotonicity, used in the
/// necessity arguments of Theorems 5 and 6). Returns true iff that ordering
/// applies to the pair `(r, p)`.
#[must_use]
pub fn norm_le(p_larger_exponent: Norm, r_smaller_exponent: Norm) -> bool {
    r_smaller_exponent.p() <= p_larger_exponent.p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_constructor_normalises() {
        assert_eq!(Norm::lp(1.0), Norm::L1);
        assert_eq!(Norm::lp(2.0), Norm::L2);
        match Norm::lp(3.0) {
            Norm::Lp(p) => assert!((p - 3.0).abs() < 1e-12),
            other => panic!("expected Lp(3), got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "finite p >= 1")]
    fn lp_rejects_p_below_one() {
        let _ = Norm::lp(0.5);
    }

    #[test]
    fn norms_of_simple_vector() {
        let x = [1.0, -2.0, 2.0];
        assert_eq!(Norm::L1.of(&x), 5.0);
        assert_eq!(Norm::L2.of(&x), 3.0);
        assert_eq!(Norm::LInf.of(&x), 2.0);
        let l3 = Norm::lp(3.0).of(&x);
        assert!((l3 - (1.0_f64 + 8.0 + 8.0).powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn norm_monotone_in_p() {
        // ||x||_p is non-increasing in p.
        let x = [0.3, -1.7, 0.9, 2.2];
        let ps = [1.0, 1.5, 2.0, 3.0, 10.0];
        let mut prev = f64::INFINITY;
        for &p in &ps {
            let v = Norm::lp(p).of(&x);
            assert!(v <= prev + 1e-12, "norm not monotone at p={p}");
            prev = v;
        }
        assert!(Norm::LInf.of(&x) <= prev + 1e-12);
    }

    #[test]
    fn holder_bound_is_attained_by_ones_vector() {
        // For x = 1^d, ||x||_r = d^{1/r}, ||x||_p = d^{1/p}; ratio = constant.
        let d = 7;
        let x = vec![1.0; d];
        for (r, p) in [
            (Norm::L1, Norm::L2),
            (Norm::L2, Norm::LInf),
            (Norm::L1, Norm::LInf),
            (Norm::lp(1.5), Norm::lp(4.0)),
        ] {
            let c = holder_upper_constant(d, r, p);
            let ratio = r.of(&x) / p.of(&x);
            assert!(
                (c - ratio).abs() < 1e-10,
                "constant {c} vs attained ratio {ratio}"
            );
        }
    }

    #[test]
    fn holder_bounds_random_vectors() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let d = rng.gen_range(1..9);
            let x: Vec<f64> = (0..d).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let r = Norm::lp(rng.gen_range(1.0..3.0));
            let p = Norm::lp(r.p() + rng.gen_range(0.0..3.0));
            let (nr, np) = (r.of(&x), p.of(&x));
            assert!(np <= nr + 1e-9, "||x||_p <= ||x||_r violated");
            assert!(
                nr <= holder_upper_constant(d, r, p) * np + 1e-9,
                "upper Hölder bound violated"
            );
        }
    }

    #[test]
    fn norm_le_orders_exponents() {
        assert!(norm_le(Norm::LInf, Norm::L2));
        assert!(norm_le(Norm::L2, Norm::L1));
        assert!(!norm_le(Norm::L1, Norm::L2));
    }
}
