//! Cross-crate integration tests: asynchronous (Relaxed) Verified
//! Averaging end-to-end under adversarial schedulers and Byzantine
//! strategies.

use rand::{rngs::StdRng, Rng, SeedableRng};
use relaxed_bvc::consensus::bounds::kappa_async;
use relaxed_bvc::consensus::problem::{Agreement, Validity};
use relaxed_bvc::consensus::runner::{
    run_async, AsyncByzantine, AsyncSpec, SchedulerSpec,
};
use relaxed_bvc::consensus::verified_avg::DeltaMode;
use relaxed_bvc::linalg::{Norm, Tol, VecD};

fn tol() -> Tol {
    Tol::default()
}

fn random_inputs(seed: u64, n: usize, d: usize) -> Vec<VecD> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| VecD((0..d).map(|_| rng.gen_range(-1.0..1.0)).collect()))
        .collect()
}

fn base_spec(n: usize, f: usize, d: usize, seed: u64) -> AsyncSpec {
    AsyncSpec {
        n,
        f,
        mode: DeltaMode::MinDelta(Norm::L2),
        rounds: 25,
        inputs: random_inputs(seed, n, d),
        adversaries: vec![],
        scheduler: SchedulerSpec::Random(seed),
        max_steps: 6_000_000,
        agreement: Agreement::Epsilon(1e-3),
        validity: Validity::InputDependentDeltaP {
            // Outside the Theorem 15 regime (d < 3 or n − f below the f ≥ 2
            // theorem rows) fall back to the coarse κ = 1 containment; tests
            // that need the tight bound stay inside the regime.
            kappa: kappa_async(n, f, d, Norm::L2).map_or(1.0, |k| k.kappa),
            norm: Norm::L2,
        },
    }
}

#[test]
fn relaxed_averaging_across_schedulers() {
    let (n, f, d) = (4, 1, 3);
    let schedulers = vec![
        SchedulerSpec::Fifo,
        SchedulerSpec::Random(11),
        SchedulerSpec::Random(12),
        SchedulerSpec::TargetedDelay {
            victims: vec![0],
            max_delay: 150,
            seed: 1,
        },
        SchedulerSpec::TargetedDelay {
            victims: vec![1, 2],
            max_delay: 80,
            seed: 2,
        },
    ];
    for (k, scheduler) in schedulers.into_iter().enumerate() {
        let mut spec = base_spec(n, f, d, 5);
        spec.adversaries = vec![(3, AsyncByzantine::HonestInput(VecD(vec![4.0; d])))];
        spec.scheduler = scheduler;
        let report = run_async(&spec, tol());
        assert!(
            report.verdict.ok(),
            "scheduler #{k} broke the run: {:?}",
            report.verdict
        );
    }
}

#[test]
fn partial_synchrony_gst_schedules() {
    // Protocols built for full asynchrony must run under partial synchrony
    // too; convergence uses fewer scheduler steps when GST comes earlier.
    let (n, f, d) = (4, 1, 3);
    let mut steps = Vec::new();
    for gst in [20_000u64, 200] {
        let mut spec = base_spec(n, f, d, 71);
        spec.adversaries = vec![(3, AsyncByzantine::HonestInput(VecD(vec![3.0; d])))];
        spec.scheduler = SchedulerSpec::Gst {
            gst,
            pre_gst_max_delay: 120,
            seed: 4,
        };
        let report = run_async(&spec, tol());
        assert!(report.verdict.ok(), "GST = {gst}: {:?}", report.verdict);
        steps.push(report.trace.rounds);
    }
    // Step counts are dominated by total message volume; early GST must
    // not make the run meaningfully slower (allow scheduling noise).
    assert!(
        (steps[1] as f64) <= (steps[0] as f64) * 1.1,
        "earlier stabilization slowed the run: {steps:?}"
    );
}

#[test]
fn every_async_adversary_is_survived() {
    let (n, f, d) = (5, 1, 3);
    let adversaries = vec![
        AsyncByzantine::Silent,
        AsyncByzantine::HonestInput(VecD(vec![7.0; d])),
        AsyncByzantine::SplitBrain {
            primary: VecD(vec![10.0; d]),
            alt: VecD(vec![-10.0; d]),
        },
        AsyncByzantine::CorruptAverage {
            input: VecD(vec![0.5; d]),
            offset: VecD(vec![1e4; d]),
        },
    ];
    for (k, adv) in adversaries.into_iter().enumerate() {
        let mut spec = base_spec(n, f, d, 21 + k as u64);
        spec.adversaries = vec![(2, adv)];
        let report = run_async(&spec, tol());
        assert!(
            report.verdict.ok(),
            "async adversary #{k} broke the run: {:?}",
            report.verdict
        );
    }
}

#[test]
fn baseline_zero_delta_at_the_bound() {
    // DeltaMode::Zero at n = (d+2)f + 1 — the Theorem 2 sufficiency regime.
    let (n, f, d) = (5, 1, 2);
    let mut spec = base_spec(n, f, d, 31);
    spec.mode = DeltaMode::Zero;
    spec.validity = Validity::Exact;
    spec.adversaries = vec![(4, AsyncByzantine::HonestInput(VecD(vec![5.0; d])))];
    let report = run_async(&spec, tol());
    assert!(report.verdict.ok(), "{:?}", report.verdict);
    assert_eq!(report.delta_used, Some(0.0), "δ = 0 mode must not relax");
}

#[test]
fn epsilon_agreement_for_multiple_epsilons() {
    // The same protocol with more rounds satisfies tighter ε — Definition
    // 11's "for any pre-defined ε" quantifier, realized by round count.
    let (n, f, d) = (4, 1, 3);
    for (rounds, eps) in [(10usize, 1e-1), (20, 1e-3), (35, 1e-6)] {
        let mut spec = base_spec(n, f, d, 47);
        spec.rounds = rounds;
        spec.agreement = Agreement::Epsilon(eps);
        let report = run_async(&spec, tol());
        assert!(
            report.verdict.ok(),
            "rounds = {rounds}, ε = {eps}: {:?}",
            report.verdict
        );
    }
}

#[test]
fn f2_seven_processes_asynchronous() {
    // f = 2, n = 3f + 1 = 7, d = 3 — well below (d+2)f + 1 = 11.
    let (n, f, d) = (7, 2, 3);
    let mut spec = base_spec(n, f, d, 53);
    spec.adversaries = vec![
        (1, AsyncByzantine::Silent),
        (
            4,
            AsyncByzantine::SplitBrain {
                primary: VecD(vec![20.0; d]),
                alt: VecD(vec![-20.0; d]),
            },
        ),
    ];
    // κ for f = 2 at n − f = 5 < (d+1)f = 8 processes is only conjectural;
    // check the proven coarse containment instead (δ bounded by max-edge).
    spec.validity = Validity::InputDependentDeltaP {
        kappa: 1.0,
        norm: Norm::L2,
    };
    let report = run_async(&spec, tol());
    assert!(report.verdict.ok(), "{:?}", report.verdict);
}

#[test]
fn decisions_are_schedule_dependent_but_always_valid() {
    // Different schedules may change the decided point (asynchrony!) but
    // never its validity.
    let (n, f, d) = (4, 1, 3);
    let mut first: Option<VecD> = None;
    let mut saw_difference = false;
    for seed in 0..4 {
        let mut spec = base_spec(n, f, d, 60);
        spec.scheduler = SchedulerSpec::Random(seed);
        let report = run_async(&spec, tol());
        assert!(report.verdict.ok(), "seed {seed}: {:?}", report.verdict);
        let dec = report.decisions[0].clone().expect("decided");
        match &first {
            None => first = Some(dec),
            Some(prev) => {
                if !dec.approx_eq(prev, Tol(1e-9)) {
                    saw_difference = true;
                }
            }
        }
    }
    // (Not asserting saw_difference == true — some input sets are schedule
    // insensitive — but record it so the test documents the behaviour.)
    let _ = saw_difference;
}
