//! E16 — chaos campaign: Verified Averaging over drop/dup/delay/reorder/
//! partition faults with [`rbvc_sim::net::ReliableLink`] retransmission and
//! an online safety monitor.
//!
//! Usage: `exp_chaos [--smoke] [seeds_per_cell] [seed]`
//!
//! The default campaign runs 14 seeds per cell × 15 cells = 210 runs; the
//! acceptance bar is zero monitor violations and full decision coverage in
//! every recoverable cell. `--smoke` shrinks to 2 seeds per cell for CI.
//! Exits nonzero if any safety violation is observed.

use rbvc_bench::experiments::chaos::{campaign, ChaosRow};
use rbvc_bench::report::{fnum, print_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let positional: Vec<&String> = args.iter().skip(1).filter(|a| *a != "--smoke").collect();
    let seeds_per_cell: usize = positional
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(if smoke { 2 } else { 14 });
    let seed: u64 = positional.get(1).and_then(|a| a.parse().ok()).unwrap_or(2016);
    println!(
        "E16 — chaos campaign: Verified Averaging (n = 4, f = 1, d = 3, \
         MinDelta/L2) over an unreliable network, reliable-channel semantics \
         restored by sequence-numbered ack/retransmit links; an online \
         monitor checks ε-agreement and box validity on every decision."
    );
    println!(
        "{} seeds per cell from base seed {seed}{}",
        seeds_per_cell,
        if smoke { " (smoke)" } else { "" }
    );
    let rows = campaign(seeds_per_cell, seed);
    let total_runs: usize = rows.iter().map(|r| r.runs).sum();
    let total_violations: usize = rows.iter().map(|r| r.violations).sum();
    let total_decided: usize = rows.iter().map(|r| r.decided).sum();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r: &ChaosRow| {
            vec![
                r.shape.to_string(),
                fnum(r.drop),
                format!("{}/{}", r.decided, r.runs),
                r.violations.to_string(),
                fnum(r.mean_steps),
                fnum(r.mean_overhead),
                r.lost.to_string(),
            ]
        })
        .collect();
    print_table(
        "E16 (chaos campaign: fault shape × drop rate)",
        &[
            "shape",
            "drop",
            "decided",
            "violations",
            "mean steps",
            "msg overhead",
            "msgs lost",
        ],
        &table,
    );
    println!(
        "total: {total_runs} runs, {total_decided} fully decided, \
         {total_violations} safety violations"
    );
    if total_violations > 0 {
        eprintln!("FAIL: the online safety monitor fired");
        std::process::exit(1);
    }
    if total_decided < total_runs {
        eprintln!(
            "note: {} run(s) hit the step budget before all processes \
             decided",
            total_runs - total_decided
        );
    }
}
