//! E20 — live Byzantine adversaries over real TCP: seeded runs on a
//! 7-node loopback mesh with `f = 2` malicious nodes cycling through the
//! attack registry (per-recipient equivocation, lying witnesses, selective
//! mutism, codec garbage, gate sprays, stale-HELLO replays, re-dial
//! storms, and the combined mix).
//!
//! Usage: `exp_byzantine [--smoke] [--runs N] [--seed N] [--metrics ADDR]
//! [--metrics-wait-scrapes N]`
//!
//! Every run proves three things online: the per-instance safety monitor
//! (ε-agreement + box validity over the *honest* inputs) never fires, the
//! honest decisions are bit-identical to an in-process honest-only
//! baseline, and every gate rejection at an honest node is attributed to a
//! Byzantine sender. The honest-path cost of each attack mix (wall-clock
//! slowdown vs a clean TCP reference, p50/p99 submit→decide latency,
//! per-gate rejection counts) lands in `BENCH_byzantine.json` and — via
//! `--metrics` — in the live Prometheus endpoint as
//! `exp_byzantine_slowdown_permille{attack=...}`. Exits nonzero on any
//! violation, divergence, non-convergence, or scrape failure.

use std::sync::Arc;

use rbvc_bench::experiments::byzantine::{run_campaign, ByzantineConfig};
use rbvc_bench::report::{fnum, print_table, with_envelope};
use rbvc_obs::{scrape_once, MetricsServer, Registry};
use serde_json::json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let runs_override: Option<usize> = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok())
        .unwrap_or(2016);
    let metrics_addr = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let wait_scrapes: Option<u64> = args
        .iter()
        .position(|a| a == "--metrics-wait-scrapes")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());

    let mut cfg = if smoke { ByzantineConfig::smoke(seed) } else { ByzantineConfig::full(50, seed) };
    if let Some(r) = runs_override {
        cfg.runs = r;
    }
    println!(
        "E20 — Byzantine adversaries on the wire: {}-node loopback TCP mesh, \
         f = {} malicious nodes per run cycling the attack registry, {} \
         instance(s) × {} VA rounds, {} seeded runs, seed {seed}{}",
        cfg.n,
        cfg.f,
        cfg.instances,
        cfg.va_rounds,
        cfg.runs,
        if smoke { " (smoke)" } else { "" }
    );

    // Live exposition: bind before the campaign so the whole run is
    // scrapeable (gate-reject and stale-HELLO counters move mid-run; the
    // per-attack slowdown gauges appear as each mix finishes aggregating).
    let server = metrics_addr.as_ref().map(|addr| {
        let s = MetricsServer::serve(addr.as_str(), Registry::global().clone())
            .expect("bind metrics endpoint");
        println!("serving /metrics on http://{}", s.addr());
        s
    });
    let scrape_ok = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scrape_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = server.as_ref().map(|s| {
        use std::sync::atomic::Ordering;
        let addr = s.addr();
        let ok = Arc::clone(&scrape_ok);
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if let Ok(body) = scrape_once(addr) {
                    if body.contains("# TYPE") {
                        ok.store(true, Ordering::SeqCst);
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        })
    });

    let out = run_campaign(&cfg);
    scrape_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(h) = scraper {
        let _ = h.join();
    }

    let rows: Vec<Vec<String>> = out
        .reports
        .iter()
        .map(|r| {
            vec![
                r.attack.clone(),
                r.runs.to_string(),
                fnum(r.slowdown),
                fnum(r.clean_p50_ms),
                fnum(r.attack_p50_ms),
                fnum(r.clean_p99_ms),
                fnum(r.attack_p99_ms),
                format!("{}", r.gates_from_byz.iter().sum::<u64>()),
                format!("{}", r.gates_from_honest.iter().sum::<u64>()),
                r.stale_hellos.to_string(),
                fnum(r.client_attack_p50_ms),
                format!("{}", r.client_rejects + r.client_redirects),
            ]
        })
        .collect();
    print_table(
        "E20 (Byzantine adversaries on the wire)",
        &[
            "attack",
            "runs",
            "slowdown",
            "clean p50 ms",
            "atk p50 ms",
            "clean p99 ms",
            "atk p99 ms",
            "rej (byz)",
            "rej (honest)",
            "stale HELLO",
            "cli p50 ms",
            "cli rej+redir",
        ],
        &rows,
    );
    println!(
        "{}/{} runs converged, {}/{} bit-identical to the in-proc baseline, \
         {} monitor violation(s), {} honest-attributed rejection(s), {:.1}s wall",
        out.converged_runs,
        out.runs,
        out.identical_runs,
        out.runs,
        out.monitor_violations,
        out.honest_attributed_rejections,
        out.wall_secs
    );

    let doc = json!({
        "transport": if cfg.auth.is_some() { "tcp-loopback-authenticated" } else { "tcp-loopback" },
        "seed": seed,
        "smoke": smoke,
        "n": cfg.n,
        "f": cfg.f,
        "dimension": cfg.d,
        "instances": cfg.instances,
        "va_rounds": cfg.va_rounds,
        "runs": out.runs,
        "converged_runs": out.converged_runs,
        "identical_runs": out.identical_runs,
        "monitor_violations": out.monitor_violations,
        "honest_attributed_rejections": out.honest_attributed_rejections,
        "client_honest_rejections": out.client_honest_rejections,
        "client_reply_errors": out.client_reply_errors,
        "clean_auth_rejects": out.clean_auth_rejects,
        "wall_secs": out.wall_secs,
        "attacks": out.reports.iter().map(|r| json!({
            "attack": r.attack.clone(),
            "runs": r.runs,
            "honest_wall_secs": json!({ "clean": r.clean_secs, "attack": r.attack_secs }),
            "slowdown": r.slowdown,
            "latency_ms": json!({
                "clean": json!({ "p50": r.clean_p50_ms, "p99": r.clean_p99_ms }),
                "attack": json!({ "p50": r.attack_p50_ms, "p99": r.attack_p99_ms }),
            }),
            "gate_rejections": json!({
                "from_byzantine": json!({
                    "decode": r.gates_from_byz[0],
                    "auth": r.gates_from_byz[1],
                    "instance": r.gates_from_byz[2],
                    "kind": r.gates_from_byz[3],
                }),
                "from_honest": json!({
                    "decode": r.gates_from_honest[0],
                    "auth": r.gates_from_honest[1],
                    "instance": r.gates_from_honest[2],
                    "kind": r.gates_from_honest[3],
                }),
            }),
            "attacker_activity": json!({
                "frames_mutated": r.stats.frames_mutated,
                "frames_dropped": r.stats.frames_dropped,
                "garbage_injected": r.stats.garbage_injected,
                "gate_sprays": r.stats.gate_sprays,
                "hello_replays": r.stats.hello_replays,
                "redial_storms": r.stats.redial_storms,
                "client_sprays": r.stats.client_sprays,
            }),
            "client_plane": json!({
                "latency_ms": json!({
                    "clean": json!({ "p50": r.client_clean_p50_ms, "p99": r.client_clean_p99_ms }),
                    "attack": json!({ "p50": r.client_attack_p50_ms, "p99": r.client_attack_p99_ms }),
                }),
                "port_rejects": r.client_rejects,
                "table_redirects": r.client_redirects,
            }),
            "stale_hellos_refused": r.stale_hellos,
            "auth_rejects": r.auth_rejects,
        })).collect::<Vec<_>>(),
        "metrics_endpoint": server.as_ref().map(|s| json!({
            "addr": s.addr().to_string(),
            "mid_run_scrape_ok": scrape_ok.load(std::sync::atomic::Ordering::SeqCst),
        })),
    });
    let doc = with_envelope("E20", "Byzantine adversaries on the wire", doc);
    let rendered = serde_json::to_string_pretty(&doc).expect("valid JSON");
    std::fs::write("BENCH_byzantine.json", &rendered).expect("write BENCH_byzantine.json");
    println!("wrote BENCH_byzantine.json");

    let mut failed = false;
    if out.converged_runs < out.runs {
        eprintln!(
            "FAIL: {}/{} runs did not converge within the sweep budget",
            out.runs - out.converged_runs,
            out.runs
        );
        failed = true;
    }
    if out.identical_runs < out.runs {
        eprintln!(
            "FAIL: {}/{} runs diverged from the honest in-proc baseline",
            out.runs - out.identical_runs,
            out.runs
        );
        failed = true;
    }
    if out.monitor_violations > 0 {
        eprintln!(
            "FAIL: the online safety monitor fired {} time(s) under attack",
            out.monitor_violations
        );
        failed = true;
    }
    if out.honest_attributed_rejections > 0 {
        eprintln!(
            "FAIL: {} gate rejection(s) attributed to honest senders",
            out.honest_attributed_rejections
        );
        failed = true;
    }
    if out.client_honest_rejections > 0 {
        eprintln!(
            "FAIL: {} client-port rejection(s) during clean references (honest traffic)",
            out.client_honest_rejections
        );
        failed = true;
    }
    if out.client_reply_errors > 0 {
        eprintln!(
            "FAIL: {} honest-client repl(ies) were wrong or timed out",
            out.client_reply_errors
        );
        failed = true;
    }
    if out.clean_auth_rejects > 0 {
        eprintln!(
            "FAIL: {} handshake rejection(s) during clean references (honest links)",
            out.clean_auth_rejects
        );
        failed = true;
    }
    if metrics_addr.is_some() && !scrape_ok.load(std::sync::atomic::Ordering::SeqCst) {
        eprintln!("FAIL: the metrics endpoint never served a valid Prometheus dump mid-run");
        failed = true;
    }
    // Hold the endpoint open for the CI curl: the slowdown gauges only
    // exist after aggregation, so external scrapers are counted from here.
    if let (Some(s), Some(n)) = (&server, wait_scrapes) {
        let baseline = s.scrapes();
        let t0 = std::time::Instant::now();
        println!("waiting for {n} external scrape(s) on http://{} (20s budget)", s.addr());
        while s.scrapes() < baseline + n && t0.elapsed() < std::time::Duration::from_secs(20) {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
    if failed {
        std::process::exit(1);
    }
}
