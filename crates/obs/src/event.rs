//! Structured protocol events.
//!
//! One [`Event`] records one protocol-level occurrence — a round boundary,
//! a reliable-broadcast delivery, a receive-gate rejection, a decision —
//! tagged with where it happened (`node`), which consensus instance it
//! belongs to (`instance`), and the protocol round, when those are known.
//! Events serialize to single-line JSON (one line per event in a `.jsonl`
//! trace) and parse back for post-hoc analysis by [`crate::report`].

use serde::Value;

/// What happened. The variants cover every instrumentation site in the
/// workspace; `as_str` names are the wire/JSON identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A protocol round began (lockstep advance, VA round open).
    RoundStart,
    /// A protocol round completed (all inputs consumed or timed out).
    RoundEnd,
    /// A reliable-broadcast instance delivered (Bracha accept).
    BroadcastAccept,
    /// A witness set passed verification (Verified Averaging commit).
    WitnessCommit,
    /// An inbound message died at a receive gate.
    GateReject,
    /// A reliable link re-sent an unacknowledged message.
    Retransmit,
    /// A network partition healed (first delivery after the heal tick).
    PartitionHeal,
    /// A consensus instance decided.
    Decide,
    /// A safety monitor observed a violation.
    Violation,
    /// A record was appended to the write-ahead log.
    WalAppend,
    /// A write-ahead log was replayed at startup (detail carries record
    /// and torn-byte counts).
    WalReplay,
    /// A service finished crash recovery and rejoined the mesh.
    Recovered,
    /// A client submitted an instance to the service (latency epoch; the
    /// submit→decide interval is what the critical path partitions).
    Submit,
    /// A frame left this node. `node` is the sender, `peer` the
    /// destination, `seq` the per-link send ordinal; `instance`/`round`
    /// carry the frame identity so the receive half pairs up across nodes.
    FrameTx,
    /// A frame was dispatched on this node. `node` is the receiver, `peer`
    /// the sender, `seq` the per-link receive ordinal, `dur_us` the time
    /// the frame waited between transport arrival and service dispatch.
    FrameRx,
    /// A service poll iteration finished doing work. `dur_us` spans the
    /// active processing (after the blocking receive returned); detail
    /// carries `rx= tx= fsync_us= kernel_us=` for phase attribution.
    PollEnd,
    /// The stall detector diagnosed a stalled instance. `instance`/`round`
    /// locate the stall; detail carries
    /// `phase= waiting_on= stalled_us= escalated=` (the blame report).
    StallDetected,
    /// A previously stalled instance made progress again; detail carries
    /// the final `phase= waiting_on= stalled_us=`.
    StallCleared,
    /// A keyed link handshake verified: the inbound link from `peer` is
    /// now cryptographically authenticated; detail carries the session
    /// `epoch=`.
    AuthEstablished,
    /// A link handshake failed verification. `peer` is the *claimed*
    /// identity when the record got far enough to claim one; detail
    /// carries the `reason=` label (`bad-mac`, `downgrade`, …).
    AuthReject,
}

impl EventKind {
    /// Every kind, for table-driven reports.
    pub const ALL: [EventKind; 20] = [
        EventKind::RoundStart,
        EventKind::RoundEnd,
        EventKind::BroadcastAccept,
        EventKind::WitnessCommit,
        EventKind::GateReject,
        EventKind::Retransmit,
        EventKind::PartitionHeal,
        EventKind::Decide,
        EventKind::Violation,
        EventKind::WalAppend,
        EventKind::WalReplay,
        EventKind::Recovered,
        EventKind::Submit,
        EventKind::FrameTx,
        EventKind::FrameRx,
        EventKind::PollEnd,
        EventKind::StallDetected,
        EventKind::StallCleared,
        EventKind::AuthEstablished,
        EventKind::AuthReject,
    ];

    /// Stable wire name of the kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::RoundStart => "round_start",
            EventKind::RoundEnd => "round_end",
            EventKind::BroadcastAccept => "broadcast_accept",
            EventKind::WitnessCommit => "witness_commit",
            EventKind::GateReject => "gate_reject",
            EventKind::Retransmit => "retransmit",
            EventKind::PartitionHeal => "partition_heal",
            EventKind::Decide => "decide",
            EventKind::Violation => "violation",
            EventKind::WalAppend => "wal_append",
            EventKind::WalReplay => "wal_replay",
            EventKind::Recovered => "recovered",
            EventKind::Submit => "submit",
            EventKind::FrameTx => "frame_tx",
            EventKind::FrameRx => "frame_rx",
            EventKind::PollEnd => "poll_end",
            EventKind::StallDetected => "stall_detected",
            EventKind::StallCleared => "stall_cleared",
            EventKind::AuthEstablished => "auth_established",
            EventKind::AuthReject => "auth_reject",
        }
    }

    /// Inverse of [`EventKind::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.as_str() == s)
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured protocol event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the process-wide monotonic epoch
    /// ([`crate::clock`]; stamped by [`crate::Obs`]). The wall-clock
    /// instant of that epoch is recorded once, in the trace header.
    pub time_us: u64,
    /// Process id where the event happened, if attributable.
    pub node: Option<u32>,
    /// Service-wide consensus-instance id, if the site is instance-scoped.
    pub instance: Option<u64>,
    /// Protocol round, if the site is round-scoped.
    pub round: Option<u32>,
    /// Remote endpoint of a link-scoped span: the destination of a
    /// [`EventKind::FrameTx`], the sender of a [`EventKind::FrameRx`].
    pub peer: Option<u32>,
    /// Per-directed-link frame ordinal. Links are FIFO, so the `n`th send
    /// on a link pairs with the `n`th receive — the cross-node join key.
    pub seq: Option<u64>,
    /// Span duration in microseconds; `time_us` is the span *end*, so the
    /// span covers `[time_us - dur_us, time_us]`.
    pub dur_us: Option<u64>,
    /// What happened.
    pub kind: EventKind,
    /// Free-form context (`key=value` pairs by convention; the first pair
    /// classifies the event within its kind, e.g. `gate=auth`).
    pub detail: Option<String>,
}

impl Event {
    /// New event of `kind` with every tag unset; `time_us` is stamped at
    /// emission by [`crate::Obs::emit`].
    #[must_use]
    pub fn new(kind: EventKind) -> Event {
        Event {
            time_us: 0,
            node: None,
            instance: None,
            round: None,
            peer: None,
            seq: None,
            dur_us: None,
            kind,
            detail: None,
        }
    }

    /// Tag the originating process.
    #[must_use]
    pub fn node(mut self, node: u32) -> Event {
        self.node = Some(node);
        self
    }

    /// Tag the consensus instance.
    #[must_use]
    pub fn instance(mut self, instance: u64) -> Event {
        self.instance = Some(instance);
        self
    }

    /// Tag the protocol round.
    #[must_use]
    pub fn round(mut self, round: u32) -> Event {
        self.round = Some(round);
        self
    }

    /// Tag the remote endpoint of a link-scoped span.
    #[must_use]
    pub fn peer(mut self, peer: u32) -> Event {
        self.peer = Some(peer);
        self
    }

    /// Tag the per-link frame ordinal.
    #[must_use]
    pub fn seq(mut self, seq: u64) -> Event {
        self.seq = Some(seq);
        self
    }

    /// Tag the span duration (microseconds, ending at `time_us`).
    #[must_use]
    pub fn dur(mut self, dur_us: u64) -> Event {
        self.dur_us = Some(dur_us);
        self
    }

    /// Attach free-form context.
    #[must_use]
    pub fn detail(mut self, detail: impl Into<String>) -> Event {
        self.detail = Some(detail.into());
        self
    }

    /// Render as one JSONL line (no trailing newline). Unset tags are
    /// omitted, so the line stays short on the hot path.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut fields: Vec<(String, Value)> = vec![
            ("t".into(), Value::Str("event".into())),
            ("time_us".into(), Value::UInt(self.time_us)),
            ("kind".into(), Value::Str(self.kind.as_str().into())),
        ];
        if let Some(node) = self.node {
            fields.push(("node".into(), Value::UInt(u64::from(node))));
        }
        if let Some(instance) = self.instance {
            fields.push(("instance".into(), Value::UInt(instance)));
        }
        if let Some(round) = self.round {
            fields.push(("round".into(), Value::UInt(u64::from(round))));
        }
        if let Some(peer) = self.peer {
            fields.push(("peer".into(), Value::UInt(u64::from(peer))));
        }
        if let Some(seq) = self.seq {
            fields.push(("seq".into(), Value::UInt(seq)));
        }
        if let Some(dur_us) = self.dur_us {
            fields.push(("dur_us".into(), Value::UInt(dur_us)));
        }
        if let Some(detail) = &self.detail {
            fields.push(("detail".into(), Value::Str(detail.clone())));
        }
        let mut out = String::new();
        Value::Object(fields).render(&mut out);
        out
    }

    /// Parse an event back from a parsed JSON object; `None` if the value
    /// is not an event line (wrong `t`) or misses required fields.
    #[must_use]
    pub fn from_value(v: &Value) -> Option<Event> {
        if v.get("t")?.as_str()? != "event" {
            return None;
        }
        Some(Event {
            time_us: v.get("time_us")?.as_u64()?,
            node: v.get("node").and_then(Value::as_u64).map(|n| n as u32),
            instance: v.get("instance").and_then(Value::as_u64),
            round: v.get("round").and_then(Value::as_u64).map(|r| r as u32),
            peer: v.get("peer").and_then(Value::as_u64).map(|p| p as u32),
            seq: v.get("seq").and_then(Value::as_u64),
            dur_us: v.get("dur_us").and_then(Value::as_u64),
            kind: EventKind::parse(v.get("kind")?.as_str()?)?,
            detail: v.get("detail").and_then(Value::as_str).map(String::from),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(EventKind::parse("nonsense"), None);
    }

    #[test]
    fn event_json_round_trips() {
        let ev = Event::new(EventKind::GateReject)
            .node(3)
            .instance(17)
            .round(2)
            .detail("gate=auth from=5");
        let line = ev.to_json_line();
        let v = serde_json::from_str(&line).expect("parses");
        let back = Event::from_value(&v).expect("event line");
        // time_us is stamped at emission; compare the rest.
        assert_eq!(back.node, ev.node);
        assert_eq!(back.instance, ev.instance);
        assert_eq!(back.round, ev.round);
        assert_eq!(back.kind, ev.kind);
        assert_eq!(back.detail, ev.detail);
    }

    #[test]
    fn span_fields_round_trip() {
        let mut ev = Event::new(EventKind::FrameRx)
            .node(4)
            .instance(9)
            .round(1)
            .peer(2)
            .seq(1337)
            .dur(86)
            .detail("kind=eig bytes=244");
        ev.time_us = 123_456;
        let v = serde_json::from_str(&ev.to_json_line()).expect("parses");
        assert_eq!(Event::from_value(&v), Some(ev));
    }

    #[test]
    fn unset_tags_are_omitted_from_json() {
        let line = Event::new(EventKind::Decide).to_json_line();
        assert!(!line.contains("node"));
        assert!(!line.contains("instance"));
        assert!(!line.contains("detail"));
    }
}
