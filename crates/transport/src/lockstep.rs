//! Lockstep synchronizer: runs a [`SyncProtocol`] (e.g. `SyncBvc`) over an
//! asynchronous, message-driven substrate by re-creating the rounds.
//!
//! The lockstep engine of `rbvc_sim::sync` delivers every round-`r` message
//! simultaneously; a socket delivers them one by one, in any order, possibly
//! interleaved across rounds. [`Lockstep`] restores the synchronous
//! abstraction with the classic simulation: each process wraps its round-`r`
//! sends into one [`RoundBatch`] *per destination* (explicitly including
//! empty batches, so silence is distinguishable from loss), buffers
//! incoming batches by round, and delivers round `r` to the inner protocol
//! only when a batch from **all** `n` senders has arrived — at which point
//! the inbox is replayed in sender order, making the delivery deterministic
//! and therefore byte-identical across transports.
//!
//! Crash tolerance: a peer that stays silent would stall the barrier, so
//! [`Lockstep::on_tick`] counts idle ticks and force-advances with a
//! partial inbox after `timeout_ticks` — the synchronous model's "end of
//! round timeout". Missing senders simply contribute nothing, which the
//! inner protocol already treats like an omitting Byzantine process.
//!
//! Receive-boundary degradation (documented contract, never a panic):
//! batches from ghost senders, for rounds already delivered, or beyond the
//! round cap are discarded and recorded; a second batch from the same
//! `(sender, round)` is ignored (first wins), so an equivocating sender
//! cannot rewrite history.

use std::collections::BTreeMap;

use rbvc_obs::{Event, EventKind, Obs};
use rbvc_sim::asynch::AsyncProtocol;
use rbvc_sim::config::ProcessId;
use rbvc_sim::error::{ErrorLog, ProtocolError};
use rbvc_sim::sync::SyncProtocol;

/// All messages one sender addressed to one destination in one round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundBatch<M> {
    /// Lockstep round this batch belongs to.
    pub round: usize,
    /// The messages (empty = the sender had nothing for us this round).
    pub msgs: Vec<M>,
}

/// Default idle-tick budget before a round is force-advanced.
pub const DEFAULT_TIMEOUT_TICKS: u32 = 64;

/// The synchronizer; implements [`AsyncProtocol`] with
/// `Msg = RoundBatch<P::Msg>` so it can run under any async substrate —
/// the in-process engine, the threaded runtime, or a socket service.
pub struct Lockstep<P: SyncProtocol> {
    inner: P,
    n: usize,
    /// Next round to deliver to the inner protocol.
    round: usize,
    /// Rounds the inner protocol runs (no batch is emitted beyond this).
    max_rounds: usize,
    /// Idle ticks since the last advance; reaching `timeout_ticks` forces
    /// the round through with a partial inbox.
    idle_ticks: u32,
    timeout_ticks: u32,
    /// round → sender → that sender's batch (first one wins).
    inbox: BTreeMap<usize, BTreeMap<ProcessId, Vec<P::Msg>>>,
    done: bool,
    errors: ErrorLog,
    /// Structured-event sink (no-op by default).
    obs: Obs,
    /// Instance tag stamped on every emitted event.
    obs_instance: Option<u64>,
}

impl<P: SyncProtocol> Lockstep<P> {
    /// Wrap `inner` (one process of an `n`-process run); the protocol runs
    /// `max_rounds` lockstep rounds (e.g. `f + 1` for EIG-based `SyncBvc`).
    #[must_use]
    pub fn new(inner: P, n: usize, max_rounds: usize) -> Self {
        assert!(max_rounds >= 1, "a synchronous protocol needs ≥ 1 round");
        Lockstep {
            inner,
            n,
            round: 0,
            max_rounds,
            idle_ticks: 0,
            timeout_ticks: DEFAULT_TIMEOUT_TICKS,
            inbox: BTreeMap::new(),
            done: false,
            errors: ErrorLog::new(),
            obs: Obs::noop(),
            obs_instance: None,
        }
    }

    /// Attach a structured-event sink; `instance` (if given) tags every
    /// event. The synchronizer emits [`EventKind::RoundStart`] when it
    /// starts emitting a round, [`EventKind::RoundEnd`] when a round's
    /// inbox is delivered (detail says whether the barrier was complete or
    /// timed out partial), and [`EventKind::GateReject`] for every
    /// receive-boundary rejection. Tracing never changes behaviour.
    pub fn set_obs(&mut self, obs: Obs, instance: Option<u64>) {
        self.obs = obs;
        self.obs_instance = instance;
    }

    /// Emit one event, stamping the round and instance tags.
    fn emit_event(&self, kind: EventKind, round: usize, detail: impl FnOnce() -> String) {
        self.obs.emit(|| {
            let mut ev = Event::new(kind)
                .round(u32::try_from(round).unwrap_or(u32::MAX))
                .detail(detail());
            if let Some(i) = self.obs_instance {
                ev = ev.instance(i);
            }
            ev
        });
    }

    /// Override the idle-tick budget before a partial-inbox force-advance.
    #[must_use]
    pub fn with_timeout_ticks(mut self, ticks: u32) -> Self {
        assert!(ticks >= 1, "timeout must be at least one tick");
        self.timeout_ticks = ticks;
        self
    }

    /// The wrapped protocol (for decision inspection).
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The next round awaiting delivery at the barrier.
    #[must_use]
    pub fn current_round(&self) -> usize {
        self.round
    }

    /// Whether the inner protocol has finished (decided or round cap hit).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The senders whose current-round batch has **not** arrived — the
    /// processes the barrier is waiting on right now (empty once done).
    /// This is the stall detector's blame set: progress needs n − f
    /// well-formed batches, and these are the ids still owing one.
    #[must_use]
    pub fn waiting_on(&self) -> Vec<ProcessId> {
        if self.done {
            return Vec::new();
        }
        let have = self.inbox.get(&self.round);
        (0..self.n)
            .filter(|p| !have.is_some_and(|m| m.contains_key(p)))
            .collect()
    }

    /// How many senders' batches for the current round have arrived.
    #[must_use]
    pub fn senders_have(&self) -> usize {
        if self.done {
            return self.n;
        }
        self.inbox.get(&self.round).map_or(0, BTreeMap::len)
    }

    /// Degradation events survived at this receive boundary.
    #[must_use]
    pub fn errors(&self) -> &ErrorLog {
        &self.errors
    }

    /// Emit this process's round-`round` batches: one per destination,
    /// including empty ones (and one to ourselves — self-delivery is how
    /// the inner protocol hears its own broadcast).
    fn emit(&mut self, round: usize) -> Vec<(ProcessId, RoundBatch<P::Msg>)> {
        self.emit_event(EventKind::RoundStart, round, || {
            format!("emitting batches for round {round}")
        });
        let mut per_dst: Vec<Vec<P::Msg>> = (0..self.n).map(|_| Vec::new()).collect();
        for (dst, msg) in self.inner.round_messages(round) {
            if dst >= self.n {
                self.errors.record(ProtocolError::Transport {
                    peer: Some(dst),
                    reason: format!("inner protocol addressed ghost process {dst}"),
                });
                continue;
            }
            per_dst[dst].push(msg);
        }
        per_dst
            .into_iter()
            .enumerate()
            .map(|(dst, msgs)| (dst, RoundBatch { round, msgs }))
            .collect()
    }

    /// Deliver round `self.round` to the inner protocol if every sender's
    /// batch arrived (or `force` is set), then emit the next round.
    fn try_advance(&mut self, force: bool) -> Vec<(ProcessId, RoundBatch<P::Msg>)> {
        let mut out = Vec::new();
        loop {
            if self.done {
                return out;
            }
            let have = self.inbox.get(&self.round).map_or(0, BTreeMap::len);
            if have < self.n && !(force && out.is_empty()) {
                return out;
            }
            // BTreeMap iteration replays the inbox in sender order — the
            // deterministic delivery that keeps decisions transport-independent.
            let senders = self.inbox.remove(&self.round).unwrap_or_default();
            {
                let (round, have, n) = (self.round, senders.len(), self.n);
                self.emit_event(EventKind::RoundEnd, round, || {
                    format!(
                        "senders={have}/{n}{}",
                        if have < n { " (partial, timed out)" } else { "" }
                    )
                });
            }
            let inbox: Vec<(ProcessId, P::Msg)> = senders
                .into_iter()
                .flat_map(|(from, msgs)| msgs.into_iter().map(move |m| (from, m)))
                .collect();
            self.inner.receive(self.round, &inbox);
            self.round += 1;
            self.idle_ticks = 0;
            if self.inner.output().is_some() || self.round >= self.max_rounds {
                self.done = true;
                self.inbox.clear();
            } else {
                out.extend(self.emit(self.round));
            }
        }
    }
}

impl<P: SyncProtocol> AsyncProtocol for Lockstep<P> {
    type Msg = RoundBatch<P::Msg>;
    type Output = P::Output;

    fn on_start(&mut self) -> Vec<(ProcessId, Self::Msg)> {
        self.emit(0)
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg) -> Vec<(ProcessId, Self::Msg)> {
        if self.done {
            return Vec::new();
        }
        if from >= self.n || msg.round >= self.max_rounds {
            self.emit_event(EventKind::GateReject, msg.round, || {
                format!("gate=batch_bounds from={from}")
            });
            self.errors.record(ProtocolError::MalformedPayload {
                from,
                reason: format!(
                    "round batch from sender {from} for round {} rejected (n = {}, cap {})",
                    msg.round, self.n, self.max_rounds
                ),
            });
            return Vec::new();
        }
        if msg.round < self.round {
            // A straggler for a round already delivered (e.g. after a
            // timeout advance): too late to matter, not an error.
            self.emit_event(EventKind::GateReject, msg.round, || {
                format!("gate=stale from={from}")
            });
            return Vec::new();
        }
        // First batch per (round, sender) wins; equivocators cannot rewrite.
        self.inbox
            .entry(msg.round)
            .or_default()
            .entry(from)
            .or_insert(msg.msgs);
        self.try_advance(false)
    }

    fn on_tick(&mut self) -> Vec<(ProcessId, Self::Msg)> {
        if self.done {
            return Vec::new();
        }
        self.idle_ticks += 1;
        if self.idle_ticks >= self.timeout_ticks {
            self.errors.record(ProtocolError::Transport {
                peer: None,
                reason: format!(
                    "round {} timed out with {}/{} senders; advancing with a partial inbox",
                    self.round,
                    self.inbox.get(&self.round).map_or(0, BTreeMap::len),
                    self.n
                ),
            });
            return self.try_advance(true);
        }
        Vec::new()
    }

    fn output(&self) -> Option<P::Output> {
        self.inner.output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbvc_sim::asynch::{AsyncEngine, AsyncNode, RandomScheduler};
    use rbvc_sim::config::SystemConfig;

    /// Toy synchronous protocol: round 0 broadcast your id; decide on the
    /// sum of everything heard. Any missing sender lowers the sum.
    struct SumIds {
        id: ProcessId,
        n: usize,
        sum: Option<usize>,
    }

    impl SyncProtocol for SumIds {
        type Msg = usize;
        type Output = usize;

        fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, usize)> {
            if round == 0 {
                (0..self.n).map(|dst| (dst, self.id)).collect()
            } else {
                Vec::new()
            }
        }

        fn receive(&mut self, _round: usize, inbox: &[(ProcessId, usize)]) {
            self.sum = Some(inbox.iter().map(|(_, v)| v).sum());
        }

        fn output(&self) -> Option<usize> {
            self.sum
        }
    }

    fn nodes(n: usize) -> Vec<AsyncNode<Lockstep<SumIds>>> {
        (0..n)
            .map(|id| {
                AsyncNode::Honest(Lockstep::new(SumIds { id, n, sum: None }, n, 1))
            })
            .collect()
    }

    #[test]
    fn one_round_protocol_decides_under_async_delivery() {
        let n = 4;
        let config = SystemConfig::new(n, 0);
        let mut engine = AsyncEngine::new(config, nodes(n));
        let out = engine.run(&mut RandomScheduler::new(13), 100_000);
        assert!(out.all_decided);
        for d in &out.decisions {
            assert_eq!(*d, Some(6), "sum of ids 0..4");
        }
    }

    #[test]
    fn ghost_and_stale_batches_degrade_not_panic() {
        let mut ls = Lockstep::new(SumIds { id: 0, n: 3, sum: None }, 3, 1);
        let _ = ls.on_start();
        // Ghost sender.
        assert!(ls.on_message(9, RoundBatch { round: 0, msgs: vec![9] }).is_empty());
        // Out-of-cap round.
        assert!(ls.on_message(1, RoundBatch { round: 7, msgs: vec![1] }).is_empty());
        assert_eq!(ls.errors().total(), 2);
        // Equivocation: the second batch from sender 1 must not overwrite.
        let _ = ls.on_message(1, RoundBatch { round: 0, msgs: vec![1] });
        let _ = ls.on_message(1, RoundBatch { round: 0, msgs: vec![100] });
        let _ = ls.on_message(0, RoundBatch { round: 0, msgs: vec![0] });
        let _ = ls.on_message(2, RoundBatch { round: 0, msgs: vec![2] });
        assert_eq!(ls.output(), Some(3), "first batch wins: 0 + 1 + 2");
    }

    #[test]
    fn barrier_introspection_names_the_missing_senders() {
        let mut ls = Lockstep::new(SumIds { id: 0, n: 3, sum: None }, 3, 1);
        let _ = ls.on_start();
        assert_eq!(ls.current_round(), 0);
        assert!(!ls.is_done());
        assert_eq!(ls.waiting_on(), vec![0, 1, 2]);
        assert_eq!(ls.senders_have(), 0);
        let _ = ls.on_message(0, RoundBatch { round: 0, msgs: vec![0] });
        let _ = ls.on_message(2, RoundBatch { round: 0, msgs: vec![2] });
        assert_eq!(ls.waiting_on(), vec![1], "exactly the silent sender");
        assert_eq!(ls.senders_have(), 2);
        let _ = ls.on_message(1, RoundBatch { round: 0, msgs: vec![1] });
        assert!(ls.is_done());
        assert!(ls.waiting_on().is_empty(), "done means nobody is owed");
        assert_eq!(ls.senders_have(), 3);
    }

    #[test]
    fn tick_timeout_advances_past_a_silent_peer() {
        let mut ls = Lockstep::new(SumIds { id: 0, n: 3, sum: None }, 3, 1)
            .with_timeout_ticks(4);
        let _ = ls.on_start();
        let _ = ls.on_message(0, RoundBatch { round: 0, msgs: vec![0] });
        let _ = ls.on_message(2, RoundBatch { round: 0, msgs: vec![2] });
        assert_eq!(ls.output(), None, "barrier waits for sender 1");
        for _ in 0..4 {
            let _ = ls.on_tick();
        }
        assert_eq!(ls.output(), Some(2), "partial inbox after timeout: 0 + 2");
        assert!(ls.errors().total() > 0, "the timeout advance is recorded");
    }
}
