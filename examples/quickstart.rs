//! Quickstart: run synchronous Exact Byzantine Vector Consensus among four
//! processes, one of them Byzantine, and verify the outcome.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rbvc_core::problem::{Agreement, Validity};
use rbvc_core::rules::DecisionRule;
use rbvc_core::runner::{run_sync, SyncSpec};
use rbvc_core::sync_protocols::ByzantineStrategy;
use rbvc_linalg::{Tol, VecD};

fn main() {
    // d = 2 dimensional inputs, n = 4 processes, f = 1 Byzantine:
    // n = max(3f+1, (d+1)f+1) = 4 meets the Theorem 1 bound exactly.
    let spec = SyncSpec {
        n: 4,
        f: 1,
        d: 2,
        rule: DecisionRule::GammaPoint,
        inputs: vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[0.0, 2.0]),
            VecD::zeros(2), // slot of the Byzantine process (placeholder)
        ],
        // Process 3 equivocates: it shows a different "input" to everyone.
        adversaries: vec![(
            3,
            ByzantineStrategy::TwoFaced(vec![
                VecD::from_slice(&[100.0, 100.0]),
                VecD::from_slice(&[-100.0, -100.0]),
                VecD::from_slice(&[0.0, 50.0]),
                VecD::zeros(2),
            ]),
        )],
        agreement: Agreement::Exact,
        validity: Validity::Exact,
    };

    let report = run_sync(&spec, Tol::default());

    println!("decisions of the three correct processes:");
    for (i, d) in report.decisions.iter().enumerate() {
        match d {
            Some(v) => println!("  correct process {i}: {v}"),
            None => println!("  correct process {i}: (undecided)"),
        }
    }
    println!("\nverdict: {:#?}", report.verdict);
    println!("messages sent: {}", report.trace.messages_sent);
    assert!(report.verdict.ok(), "consensus must hold at the tight bound");
    println!("\nExact BVC succeeded at the tight bound n = (d+1)f + 1 despite equivocation.");
}
