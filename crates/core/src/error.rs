//! Typed protocol errors.
//!
//! Malformed input — a Byzantine payload with NaN components, a witness set
//! referencing ghost processes, a run specification that cannot possibly
//! satisfy the paper's bounds — used to `panic!` deep inside the protocol
//! state machines.  That is the wrong failure domain: a poisoned message
//! should degrade the *one node* that received it (it stays undecided and the
//! run records why), while an impossible experiment specification should be
//! reported to the caller as an `Err`, not a crash.
//!
//! [`ProtocolError`] is the single error currency for both cases.

use rbvc_sim::ProcessId;
use std::fmt;

/// Everything that can go wrong inside a protocol node or an experiment
/// runner without being a bug in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The experiment specification is internally inconsistent (wrong number
    /// of inputs, zero processes, mismatched dimensions, ...).
    InvalidSpec {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A safe-area intersection (Γ(X) in `DeltaMode::Zero`) came up empty.
    ///
    /// With `n < (d+2)f + 1` this is expected — the paper's Theorem 2 bound
    /// is violated — but it can also be provoked at runtime by Byzantine
    /// values, so it must not panic.
    EmptyIntersection {
        /// Protocol round in which the combination step failed.
        round: usize,
        /// Description of the combining mode that failed.
        mode: &'static str,
    },
    /// A received payload failed receive-boundary validation (non-finite
    /// components, dimension mismatch, out-of-range process ids, oversized
    /// witness sets).  The message is discarded; only the sender's influence
    /// is lost.
    MalformedPayload {
        /// Claimed sender of the offending message.
        from: ProcessId,
        /// What exactly was malformed.
        reason: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::InvalidSpec { reason } => {
                write!(f, "invalid experiment specification: {reason}")
            }
            ProtocolError::EmptyIntersection { round, mode } => {
                write!(
                    f,
                    "empty intersection in round {round} ({mode}); \
                     the n >= (d+2)f + 1 bound is likely violated"
                )
            }
            ProtocolError::MalformedPayload { from, reason } => {
                write!(f, "malformed payload from process {from}: {reason}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::EmptyIntersection { round: 0, mode: "gamma" };
        assert!(e.to_string().contains("round 0"));
        let e = ProtocolError::MalformedPayload { from: 7, reason: "NaN component".into() };
        assert!(e.to_string().contains("process 7"));
        assert!(e.to_string().contains("NaN"));
        let e = ProtocolError::InvalidSpec { reason: "n == 0".into() };
        assert!(e.to_string().contains("n == 0"));
    }
}
