//! Live introspection: Prometheus text rendering and a tiny blocking HTTP
//! listener serving `/metrics` (a [`Registry`]) and `/status` (a
//! [`StatusBoard`] JSON snapshot) from one socket.
//!
//! The renderer maps the registry's `name{k=v,...}` keys onto the
//! Prometheus text format (version 0.0.4): dots in metric names become
//! underscores, labels are re-quoted, counters and gauges emit one sample,
//! and the log2 histograms emit cumulative `_bucket{le="..."}` samples at
//! their exact power-of-two boundaries plus `_sum`/`_count`. The listener
//! is deliberately minimal — one accept loop on a dedicated thread, one
//! response per connection, `Connection: close` — because its job is to
//! let E17/E18 be scraped *while hot* without pulling an HTTP stack into
//! the tree.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::health::StatusBoard;
use crate::metrics::{bucket_high, MetricValue, Registry};

/// Split a registry key back into `(base_name, labels)`.
fn split_key(key: &str) -> (&str, Vec<(&str, &str)>) {
    let Some(open) = key.find('{') else {
        return (key, Vec::new());
    };
    let base = &key[..open];
    let Some(body) = key[open + 1..].strip_suffix('}') else {
        return (key, Vec::new());
    };
    let labels = body
        .split(',')
        .filter_map(|tok| tok.split_once('='))
        .collect();
    (base, labels)
}

/// Sanitize a dotted metric name into a Prometheus identifier.
fn prom_name(base: &str) -> String {
    let mut out: String = base
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn render_labels(labels: &[(&str, &str)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), v.replace('"', "'")))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render the whole registry as a Prometheus text-format page.
#[must_use]
pub fn prometheus_text(registry: &Registry) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (key, value) in registry.snapshot() {
        let (base, labels) = split_key(&key);
        let name = prom_name(base);
        let prom_type = match value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        if typed.insert(name.clone()) {
            let _ = writeln!(out, "# TYPE {name} {prom_type}");
        }
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{name}{} {v}", render_labels(&labels, None));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name}{} {v}", render_labels(&labels, None));
            }
            MetricValue::Histogram(h) => {
                // Cumulative buckets at the exact log2 upper bounds; only
                // populated buckets (plus +Inf) keep pages small.
                let mut cum = 0u64;
                for (i, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cum += n;
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cum}",
                        render_labels(&labels, Some(("le", bucket_high(i).to_string())))
                    );
                }
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {}",
                    render_labels(&labels, Some(("le", "+Inf".to_string()))),
                    h.count
                );
                let _ = writeln!(out, "{name}_sum{} {}", render_labels(&labels, None), h.sum);
                let _ =
                    writeln!(out, "{name}_count{} {}", render_labels(&labels, None), h.count);
            }
        }
    }
    out
}

/// A live introspection endpoint: blocking HTTP/1.1 listener on its own
/// thread, routing `/metrics` to [`prometheus_text`] of a shared
/// [`Registry`] and `/status` to the JSON document of a shared
/// [`StatusBoard`] (any other path gets a proper `404`, never a dropped
/// connection). Dropping the server stops the listener (self-dial wake,
/// same pattern as the TCP transport's reader shutdown).
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    scrapes: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`, or port 0 for ephemeral) and
    /// start serving `registry`. The `/status` path serves an empty board;
    /// use [`MetricsServer::serve_with_status`] to attach a live one.
    ///
    /// # Errors
    /// Propagates bind failure.
    pub fn serve(addr: impl ToSocketAddrs, registry: Registry) -> std::io::Result<MetricsServer> {
        MetricsServer::serve_with_status(addr, registry, StatusBoard::new())
    }

    /// Bind `addr` and serve `registry` under `/metrics` and `status`
    /// under `/status` from the same listener.
    ///
    /// # Errors
    /// Propagates bind failure.
    pub fn serve_with_status(
        addr: impl ToSocketAddrs,
        registry: Registry,
        status: StatusBoard,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let scrapes = Arc::new(AtomicU64::new(0));
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let scrapes = Arc::clone(&scrapes);
            std::thread::Builder::new()
                .name("rbvc-metrics".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        // Serve inline: scrape traffic is one client at a
                        // low rate; a slow reader only delays the next
                        // scrape, never the run being observed.
                        if answer(stream, &registry, &status).is_ok() {
                            scrapes.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
                .expect("spawn metrics thread")
        };
        Ok(MetricsServer {
            addr,
            shutdown,
            scrapes,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far.
    #[must_use]
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::SeqCst)
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Self-dial to pop the accept loop out of its block.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Extract the request path from the raw bytes of an HTTP request head
/// (`GET /path HTTP/1.1...`); query strings are stripped.
fn request_path(head: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(head).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let _method = parts.next()?;
    let target = parts.next()?;
    Some(target.split('?').next().unwrap_or(target).to_string())
}

/// Read one request (best effort), route it, and answer. Unknown paths
/// get a real `404` response — a scraper probing the wrong path sees an
/// HTTP error, not a dropped connection.
fn answer(mut stream: TcpStream, registry: &Registry, status: &StatusBoard) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    // Drain the request line + headers; tolerate clients that just read.
    let mut buf = [0u8; 1024];
    let mut seen = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let path = request_path(&seen).unwrap_or_else(|| "/metrics".to_string());
    let (status_line, content_type, body) = match path.as_str() {
        "/metrics" | "/" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus_text(registry),
        ),
        "/status" => ("200 OK", "application/json; charset=utf-8", status.render()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!("no such path: {path}\nknown paths: /metrics /status\n"),
        ),
    };
    let head = format!(
        "HTTP/1.1 {status_line}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Scrape `addr` once over plain HTTP and return the response body.
/// Used by the bench harness to validate the endpoint mid-run (and by
/// tests); not a general HTTP client.
///
/// # Errors
/// Connection or read failure, or a non-200 status line.
pub fn scrape_once(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    scrape_path(addr, "/metrics")
}

/// Request `path` from `addr` once over plain HTTP and return the
/// response body (`/status` for the JSON snapshot, `/metrics` for the
/// Prometheus page).
///
/// # Errors
/// Connection or read failure, or a non-200 status line.
pub fn scrape_path(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    if !response.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::other(format!(
            "bad status: {}",
            response.lines().next().unwrap_or("<empty>")
        )));
    }
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_gauges_and_cumulative_histograms() {
        let reg = Registry::new();
        reg.counter("tcp.dial.retries").add(3);
        reg.gauge_with("tcp.link.hello_skew_us", &[("src", "1"), ("dst", "0")]).set(-42);
        let h = reg.histogram("service.decide.latency_us");
        h.record(1); // bucket 1 (le 1)
        h.record(3); // bucket 2 (le 3)
        h.record(3);

        let page = prometheus_text(&reg);
        assert!(page.contains("# TYPE tcp_dial_retries counter"));
        assert!(page.contains("tcp_dial_retries 3"));
        assert!(page.contains("tcp_link_hello_skew_us{src=\"1\",dst=\"0\"} -42"));
        assert!(page.contains("# TYPE service_decide_latency_us histogram"));
        assert!(page.contains("service_decide_latency_us_bucket{le=\"1\"} 1"));
        assert!(page.contains("service_decide_latency_us_bucket{le=\"3\"} 3"), "cumulative");
        assert!(page.contains("service_decide_latency_us_bucket{le=\"+Inf\"} 3"));
        assert!(page.contains("service_decide_latency_us_sum 7"));
        assert!(page.contains("service_decide_latency_us_count 3"));
    }

    #[test]
    fn labeled_series_share_one_type_line() {
        let reg = Registry::new();
        reg.counter_with("x.y", &[("node", "0")]).inc();
        reg.counter_with("x.y", &[("node", "1")]).inc();
        let page = prometheus_text(&reg);
        assert_eq!(page.matches("# TYPE x_y counter").count(), 1);
        assert!(page.contains("x_y{node=\"0\"} 1"));
        assert!(page.contains("x_y{node=\"1\"} 1"));
    }

    #[test]
    fn endpoint_serves_live_registry_and_counts_scrapes() {
        let reg = Registry::new();
        reg.counter("live.checks").add(7);
        let server = MetricsServer::serve("127.0.0.1:0", reg.clone()).expect("bind");
        let body = scrape_once(server.addr()).expect("scrape");
        assert!(body.contains("live_checks 7"));
        // Live: a later scrape sees the updated value.
        reg.counter("live.checks").add(1);
        let body = scrape_once(server.addr()).expect("scrape 2");
        assert!(body.contains("live_checks 8"));
        assert_eq!(server.scrapes(), 2);
        drop(server); // shuts down cleanly
    }

    #[test]
    fn unknown_paths_get_a_404_not_a_dropped_connection() {
        let server = MetricsServer::serve("127.0.0.1:0", Registry::new()).expect("bind");
        let err = scrape_path(server.addr(), "/nope").expect_err("404 path");
        assert!(err.to_string().contains("404"), "{err}");
        // The listener survives the bad path and keeps serving good ones.
        assert!(scrape_once(server.addr()).is_ok());
        // An empty status board still renders a valid document.
        let body = scrape_path(server.addr(), "/status").expect("status");
        assert!(body.contains("\"nodes\""));
    }

    #[test]
    fn status_and_metrics_share_one_listener_and_scrape_concurrently() {
        use crate::health::{StatusBoard, StatusSnapshot};
        let reg = Registry::new();
        reg.counter("mid.run").add(1);
        let board = StatusBoard::new();
        board.publish(0, StatusSnapshot { node: 0, ..StatusSnapshot::default() }.render());
        let server =
            MetricsServer::serve_with_status("127.0.0.1:0", reg.clone(), board.clone())
                .expect("bind");
        let addr = server.addr();
        // Hammer both paths from two threads while the "run" (this thread)
        // keeps mutating the registry and republishing status.
        let scrapers: Vec<_> = ["/metrics", "/status"]
            .into_iter()
            .map(|path| {
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let body = scrape_path(addr, path).expect("scrape");
                        if path == "/status" {
                            assert!(body.contains("\"nodes\""), "status body: {body}");
                        } else {
                            assert!(body.contains("mid_run"), "metrics body");
                        }
                    }
                })
            })
            .collect();
        for i in 0..20u32 {
            reg.counter("mid.run").inc();
            board.publish(
                0,
                StatusSnapshot { node: 0, total_instances: u64::from(i), ..StatusSnapshot::default() }
                    .render(),
            );
        }
        for t in scrapers {
            t.join().expect("scraper thread");
        }
        assert!(server.scrapes() >= 40);
    }
}
