//! Section 5 of the paper, statement by statement: the §5.3 equivalences
//! and every §5.4 containment lemma (Lemmas 1–9), as executable property
//! checks over random geometry and over the validity checkers themselves.

use rand::{rngs::StdRng, Rng, SeedableRng};
use relaxed_bvc::consensus::problem::{check_execution, Agreement, Validity};
use relaxed_bvc::geometry::{ConvexHull, DeltaPHull, KRelaxedHull};
use relaxed_bvc::linalg::{Norm, Tol, VecD};

fn tol() -> Tol {
    Tol::default()
}

fn random_points(rng: &mut StdRng, n: usize, d: usize, range: f64) -> Vec<VecD> {
    (0..n)
        .map(|_| VecD((0..d).map(|_| rng.gen_range(-range..range)).collect()))
        .collect()
}

/// §5.3: `H_d(S) = H(S)` — d-relaxed consensus is the original problem.
#[test]
fn k_equals_d_recovers_exact_hull() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..40 {
        let d = rng.gen_range(2..5);
        let n = rng.gen_range(3..7);
        let pts = random_points(&mut rng, n, d, 2.0);
        let hd = KRelaxedHull::new(pts.clone(), d);
        let h = ConvexHull::new(pts);
        for _ in 0..15 {
            let q = VecD((0..d).map(|_| rng.gen_range(-3.0..3.0)).collect());
            assert_eq!(
                hd.contains(&q, tol()),
                h.contains(&q, tol()),
                "H_d ≠ H at {q}"
            );
        }
    }
}

/// §5.3: `H_(0,p)(S) = H(S)` for every p.
#[test]
fn delta_zero_recovers_exact_hull_for_every_norm() {
    let mut rng = StdRng::seed_from_u64(2);
    for norm in [Norm::L1, Norm::L2, Norm::LInf, Norm::lp(3.0)] {
        let pts = random_points(&mut rng, 5, 3, 2.0);
        let h0 = DeltaPHull::new(pts.clone(), 0.0, norm);
        let h = ConvexHull::new(pts);
        for _ in 0..20 {
            let q = VecD((0..3).map(|_| rng.gen_range(-3.0..3.0)).collect());
            // Exclude razor-edge cases where the approximate general-p
            // distance could flip a boundary call.
            let dist = h.distance(&q, Norm::L2, tol());
            if dist > 1e-4 || dist == 0.0 {
                assert_eq!(
                    h0.contains(&q, tol()),
                    h.contains(&q, tol()),
                    "H_(0,{norm:?}) ≠ H at {q}"
                );
            }
        }
    }
}

/// §5.3: δ = ∞ makes validity vacuous — any fixed output passes.
#[test]
fn delta_infinite_is_vacuous() {
    let inputs = vec![VecD::from_slice(&[5.0, 5.0]), VecD::from_slice(&[6.0, 5.0])];
    let far = VecD::zeros(2);
    let v = check_execution(
        &inputs,
        &[Some(far.clone()), Some(far)],
        Agreement::Exact,
        &Validity::DeltaP {
            delta: f64::INFINITY,
            norm: Norm::L2,
        },
        tol(),
    );
    assert!(v.validity, "infinite δ must accept anything");
}

/// Lemma 1: `H_i(S) ⊆ H_j(S)` for `d ≥ i ≥ j ≥ 1` — full sweep.
#[test]
fn lemma1_containment_chain() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..25 {
        let d = rng.gen_range(2..6);
        let n = rng.gen_range(3..6);
        let pts = random_points(&mut rng, n, d, 2.0);
        let hulls: Vec<KRelaxedHull> =
            (1..=d).map(|k| KRelaxedHull::new(pts.clone(), k)).collect();
        for _ in 0..20 {
            let q = VecD((0..d).map(|_| rng.gen_range(-3.0..3.0)).collect());
            let membership: Vec<bool> =
                hulls.iter().map(|h| h.contains(&q, tol())).collect();
            // Membership must be monotone decreasing in k.
            for k in 1..d {
                assert!(
                    !membership[k] || membership[k - 1],
                    "Lemma 1 violated between k={} and k={} at {q}",
                    k,
                    k + 1
                );
            }
        }
    }
}

/// Lemmas 2–5 (consensus-level form): an output satisfying (k+1)-relaxed
/// validity satisfies k-relaxed validity — sufficiency transfers downward,
/// necessity upward.
#[test]
fn lemmas_2_to_5_validity_transfer() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..25 {
        let d = 4;
        let inputs = random_points(&mut rng, 5, d, 2.0);
        let q = VecD((0..d).map(|_| rng.gen_range(-2.5..2.5)).collect());
        let outputs = vec![Some(q.clone())];
        let mut valid_at: Vec<bool> = Vec::new();
        for k in 1..=d {
            let v = check_execution(
                &inputs,
                &outputs,
                Agreement::Exact,
                &Validity::KRelaxed(k),
                tol(),
            );
            valid_at.push(v.validity);
        }
        for k in 1..d {
            assert!(
                !valid_at[k] || valid_at[k - 1],
                "validity at k+1={} must imply validity at k={}",
                k + 1,
                k
            );
        }
    }
}

/// Lemmas 6–9 (consensus-level form): an output satisfying (δ',p)-relaxed
/// validity satisfies (δ,p)-relaxed validity for δ ≥ δ'.
#[test]
fn lemmas_6_to_9_delta_transfer() {
    let mut rng = StdRng::seed_from_u64(5);
    let deltas = [0.0, 0.1, 0.3, 0.8, 2.0];
    for norm in [Norm::L1, Norm::L2, Norm::LInf] {
        for _ in 0..15 {
            let inputs = random_points(&mut rng, 4, 3, 1.5);
            let q = VecD((0..3).map(|_| rng.gen_range(-3.0..3.0)).collect());
            let outputs = vec![Some(q.clone())];
            let valid_at: Vec<bool> = deltas
                .iter()
                .map(|&delta| {
                    check_execution(
                        &inputs,
                        &outputs,
                        Agreement::Exact,
                        &Validity::DeltaP { delta, norm },
                        tol(),
                    )
                    .validity
                })
                .collect();
            for i in 0..deltas.len() - 1 {
                assert!(
                    !valid_at[i] || valid_at[i + 1],
                    "δ-monotonicity violated at {norm:?} between δ={} and δ={}",
                    deltas[i],
                    deltas[i + 1]
                );
            }
        }
    }
}

/// §5.3: both relaxed hulls contain the exact hull, so any solution of the
/// original BVC problem also solves the relaxed versions.
#[test]
fn exact_solutions_solve_relaxed_problems() {
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..20 {
        let d = 3;
        let inputs = random_points(&mut rng, 5, d, 2.0);
        // An exact-valid output: a random convex combination.
        let mut w: Vec<f64> = (0..inputs.len()).map(|_| rng.gen_range(0.1..1.0)).collect();
        let s: f64 = w.iter().sum();
        for wi in &mut w {
            *wi /= s;
        }
        let q = VecD::combination(&inputs, &w);
        let outputs = vec![Some(q)];
        for validity in [
            Validity::Exact,
            Validity::KRelaxed(1),
            Validity::KRelaxed(2),
            Validity::KRelaxed(3),
            Validity::DeltaP {
                delta: 0.25,
                norm: Norm::L2,
            },
            Validity::InputDependentDeltaP {
                kappa: 0.5,
                norm: Norm::L2,
            },
        ] {
            let v = check_execution(&inputs, &outputs, Agreement::Exact, &validity, tol());
            assert!(
                v.validity,
                "exact-valid output rejected by relaxed validity {validity:?}"
            );
        }
    }
}
