//! Seeded workload generators for the experiments and benches.
//!
//! Every generator takes an explicit RNG so that experiment outputs are
//! bit-reproducible from the seed recorded in EXPERIMENTS.md.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbvc_linalg::{Tol, VecD};

/// A seeded RNG for experiments.
#[must_use]
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `n` i.i.d. uniform points in `[-range, range]^d`.
#[must_use]
pub fn random_points(rng: &mut StdRng, n: usize, d: usize, range: f64) -> Vec<VecD> {
    (0..n)
        .map(|_| VecD((0..d).map(|_| rng.gen_range(-range..range)).collect()))
        .collect()
}

/// `d + 1` affinely independent points in `R^d` with inradius above
/// `min_inradius` (rejection-sampled), the Lemma 13 workload.
#[must_use]
pub fn random_simplex_points(
    rng: &mut StdRng,
    d: usize,
    range: f64,
    min_inradius: f64,
) -> Vec<VecD> {
    loop {
        let pts = random_points(rng, d + 1, d, range);
        if let Some(s) = rbvc_geometry::Simplex::new(pts.clone(), Tol::default()) {
            if s.inradius() >= min_inradius {
                return pts;
            }
        }
    }
}

/// Consensus inputs with `n_correct` clustered honest values (a tight cloud
/// of diameter ~`spread` around a random center) and `n_faulty` adversarial
/// outliers drawn from a `3×` wider box — the "sensor with a few
/// compromised replicas" workload that motivates vector consensus.
#[must_use]
pub fn clustered_inputs(
    rng: &mut StdRng,
    n_correct: usize,
    n_faulty: usize,
    d: usize,
    spread: f64,
) -> (Vec<VecD>, Vec<VecD>) {
    let center = VecD((0..d).map(|_| rng.gen_range(-5.0..5.0)).collect());
    let correct: Vec<VecD> = (0..n_correct)
        .map(|_| {
            let noise = VecD((0..d).map(|_| rng.gen_range(-spread..spread)).collect());
            &center + &noise
        })
        .collect();
    let faulty = random_points(rng, n_faulty, d, 15.0);
    (correct, faulty)
}

/// Interleave correct and faulty inputs into per-process slots: faulty ids
/// are chosen deterministically spread across the id space.
#[must_use]
pub fn assemble_inputs(correct: &[VecD], faulty: &[VecD]) -> (Vec<VecD>, Vec<usize>) {
    let n = correct.len() + faulty.len();
    // Spread faulty ids: every ⌈n / (|faulty|+1)⌉-th slot.
    let mut faulty_ids = Vec::new();
    if !faulty.is_empty() {
        let stride = n / (faulty.len() + 1);
        for (k, _) in faulty.iter().enumerate() {
            faulty_ids.push(((k + 1) * stride.max(1)).min(n - 1));
        }
        faulty_ids.dedup();
        // Collision fallback: fill from the end.
        let mut next = n;
        while faulty_ids.len() < faulty.len() {
            next -= 1;
            if !faulty_ids.contains(&next) {
                faulty_ids.push(next);
            }
        }
        faulty_ids.sort_unstable();
    }
    let mut inputs = Vec::with_capacity(n);
    let mut ci = 0;
    let mut fi = 0;
    for i in 0..n {
        if faulty_ids.contains(&i) {
            inputs.push(faulty[fi].clone());
            fi += 1;
        } else {
            inputs.push(correct[ci].clone());
            ci += 1;
        }
    }
    (inputs, faulty_ids)
}

/// Max pairwise L2 edge among the points (the paper's `max_{e∈E₊} ||e||₂`).
#[must_use]
pub fn max_edge(points: &[VecD]) -> f64 {
    rbvc_geometry::pairwise_edges(points)
        .into_iter()
        .fold(0.0, f64::max)
}

/// Min pairwise L2 edge.
#[must_use]
pub fn min_edge(points: &[VecD]) -> f64 {
    rbvc_geometry::pairwise_edges(points)
        .into_iter()
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_seed_deterministic() {
        let a = random_points(&mut rng(5), 4, 3, 2.0);
        let b = random_points(&mut rng(5), 4, 3, 2.0);
        assert_eq!(a, b);
        let c = random_points(&mut rng(6), 4, 3, 2.0);
        assert_ne!(a, c);
    }

    #[test]
    fn simplex_generator_meets_inradius_floor() {
        let pts = random_simplex_points(&mut rng(1), 3, 2.0, 0.1);
        let s = rbvc_geometry::Simplex::new(pts, Tol::default()).unwrap();
        assert!(s.inradius() >= 0.1);
    }

    #[test]
    fn clustered_inputs_have_small_correct_diameter() {
        let (correct, faulty) = clustered_inputs(&mut rng(2), 5, 2, 3, 0.1);
        assert_eq!(correct.len(), 5);
        assert_eq!(faulty.len(), 2);
        assert!(max_edge(&correct) <= 2.0 * 0.1 * (3.0_f64).sqrt() + 1e-9);
    }

    #[test]
    fn assemble_places_every_input_once() {
        let correct = vec![VecD::zeros(2); 4];
        let faulty = vec![VecD::ones(2); 2];
        let (inputs, ids) = assemble_inputs(&correct, &faulty);
        assert_eq!(inputs.len(), 6);
        assert_eq!(ids.len(), 2);
        let ones = inputs.iter().filter(|v| **v == VecD::ones(2)).count();
        assert_eq!(ones, 2);
        for &i in &ids {
            assert_eq!(inputs[i], VecD::ones(2));
        }
    }

    #[test]
    fn edges_of_unit_square() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[1.0, 1.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        assert!((max_edge(&pts) - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((min_edge(&pts) - 1.0).abs() < 1e-12);
    }
}
