//! Process-wide monotonic trace clock.
//!
//! Every span and event timestamp in a trace is microseconds since one
//! process-wide monotonic epoch, captured lazily on first use. Monotonic
//! means trace assembly never sees time going backwards within a node; the
//! wall-clock instant of the epoch is captured once alongside it (and
//! written into the trace header by [`crate::JsonlRecorder`]), so absolute
//! times can be reconstructed offline without ever stamping events from
//! the — adjustable, non-monotonic — system clock.
//!
//! All threads of a process share this epoch: reader threads stamping
//! frame arrivals and service threads stamping dispatches produce one
//! coherent per-process timeline. Alignment *across* processes is the
//! trace assembler's job (see [`crate::trace`]), fed by the per-link
//! HELLO timestamp exchange.

use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// The epoch: a monotonic anchor plus the wall-clock microseconds (since
/// the Unix epoch) at which it was captured.
fn epoch() -> &'static (Instant, u64) {
    static EPOCH: OnceLock<(Instant, u64)> = OnceLock::new();
    EPOCH.get_or_init(|| {
        let wall = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        (Instant::now(), wall)
    })
}

/// Microseconds since the process-wide monotonic epoch. Monotone
/// non-decreasing across all threads.
#[must_use]
pub fn now_us() -> u64 {
    u64::try_from(epoch().0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Wall-clock microseconds since the Unix epoch at the moment the
/// monotonic epoch was captured: `wall_epoch_unix_us() + now_us()`
/// approximates the current wall time, and a trace header carrying this
/// value anchors the whole trace on the calendar.
#[must_use]
pub fn wall_epoch_unix_us() -> u64 {
    epoch().1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotone_and_epoch_is_stable() {
        let w1 = wall_epoch_unix_us();
        let a = now_us();
        let b = now_us();
        assert!(b >= a, "monotonic clock must not run backwards");
        assert_eq!(wall_epoch_unix_us(), w1, "epoch is captured once");
        // The epoch was captured after 2020 (sanity on the wall anchor).
        assert!(w1 > 1_577_836_800_000_000, "wall epoch looks pre-2020: {w1}");
    }

    #[test]
    fn threads_share_one_timeline() {
        let t0 = now_us();
        let from_thread = std::thread::spawn(now_us).join().expect("thread");
        assert!(from_thread >= t0, "spawned thread sees the same epoch");
    }
}
