//! Shared numerical-tolerance policy.
//!
//! All geometric predicates in the workspace funnel through a [`Tol`] so that
//! the tolerance used to decide "is this point inside the hull" is consistent
//! with the tolerance used to decide "is this LP feasible". Tolerances are
//! *absolute* but every caller is expected to scale them by the magnitude of
//! its data via [`Tol::scaled`].

/// Default absolute tolerance for geometric predicates on O(1)-magnitude data.
pub const DEFAULT_TOL: f64 = 1e-9;

/// A numerical tolerance with helpers for the comparisons the geometry layer
/// needs. `Tol` is deliberately tiny and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tol(pub f64);

impl Default for Tol {
    fn default() -> Self {
        Tol(DEFAULT_TOL)
    }
}

impl Tol {
    /// A tolerance suitable for data of the given magnitude: `tol * max(1, scale)`.
    #[must_use]
    pub fn scaled(self, scale: f64) -> Tol {
        Tol(self.0 * scale.abs().max(1.0))
    }

    /// `a` and `b` are equal within tolerance.
    #[must_use]
    pub fn eq(self, a: f64, b: f64) -> bool {
        (a - b).abs() <= self.0
    }

    /// `a <= b` within tolerance (i.e. `a - b <= tol`).
    #[must_use]
    pub fn le(self, a: f64, b: f64) -> bool {
        a - b <= self.0
    }

    /// `a >= b` within tolerance.
    #[must_use]
    pub fn ge(self, a: f64, b: f64) -> bool {
        b - a <= self.0
    }

    /// `a` is zero within tolerance.
    #[must_use]
    pub fn is_zero(self, a: f64) -> bool {
        a.abs() <= self.0
    }

    /// Strictly positive beyond tolerance.
    #[must_use]
    pub fn is_pos(self, a: f64) -> bool {
        a > self.0
    }

    /// Strictly negative beyond tolerance.
    #[must_use]
    pub fn is_neg(self, a: f64) -> bool {
        a < -self.0
    }

    /// The raw tolerance value.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_documented_constant() {
        assert_eq!(Tol::default().value(), DEFAULT_TOL);
    }

    #[test]
    fn eq_within_tolerance() {
        let t = Tol(1e-6);
        assert!(t.eq(1.0, 1.0 + 5e-7));
        assert!(!t.eq(1.0, 1.0 + 5e-6));
    }

    #[test]
    fn le_ge_are_tolerant() {
        let t = Tol(1e-6);
        assert!(t.le(1.0 + 5e-7, 1.0));
        assert!(t.ge(1.0 - 5e-7, 1.0));
        assert!(!t.le(1.0 + 1e-5, 1.0));
    }

    #[test]
    fn sign_predicates_exclude_noise() {
        let t = Tol(1e-6);
        assert!(!t.is_pos(5e-7));
        assert!(t.is_pos(2e-6));
        assert!(!t.is_neg(-5e-7));
        assert!(t.is_neg(-2e-6));
        assert!(t.is_zero(-5e-7));
    }

    #[test]
    fn scaled_grows_with_magnitude_only_above_one() {
        let t = Tol(1e-9);
        assert_eq!(t.scaled(0.5).value(), 1e-9);
        assert!((t.scaled(100.0).value() - 1e-7).abs() < 1e-20);
    }
}
