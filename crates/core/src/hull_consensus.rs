//! Convex hull consensus in dimension 2 (the Tseng–Vaidya [15, 16] problem
//! the paper's §10 machinery descends from): non-faulty processes agree on
//! an identical *convex polytope* that is contained in the convex hull of
//! the non-faulty inputs — the largest such set any algorithm can
//! guarantee being `Γ(S)`.
//!
//! Synchronous construction (mirrors Exact BVC): Byzantine-broadcast all
//! inputs → identical multiset `S` everywhere → output the exact polygon
//! `Γ(S) = ⋂_{|T|=n−f} H(T)`, materialized by convex clipping
//! ([`rbvc_geometry::clip2d`]). Point consensus is recovered by picking
//! any deterministic point of the output (e.g. its centroid), which is how
//! this module's tests tie back to the paper's Exact BVC.

use rbvc_geometry::clip2d::{gamma_polygon, polygon_area};
use rbvc_geometry::hull::ConvexHull;
use rbvc_geometry::oracle2d::polygon_contains;
use rbvc_linalg::{Tol, VecD};
use rbvc_sim::config::ProcessId;
use rbvc_sim::eig::{ParallelEig, ParallelEigMsg};
use rbvc_sim::sync::SyncProtocol;

/// The hull-consensus protocol for one process (d = 2).
pub struct HullConsensus {
    eig: ParallelEig<VecD>,
    f: usize,
    decided: Option<Vec<VecD>>,
}

impl HullConsensus {
    /// Build the protocol instance for process `id` with a 2-D `input`.
    ///
    /// # Panics
    /// Panics unless the input is 2-dimensional.
    #[must_use]
    pub fn new(id: ProcessId, n: usize, f: usize, input: VecD) -> Self {
        assert_eq!(input.dim(), 2, "hull consensus is materialized in 2-D");
        HullConsensus {
            eig: ParallelEig::new(id, n, f, input, VecD::zeros(2)),
            f,
            decided: None,
        }
    }

    /// The decided polygon (counterclockwise vertices; empty when `Γ(S)`
    /// is empty, which cannot happen at `n ≥ 3f + 1` by Tverberg).
    #[must_use]
    pub fn polygon(&self) -> Option<&[VecD]> {
        self.decided.as_deref()
    }
}

impl SyncProtocol for HullConsensus {
    type Msg = ParallelEigMsg<VecD>;
    type Output = Vec<VecD>;

    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, Self::Msg)> {
        self.eig.round_messages(round)
    }

    fn receive(&mut self, round: usize, inbox: &[(ProcessId, Self::Msg)]) {
        self.eig.receive(round, inbox);
        if self.decided.is_none() {
            if let Some(s) = self.eig.output() {
                self.decided = Some(gamma_polygon(&s, self.f));
            }
        }
    }

    fn output(&self) -> Option<Vec<VecD>> {
        self.decided.clone()
    }
}

/// Validity check for hull consensus: the output polygon is contained in
/// the hull of the non-faulty inputs (every vertex is a member).
#[must_use]
pub fn hull_output_valid(correct_inputs: &[VecD], output: &[VecD], tol: Tol) -> bool {
    let hull = ConvexHull::new(correct_inputs.to_vec());
    output.iter().all(|v| hull.contains(v, tol))
}

/// Agreement check: two polygons are identical (same vertices up to
/// rotation of the cyclic order).
#[must_use]
pub fn polygons_equal(a: &[VecD], b: &[VecD], tol: Tol) -> bool {
    if a.len() != b.len() {
        return false;
    }
    if a.is_empty() {
        return true;
    }
    // Find b's vertex matching a[0], then compare cyclically.
    (0..b.len()).any(|shift| {
        (0..a.len()).all(|i| a[i].approx_eq(&b[(i + shift) % b.len()], tol))
    })
}

/// Containment check used in the optimality test: every point of polygon
/// `inner` lies in polygon `outer`.
#[must_use]
pub fn polygon_subset(inner: &[VecD], outer: &[VecD], tol: Tol) -> bool {
    inner.iter().all(|v| polygon_contains(outer, v, tol))
}

/// Convenience: the area of the decided set (0 when degenerate).
#[must_use]
pub fn decided_area(output: &[VecD]) -> f64 {
    polygon_area(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use rbvc_sim::config::SystemConfig;
    use rbvc_sim::eig::TwoFacedSender;
    use rbvc_sim::sync::{RoundEngine, SyncNode};

    fn t() -> Tol {
        Tol::default()
    }

    fn run(
        n: usize,
        f: usize,
        inputs: &[VecD],
        two_faced: Option<usize>,
    ) -> (SystemConfig, Vec<Option<Vec<VecD>>>) {
        let faulty: Vec<usize> = two_faced.into_iter().collect();
        let config = SystemConfig::new(n, f).with_faulty(faulty.clone());
        let nodes: Vec<SyncNode<HullConsensus>> = (0..n)
            .map(|i| {
                if faulty.contains(&i) {
                    SyncNode::Byzantine(Box::new(TwoFacedSender::new(
                        i,
                        n,
                        f,
                        (0..n)
                            .map(|j| VecD::from_slice(&[j as f64 * 9.0, -9.0]))
                            .collect(),
                        VecD::zeros(2),
                    )))
                } else {
                    SyncNode::Honest(HullConsensus::new(i, n, f, inputs[i].clone()))
                }
            })
            .collect();
        let mut engine = RoundEngine::new(config.clone(), nodes);
        let out = engine.run(f + 2);
        (config, out.decisions)
    }

    #[test]
    fn agreement_and_validity_with_equivocator() {
        let n = 5; // (d+1)f + 1 = 4 ≤ 5 — Γ nonempty guaranteed
        let mut rng = StdRng::seed_from_u64(3);
        let inputs: Vec<VecD> = (0..n)
            .map(|_| VecD::from_slice(&[rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)]))
            .collect();
        let (config, decisions) = run(n, 1, &inputs, Some(4));
        let correct = config.correct_ids();
        let reference = decisions[correct[0]].clone().unwrap();
        assert!(!reference.is_empty(), "Γ must be nonempty at n = 5, f = 1");
        for &i in &correct[1..] {
            assert!(
                polygons_equal(&reference, decisions[i].as_ref().unwrap(), Tol(1e-9)),
                "hull agreement violated at process {i}"
            );
        }
        let correct_inputs: Vec<VecD> =
            correct.iter().map(|&i| inputs[i].clone()).collect();
        assert!(
            hull_output_valid(&correct_inputs, &reference, Tol(1e-6)),
            "hull validity violated"
        );
    }

    #[test]
    fn output_contains_every_exact_bvc_decision() {
        // The Γ polygon contains the Γ point any Exact BVC run decides —
        // hull consensus subsumes point consensus.
        let n = 4;
        let inputs = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[0.0, 2.0]),
            VecD::from_slice(&[2.0, 2.0]),
        ];
        let (_, decisions) = run(n, 1, &inputs, None);
        let polygon = decisions[0].clone().unwrap();
        let point = rbvc_geometry::gamma_point(&inputs, 1, t()).expect("nonempty");
        assert!(polygon_contains(&polygon, &point, Tol(1e-6)));
    }

    #[test]
    fn identical_inputs_decide_single_point() {
        let n = 4;
        let common = VecD::from_slice(&[1.0, -1.0]);
        let inputs = vec![common.clone(); n];
        let (_, decisions) = run(n, 1, &inputs, None);
        let polygon = decisions[0].clone().unwrap();
        assert!(decided_area(&polygon) < 1e-12);
        assert!(polygon.iter().all(|v| v.approx_eq(&common, Tol(1e-9))));
    }

    #[test]
    fn polygons_equal_handles_rotation() {
        let a = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        let b = vec![a[1].clone(), a[2].clone(), a[0].clone()];
        assert!(polygons_equal(&a, &b, t()));
        let c = vec![a[0].clone(), a[2].clone(), a[1].clone()]; // reversed order
        assert!(!polygons_equal(&a, &c, t()));
    }

    #[test]
    fn more_processes_decide_larger_hull() {
        // With extra processes (same fault bound), Γ grows: less is cut.
        let base = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[0.0, 2.0]),
            VecD::from_slice(&[2.0, 2.0]),
        ];
        let (_, d4) = run(4, 1, &base, None);
        let mut more = base.clone();
        more.push(VecD::from_slice(&[1.0, 1.0]));
        let (_, d5) = run(5, 1, &more, None);
        let a4 = decided_area(d4[0].as_ref().unwrap());
        let a5 = decided_area(d5[0].as_ref().unwrap());
        assert!(
            a5 >= a4 - 1e-9,
            "adding a central input must not shrink Γ: {a4} vs {a5}"
        );
        // And the 4-process polygon is contained in the 5-process one.
        assert!(polygon_subset(
            d4[0].as_ref().unwrap(),
            d5[0].as_ref().unwrap(),
            Tol(1e-6)
        ));
    }
}
