//! The append-only, checksummed write-ahead log.
//!
//! On-disk layout:
//!
//! ```text
//! [magic 8B]  ([len u32 LE][crc32 u32 LE][payload len bytes])*
//! ```
//!
//! `crc32` covers the payload only. [`Wal::open`] replays the file and
//! recovers the **longest valid prefix**: scanning stops at the first
//! record whose frame is short (torn tail from a crash mid-append), whose
//! length field is zero or over [`MAX_RECORD_LEN`], or whose checksum
//! fails (bit rot / injected corruption) — and the file is truncated right
//! there, so subsequent appends extend a log that is valid end to end.
//! Nothing in the replay path panics on hostile bytes.
//!
//! Durability is explicit: [`Wal::append`] buffers in the OS page cache;
//! [`Wal::sync`] fdatasyncs and advances [`Wal::synced_len`], the
//! high-water mark below which records are guaranteed crash-durable. The
//! service group-commits (one sync per poll) and forces a sync before
//! surfacing any decision.
//!
//! [`Wal::compact`] atomically replaces the log (temp file + rename), so a
//! crash mid-compaction leaves either the complete old log or the complete
//! new one.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use rbvc_obs::Registry;

use crate::crc32::crc32;

/// File magic: identifies a relaxed-BVC WAL, version 1.
pub const WAL_MAGIC: [u8; 8] = *b"RBVCWAL1";

/// Hard cap on one record's payload, mirroring the wire codec's frame cap:
/// a length field above this is corruption, not a record.
pub const MAX_RECORD_LEN: usize = 16 * 1024 * 1024;

/// Per-record frame overhead: length prefix + checksum.
const FRAME_OVERHEAD: u64 = 8;

/// Durability-layer failure. I/O errors surface verbatim; `BadMagic` means
/// the file exists but is not a WAL (refusing to truncate someone else's
/// data is the conservative choice).
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file's first 8 bytes are not [`WAL_MAGIC`].
    BadMagic {
        /// Path of the offending file.
        path: PathBuf,
    },
    /// An append exceeded [`MAX_RECORD_LEN`].
    RecordTooLarge {
        /// The rejected payload's size.
        len: usize,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "wal i/o error: {e}"),
            StoreError::BadMagic { path } => {
                write!(f, "{} is not a WAL (bad magic)", path.display())
            }
            StoreError::RecordTooLarge { len } => {
                write!(f, "record of {len} bytes exceeds the {MAX_RECORD_LEN}-byte cap")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Valid record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes discarded past the longest valid prefix (0 on a clean file).
    pub torn_bytes: u64,
    /// File length after truncation to the valid prefix (header included).
    pub valid_len: u64,
    /// True if the file did not exist (or was empty) and the header was
    /// freshly written.
    pub created: bool,
}

/// An open write-ahead log. See the module docs for format and contract.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Current file length (header + appended frames).
    len: u64,
    /// Length up to which the file is known fdatasync-durable.
    synced_len: u64,
    /// Records currently in the log (replayed + appended since open).
    records: u64,
    /// Records appended since the last sync — the group-commit batch size
    /// (`wal.group_commit.records` histogram on each sync).
    pending_records: u64,
    /// Record count as of the last [`Wal::compact`] — the base snapshot.
    /// `records - snapshot_base` is how many records a recovery must replay
    /// on top of it (`wal.snapshot_age_records` gauge).
    snapshot_base: u64,
    /// Appends since the last [`Wal::compact`] in this process (replayed
    /// backlog excluded) — this session's churn against the snapshot.
    appends_since_compaction: u64,
}

impl Wal {
    /// Open (creating if missing) the WAL at `path`, replay it, and
    /// truncate to the longest valid prefix.
    ///
    /// # Errors
    /// I/O failures, or [`StoreError::BadMagic`] if the file exists with a
    /// foreign header (corrupt-beyond-recognition files are *not* silently
    /// clobbered).
    pub fn open<P: AsRef<Path>>(path: P) -> Result<(Wal, ReplayReport), StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;

        if raw.is_empty() {
            file.write_all(&WAL_MAGIC)?;
            file.sync_data()?;
            let len = WAL_MAGIC.len() as u64;
            let wal = Wal {
                file,
                path,
                len,
                synced_len: len,
                records: 0,
                pending_records: 0,
                snapshot_base: 0,
                appends_since_compaction: 0,
            };
            wal.publish_gauges();
            let report = ReplayReport {
                records: Vec::new(),
                torn_bytes: 0,
                valid_len: len,
                created: true,
            };
            return Ok((wal, report));
        }
        // A file shorter than the magic can only be a crash during creation
        // of an empty WAL; anything else with 8+ bytes must match exactly.
        if raw.len() >= WAL_MAGIC.len() && raw[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(StoreError::BadMagic { path });
        }
        if raw.len() < WAL_MAGIC.len() {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&WAL_MAGIC)?;
            file.sync_data()?;
            let len = WAL_MAGIC.len() as u64;
            let torn = raw.len() as u64;
            let wal = Wal {
                file,
                path,
                len,
                synced_len: len,
                records: 0,
                pending_records: 0,
                snapshot_base: 0,
                appends_since_compaction: 0,
            };
            wal.publish_gauges();
            let report = ReplayReport {
                records: Vec::new(),
                torn_bytes: torn,
                valid_len: len,
                created: true,
            };
            return Ok((wal, report));
        }

        let t0 = Instant::now();
        let (records, valid_len) = scan(&raw);
        let torn_bytes = raw.len() as u64 - valid_len;
        if torn_bytes > 0 {
            file.set_len(valid_len)?;
            file.sync_data()?;
            Registry::global().counter("wal.torn_bytes").add(torn_bytes);
        }
        file.seek(SeekFrom::Start(valid_len))?;
        let reg = Registry::global();
        reg.counter("wal.replay.records").add(records.len() as u64);
        reg.histogram("wal.replay_us")
            .record(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        let n = records.len() as u64;
        let wal = Wal {
            file,
            path,
            len: valid_len,
            synced_len: valid_len,
            records: n,
            pending_records: 0,
            snapshot_base: 0,
            appends_since_compaction: 0,
        };
        wal.publish_gauges();
        Ok((wal, ReplayReport { records, torn_bytes, valid_len, created: false }))
    }

    /// Append one record payload (buffered; durable only after
    /// [`Wal::sync`]).
    ///
    /// # Errors
    /// [`StoreError::RecordTooLarge`] above the cap, or the write failure.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(StoreError::RecordTooLarge { len: payload.len() });
        }
        let mut frame = Vec::with_capacity(payload.len() + FRAME_OVERHEAD as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.records += 1;
        self.pending_records += 1;
        self.appends_since_compaction += 1;
        Registry::global().counter("wal.append.records").inc();
        self.publish_gauges();
        Ok(())
    }

    /// Force everything appended so far onto stable storage (fdatasync).
    /// No-op when nothing is pending.
    ///
    /// # Errors
    /// The sync failure; `synced_len` then still reports the old mark.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.synced_len == self.len {
            return Ok(());
        }
        let t0 = Instant::now();
        self.file.sync_data()?;
        self.synced_len = self.len;
        let reg = Registry::global();
        reg.counter("wal.fsync").inc();
        reg.histogram("wal.fsync_us")
            .record(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        // Group-commit batch size: how many appends each fsync amortizes.
        reg.histogram("wal.group_commit.records")
            .record(std::mem::take(&mut self.pending_records));
        Ok(())
    }

    /// Current file length, header included.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Length up to which the file is known durable (a torn tail past this
    /// mark is the crash case recovery truncates away).
    #[must_use]
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Records in the log (replayed at open + appended since).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replace the log's contents with `records`, atomically: the new log
    /// is written to a sibling temp file, synced, and renamed over the
    /// old one. The result is synced end to end.
    ///
    /// # Errors
    /// Record-size or I/O failures; the original log is untouched unless
    /// the rename succeeded.
    pub fn compact<I>(&mut self, records: I) -> Result<(), StoreError>
    where
        I: IntoIterator,
        I::Item: AsRef<[u8]>,
    {
        let tmp_path = self.path.with_extension("wal.tmp");
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&WAL_MAGIC)?;
        let mut len = WAL_MAGIC.len() as u64;
        let mut n = 0u64;
        for payload in records {
            let payload = payload.as_ref();
            if payload.len() > MAX_RECORD_LEN {
                return Err(StoreError::RecordTooLarge { len: payload.len() });
            }
            tmp.write_all(&(payload.len() as u32).to_le_bytes())?;
            tmp.write_all(&crc32(payload).to_le_bytes())?;
            tmp.write_all(payload)?;
            len += FRAME_OVERHEAD + payload.len() as u64;
            n += 1;
        }
        tmp.sync_data()?;
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.len = len;
        self.synced_len = len;
        self.records = n;
        self.pending_records = 0;
        self.snapshot_base = n;
        self.appends_since_compaction = 0;
        Registry::global().counter("wal.compactions").inc();
        self.publish_gauges();
        Ok(())
    }

    /// Records appended on top of the base snapshot — what a recovery must
    /// replay after loading it. Counts the whole log when it was never
    /// compacted.
    #[must_use]
    pub fn snapshot_age_records(&self) -> u64 {
        self.records.saturating_sub(self.snapshot_base)
    }

    /// Appends since the last [`Wal::compact`] in this process (0 if never
    /// compacted and nothing appended; replayed backlog excluded).
    #[must_use]
    pub fn records_since_compaction(&self) -> u64 {
        self.appends_since_compaction
    }

    /// Export the durability gauges (`wal.size_bytes`,
    /// `wal.snapshot_age_records`, `wal.records_since_compaction`) so a
    /// live `/metrics` scrape sees the log's current footprint without
    /// touching the service.
    fn publish_gauges(&self) {
        let reg = Registry::global();
        reg.gauge("wal.size_bytes").set(i64::try_from(self.len).unwrap_or(i64::MAX));
        reg.gauge("wal.snapshot_age_records")
            .set(i64::try_from(self.snapshot_age_records()).unwrap_or(i64::MAX));
        reg.gauge("wal.records_since_compaction")
            .set(i64::try_from(self.appends_since_compaction).unwrap_or(i64::MAX));
    }
}

/// Scan `raw` (which starts with a valid magic) and return the valid
/// record payloads plus the byte offset of the longest valid prefix.
/// Total over arbitrary bytes.
fn scan(raw: &[u8]) -> (Vec<Vec<u8>>, u64) {
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    // A failed `get` means the file is torn inside a frame header.
    while let Some(header) = raw.get(pos..pos + FRAME_OVERHEAD as usize) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let want = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            break; // corrupt length field
        }
        let body_start = pos + FRAME_OVERHEAD as usize;
        let Some(payload) = raw.get(body_start..body_start + len) else {
            break; // torn inside the payload
        };
        if crc32(payload) != want {
            break; // checksum mismatch
        }
        records.push(payload.to_vec());
        pos = body_start + len;
    }
    (records, pos as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rbvc-wal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk tmp dir");
        dir
    }

    #[test]
    fn append_sync_reopen_round_trips() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("a.wal");
        {
            let (mut wal, report) = Wal::open(&path).unwrap();
            assert!(report.created);
            wal.append(b"alpha").unwrap();
            wal.append(b"").unwrap();
            wal.append(&[0u8; 300]).unwrap();
            assert!(wal.synced_len() < wal.len());
            wal.sync().unwrap();
            assert_eq!(wal.synced_len(), wal.len());
            assert_eq!(wal.records(), 3);
        }
        let (wal, report) = Wal::open(&path).unwrap();
        assert!(!report.created);
        assert_eq!(report.torn_bytes, 0);
        assert_eq!(report.records, vec![b"alpha".to_vec(), Vec::new(), vec![0u8; 300]]);
        assert_eq!(wal.records(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_to_longest_valid_prefix() {
        let dir = tmp_dir("torn");
        let path = dir.join("a.wal");
        let keep_len;
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"keep me").unwrap();
            keep_len = wal.len();
            wal.append(b"torn record").unwrap();
            wal.sync().unwrap();
        }
        // Crash mid-append: chop the last frame anywhere inside it.
        let full = std::fs::read(&path).unwrap();
        for cut in keep_len..full.len() as u64 {
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let (wal, report) = Wal::open(&path).unwrap();
            assert_eq!(report.records, vec![b"keep me".to_vec()], "cut at {cut}");
            assert_eq!(report.torn_bytes, cut - keep_len);
            assert_eq!(report.valid_len, keep_len);
            assert_eq!(wal.len(), keep_len);
            assert_eq!(std::fs::metadata(&path).unwrap().len(), keep_len);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn appends_extend_a_truncated_log_cleanly() {
        let dir = tmp_dir("extend");
        let path = dir.join("a.wal");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            wal.sync().unwrap();
        }
        // Corrupt the second record's checksum region, then append anew.
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        {
            let (mut wal, report) = Wal::open(&path).unwrap();
            assert_eq!(report.records, vec![b"one".to_vec()]);
            wal.append(b"three").unwrap();
            wal.sync().unwrap();
        }
        let (_, report) = Wal::open(&path).unwrap();
        assert_eq!(report.records, vec![b"one".to_vec(), b"three".to_vec()]);
        assert_eq!(report.torn_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_file_is_refused_not_clobbered() {
        let dir = tmp_dir("foreign");
        let path = dir.join("notes.txt");
        std::fs::write(&path, b"precious user data, definitely not a WAL").unwrap();
        let err = Wal::open(&path).expect_err("must refuse");
        assert!(matches!(err, StoreError::BadMagic { .. }), "{err}");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"precious user data, definitely not a WAL".to_vec(),
            "refusal must not modify the file"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_appends_are_rejected() {
        let dir = tmp_dir("cap");
        let (mut wal, _) = Wal::open(dir.join("a.wal")).unwrap();
        let err = wal.append(&vec![0u8; MAX_RECORD_LEN + 1]).expect_err("over cap");
        assert!(matches!(err, StoreError::RecordTooLarge { .. }));
        assert_eq!(wal.records(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_replaces_contents_atomically() {
        let dir = tmp_dir("compact");
        let path = dir.join("a.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        for i in 0..10u8 {
            wal.append(&[i; 64]).unwrap();
        }
        wal.sync().unwrap();
        wal.compact([b"survivor".to_vec(), b"pinned".to_vec()]).unwrap();
        assert_eq!(wal.records(), 2);
        assert_eq!(wal.synced_len(), wal.len());
        // The log keeps accepting appends after compaction...
        wal.append(b"post").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // ...and a reopen sees compacted + appended records, nothing else.
        let (_, report) = Wal::open(&path).unwrap();
        assert_eq!(
            report.records,
            vec![b"survivor".to_vec(), b"pinned".to_vec(), b"post".to_vec()]
        );
        assert!(!dir.join("a.wal.tmp").exists(), "temp file must not linger");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
