//! Multi-instance consensus service: many concurrent SyncBvc /
//! VerifiedAveraging instances multiplexed over one transport mesh.
//!
//! One [`ConsensusService`] per process owns one [`Transport`] endpoint and
//! any number of consensus instances, each identified by a service-wide
//! [`InstanceId`]. Outbound protocol messages are encoded into
//! [`crate::wire`] frames tagged with their instance id and queued on the
//! transport; [`ConsensusService::poll`] drains the socket, decodes,
//! demultiplexes by instance id, dispatches, and flushes everything the
//! dispatch produced as one batch per peer.
//!
//! ## Receive-boundary policy (degrade, don't panic)
//!
//! Every inbound frame passes four gates before touching protocol state,
//! each recording a [`ProtocolError`] and discarding the frame on failure:
//!
//! 1. **decode** — malformed bytes die in [`crate::wire::decode_frame`];
//! 2. **sender authentication** — the frame's claimed sender must equal the
//!    transport-authenticated link peer (no spoofing across links);
//! 3. **instance lookup** — frames for unknown instance ids are dropped
//!    (instances are registered before `start`);
//! 4. **kind check** — the payload variant must match the instance's
//!    protocol.
//!
//! Whatever survives is handed to state machines that run their own
//! receive-boundary validation on top.
//!
//! ## Durability and crash recovery
//!
//! A service with a [`Wal`] attached writes through at every state-changing
//! point — instance registration (with an opaque recovery spec), launches,
//! authenticated inbound frames, outbound protocol frames, witness-commit
//! progress, and decisions — with a group-commit fsync per poll that always
//! lands *before* the poll's transport flush (WAL-before-wire), and a forced
//! fsync before a decision is surfaced. A restarted process rebuilds the
//! exact pre-crash protocol state with [`ConsensusService::recover`]: the
//! factory re-creates each instance from its logged spec, the logged inbound
//! sequence is replayed through the deterministic state machines, the
//! regenerated outbound frames are checked FIFO against the logged ones
//! (any mismatch counts as a replay divergence), logged decisions are
//! *pinned* so the recovered node can never surface a different value
//! (amnesia-freedom), and the full outbound history is re-sent so peers can
//! fill any gap — receivers deduplicate. The same history replays to any
//! peer the transport reports through [`Transport::take_reconnects`].
//!
//! ## Self-diagnosis
//!
//! [`ConsensusService::enable_health`] arms the health subsystem: every
//! poll feeds per-instance progress (lockstep round / barrier occupancy for
//! BVC, witness commits for VA) and the transport's per-link health into a
//! [`rbvc_obs::StallDetector`], which raises a blame-attributed
//! [`rbvc_obs::StallReport`] (barrier / wire / fsync / queue, with the
//! specific missing senders) when an undecided instance makes no progress
//! past its deadline. The same tick publishes a node snapshot to an
//! optional [`rbvc_obs::StatusBoard`] (the `/status` endpoint) and tees the
//! service's event stream into an always-on [`rbvc_obs::FlightRecorder`]
//! that dumps its ring on a safety violation, an escalated stall, or a
//! panic.

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rbvc_core::verified_avg::{DeltaMode, VerifiedAveraging};
use rbvc_core::SyncBvc;
use rbvc_linalg::VecD;
use rbvc_obs::{
    progress_token, ClientStatus, Event, EventKind, FlightRecorder, InstanceProgress,
    InstanceStatus, Obs, Recorder, Registry, StallConfig, StallDetector, StallEvent, StallReport,
    StatusBoard, StatusSnapshot, TeeRecorder, WalStatus,
};
use rbvc_sim::asynch::AsyncProtocol;
use rbvc_sim::config::ProcessId;
use rbvc_sim::error::{ErrorLog, ProtocolError};
use rbvc_store::{decode_record, encode_record, ReplayReport, Wal, WalRecord};
pub use rbvc_sim::monitor::InstanceId;

use crate::lockstep::{Lockstep, RoundBatch};
use crate::transport::{AuthEvent, Transport};
use crate::wire::{decode_frame, encode_frame, ClientLaunch, Frame, Payload, MAX_DIM};

/// One consensus instance as the service runs it.
pub enum InstanceProto {
    /// A synchronous broadcast-then-decide instance under the lockstep
    /// synchronizer.
    Bvc(Lockstep<SyncBvc>),
    /// An asynchronous Verified-Averaging instance.
    Va(VerifiedAveraging),
}

/// A decision surfaced by [`ConsensusService::poll`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionEvent {
    /// Which instance decided.
    pub instance: InstanceId,
    /// The local process that decided (always this service's id).
    pub process: ProcessId,
    /// The decided vector.
    pub value: VecD,
    /// Submit→decide time: from this instance's [`ConsensusService::launch`]
    /// (or [`ConsensusService::start`]) to the poll that surfaced the
    /// decision, on the local monotonic clock.
    pub latency: Duration,
}

struct Slot {
    proto: InstanceProto,
    decided: bool,
    /// Decision recovered from the WAL, pinned: [`ConsensusService::decision`]
    /// returns this over whatever the replayed state machine holds, so a
    /// recovered node can never surface a value that differs from the one it
    /// already surfaced before the crash.
    pinned: Option<VecD>,
    /// Whether this instance's `on_start` sends have gone out. Un-launched
    /// instances still receive and buffer frames (so a peer may start first)
    /// but are not ticked and cannot surface a decision.
    launched: bool,
    /// Monotonic launch timestamp; the submit side of the latency metric.
    submitted_at: Option<Instant>,
}

/// Names of the four receive gates, indexed as [`ConsensusService::gate_rejections`].
pub const GATE_NAMES: [&str; 4] = ["decode", "auth", "instance", "kind"];

/// Base of the client-request instance-id space: ids are
/// `CLIENT_INSTANCE_BASE | (owner << 24) | seq` with the owning process in
/// bits 24..44 and a per-owner sequence number in bits 0..24, so the owner
/// of any client instance is recoverable from the id alone (the auth check
/// on [`crate::wire::Payload::Launch`] frames) and owners can mint ids
/// concurrently without coordination. Disjoint from the small static ids
/// benchmarks and tests register directly.
pub const CLIENT_INSTANCE_BASE: u64 = 1 << 44;

/// The owning process encoded in a client instance id, or `None` if `id`
/// is not in the client instance-id space.
#[must_use]
pub fn client_instance_owner(id: InstanceId) -> Option<ProcessId> {
    if id >> 44 == 1 {
        Some(usize::try_from((id >> 24) & 0xF_FFFF).expect("20 bits fit usize"))
    } else {
        None
    }
}

/// Frames for a client instance that arrive before its `Launch` are parked
/// here (per service), bounded; overflow is shed and counted.
const CLIENT_STASH_CAP: usize = 1024;

/// Parameters of the client front-end (the consensus instances client
/// requests are run through, and the admission bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Fault tolerance each client instance is configured with. The
    /// benchmark meshes are crash-free, so `f = 0` (wait for all) gives the
    /// tightest agreement; adversarial campaigns run `f > 0`.
    pub f: usize,
    /// Bracha round budget per client instance.
    pub rounds: usize,
    /// Client instances this node will run concurrently as owner; further
    /// admissions queue.
    pub max_inflight: usize,
    /// Bound of the admission queue; beyond it clients get `Busy` and the
    /// request is shed.
    pub queue_cap: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig { f: 0, rounds: 8, max_inflight: 64, queue_cap: 256 }
    }
}

/// Outcome of [`ConsensusService::client_submit`] — what the client port
/// sends back (or doesn't) for one `Submit`.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAdmission {
    /// The request was already decided: the identical cached decision, no
    /// new instance.
    Reply {
        /// The request number the cached decision answers.
        reqno: u64,
        /// The cached decision, bit-identical on every retry.
        decision: VecD,
    },
    /// This node does not own the session; the client should dial `0`'s
    /// client port.
    Redirect(ProcessId),
    /// In-flight and queue are both full; the request was shed.
    Busy,
    /// Admitted: a consensus instance was launched for this request.
    Admitted,
    /// Admitted into the bounded queue; it launches when an in-flight slot
    /// frees up.
    Queued,
    /// A request number at or below one already seen (an in-flight retry,
    /// or a regression); silently dropped — the original's reply stands.
    Stale,
    /// Structurally unacceptable (empty / oversized / non-finite vector, or
    /// the client front-end is not enabled); dropped and counted.
    Rejected,
}

/// Snapshot of the client front-end counters, for tests and campaigns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Distinct sessions in the client table.
    pub sessions: u64,
    /// Retries answered from the reply cache without a new instance.
    pub dedup_hits: u64,
    /// Submits for sessions this node does not own.
    pub redirects: u64,
    /// Requests shed with `Busy` (in-flight and queue both full).
    pub shed: u64,
    /// Early client-instance frames dropped because the stash was full.
    pub stash_shed: u64,
    /// Requests admitted as new consensus instances.
    pub admitted: u64,
    /// Structurally unacceptable submits dropped at admission.
    pub rejected: u64,
    /// Client instances currently in flight on this owner.
    pub pending: u64,
    /// Requests waiting in the admission queue.
    pub queued: u64,
}

/// One session's row in the client table (Viewstamped-Replication style):
/// the highest request number seen and the cached last reply.
#[derive(Default)]
struct SessionRow {
    last_reqno: Option<u64>,
    last_reply: Option<(u64, VecD)>,
}

/// The service-side client front-end state. Always present (the struct is
/// small); `enabled` gates the admission API, while the node-to-node side
/// — `Launch` handling and the early-frame stash — is always live so every
/// node participates in client instances whether or not it fronts clients.
struct ClientState {
    enabled: bool,
    cfg: ClientConfig,
    table: BTreeMap<u64, SessionRow>,
    /// In-flight client instances this node owns: instance → (session, reqno).
    pending: BTreeMap<InstanceId, (u64, u64)>,
    /// Bounded admission queue of (session, reqno, value).
    queue: VecDeque<(u64, u64, VecD)>,
    /// Next per-owner sequence number for minting instance ids.
    next_seq: u64,
    /// Client-instance frames that arrived before their `Launch`.
    stash: VecDeque<Frame>,
    /// Replies ready for the client port: (session, reqno, decision).
    replies_out: Vec<(u64, u64, VecD)>,
    dedup_hits: u64,
    redirects: u64,
    shed: u64,
    stash_shed: u64,
    admitted: u64,
    rejected: u64,
}

impl ClientState {
    fn new() -> Self {
        ClientState {
            enabled: false,
            cfg: ClientConfig::default(),
            table: BTreeMap::new(),
            pending: BTreeMap::new(),
            queue: VecDeque::new(),
            next_seq: 0,
            stash: VecDeque::new(),
            replies_out: Vec::new(),
            dedup_hits: 0,
            redirects: 0,
            shed: 0,
            stash_shed: 0,
            admitted: 0,
            rejected: 0,
        }
    }
}

/// Magic prefix of the recovery spec the service logs for its own client
/// instances, so [`ConsensusService::recover`] can rebuild them (and the
/// client table) internally before consulting the caller's factory.
const CLIENT_SPEC_MAGIC: [u8; 4] = *b"RBCS";

fn encode_client_spec(session: u64, reqno: u64, f: usize, rounds: usize, value: &VecD) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + value.dim() * 8);
    out.extend_from_slice(&CLIENT_SPEC_MAGIC);
    out.extend_from_slice(&session.to_le_bytes());
    out.extend_from_slice(&reqno.to_le_bytes());
    out.extend_from_slice(&u32::try_from(f).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(&u32::try_from(rounds).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(&u32::try_from(value.dim()).unwrap_or(u32::MAX).to_le_bytes());
    for &x in value.as_slice() {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    out
}

fn decode_client_spec(spec: &[u8]) -> Option<(u64, u64, usize, usize, VecD)> {
    if spec.len() < 32 || spec[..4] != CLIENT_SPEC_MAGIC {
        return None;
    }
    let u64_at = |i: usize| u64::from_le_bytes(spec[i..i + 8].try_into().expect("8 bytes"));
    let u32_at = |i: usize| u32::from_le_bytes(spec[i..i + 4].try_into().expect("4 bytes"));
    let (session, reqno) = (u64_at(4), u64_at(12));
    let (f, rounds) = (u32_at(20) as usize, u32_at(24) as usize);
    let dim = u32_at(28) as usize;
    if dim == 0 || dim > MAX_DIM || spec.len() != 32 + dim * 8 {
        return None;
    }
    let xs: Vec<f64> = (0..dim).map(|i| f64::from_bits(u64_at(32 + i * 8))).collect();
    Some((session, reqno, f, rounds, VecD::from_slice(&xs)))
}

/// Configuration for [`ConsensusService::enable_health`].
#[derive(Clone, Default)]
pub struct HealthConfig {
    /// Stall deadlines (detection + escalation-to-dump).
    pub stall: StallConfig,
    /// Where flight-recorder dumps land; `None` runs the detector without
    /// a flight recorder.
    pub flight_dir: Option<PathBuf>,
    /// Flight-recorder ring capacity in events (clamped to a sane minimum
    /// by the recorder); 0 picks the default.
    pub flight_capacity: usize,
    /// Status board the node publishes its `/status` snapshot to; `None`
    /// skips publishing.
    pub status: Option<StatusBoard>,
}

/// Interval between [`StatusBoard`] publishes: `/status` is a human/CI
/// endpoint, re-rendering the snapshot every poll would be pure overhead.
const STATUS_PUBLISH_INTERVAL_US: u64 = 20_000;

/// Default flight-recorder ring capacity (events) when the config says 0.
const FLIGHT_CAPACITY_DEFAULT: usize = 4096;

/// Live health state behind [`ConsensusService::enable_health`].
struct HealthState {
    detector: StallDetector,
    flight: Option<Arc<FlightRecorder>>,
    board: Option<StatusBoard>,
    /// Last status publish (µs, shared monotonic clock) — rate limiter.
    last_publish_us: u64,
}

/// The per-process service multiplexing consensus instances over one
/// transport endpoint.
pub struct ConsensusService<T: Transport> {
    transport: T,
    instances: BTreeMap<InstanceId, Slot>,
    undecided: usize,
    errors: ErrorLog,
    started: bool,
    /// Per-gate rejection counts, indexed as [`GATE_NAMES`].
    gate_rejections: [u64; 4],
    /// Per-sender rejection counts: `[sender][gate]`, gates indexed as
    /// [`GATE_NAMES`]. The sender is the transport-authenticated link peer
    /// for the decode/auth gates and the (by then link-verified) frame
    /// sender for the instance/kind gates — what lets an adversarial
    /// campaign attribute every rejection to the node that caused it.
    gate_rejections_by_sender: Vec<[u64; 4]>,
    /// Structured-event sink (no-op by default), node tag baked in.
    obs: Obs,
    /// Write-ahead log; `None` runs the service non-durable (no write-through,
    /// no reconnect history).
    wal: Option<Wal>,
    /// Full outbound frame history `(dst, bytes)`, kept only while durable:
    /// replayed to peers the transport reports as reconnected, and rebuilt
    /// from the WAL on recovery.
    history: Vec<(ProcessId, Vec<u8>)>,
    /// Last witness-commit count logged per VA instance (write-through is
    /// change-driven, not per-poll).
    witness_logged: BTreeMap<InstanceId, u64>,
    /// Decisions replayed out of the WAL (surfaced before the crash; they do
    /// not reappear in [`ConsensusService::poll`] results).
    recovered: Vec<DecisionEvent>,
    /// Replay anomalies: regenerated sends that failed the FIFO match against
    /// the logged ones, undecodable WAL records, or records referencing
    /// unknown instances. Zero on a faithful recovery.
    replay_divergence: u64,
    /// Per-destination outbound frame counters: every frame [`Self::route`]
    /// queues for `dst` gets the next sequence number on that directed link.
    /// Links are FIFO, so the receiver's matching per-source counter assigns
    /// the same number to the same frame — the pairing key that lets the
    /// trace assembler join a `FrameTx` span to its `FrameRx` across nodes
    /// without widening the wire format. (History replay after a reconnect
    /// bypasses `route` and so keeps the counters aligned on both sides.)
    tx_seq: Vec<u64>,
    /// Per-source inbound frame counters; see `tx_seq`.
    rx_seq: Vec<u64>,
    /// Client front-end: session table, admission bounds, reply cache.
    client: ClientState,
    /// Health subsystem (stall detector, status publisher, flight
    /// recorder); `None` until [`ConsensusService::enable_health`].
    health: Option<HealthState>,
    /// Artificial delay added to every group-commit sync — fault injection
    /// for the health campaign's slow-fsync class. Zero in real runs.
    fsync_throttle: Duration,
}

impl<T: Transport> ConsensusService<T> {
    /// Wrap a transport endpoint into an (initially empty) service.
    #[must_use]
    pub fn new(transport: T) -> Self {
        let node = u32::try_from(transport.local_id()).unwrap_or(u32::MAX);
        let n = transport.n();
        ConsensusService {
            transport,
            instances: BTreeMap::new(),
            undecided: 0,
            errors: ErrorLog::new(),
            started: false,
            gate_rejections: [0; 4],
            gate_rejections_by_sender: vec![[0; 4]; n],
            obs: Obs::noop().with_node(node),
            wal: None,
            history: Vec::new(),
            witness_logged: BTreeMap::new(),
            recovered: Vec::new(),
            replay_divergence: 0,
            tx_seq: vec![0; n],
            rx_seq: vec![0; n],
            client: ClientState::new(),
            health: None,
            fsync_throttle: Duration::ZERO,
        }
    }

    /// Attach a write-ahead log: every state-changing point from here on is
    /// logged before it takes effect. Attach before registering instances so
    /// their specs are durable; to resume from an existing log use
    /// [`ConsensusService::recover`] instead.
    pub fn attach_wal(&mut self, wal: Wal) {
        self.wal = Some(wal);
    }

    /// True iff a WAL is attached.
    #[must_use]
    pub fn durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Declare that this service's transport runs keyed link identity:
    /// pre-registers the `auth.*` aggregate counters so a `/metrics`
    /// scrape shows explicit zeros before the first handshake outcome,
    /// rather than absent series. The per-event drain into the flight
    /// recorder ([`EventKind::AuthEstablished`] / [`EventKind::AuthReject`])
    /// is always on — a plaintext transport simply never produces any.
    pub fn enable_auth(&mut self) {
        let reg = Registry::global();
        reg.counter("auth.reject_total").add(0);
        reg.counter("auth.established_total").add(0);
    }

    /// Drain the transport's handshake outcomes into the observability
    /// stream, where the flight recorder and trace assembler see them.
    fn drain_auth_events(&mut self) {
        for ev in self.transport.take_auth_events() {
            match ev {
                AuthEvent::Established { peer, epoch } => {
                    self.obs.emit(|| {
                        Event::new(EventKind::AuthEstablished)
                            .peer(u32::try_from(peer).unwrap_or(u32::MAX))
                            .detail(format!("epoch={epoch}"))
                    });
                }
                AuthEvent::Rejected { peer, reason } => {
                    self.obs.emit(|| {
                        let e = Event::new(EventKind::AuthReject)
                            .detail(format!("reason={reason}"));
                        match peer {
                            Some(p) => e.peer(u32::try_from(p).unwrap_or(u32::MAX)),
                            None => e,
                        }
                    });
                }
            }
        }
    }

    /// Append one record to the WAL (no-op when non-durable); an append
    /// failure degrades — it is recorded, the service keeps running on the
    /// in-memory state.
    fn wal_append(&mut self, rec: &WalRecord) {
        if let Some(w) = self.wal.as_mut() {
            if let Err(e) = w.append(&encode_record(rec)) {
                self.errors.record(ProtocolError::Transport {
                    peer: None,
                    reason: format!("wal append failed: {e}"),
                });
            } else {
                self.obs.emit(|| Event::new(EventKind::WalAppend));
            }
        }
    }

    /// Group-commit: fsync everything appended since the last sync. Called
    /// once per poll *before* the transport flush (WAL-before-wire).
    fn wal_sync(&mut self) {
        // Fault injection: a throttled "device" is slow whether or not a WAL
        // is attached — the measured fsync time in `poll` includes the sleep,
        // which is what the stall detector's fsync classifier watches.
        if !self.fsync_throttle.is_zero() {
            std::thread::sleep(self.fsync_throttle);
        }
        if let Some(w) = self.wal.as_mut() {
            if let Err(e) = w.sync() {
                self.errors.record(ProtocolError::Transport {
                    peer: None,
                    reason: format!("wal sync failed: {e}"),
                });
            }
        }
    }

    /// Attach a structured-event sink; the service emits
    /// [`EventKind::GateReject`] at each of the four receive gates and
    /// [`EventKind::Decide`] (with a `latency_us=` detail) per decided
    /// instance, and propagates the sink to every registered instance —
    /// lockstep round events and Verified-Averaging protocol events flow
    /// through it tagged with their instance id. Attach *before*
    /// registering instances so all of them are covered.
    pub fn set_obs(&mut self, obs: Obs) {
        let node = u32::try_from(self.transport.local_id()).unwrap_or(u32::MAX);
        self.obs = obs.with_node(node);
        let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
        for id in ids {
            self.attach_instance_obs(id);
        }
    }

    fn attach_instance_obs(&mut self, id: InstanceId) {
        let obs = self.obs.clone();
        if let Some(slot) = self.instances.get_mut(&id) {
            match &mut slot.proto {
                InstanceProto::Bvc(p) => p.set_obs(obs, Some(id)),
                InstanceProto::Va(p) => p.set_obs(obs, Some(id)),
            }
        }
    }

    /// Per-gate rejection counts (decode, sender auth, instance lookup,
    /// payload kind), in [`GATE_NAMES`] order.
    #[must_use]
    pub fn gate_rejections(&self) -> [u64; 4] {
        self.gate_rejections
    }

    /// Per-sender rejection counts, `[sender][gate]` with gates in
    /// [`GATE_NAMES`] order. See the field docs for what "sender" means at
    /// each gate.
    #[must_use]
    pub fn gate_rejections_by_sender(&self) -> &[[u64; 4]] {
        &self.gate_rejections_by_sender
    }

    /// Record one rejection at gate `gate` (index into [`GATE_NAMES`]),
    /// attribute it to `from` (metrics label + per-sender table + the
    /// `from=` field of the [`EventKind::GateReject`] detail), and trace it.
    fn gate_reject(&mut self, gate: usize, from: ProcessId, err: ProtocolError) {
        self.gate_rejections[gate] += 1;
        if let Some(per_sender) = self.gate_rejections_by_sender.get_mut(from) {
            per_sender[gate] += 1;
        }
        let sender = from.to_string();
        Registry::global()
            .counter_with(
                "service.gate.reject",
                &[("gate", GATE_NAMES[gate]), ("sender", sender.as_str())],
            )
            .inc();
        self.obs.emit(|| {
            Event::new(EventKind::GateReject).detail(format!("gate={} from={from}", GATE_NAMES[gate]))
        });
        self.errors.record(err);
    }

    /// Register one instance under `id`.
    ///
    /// # Errors
    /// [`ProtocolError::InvalidSpec`] if `id` is already taken or the
    /// service already started.
    pub fn add_instance(&mut self, id: InstanceId, proto: InstanceProto) -> Result<(), ProtocolError> {
        if self.started {
            return Err(ProtocolError::InvalidSpec {
                reason: "instances must be registered before start()".into(),
            });
        }
        if self.instances.contains_key(&id) {
            return Err(ProtocolError::InvalidSpec {
                reason: format!("duplicate instance id {id}"),
            });
        }
        self.instances.insert(
            id,
            Slot {
                proto,
                decided: false,
                pinned: None,
                launched: false,
                submitted_at: None,
            },
        );
        self.undecided += 1;
        self.attach_instance_obs(id);
        Ok(())
    }

    /// Register one instance durably: `spec` is an opaque blob the caller's
    /// recovery factory can rebuild the instance from (constructor
    /// parameters, typically) — the service logs it verbatim and never
    /// interprets it.
    ///
    /// # Errors
    /// Like [`ConsensusService::add_instance`]; also [`ProtocolError::InvalidSpec`]
    /// if no WAL is attached.
    pub fn add_instance_durable(
        &mut self,
        id: InstanceId,
        proto: InstanceProto,
        spec: Vec<u8>,
    ) -> Result<(), ProtocolError> {
        if self.wal.is_none() {
            return Err(ProtocolError::InvalidSpec {
                reason: "add_instance_durable requires an attached WAL".into(),
            });
        }
        self.add_instance(id, proto)?;
        self.wal_append(&WalRecord::Registered { instance: id, spec });
        Ok(())
    }

    /// Kick off every registered instance (their `on_start` sends), flushed
    /// as one batch per peer.
    ///
    /// # Errors
    /// Propagates transport-level send/flush failures (also recorded).
    pub fn start(&mut self) -> Result<(), ProtocolError> {
        self.started = true;
        let mut first_err = None;
        let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
        for id in ids {
            if let Err(e) = self.launch_inner(id, false) {
                first_err.get_or_insert(e);
            }
        }
        self.wal_sync();
        if let Err(e) = self.transport.flush() {
            first_err.get_or_insert(e);
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Open the service for traffic *without* launching any instance:
    /// registered instances buffer inbound frames (a peer may legitimately
    /// start first) but send nothing and cannot decide until
    /// [`ConsensusService::launch`] releases them individually. This is the
    /// closed-loop submission mode: keeping a bounded window of launched
    /// instances in flight yields meaningful per-instance submit→decide
    /// latencies instead of every instance marching in lockstep.
    pub fn start_deferred(&mut self) {
        self.started = true;
    }

    /// Launch one registered instance: queue its `on_start` sends and stamp
    /// its submission time. The sends ride the next flush — the upcoming
    /// [`ConsensusService::poll`] in the steady state, or an explicit
    /// [`ConsensusService::flush`] — so a burst of launches batches into
    /// one write per peer instead of one per launch.
    ///
    /// # Errors
    /// [`ProtocolError::InvalidSpec`] if the service has not started, `id`
    /// is unknown, or the instance already launched; transport errors are
    /// propagated (and recorded) like in [`ConsensusService::start`].
    pub fn launch(&mut self, id: InstanceId) -> Result<(), ProtocolError> {
        if !self.started {
            return Err(ProtocolError::InvalidSpec {
                reason: "launch() requires start() or start_deferred() first".into(),
            });
        }
        self.launch_inner(id, true)
    }

    /// Push everything queued on the transport out now (a poll does this
    /// anyway; use after a launch burst outside the poll loop).
    ///
    /// # Errors
    /// Propagates transport-level flush failures.
    pub fn flush(&mut self) -> Result<(), ProtocolError> {
        self.wal_sync();
        self.transport.flush()
    }

    /// Shared launch path; `check` enforces the single-launch contract (the
    /// bulk `start()` path iterates fresh ids and skips the check).
    fn launch_inner(&mut self, id: InstanceId, check: bool) -> Result<(), ProtocolError> {
        let local = self.transport.local_id();
        let Some(slot) = self.instances.get_mut(&id) else {
            return Err(ProtocolError::InvalidSpec {
                reason: format!("launch of unknown instance {id}"),
            });
        };
        if check && slot.launched {
            return Err(ProtocolError::InvalidSpec {
                reason: format!("instance {id} already launched"),
            });
        }
        slot.launched = true;
        slot.submitted_at = Some(Instant::now());
        // The trace-side submit marker: same instant (to within the emit
        // call) as `submitted_at`, so the assembler's critical-path total
        // is directly comparable to the measured decide latency.
        self.obs.emit(|| Event::new(EventKind::Submit).instance(id));
        let sends = match &mut slot.proto {
            InstanceProto::Bvc(p) => Self::encode_bvc(id, local, p.on_start()),
            InstanceProto::Va(p) => Self::encode_va(id, local, p.on_start()),
        };
        self.wal_append(&WalRecord::Launched { instance: id });
        self.route(sends)
    }

    fn encode_bvc(
        instance: InstanceId,
        sender: ProcessId,
        sends: Vec<(ProcessId, RoundBatch<<SyncBvc as rbvc_sim::sync::SyncProtocol>::Msg>)>,
    ) -> Vec<(ProcessId, Vec<u8>)> {
        sends
            .into_iter()
            .map(|(dst, batch)| {
                let frame = Frame {
                    instance,
                    sender,
                    round: u32::try_from(batch.round).expect("round fits u32"),
                    payload: Payload::Eig(batch.msgs),
                };
                (dst, encode_frame(&frame))
            })
            .collect()
    }

    fn encode_va(
        instance: InstanceId,
        sender: ProcessId,
        sends: Vec<(ProcessId, <VerifiedAveraging as AsyncProtocol>::Msg)>,
    ) -> Vec<(ProcessId, Vec<u8>)> {
        sends
            .into_iter()
            .map(|(dst, msg)| {
                let frame = Frame {
                    instance,
                    sender,
                    round: u32::try_from(msg.0 .1).expect("round fits u32"),
                    payload: Payload::Va(msg),
                };
                (dst, encode_frame(&frame))
            })
            .collect()
    }

    /// Queue encoded frames on the transport, logging each as a `Sent`
    /// record first when durable (the group-commit sync lands before the
    /// flush that puts them on the wire); failures are recorded and the
    /// remaining frames still go out. Every frame takes the next sequence
    /// number on its directed link and, when tracing, emits a `FrameTx`
    /// span carrying the frame identity `(instance, round, dst, seq)`.
    fn route(&mut self, frames: Vec<(ProcessId, Vec<u8>)>) -> Result<(), ProtocolError> {
        let mut first_err = None;
        for (dst, bytes) in frames {
            if let Some(seq_slot) = self.tx_seq.get_mut(dst) {
                let seq = *seq_slot;
                *seq_slot += 1;
                if self.obs.enabled() {
                    if let Some((instance, _, round)) = crate::wire::peek_header(&bytes) {
                        let kind = if bytes[3] == 1 { "eig" } else { "va" };
                        let len = bytes.len();
                        self.obs.emit(|| {
                            Event::new(EventKind::FrameTx)
                                .instance(instance)
                                .round(round)
                                .peer(u32::try_from(dst).unwrap_or(u32::MAX))
                                .seq(seq)
                                .detail(format!("kind={kind} bytes={len}"))
                        });
                    }
                }
            }
            if self.wal.is_some() {
                self.wal_append(&WalRecord::Sent {
                    dst: u32::try_from(dst).unwrap_or(u32::MAX),
                    bytes: bytes.clone(),
                });
                self.history.push((dst, bytes.clone()));
            }
            if let Err(e) = self.transport.send(dst, bytes) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Dispatch one authenticated, decoded frame to its instance. Returns
    /// the outbound frames it produced.
    fn dispatch(&mut self, frame: Frame) -> Vec<(ProcessId, Vec<u8>)> {
        let local = self.transport.local_id();
        if let Payload::Launch(launch) = &frame.payload {
            let launch = launch.clone();
            return self.dispatch_launch(frame.instance, frame.sender, launch);
        }
        if !self.instances.contains_key(&frame.instance) {
            // A frame for a client instance may legitimately beat its
            // `Launch` here (different links race); park it, bounded.
            if client_instance_owner(frame.instance).is_some() {
                if self.client.stash.len() < CLIENT_STASH_CAP {
                    self.client.stash.push_back(frame);
                } else {
                    self.client.stash_shed += 1;
                    Registry::global().counter("service.client.stash_shed").inc();
                }
                return Vec::new();
            }
            self.gate_reject(
                2,
                frame.sender,
                ProtocolError::MalformedPayload {
                    from: frame.sender,
                    reason: format!("frame for unknown instance {}", frame.instance),
                },
            );
            return Vec::new();
        }
        let slot = self.instances.get_mut(&frame.instance).expect("checked above");
        let sender = frame.sender;
        let instance = frame.instance;
        let sends = match (&mut slot.proto, frame.payload) {
            (InstanceProto::Bvc(p), Payload::Eig(msgs)) => Some(Self::encode_bvc(
                instance,
                local,
                p.on_message(sender, RoundBatch { round: frame.round as usize, msgs }),
            )),
            (InstanceProto::Va(p), Payload::Va(msg)) => {
                Some(Self::encode_va(instance, local, p.on_message(sender, msg)))
            }
            (_, _) => None,
        };
        match sends {
            Some(sends) => sends,
            None => {
                self.gate_reject(
                    3,
                    sender,
                    ProtocolError::MalformedPayload {
                        from: sender,
                        reason: format!(
                            "payload kind does not match the protocol of instance {instance}"
                        ),
                    },
                );
                Vec::new()
            }
        }
    }

    /// One service step: receive (waiting up to `timeout` for the first
    /// frame), decode, authenticate, demultiplex, dispatch, tick, and flush
    /// everything produced as one batch per peer. Returns the decisions
    /// newly reached during this poll.
    pub fn poll(&mut self, timeout: Duration) -> Vec<DecisionEvent> {
        // A peer whose outbound link was re-established (it restarted, or
        // the link died and was redialed) gets the full outbound history
        // replayed: whatever fell into the gap is covered, receivers dedup.
        let rejoined = self.transport.take_reconnects();
        for peer in rejoined {
            let frames: Vec<(ProcessId, Vec<u8>)> = self
                .history
                .iter()
                .filter(|(dst, _)| *dst == peer)
                .cloned()
                .collect();
            for (dst, bytes) in frames {
                let _ = self.transport.send(dst, bytes);
            }
        }
        let inbound = self.transport.recv_timeout_stamped(timeout);
        self.drain_auth_events();
        // The poll's busy span starts once the receive wait is over —
        // blocking on an empty socket is idle time, not poll work.
        let t_active = Instant::now();
        let n_rx = inbound.len();
        let mut outbound: Vec<(ProcessId, Vec<u8>)> = Vec::new();
        for (link_peer, arrived_us, bytes) in inbound {
            // Count the frame on its directed link *before* any gate can
            // reject it, mirroring the sender's unconditional `tx_seq`
            // bump — rejections must not desynchronize the pairing.
            let seq = match self.rx_seq.get_mut(link_peer) {
                Some(s) => {
                    let seq = *s;
                    *s += 1;
                    seq
                }
                None => u64::MAX,
            };
            if self.obs.enabled() {
                if let Some((instance, _, round)) = crate::wire::peek_header(&bytes) {
                    let waited = rbvc_obs::clock::now_us().saturating_sub(arrived_us);
                    self.obs.emit(|| {
                        Event::new(EventKind::FrameRx)
                            .instance(instance)
                            .round(round)
                            .peer(u32::try_from(link_peer).unwrap_or(u32::MAX))
                            .seq(seq)
                            .dur(waited)
                    });
                }
            }
            let frame = match decode_frame(&bytes, link_peer) {
                Ok(f) => f,
                Err(e) => {
                    self.gate_reject(0, link_peer, e);
                    continue;
                }
            };
            if frame.sender != link_peer {
                self.gate_reject(
                    1,
                    link_peer,
                    ProtocolError::MalformedPayload {
                        from: link_peer,
                        reason: format!(
                            "spoofed sender: header claims {} on the link from {}",
                            frame.sender, link_peer
                        ),
                    },
                );
                continue;
            }
            // Log the authenticated frame *before* it mutates protocol
            // state: replay re-runs the remaining gates and the dispatch
            // deterministically.
            if self.wal.is_some() {
                self.wal_append(&WalRecord::Inbound {
                    from: u32::try_from(link_peer).unwrap_or(u32::MAX),
                    bytes: bytes.clone(),
                });
            }
            outbound.extend(self.dispatch(frame));
        }
        // Drive timers (lockstep round timeouts) once per poll.
        let local = self.transport.local_id();
        let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
        for id in ids {
            let slot = self.instances.get_mut(&id).expect("registered");
            if slot.decided || !slot.launched {
                continue;
            }
            let sends = match &mut slot.proto {
                InstanceProto::Bvc(p) => Self::encode_bvc(id, local, p.on_tick()),
                InstanceProto::Va(p) => Self::encode_va(id, local, p.on_tick()),
            };
            outbound.extend(sends);
        }
        let n_tx = outbound.len();
        let routed = self.route(outbound);
        // Witness-commit progress (change-driven): lets recovery cross-check
        // how far each VA instance had committed.
        if self.wal.is_some() {
            let mut commits: Vec<(InstanceId, u64)> = Vec::new();
            for (id, slot) in &self.instances {
                if let InstanceProto::Va(p) = &slot.proto {
                    let count = p.witness_commits();
                    if self.witness_logged.get(id).copied().unwrap_or(0) != count {
                        commits.push((*id, count));
                    }
                }
            }
            for (instance, count) in commits {
                self.wal_append(&WalRecord::WitnessCommit { instance, count });
                self.witness_logged.insert(instance, count);
            }
        }
        // Group-commit before the wire flush: nothing reaches a peer unless
        // the records that produced it are durable.
        let t_sync = Instant::now();
        self.wal_sync();
        let fsync_us = u64::try_from(t_sync.elapsed().as_micros()).unwrap_or(u64::MAX);
        if routed.is_err() || self.transport.flush().is_err() {
            // Already recorded by the transport; the poll loop continues on
            // the surviving links.
        }
        let decisions = self.collect_decisions();
        self.finish_client_decisions(&decisions);
        // Health turn — unconditional: stalls are exactly the polls where
        // nothing else happens.
        self.health_tick(fsync_us);
        // Close the poll span. `kernel_us` is whatever the hot geometry
        // kernels accumulated on *this* thread since the last drain (the
        // dispatches and ticks above); `fsync_us` is this poll's group
        // commit. Idle polls (no traffic, no decisions) stay silent so a
        // trace is dominated by signal, not by the poll loop spinning.
        if self.obs.enabled() && (n_rx > 0 || n_tx > 0 || !decisions.is_empty()) {
            let kernel_us = rbvc_obs::take_thread_kernel_nanos() / 1_000;
            let dur = u64::try_from(t_active.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.obs.emit(|| {
                Event::new(EventKind::PollEnd).dur(dur).detail(format!(
                    "rx={n_rx} tx={n_tx} fsync_us={fsync_us} kernel_us={kernel_us}"
                ))
            });
        }
        decisions
    }

    /// Surface newly decided instances as events (each instance at most
    /// once). Un-launched instances are skipped even if their state machine
    /// already holds an output — the latency clock starts at launch, so a
    /// decision is only *surfaced* once the instance was submitted.
    fn collect_decisions(&mut self) -> Vec<DecisionEvent> {
        let local = self.transport.local_id();
        let mut events = Vec::new();
        for (id, slot) in &mut self.instances {
            if slot.decided || !slot.launched {
                continue;
            }
            let value = match &slot.proto {
                InstanceProto::Bvc(p) => p.output(),
                InstanceProto::Va(p) => p.output(),
            };
            if let Some(value) = value {
                slot.decided = true;
                self.undecided -= 1;
                // Decisions are the one point with a *forced* fsync: a
                // surfaced decision must survive any crash, or a restart
                // could surface a different one.
                if let Some(w) = self.wal.as_mut() {
                    let rec = WalRecord::Decided {
                        instance: *id,
                        value: value.as_slice().to_vec(),
                    };
                    if w.append(&encode_record(&rec)).and_then(|()| w.sync()).is_err() {
                        self.errors.record(ProtocolError::Transport {
                            peer: None,
                            reason: format!("wal decide write-through failed for instance {id}"),
                        });
                    }
                }
                let latency = slot.submitted_at.map(|t| t.elapsed()).unwrap_or_default();
                let latency_us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
                Registry::global()
                    .histogram("service.decide.latency_us")
                    .record(latency_us);
                let instance = *id;
                self.obs.emit(|| {
                    Event::new(EventKind::Decide)
                        .instance(instance)
                        .detail(format!("latency_us={latency_us}"))
                });
                events.push(DecisionEvent { instance, process: local, value, latency });
            }
        }
        events
    }

    /// Poll until every instance decided or `max_polls` elapse; returns all
    /// decision events in arrival order.
    pub fn run_until_decided(
        &mut self,
        poll_timeout: Duration,
        max_polls: usize,
    ) -> Vec<DecisionEvent> {
        let mut events = Vec::new();
        for _ in 0..max_polls {
            if self.undecided == 0 {
                break;
            }
            events.extend(self.poll(poll_timeout));
        }
        events
    }

    /// True iff every registered instance has decided.
    #[must_use]
    pub fn all_decided(&self) -> bool {
        self.undecided == 0
    }

    /// Decision of one instance, if reached. A decision pinned by recovery
    /// wins over the replayed state machine's output: the pre-crash surfaced
    /// value is the only one this process may ever report.
    #[must_use]
    pub fn decision(&self, id: InstanceId) -> Option<VecD> {
        let slot = self.instances.get(&id)?;
        if let Some(pinned) = &slot.pinned {
            return Some(pinned.clone());
        }
        match &slot.proto {
            InstanceProto::Bvc(p) => p.output(),
            InstanceProto::Va(p) => p.output(),
        }
    }

    /// Enable the client front-end with `cfg`: this node will accept
    /// [`ConsensusService::client_submit`] calls (from a
    /// [`crate::client::ClientPort`] pump, typically) for the sessions it
    /// owns. The node-to-node side of client instances — `Launch` handling
    /// and the early-frame stash — is live on every node regardless; this
    /// only opens the admission API. Also pre-registers the client metrics
    /// so the live `/metrics` endpoint exports them from the first scrape.
    pub fn enable_client(&mut self, cfg: ClientConfig) {
        self.client.enabled = true;
        self.client.cfg = cfg;
        let reg = Registry::global();
        reg.gauge("client.sessions").set(self.client.table.len() as i64);
        reg.counter("client.dedup_hits").add(self.client.dedup_hits);
        reg.counter("client.redirects").add(self.client.redirects);
        reg.counter("service.client.shed").add(0);
    }

    /// Arm the health subsystem: from here on every poll feeds instance
    /// progress and link health into a stall detector, publishes a node
    /// snapshot to the configured [`StatusBoard`] (if any), and — when a
    /// flight directory is configured — tees the service's event stream
    /// into an always-on [`FlightRecorder`] that dumps on a violation, an
    /// escalated stall, or a panic. Call *after* [`ConsensusService::set_obs`]
    /// so the tee wraps the real sink; zero behavior change for services
    /// that never call this.
    pub fn enable_health(&mut self, cfg: HealthConfig) {
        let node = u32::try_from(self.transport.local_id()).unwrap_or(u32::MAX);
        let detector = StallDetector::new(node, cfg.stall, Registry::global().clone());
        let flight = cfg.flight_dir.map(|dir| {
            let cap = if cfg.flight_capacity == 0 {
                FLIGHT_CAPACITY_DEFAULT
            } else {
                cfg.flight_capacity
            };
            Arc::new(FlightRecorder::new(node, dir, cap, Registry::global().clone()))
        });
        if let Some(f) = &flight {
            rbvc_obs::arm_panic_hook(f);
            let sinks: Vec<Arc<dyn Recorder>> = vec![self.obs.recorder().clone(), f.clone()];
            self.set_obs(Obs::new(Arc::new(TeeRecorder::new(sinks))));
        }
        self.health = Some(HealthState {
            detector,
            flight,
            board: cfg.status,
            last_publish_us: 0,
        });
    }

    /// Inject an artificial delay into every group-commit sync — the
    /// health campaign's slow-fsync fault. Zero (the default) disables it.
    pub fn set_fsync_throttle(&mut self, throttle: Duration) {
        self.fsync_throttle = throttle;
    }

    /// Every stall the detector ever raised (bounded history), in
    /// detection order. Empty without [`ConsensusService::enable_health`].
    #[must_use]
    pub fn health_reports(&self) -> Vec<StallReport> {
        self.health.as_ref().map(|h| h.detector.reports().to_vec()).unwrap_or_default()
    }

    /// Stalls currently active (detected, not yet cleared).
    #[must_use]
    pub fn active_stalls(&self) -> Vec<StallReport> {
        self.health.as_ref().map(|h| h.detector.active()).unwrap_or_default()
    }

    /// Total stalls ever raised — the clean-run false-positive check.
    #[must_use]
    pub fn stalls_raised(&self) -> u64 {
        self.health.as_ref().map_or(0, |h| h.detector.raised_total())
    }

    /// The armed flight recorder, if health was enabled with a flight
    /// directory.
    #[must_use]
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.health.as_ref().and_then(|h| h.flight.as_ref())
    }

    /// Per-instance progress as the stall detector sees it: lockstep
    /// round plus barrier occupancy for BVC (with the concrete missing
    /// senders), witness commits for VA (no barrier, so no named senders).
    fn health_progress(&self) -> Vec<InstanceProgress> {
        self.instances
            .iter()
            .map(|(id, slot)| {
                let decided = slot.decided || slot.pinned.is_some();
                let (round, token, waiting_on) = match &slot.proto {
                    InstanceProto::Bvc(p) => {
                        let round = u32::try_from(p.current_round()).unwrap_or(u32::MAX);
                        let waiting: Vec<u32> = p
                            .waiting_on()
                            .iter()
                            .map(|&q| u32::try_from(q).unwrap_or(u32::MAX))
                            .collect();
                        (round, progress_token(round, p.senders_have(), 0), waiting)
                    }
                    InstanceProto::Va(p) => {
                        (0, progress_token(0, 0, p.witness_commits()), Vec::new())
                    }
                };
                InstanceProgress {
                    instance: *id,
                    round,
                    launched: slot.launched,
                    decided,
                    progress_token: token,
                    waiting_on,
                }
            })
            .collect()
    }

    /// One health turn, run at the end of every poll: feed the detector,
    /// surface stall events into the trace, dump the flight ring on
    /// escalation, and (rate-limited) publish the `/status` snapshot.
    fn health_tick(&mut self, fsync_us: u64) {
        let Some(mut h) = self.health.take() else { return };
        let now_us = rbvc_obs::clock::now_us();
        h.detector.note_fsync(now_us, fsync_us);
        let progress = self.health_progress();
        let links = self.transport.link_health();
        for ev in h.detector.observe(now_us, &progress, &links) {
            match ev {
                StallEvent::Detected(r) => {
                    let (instance, round, detail) = (r.instance, r.round, r.detail(false));
                    self.obs.emit(|| {
                        Event::new(EventKind::StallDetected)
                            .instance(instance)
                            .round(round)
                            .detail(detail)
                    });
                }
                StallEvent::Escalated(r) => {
                    let (instance, round, detail) = (r.instance, r.round, r.detail(true));
                    self.obs.emit(|| {
                        Event::new(EventKind::StallDetected)
                            .instance(instance)
                            .round(round)
                            .detail(detail)
                    });
                    if let Some(f) = &h.flight {
                        f.dump("stall");
                    }
                }
                StallEvent::Cleared(r) => {
                    let (instance, round, detail) = (r.instance, r.round, r.detail(false));
                    self.obs.emit(|| {
                        Event::new(EventKind::StallCleared)
                            .instance(instance)
                            .round(round)
                            .detail(detail)
                    });
                }
            }
        }
        if let Some(board) = &h.board {
            if h.last_publish_us == 0
                || now_us.saturating_sub(h.last_publish_us) >= STATUS_PUBLISH_INTERVAL_US
            {
                h.last_publish_us = now_us;
                let snap = self.status_snapshot(&h.detector, links, now_us);
                board.publish(snap.node, snap.render());
            }
        }
        self.health = Some(h);
    }

    /// Cap on per-instance rows in a `/status` snapshot; undecided
    /// instances take priority, counts always cover the full set.
    const STATUS_INSTANCE_CAP: usize = 32;

    /// Build this node's `/status` snapshot.
    fn status_snapshot(
        &self,
        detector: &StallDetector,
        links: Vec<rbvc_obs::LinkHealth>,
        now_us: u64,
    ) -> StatusSnapshot {
        let node = u32::try_from(self.transport.local_id()).unwrap_or(u32::MAX);
        let total_instances = self.instances.len() as u64;
        let row = |id: InstanceId, slot: &Slot| {
            let (proto, round, waiting_on) = match &slot.proto {
                InstanceProto::Bvc(p) => (
                    "bvc",
                    u32::try_from(p.current_round()).unwrap_or(u32::MAX),
                    p.waiting_on()
                        .iter()
                        .map(|&q| u32::try_from(q).unwrap_or(u32::MAX))
                        .collect(),
                ),
                InstanceProto::Va(_) => ("va", 0, Vec::new()),
            };
            InstanceStatus {
                id,
                proto: proto.to_string(),
                round,
                launched: slot.launched,
                decided: slot.decided || slot.pinned.is_some(),
                waiting_on,
            }
        };
        let decided_instances = self
            .instances
            .values()
            .filter(|s| s.decided || s.pinned.is_some())
            .count() as u64;
        let mut instances: Vec<InstanceStatus> = self
            .instances
            .iter()
            .filter(|(_, s)| !(s.decided || s.pinned.is_some()))
            .take(Self::STATUS_INSTANCE_CAP)
            .map(|(id, s)| row(*id, s))
            .collect();
        for (id, slot) in &self.instances {
            if instances.len() >= Self::STATUS_INSTANCE_CAP {
                break;
            }
            if slot.decided || slot.pinned.is_some() {
                instances.push(row(*id, slot));
            }
        }
        let client = self.client.enabled.then_some(ClientStatus {
            sessions: self.client.table.len() as u64,
            inflight: self.client.pending.len() as u64,
            shed: self.client.shed,
        });
        let wal = self.wal.as_ref().map(|w| WalStatus {
            size_bytes: w.len(),
            records: w.records(),
            records_since_compaction: w.records_since_compaction(),
        });
        StatusSnapshot {
            node,
            instances,
            total_instances,
            decided_instances,
            client,
            wal,
            links,
            stalls: detector.active(),
            updated_us: now_us,
        }
    }

    /// Which process owns client session `session` (sessions are sharded
    /// `session % n`).
    #[must_use]
    pub fn session_owner(&self, session: u64) -> ProcessId {
        usize::try_from(session % self.transport.n() as u64).expect("owner fits usize")
    }

    /// Snapshot of the client front-end counters.
    #[must_use]
    pub fn client_stats(&self) -> ClientStats {
        ClientStats {
            sessions: self.client.table.len() as u64,
            dedup_hits: self.client.dedup_hits,
            redirects: self.client.redirects,
            shed: self.client.shed,
            stash_shed: self.client.stash_shed,
            admitted: self.client.admitted,
            rejected: self.client.rejected,
            pending: self.client.pending.len() as u64,
            queued: self.client.queue.len() as u64,
        }
    }

    /// Number of registered instances (static and client-launched).
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Take the client replies that became ready since the last call:
    /// `(session, reqno, decision)`, each already WAL-durable when the
    /// service is durable. The client port delivers them to whichever
    /// connection last submitted for the session.
    pub fn take_client_replies(&mut self) -> Vec<(u64, u64, VecD)> {
        std::mem::take(&mut self.client.replies_out)
    }

    /// Admit one client request `(session, reqno, value)` into the table —
    /// the VR-style boundary that makes retries idempotent:
    ///
    /// * not the owner → [`ClientAdmission::Redirect`];
    /// * `reqno` equals the cached reply's → the identical cached decision,
    ///   no new instance ([`ClientAdmission::Reply`], a dedup hit);
    /// * `reqno` at or below the highest seen (an in-flight retry) →
    ///   [`ClientAdmission::Stale`], silently dropped — the in-flight
    ///   instance's reply answers it;
    /// * a fresh `reqno` → launched now ([`ClientAdmission::Admitted`]),
    ///   queued ([`ClientAdmission::Queued`]), or shed with
    ///   [`ClientAdmission::Busy`] when both bounds are full.
    pub fn client_submit(&mut self, session: u64, reqno: u64, value: VecD) -> ClientAdmission {
        if !self.client.enabled || !self.started {
            self.client.rejected += 1;
            return ClientAdmission::Rejected;
        }
        let owner = self.session_owner(session);
        if owner != self.transport.local_id() {
            self.client.redirects += 1;
            Registry::global().counter("client.redirects").inc();
            return ClientAdmission::Redirect(owner);
        }
        if value.dim() == 0
            || value.dim() > MAX_DIM
            || value.as_slice().iter().any(|x| !x.is_finite())
        {
            self.client.rejected += 1;
            Registry::global().counter("service.client.reject").inc();
            return ClientAdmission::Rejected;
        }
        let row = self.client.table.entry(session).or_default();
        if let Some((cached_reqno, decision)) = &row.last_reply {
            if *cached_reqno == reqno {
                let decision = decision.clone();
                self.client.dedup_hits += 1;
                Registry::global().counter("client.dedup_hits").inc();
                return ClientAdmission::Reply { reqno, decision };
            }
        }
        if row.last_reqno.is_some_and(|last| reqno <= last) {
            return ClientAdmission::Stale;
        }
        // A shed request leaves the table untouched so its retry is
        // re-considered (not stale-dropped) once load drains.
        let can_admit = self.client.pending.len() < self.client.cfg.max_inflight;
        let can_queue = self.client.queue.len() < self.client.cfg.queue_cap;
        if !can_admit && !can_queue {
            self.client.shed += 1;
            Registry::global().counter("service.client.shed").inc();
            return ClientAdmission::Busy;
        }
        self.client.table.entry(session).or_default().last_reqno = Some(reqno);
        Registry::global().gauge("client.sessions").set(self.client.table.len() as i64);
        if can_admit {
            let _ = self.admit_client_request(session, reqno, value);
            ClientAdmission::Admitted
        } else {
            self.client.queue.push_back((session, reqno, value));
            ClientAdmission::Queued
        }
    }

    /// The `Launch` frames the owner fans out for one client instance, in
    /// deterministic peer order (also regenerated verbatim on recovery so
    /// the FIFO `Sent` match holds).
    fn launch_frames(&self, instance: InstanceId, launch: &ClientLaunch) -> Vec<(ProcessId, Vec<u8>)> {
        let local = self.transport.local_id();
        (0..self.transport.n())
            .filter(|&dst| dst != local)
            .map(|dst| {
                let frame = Frame {
                    instance,
                    sender: local,
                    round: 0,
                    payload: Payload::Launch(launch.clone()),
                };
                (dst, encode_frame(&frame))
            })
            .collect()
    }

    /// Insert a dynamically created client instance (bypasses the
    /// before-`start()` registration gate static instances go through).
    fn insert_client_slot(&mut self, id: InstanceId, proto: InstanceProto) {
        self.instances.insert(
            id,
            Slot { proto, decided: false, pinned: None, launched: false, submitted_at: None },
        );
        self.undecided += 1;
        self.attach_instance_obs(id);
    }

    /// Owner side of one admitted request: mint the instance id, register
    /// (durably, with a self-describing spec), fan the `Launch` out to every
    /// peer *first* — per-link FIFO means each peer registers the instance
    /// before this node's protocol frames arrive — then launch locally.
    fn admit_client_request(
        &mut self,
        session: u64,
        reqno: u64,
        value: VecD,
    ) -> Result<(), ProtocolError> {
        let local = self.transport.local_id();
        let n = self.transport.n();
        let ClientConfig { f, rounds, .. } = self.client.cfg;
        let seq = self.client.next_seq;
        self.client.next_seq += 1;
        let instance =
            CLIENT_INSTANCE_BASE | ((local as u64) << 24) | (seq & 0xFF_FFFF);
        let proto = InstanceProto::Va(VerifiedAveraging::new(
            local,
            n,
            f,
            value.clone(),
            DeltaMode::MinDelta(rbvc_linalg::Norm::L2),
            rounds,
            rbvc_linalg::Tol::default(),
        ));
        self.insert_client_slot(instance, proto);
        if self.wal.is_some() {
            self.wal_append(&WalRecord::Registered {
                instance,
                spec: encode_client_spec(session, reqno, f, rounds, &value),
            });
        }
        let launch = ClientLaunch {
            session,
            reqno,
            f: u32::try_from(f).unwrap_or(u32::MAX),
            rounds: u32::try_from(rounds).unwrap_or(u32::MAX),
            value,
        };
        let frames = self.launch_frames(instance, &launch);
        let routed = self.route(frames);
        self.client.pending.insert(instance, (session, reqno));
        self.client.admitted += 1;
        self.launch_inner(instance, true)?;
        routed
    }

    /// Peer side of a `Launch` frame: authenticate it against the owner
    /// encoded in the instance id, stand the instance up with the client's
    /// value as the local input (all honest inputs identical, so the
    /// decision is the client's point up to agreement tolerance), and drain
    /// any frames that raced ahead of the launch.
    fn dispatch_launch(
        &mut self,
        instance: InstanceId,
        sender: ProcessId,
        launch: ClientLaunch,
    ) -> Vec<(ProcessId, Vec<u8>)> {
        let local = self.transport.local_id();
        let n = self.transport.n();
        let Some(owner) = client_instance_owner(instance) else {
            self.gate_reject(
                3,
                sender,
                ProtocolError::MalformedPayload {
                    from: sender,
                    reason: format!("launch for non-client instance {instance}"),
                },
            );
            return Vec::new();
        };
        if owner != sender || self.session_owner(launch.session) != sender {
            self.gate_reject(
                1,
                sender,
                ProtocolError::MalformedPayload {
                    from: sender,
                    reason: format!(
                        "launch of instance {instance} (owner {owner}, session {}) from non-owner {sender}",
                        launch.session
                    ),
                },
            );
            return Vec::new();
        }
        let f = launch.f as usize;
        if n <= 3 * f
            || launch.rounds == 0
            || launch.value.as_slice().iter().any(|x| !x.is_finite())
        {
            self.gate_reject(
                3,
                sender,
                ProtocolError::MalformedPayload {
                    from: sender,
                    reason: format!("degenerate launch parameters for instance {instance}"),
                },
            );
            return Vec::new();
        }
        if self.instances.contains_key(&instance) {
            // Duplicate launch (reconnect history replay): idempotent.
            return Vec::new();
        }
        let proto = InstanceProto::Va(VerifiedAveraging::new(
            local,
            n,
            f,
            launch.value,
            DeltaMode::MinDelta(rbvc_linalg::Norm::L2),
            launch.rounds as usize,
            rbvc_linalg::Tol::default(),
        ));
        self.insert_client_slot(instance, proto);
        self.started = true;
        let slot = self.instances.get_mut(&instance).expect("just inserted");
        slot.launched = true;
        slot.submitted_at = Some(Instant::now());
        self.obs.emit(|| Event::new(EventKind::Submit).instance(instance));
        let mut sends = {
            let slot = self.instances.get_mut(&instance).expect("just inserted");
            match &mut slot.proto {
                InstanceProto::Va(p) => Self::encode_va(instance, local, p.on_start()),
                InstanceProto::Bvc(_) => unreachable!("client instances are VA"),
            }
        };
        // Frames that beat the launch here replay through the normal
        // dispatch now that the instance exists.
        let stashed: Vec<Frame> = {
            let mut kept = VecDeque::new();
            let mut matched = Vec::new();
            while let Some(frame) = self.client.stash.pop_front() {
                if frame.instance == instance {
                    matched.push(frame);
                } else {
                    kept.push_back(frame);
                }
            }
            self.client.stash = kept;
            matched
        };
        for frame in stashed {
            sends.extend(self.dispatch(frame));
        }
        sends
    }

    /// Complete the client bookkeeping for this poll's decisions: cache the
    /// reply in the session row, make it WAL-durable *before* it can leave
    /// the process, hand it to the client port, and backfill freed
    /// in-flight slots from the admission queue.
    fn finish_client_decisions(&mut self, decisions: &[DecisionEvent]) {
        let mut appended = false;
        for d in decisions {
            let Some((session, reqno)) = self.client.pending.remove(&d.instance) else {
                continue;
            };
            let row = self.client.table.entry(session).or_default();
            row.last_reply = Some((reqno, d.value.clone()));
            if row.last_reqno.is_none_or(|last| reqno > last) {
                row.last_reqno = Some(reqno);
            }
            self.wal_append(&WalRecord::ClientReply {
                instance: d.instance,
                session,
                reqno,
                value: d.value.as_slice().to_vec(),
            });
            appended = self.wal.is_some();
            self.client.replies_out.push((session, reqno, d.value.clone()));
        }
        if appended {
            // Dedup must survive a crash that happens after the reply is
            // out: sync before the port can read `replies_out`.
            self.wal_sync();
        }
        while self.client.pending.len() < self.client.cfg.max_inflight {
            let Some((session, reqno, value)) = self.client.queue.pop_front() else {
                break;
            };
            let _ = self.admit_client_request(session, reqno, value);
        }
    }

    /// Rebuild a service from its write-ahead log after a crash.
    ///
    /// `factory` re-creates each instance from the opaque spec logged at
    /// [`ConsensusService::add_instance_durable`]. Replay walks the log in
    /// order: launches and authenticated inbound frames re-run through the
    /// deterministic state machines; every regenerated outbound frame is
    /// FIFO-matched against the logged `Sent` records (mismatches count as
    /// divergences — see [`ConsensusService::replay_divergences`]); logged
    /// decisions are pinned so the recovered node can never surface a
    /// different value. The node then rejoins by re-sending its full
    /// outbound history — peers deduplicate, and frames lost in the crash
    /// window are covered.
    ///
    /// # Errors
    /// Propagates the first `factory` failure (an unrecoverable spec means
    /// the log does not describe a service this binary can rebuild).
    pub fn recover(
        transport: T,
        wal: Wal,
        report: &ReplayReport,
        mut factory: impl FnMut(InstanceId, &[u8]) -> Result<InstanceProto, ProtocolError>,
    ) -> Result<Self, ProtocolError> {
        let t0 = Instant::now();
        let mut svc = Self::new(transport);
        svc.wal = Some(wal);
        let local = svc.transport.local_id();
        // Regenerated outbound history, FIFO-matched against logged Sent
        // records as they stream by.
        let mut regenerated: Vec<(ProcessId, Vec<u8>)> = Vec::new();
        let mut match_cursor = 0usize;
        for raw in &report.records {
            let Some(rec) = decode_record(raw) else {
                svc.replay_divergence += 1;
                continue;
            };
            match rec {
                WalRecord::Registered { instance, spec } => {
                    // Client instances log a self-describing spec: rebuild
                    // them (and the client table / pending set) internally;
                    // everything else goes through the caller's factory.
                    if let Some((session, reqno, f, rounds, value)) = decode_client_spec(&spec) {
                        if svc.instances.contains_key(&instance) {
                            svc.replay_divergence += 1;
                            continue;
                        }
                        let n = svc.transport.n();
                        let proto = InstanceProto::Va(VerifiedAveraging::new(
                            local,
                            n,
                            f,
                            value.clone(),
                            DeltaMode::MinDelta(rbvc_linalg::Norm::L2),
                            rounds,
                            rbvc_linalg::Tol::default(),
                        ));
                        svc.insert_client_slot(instance, proto);
                        svc.client.pending.insert(instance, (session, reqno));
                        let row = svc.client.table.entry(session).or_default();
                        if row.last_reqno.is_none_or(|last| reqno > last) {
                            row.last_reqno = Some(reqno);
                        }
                        svc.client.next_seq =
                            svc.client.next_seq.max((instance & 0xFF_FFFF) + 1);
                        if client_instance_owner(instance) == Some(local) {
                            // The owner fanned the Launch out right after
                            // registering; regenerate those sends so the
                            // FIFO `Sent` match stays aligned.
                            let launch = ClientLaunch {
                                session,
                                reqno,
                                f: u32::try_from(f).unwrap_or(u32::MAX),
                                rounds: u32::try_from(rounds).unwrap_or(u32::MAX),
                                value,
                            };
                            regenerated.extend(svc.launch_frames(instance, &launch));
                        }
                    } else {
                        let proto = factory(instance, &spec)?;
                        if svc.add_instance(instance, proto).is_err() {
                            svc.replay_divergence += 1;
                        }
                    }
                }
                WalRecord::Launched { instance } => {
                    svc.started = true;
                    let Some(slot) = svc.instances.get_mut(&instance) else {
                        svc.replay_divergence += 1;
                        continue;
                    };
                    slot.launched = true;
                    slot.submitted_at = Some(Instant::now());
                    let sends = match &mut slot.proto {
                        InstanceProto::Bvc(p) => Self::encode_bvc(instance, local, p.on_start()),
                        InstanceProto::Va(p) => Self::encode_va(instance, local, p.on_start()),
                    };
                    regenerated.extend(sends);
                }
                WalRecord::Inbound { from, bytes } => {
                    let from = from as ProcessId;
                    match decode_frame(&bytes, from) {
                        Ok(frame) if frame.sender == from => {
                            let sends = svc.dispatch(frame);
                            regenerated.extend(sends);
                        }
                        // Gate rejections re-occur deterministically and are
                        // re-counted through the normal gate counters.
                        Ok(frame) => {
                            svc.gate_reject(
                                1,
                                from,
                                ProtocolError::MalformedPayload {
                                    from,
                                    reason: format!(
                                        "replayed spoofed sender {} on link {from}",
                                        frame.sender
                                    ),
                                },
                            );
                        }
                        Err(e) => svc.gate_reject(0, from, e),
                    }
                }
                WalRecord::Sent { dst, bytes } => {
                    let dst = dst as ProcessId;
                    if match_cursor < regenerated.len() && regenerated[match_cursor] == (dst, bytes)
                    {
                        match_cursor += 1;
                    } else {
                        svc.replay_divergence += 1;
                    }
                }
                WalRecord::WitnessCommit { instance, count } => {
                    svc.witness_logged.insert(instance, count);
                }
                WalRecord::Decided { instance, value } => {
                    let value = VecD::from_slice(&value);
                    let Some(slot) = svc.instances.get_mut(&instance) else {
                        svc.replay_divergence += 1;
                        continue;
                    };
                    if !slot.decided {
                        slot.decided = true;
                        svc.undecided -= 1;
                    }
                    slot.pinned = Some(value.clone());
                    svc.recovered.push(DecisionEvent {
                        instance,
                        process: local,
                        value,
                        latency: Duration::ZERO,
                    });
                }
                WalRecord::ClientReply { instance, session, reqno, value } => {
                    // A reply that was surfaced (or about to be) before the
                    // crash: rebuild the dedup cache so a retry of the same
                    // (session, reqno) gets the identical pre-crash bytes.
                    svc.client.pending.remove(&instance);
                    let row = svc.client.table.entry(session).or_default();
                    row.last_reply = Some((reqno, VecD::from_slice(&value)));
                    if row.last_reqno.is_none_or(|last| reqno > last) {
                        row.last_reqno = Some(reqno);
                    }
                }
                WalRecord::Compacted { .. } => {}
            }
        }
        // Client instances that decided before the crash but whose reply
        // record didn't make it: the pinned decision is durable, so cache
        // and log the reply now — the retry path answers from here.
        let unfinished: Vec<(InstanceId, (u64, u64))> = svc
            .client
            .pending
            .iter()
            .map(|(id, sr)| (*id, *sr))
            .collect();
        for (instance, (session, reqno)) in unfinished {
            let Some(slot) = svc.instances.get(&instance) else { continue };
            if !slot.decided {
                continue;
            }
            let Some(value) = svc.decision(instance) else { continue };
            svc.client.pending.remove(&instance);
            let row = svc.client.table.entry(session).or_default();
            row.last_reply = Some((reqno, value.clone()));
            svc.wal_append(&WalRecord::ClientReply {
                instance,
                session,
                reqno,
                value: value.as_slice().to_vec(),
            });
            svc.wal_sync();
        }
        Registry::global().gauge("client.sessions").set(svc.client.table.len() as i64);
        // A replayed state machine that now disagrees with its own pinned
        // decision is the amnesia signature — the pin wins, but flag it.
        for slot in svc.instances.values() {
            if let (Some(pinned), Some(out)) = (
                &slot.pinned,
                match &slot.proto {
                    InstanceProto::Bvc(p) => p.output(),
                    InstanceProto::Va(p) => p.output(),
                },
            ) {
                if *pinned != out {
                    svc.replay_divergence += 1;
                }
            }
        }
        svc.history = regenerated.clone();
        // Rejoin: put the full regenerated history back on the wire so any
        // frame lost in the crash window reaches its peer (receivers dedup).
        for (dst, bytes) in regenerated {
            let _ = svc.transport.send(dst, bytes);
        }
        let _ = svc.transport.flush();
        let recover_us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        Registry::global().histogram("service.recover_us").record(recover_us);
        Registry::global()
            .counter("service.replay.divergences")
            .add(svc.replay_divergence);
        let (records, torn) = (report.records.len(), report.torn_bytes);
        svc.obs.emit(|| {
            Event::new(EventKind::WalReplay)
                .detail(format!("records={records} torn_bytes={torn}"))
        });
        let (instances, decisions, divergences) =
            (svc.instances.len(), svc.recovered.len(), svc.replay_divergence);
        svc.obs.emit(|| {
            Event::new(EventKind::Recovered).detail(format!(
                "instances={instances} decisions={decisions} divergences={divergences} recover_us={recover_us}"
            ))
        });
        Ok(svc)
    }

    /// Decisions replayed out of the WAL: surfaced before the crash, pinned
    /// by recovery, and excluded from future [`ConsensusService::poll`]
    /// results (their latency is reported as zero).
    #[must_use]
    pub fn recovered_decisions(&self) -> &[DecisionEvent] {
        &self.recovered
    }

    /// Replay anomalies counted during [`ConsensusService::recover`]: zero
    /// means the log replayed to exactly the pre-crash state.
    #[must_use]
    pub fn replay_divergences(&self) -> u64 {
        self.replay_divergence
    }

    /// Service-level degradation events (decode failures, spoofed senders,
    /// unknown instances, kind mismatches).
    #[must_use]
    pub fn errors(&self) -> &ErrorLog {
        &self.errors
    }

    /// The transport endpoint (byte counters, transport error log).
    #[must_use]
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable transport access — the fault-injection surface (severing
    /// links, dropping writers) for the health campaign. Real callers
    /// never need this.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::in_proc_mesh;
    use rbvc_core::verified_avg::DeltaMode;
    use rbvc_core::DecisionRule;
    use rbvc_linalg::Tol;

    fn bvc_instance(id: ProcessId, n: usize, f: usize, input: &[f64]) -> InstanceProto {
        let d = input.len();
        InstanceProto::Bvc(Lockstep::new(
            SyncBvc::new(
                id,
                n,
                f,
                d,
                VecD::from_slice(input),
                DecisionRule::MinDeltaPoint(rbvc_linalg::Norm::L2),
                Tol::default(),
            ),
            n,
            f + 1,
        ))
    }

    fn va_instance(id: ProcessId, n: usize, input: &[f64]) -> InstanceProto {
        InstanceProto::Va(VerifiedAveraging::new(
            id,
            n,
            0,
            VecD::from_slice(input),
            DeltaMode::MinDelta(rbvc_linalg::Norm::L2),
            8,
            Tol::default(),
        ))
    }

    /// Two instances (one of each protocol) over a 4-endpoint in-process
    /// mesh, all driven from one thread by round-robin polling.
    #[test]
    fn multiplexes_bvc_and_va_over_one_mesh() {
        let n = 4;
        let inputs = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]];
        let mut services: Vec<ConsensusService<_>> = in_proc_mesh(n)
            .into_iter()
            .map(ConsensusService::new)
            .collect();
        for (i, svc) in services.iter_mut().enumerate() {
            svc.add_instance(10, bvc_instance(i, n, 1, &inputs[i])).unwrap();
            svc.add_instance(20, va_instance(i, n, &inputs[i])).unwrap();
            svc.start().unwrap();
        }
        let mut spins = 0;
        while services.iter().any(|s| !s.all_decided()) {
            for svc in &mut services {
                let _ = svc.poll(Duration::from_millis(1));
            }
            spins += 1;
            assert!(spins < 10_000, "service mesh failed to converge");
        }
        // Every process decided both instances identically across the mesh.
        for inst in [10u64, 20] {
            let v0 = services[0].decision(inst).expect("decided");
            for svc in &services[1..] {
                assert_eq!(svc.decision(inst), Some(v0.clone()), "instance {inst}");
            }
        }
        for svc in &services {
            assert!(svc.errors().is_empty());
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rbvc-svc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk tmp dir");
        dir
    }

    /// Opaque recovery spec for the VA test instances: the input vector as
    /// LE f64 bytes (the factory closes over everything else).
    fn va_spec(input: &[f64]) -> Vec<u8> {
        input.iter().flat_map(|x| x.to_le_bytes()).collect()
    }

    fn va_from_spec(id: ProcessId, n: usize, spec: &[u8]) -> InstanceProto {
        let input: Vec<f64> = spec
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        va_instance(id, n, &input)
    }

    /// Run one VA instance (id 7) over a fresh in-process mesh; node 0 logs
    /// to `wal` when given. Returns every node's decision.
    fn run_va_mesh(n: usize, inputs: &[Vec<f64>], wal: Option<rbvc_store::Wal>) -> Vec<VecD> {
        let mut services: Vec<ConsensusService<_>> = in_proc_mesh(n)
            .into_iter()
            .map(ConsensusService::new)
            .collect();
        let mut wal = wal;
        for (i, svc) in services.iter_mut().enumerate() {
            let proto = va_instance(i, n, &inputs[i]);
            if i == 0 && wal.is_some() {
                svc.attach_wal(wal.take().expect("checked"));
                svc.add_instance_durable(7, proto, va_spec(&inputs[i])).unwrap();
            } else {
                svc.add_instance(7, proto).unwrap();
            }
            svc.start().unwrap();
        }
        let mut spins = 0;
        while services.iter().any(|s| !s.all_decided()) {
            for svc in &mut services {
                let _ = svc.poll(Duration::from_millis(1));
            }
            spins += 1;
            assert!(spins < 10_000, "mesh failed to converge");
        }
        services.iter().map(|s| s.decision(7).expect("decided")).collect()
    }

    /// Durability is transparent (a logged run decides exactly what an
    /// unlogged one does), and recovery replays the log back to the same
    /// pinned decision with zero divergences.
    #[test]
    fn durable_run_recovers_to_identical_pinned_decisions() {
        let n = 3;
        let dir = tmp_dir("recover");
        let path = dir.join("node0.wal");
        let inputs: Vec<Vec<f64>> =
            vec![vec![0.0, 0.0], vec![3.0, 0.0], vec![0.0, 3.0]];

        let baseline = run_va_mesh(n, &inputs, None);
        let (wal, report) = rbvc_store::Wal::open(&path).unwrap();
        assert!(report.created);
        let durable = run_va_mesh(n, &inputs, Some(wal));
        assert_eq!(baseline, durable, "write-through must not perturb decisions");

        let (wal, report) = rbvc_store::Wal::open(&path).unwrap();
        assert!(!report.records.is_empty(), "the run must have logged");
        assert_eq!(report.torn_bytes, 0, "clean shutdown leaves no torn tail");
        let transport = in_proc_mesh(n).remove(0);
        let svc = ConsensusService::recover(transport, wal, &report, |_, spec| {
            Ok(va_from_spec(0, n, spec))
        })
        .expect("recover");
        assert_eq!(svc.replay_divergences(), 0);
        assert_eq!(svc.recovered_decisions().len(), 1);
        assert_eq!(svc.recovered_decisions()[0].instance, 7);
        assert_eq!(svc.decision(7), Some(durable[0].clone()), "pinned decision");
        assert!(svc.all_decided());
    }

    /// ISSUE 5 satellite (negative test): a node restarted *without* its WAL
    /// is amnesiac — it re-runs from a fresh state and can surface a second,
    /// different decision for an instance it already decided. The
    /// [`rbvc_sim::monitor::ServiceMonitor`] must flag that as a
    /// `DuplicateDecision` and emit a structured `Violation` event.
    #[test]
    fn amnesiac_restart_redecides_and_is_flagged() {
        use rbvc_obs::{Recorder, RingRecorder};
        use rbvc_sim::monitor::{
            epsilon_agreement, AlertKind, SafetyMonitor, ServiceMonitor,
        };
        use std::sync::Arc;

        let n = 3;
        let ring = Arc::new(RingRecorder::new(64));
        let obs = Obs::new(Arc::clone(&ring) as Arc<dyn Recorder>);
        let mut monitor: ServiceMonitor<Vec<f64>> =
            ServiceMonitor::new(move |_| {
                SafetyMonitor::agreement_only(n, epsilon_agreement(1e-9))
            })
            .with_obs(obs);

        let inputs: Vec<Vec<f64>> = vec![vec![0.0, 0.0], vec![4.0, 0.0], vec![0.0, 4.0]];
        let first = run_va_mesh(n, &inputs, None);
        for (p, d) in first.iter().enumerate() {
            monitor.observe(7, p, &d.as_slice().to_vec());
        }
        assert!(monitor.clean(), "the first run is violation-free");

        // "Restart" node 0 with no log: its pre-crash input and protocol
        // state are gone, so it rejoins with whatever it has now and the
        // mesh converges somewhere else.
        let amnesiac_inputs: Vec<Vec<f64>> =
            vec![vec![9.0, 9.0], vec![4.0, 0.0], vec![0.0, 4.0]];
        let second = run_va_mesh(n, &amnesiac_inputs, None);
        assert_ne!(first[0], second[0], "the amnesiac run must diverge");
        monitor.observe(7, 0, &second[0].as_slice().to_vec());

        assert!(!monitor.clean(), "re-deciding differently must be flagged");
        assert!(
            monitor
                .alerts()
                .iter()
                .any(|(inst, a)| *inst == 7
                    && matches!(a.kind, AlertKind::DuplicateDecision { process: 0 })),
            "expected a DuplicateDecision for process 0: {:?}",
            monitor.alerts()
        );
        assert!(
            ring.snapshot().iter().any(|e| e.kind == EventKind::Violation),
            "a structured Violation event must have been emitted"
        );
    }

    #[test]
    fn duplicate_instance_ids_and_late_registration_are_rejected() {
        let mut svc = ConsensusService::new(in_proc_mesh(1).pop().unwrap());
        svc.add_instance(1, va_instance(0, 1, &[0.0])).unwrap();
        assert!(matches!(
            svc.add_instance(1, va_instance(0, 1, &[0.0])),
            Err(ProtocolError::InvalidSpec { .. })
        ));
        svc.start().unwrap();
        assert!(matches!(
            svc.add_instance(2, va_instance(0, 1, &[0.0])),
            Err(ProtocolError::InvalidSpec { .. })
        ));
    }

    /// Drive an in-proc mesh of client-enabled services until the owner has
    /// `want` replies ready (or the spin budget runs out). Returns the
    /// replies taken from the owner.
    fn pump_mesh_for_replies(
        services: &mut [ConsensusService<crate::transport::InProcEndpoint>],
        owner: usize,
        want: usize,
    ) -> Vec<(u64, u64, VecD)> {
        let mut replies = Vec::new();
        for _ in 0..10_000 {
            for svc in services.iter_mut() {
                let _ = svc.poll(Duration::from_millis(1));
            }
            replies.extend(services[owner].take_client_replies());
            if replies.len() >= want {
                return replies;
            }
        }
        panic!("mesh produced {} of {want} client replies", replies.len());
    }

    /// The full client admission contract on one mesh: redirect for a
    /// foreign session, admit/queue/shed under the configured bounds, stale
    /// drop for an in-flight retry, and a cached bit-identical reply (plus
    /// exactly one instance mesh-wide) for a retry after the decision.
    #[test]
    fn client_table_admits_dedups_redirects_and_sheds() {
        let n = 3;
        let mut services: Vec<ConsensusService<_>> = in_proc_mesh(n)
            .into_iter()
            .map(ConsensusService::new)
            .collect();
        for svc in &mut services {
            svc.enable_client(ClientConfig { max_inflight: 1, queue_cap: 1, ..ClientConfig::default() });
            svc.start_deferred();
        }
        // Session 7 is owned by node 1; node 0 redirects.
        let v = VecD::from_slice(&[2.0, -1.0]);
        assert_eq!(
            services[0].client_submit(7, 1, v.clone()),
            ClientAdmission::Redirect(1)
        );
        assert_eq!(services[0].client_stats().redirects, 1);
        // Owner: first admit, second queues, third sheds (bounds 1+1), and
        // a retry of an in-flight reqno is stale-dropped.
        assert_eq!(services[1].client_submit(7, 1, v.clone()), ClientAdmission::Admitted);
        assert_eq!(services[1].client_submit(7, 1, v.clone()), ClientAdmission::Stale);
        assert_eq!(services[1].client_submit(7, 2, v.clone()), ClientAdmission::Queued);
        assert_eq!(services[1].client_submit(7, 3, v.clone()), ClientAdmission::Busy);
        assert_eq!(services[1].client_stats().shed, 1);
        // Degenerate values never reach the table.
        assert_eq!(
            services[1].client_submit(7, 4, VecD::from_slice(&[f64::NAN])),
            ClientAdmission::Rejected
        );

        let replies = pump_mesh_for_replies(&mut services, 1, 2);
        assert_eq!(replies.len(), 2, "admitted + queued must both decide");
        assert!(replies.iter().any(|(s, r, _)| (*s, *r) == (7, 1)));
        assert!(replies.iter().any(|(s, r, _)| (*s, *r) == (7, 2)));
        // All honest inputs are the client's value, so the decision is it.
        for (_, _, d) in &replies {
            for (a, b) in d.as_slice().iter().zip(v.as_slice()) {
                assert!((a - b).abs() < 1e-6, "decision {d:?} vs submitted {v:?}");
            }
        }
        // A retry of the answered reqno 2 is a dedup hit with the identical
        // cached decision and no new instance.
        let before = services[1].instance_count();
        let reply2 = replies.iter().find(|(_, r, _)| *r == 2).expect("reqno 2").2.clone();
        match services[1].client_submit(7, 2, v.clone()) {
            ClientAdmission::Reply { reqno, decision } => {
                assert_eq!(reqno, 2);
                assert_eq!(decision.as_slice(), reply2.as_slice(), "bit-identical cache");
            }
            other => panic!("expected cached reply, got {other:?}"),
        }
        assert_eq!(services[1].client_stats().dedup_hits, 1);
        assert_eq!(services[1].instance_count(), before);
        // Every node ran exactly the two client instances.
        for svc in &services {
            assert_eq!(svc.instance_count(), 2);
            assert!(svc.errors().is_empty(), "{:?}", svc.errors().errors());
        }
    }

    /// Acceptance: a killed-and-restarted owner answers a duplicate
    /// `(session, reqno)` retry with the cached pre-crash reply — the
    /// client table's dedup is WAL-durable.
    #[test]
    fn restarted_owner_answers_retry_from_the_wal() {
        let n = 3;
        let dir = tmp_dir("client-restart");
        let path = dir.join("owner.wal");
        let session = 6; // owned by node 0
        let v = VecD::from_slice(&[4.0, 1.0, -3.0]);

        let pre_crash = {
            let mut services: Vec<ConsensusService<_>> = in_proc_mesh(n)
                .into_iter()
                .map(ConsensusService::new)
                .collect();
            let (wal, report) = rbvc_store::Wal::open(&path).unwrap();
            assert!(report.created);
            services[0].attach_wal(wal);
            for svc in &mut services {
                svc.enable_client(ClientConfig::default());
                svc.start_deferred();
            }
            assert_eq!(services[0].client_submit(session, 1, v.clone()), ClientAdmission::Admitted);
            let replies = pump_mesh_for_replies(&mut services, 0, 1);
            replies[0].2.clone()
        }; // services dropped here: the "kill"

        let (wal, report) = rbvc_store::Wal::open(&path).unwrap();
        assert!(!report.records.is_empty());
        let transport = in_proc_mesh(n).remove(0);
        let mut svc = ConsensusService::recover(transport, wal, &report, |id, _| {
            Err(ProtocolError::InvalidSpec {
                reason: format!("no static instances were registered, got {id}"),
            })
        })
        .expect("recover");
        assert_eq!(svc.replay_divergences(), 0);
        svc.enable_client(ClientConfig::default());
        // The duplicate retry is answered from the recovered cache,
        // bit-identical to the pre-crash reply, with no new instance.
        let before = svc.instance_count();
        match svc.client_submit(session, 1, v) {
            ClientAdmission::Reply { reqno, decision } => {
                assert_eq!(reqno, 1);
                assert_eq!(decision.as_slice(), pre_crash.as_slice());
            }
            other => panic!("expected the cached pre-crash reply, got {other:?}"),
        }
        assert_eq!(svc.instance_count(), before);
        assert_eq!(svc.client_stats().dedup_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byzantine_frames_are_rejected_at_every_gate() {
        let n = 2;
        let mut mesh = in_proc_mesh(n);
        let ep1 = mesh.pop().unwrap();
        let mut raw = mesh.pop().unwrap(); // endpoint 0, used raw
        let mut svc = ConsensusService::new(ep1);
        svc.add_instance(5, va_instance(1, n, &[0.0])).unwrap();
        svc.start().unwrap();

        use crate::transport::Transport as _;
        // Gate 1: undecodable bytes.
        raw.send(1, vec![0xde, 0xad]).unwrap();
        // Gate 2: spoofed sender (claims process 1 on the link from 0).
        let spoof = Frame {
            instance: 5,
            sender: 1,
            round: 0,
            payload: Payload::Va((
                (0, 0),
                rbvc_sim::bracha::BrachaMsg::Init(rbvc_core::verified_avg::RoundState {
                    value: VecD::from_slice(&[1.0]),
                    witness: vec![],
                }),
            )),
        };
        raw.send(1, encode_frame(&spoof)).unwrap();
        // Gate 3: unknown instance id.
        let unknown = Frame { instance: 99, ..spoof.clone() };
        raw.send(1, encode_frame(&Frame { sender: 0, ..unknown })).unwrap();
        // Gate 4: payload kind mismatch (EIG frame for a VA instance).
        let mismatch = Frame {
            instance: 5,
            sender: 0,
            round: 0,
            payload: Payload::Eig(vec![]),
        };
        raw.send(1, encode_frame(&mismatch)).unwrap();
        raw.flush().unwrap();

        for _ in 0..20 {
            let _ = svc.poll(Duration::from_millis(5));
            if svc.errors().total() >= 4 {
                break;
            }
        }
        assert_eq!(svc.errors().total(), 4, "all four gates must fire: {:?}", svc.errors().errors());
        assert_eq!(svc.gate_rejections(), [1, 1, 1, 1]);
        // Every rejection is attributed to the node that caused it: all
        // four frames arrived on the link from process 0.
        assert_eq!(svc.gate_rejections_by_sender()[0], [1, 1, 1, 1]);
        assert_eq!(svc.gate_rejections_by_sender()[1], [0, 0, 0, 0]);
    }

    /// A mute node stalls its peers' round-0 barrier: the health subsystem
    /// must detect the stall before long, blame exactly the mute sender,
    /// clear the stall when the sender wakes up, and publish a `/status`
    /// snapshot that names the blocked round while it lasts.
    #[test]
    fn live_stall_is_detected_blamed_cleared_and_visible_on_status() {
        let n = 3;
        let board = StatusBoard::new();
        let mut services: Vec<ConsensusService<_>> = in_proc_mesh(n)
            .into_iter()
            .map(ConsensusService::new)
            .collect();
        for (i, svc) in services.iter_mut().enumerate() {
            svc.add_instance(7, bvc_instance(i, n, 0, &[i as f64])).unwrap();
            svc.enable_health(HealthConfig {
                stall: StallConfig { deadline_us: 15_000, dump_deadline_us: 10_000_000 },
                status: Some(board.clone()),
                ..HealthConfig::default()
            });
        }
        // Nodes 0 and 1 start and poll; node 2 stays mute (registered but
        // never started), so their barrier waits on sender 2 forever.
        services[0].start().unwrap();
        services[1].start().unwrap();
        for _ in 0..40 {
            for svc in &mut services[..2] {
                let _ = svc.poll(Duration::from_millis(1));
            }
            if services[0].stalls_raised() > 0 && services[1].stalls_raised() > 0 {
                break;
            }
        }
        for svc in &services[..2] {
            let active = svc.active_stalls();
            assert_eq!(active.len(), 1, "one stalled instance expected");
            assert_eq!(active[0].instance, 7);
            assert_eq!(active[0].waiting_on, vec![2], "blame must name the mute sender");
        }
        let status = board.render();
        assert!(status.contains("\"waiting_on\":[2]"), "status must show the blame: {status}");
        // Wake the mute node: the barrier fills, everyone decides, and the
        // stall clears without lingering as active.
        services[2].start().unwrap();
        let mut spins = 0;
        while services.iter().any(|s| !s.all_decided()) {
            for svc in &mut services {
                let _ = svc.poll(Duration::from_millis(1));
            }
            spins += 1;
            assert!(spins < 3000, "mesh failed to decide after the stall cleared");
        }
        for svc in &services[..2] {
            assert!(svc.active_stalls().is_empty(), "stall must clear once decided");
            let reports = svc.health_reports();
            assert!(reports.iter().any(|r| r.cleared_at_us.is_some()));
        }
    }

    /// A clean fully-polled mesh must never raise a stall (zero false
    /// positives at the default deadlines).
    #[test]
    fn clean_run_raises_no_stalls() {
        let n = 4;
        let mut services: Vec<ConsensusService<_>> = in_proc_mesh(n)
            .into_iter()
            .map(ConsensusService::new)
            .collect();
        for (i, svc) in services.iter_mut().enumerate() {
            svc.add_instance(3, bvc_instance(i, n, 1, &[i as f64, 1.0])).unwrap();
            svc.enable_health(HealthConfig::default());
            svc.start().unwrap();
        }
        let mut spins = 0;
        while services.iter().any(|s| !s.all_decided()) {
            for svc in &mut services {
                let _ = svc.poll(Duration::from_millis(1));
            }
            spins += 1;
            assert!(spins < 3000, "clean mesh failed to decide");
        }
        for svc in &services {
            assert_eq!(svc.stalls_raised(), 0, "clean run must not raise stalls");
        }
    }
}
