//! Property tests for the trace wire format (ISSUE 6 satellite):
//! `Event::to_json_line` → `Event::from_value` must be lossless for every
//! `EventKind` and every combination of optional tags — including the
//! frame-identity span fields (`peer`, `seq`, `dur_us`) — and merged
//! histogram quantiles must stay within the documented one-bucket bound
//! of the exact combined-sample quantiles.

use proptest::prelude::*;
use rbvc_obs::{Event, EventKind, HistSnapshot, Histogram};

/// Build an event from sampled raw numbers: `kind_ix` indexes
/// `EventKind::ALL`, `flags` bits gate the optional tags, so all 2^7 tag
/// shapes x 16 kinds are exercised across cases.
fn build_event(
    kind_ix: usize,
    flags: u32,
    time_us: u64,
    ids: (u64, u64, u64, u64),
    detail_ix: usize,
) -> Event {
    const DETAILS: [&str; 4] = [
        "gate=auth from=5",
        "kind=eig bytes=244",
        "rx=3 tx=12 fsync_us=184 kernel_us=902",
        "latency_us=851950",
    ];
    let (a, b, c, d) = ids;
    let mut ev = Event::new(EventKind::ALL[kind_ix % EventKind::ALL.len()]);
    ev.time_us = time_us;
    if flags & 1 != 0 {
        ev = ev.node(a as u32);
    }
    if flags & 2 != 0 {
        ev = ev.instance(b);
    }
    if flags & 4 != 0 {
        ev = ev.round(c as u32);
    }
    if flags & 8 != 0 {
        ev = ev.peer(d as u32);
    }
    if flags & 16 != 0 {
        ev = ev.seq(b.wrapping_mul(31).wrapping_add(c));
    }
    if flags & 32 != 0 {
        ev = ev.dur(time_us / 2);
    }
    if flags & 64 != 0 {
        ev = ev.detail(DETAILS[detail_ix % DETAILS.len()]);
    }
    ev
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn event_jsonl_round_trip_is_lossless(
        kind_ix in 0usize..64,
        flags in 0u32..128,
        time_us in 0u64..u64::MAX,
        ids in (0u64..5_000, 0u64..1 << 48, 0u64..1 << 20, 0u64..5_000),
        detail_ix in 0usize..16,
    ) {
        let ev = build_event(kind_ix, flags, time_us, ids, detail_ix);
        let line = ev.to_json_line();
        let value = serde_json::from_str(&line)
            .map_err(|e| format!("render must parse: {e} in {line}"))?;
        let back = Event::from_value(&value);
        prop_assert_eq!(back, Some(ev));
    }

    #[test]
    fn every_kind_survives_a_fully_tagged_round_trip(
        seed in 0u64..1 << 40,
    ) {
        // Deterministically sweep ALL kinds each case so the full matrix
        // is covered regardless of which indices the sampler happens on.
        for (i, kind) in EventKind::ALL.into_iter().enumerate() {
            let mut ev = Event::new(kind)
                .node((seed % 97) as u32 + i as u32)
                .instance(seed ^ i as u64)
                .round((seed % 31) as u32)
                .peer((seed % 11) as u32)
                .seq(seed.rotate_left(i as u32))
                .dur(seed % 1_000_000)
                .detail("kind=va bytes=9");
            ev.time_us = seed.wrapping_mul(2654435761).wrapping_add(i as u64);
            let value = serde_json::from_str(&ev.to_json_line())
                .map_err(|e| format!("render must parse: {e}"))?;
            prop_assert_eq!(Event::from_value(&value), Some(ev));
        }
    }

    #[test]
    fn merged_histogram_quantiles_track_the_exact_combined_samples(
        xs in prop::collection::vec(0u64..2_000_000, 160),
        ys in prop::collection::vec(0u64..40_000, 90),
        p_ix in 0usize..5,
    ) {
        let record = |vals: &[u64]| {
            let h = Histogram::default();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let mut merged = record(&xs);
        merged.merge(&record(&ys));

        let mut all: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(merged.count, all.len() as u64);
        prop_assert_eq!(merged.sum, all.iter().sum::<u64>());
        prop_assert_eq!(merged.min, all[0]);
        prop_assert_eq!(merged.max, *all.last().unwrap());

        let p = [50.0, 75.0, 90.0, 99.0, 100.0][p_ix % 5];
        let rank = ((p / 100.0) * all.len() as f64).ceil().max(1.0) as usize;
        let truth = all[rank.min(all.len()) - 1] as f64;
        let est = merged.percentile(p);
        // Documented accuracy: exact at the extremes, otherwise within one
        // log2 bucket (a factor of two) of the true nearest-rank sample.
        prop_assert!(
            est <= 2.0 * truth.max(1.0) && est >= (truth / 2.0 - 1.0),
            "p{}: estimate {} strayed beyond one bucket of {}", p, est, truth
        );
        prop_assert_eq!(merged.percentile(100.0), merged.max as f64);
    }

    #[test]
    fn merge_and_serialization_commute(
        xs in prop::collection::vec(0u64..1 << 30, 64),
        split in 1usize..63,
    ) {
        let record = |vals: &[u64]| {
            let h = Histogram::default();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        // merge(serde(a), serde(b)) == serde(merge(a, b))
        let (lo, hi) = xs.split_at(split);
        let (a, b) = (record(lo), record(hi));
        let reload = |s: &HistSnapshot| -> Result<HistSnapshot, String> {
            let v = serde_json::from_str(&s.to_json_line("h"))
                .map_err(|e| format!("parse: {e}"))?;
            HistSnapshot::from_value(&v)
                .map(|(_, h)| h)
                .ok_or_else(|| "not a hist line".to_string())
        };
        let mut via_serde = reload(&a)?;
        via_serde.merge(&reload(&b)?);
        let mut direct = a.clone();
        direct.merge(&b);
        prop_assert_eq!(via_serde, reload(&direct)?);
    }
}
