//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex`/`RwLock` with parking_lot's *interface* (no poisoning:
//! `lock()` returns the guard directly) backed by the std primitives. If a
//! thread panics while holding the lock, the poison flag is swallowed and
//! the data is returned as-is — exactly parking_lot's observable behavior.

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Poison-free mutex with the parking_lot API shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

/// Poison-free reader-writer lock with the parking_lot API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
