//! Binary wire codec for service frames.
//!
//! One [`Frame`] carries one protocol message of one consensus instance:
//!
//! ```text
//! magic "RB" | version u8 | kind u8 | instance u64 | sender u32 | round u32 | payload …
//! ```
//!
//! all integers little-endian, `f64` components as IEEE-754 bit patterns
//! (bit-exact round-trip, NaN included — *structural* validity is decided
//! here, *semantic* validity — finiteness, dimension agreement — stays with
//! the protocol receive boundaries that already enforce it).
//!
//! ## The frame boundary is a trust boundary
//!
//! Bytes arriving from a socket are Byzantine until proven otherwise.
//! [`decode_frame`] therefore follows the degrade-don't-panic contract of
//! `rbvc_sim::error`:
//!
//! * every read is bounds-checked — truncated frames are rejected, never
//!   indexed past;
//! * every length field is validated against both a hard cap and the bytes
//!   actually remaining *before* any allocation, so a forged count cannot
//!   allocate gigabytes or loop for long;
//! * trailing bytes after a well-formed payload are rejected (a frame is
//!   exactly one message);
//! * any violation returns [`ProtocolError::MalformedPayload`] naming the
//!   link peer the bytes came from. No input byte sequence panics.

use rbvc_core::verified_avg::{RoundState, VaMsg};
use rbvc_linalg::VecD;
use rbvc_sim::bracha::BrachaMsg;
use rbvc_sim::config::ProcessId;
use rbvc_sim::eig::{EigMsg, ParallelEigMsg};
use rbvc_sim::error::ProtocolError;

/// Frame magic: the two bytes every frame starts with.
pub const MAGIC: [u8; 2] = *b"RB";
/// Wire format version this codec speaks.
pub const VERSION: u8 = 1;

/// Hard cap on a vector dimension.
pub const MAX_DIM: usize = 1 << 12;
/// Hard cap on an EIG label length (labels hold ≤ f+1 distinct ids).
pub const MAX_LABEL: usize = 64;
/// Hard cap on relay items in one EIG instance message.
pub const MAX_EIG_ITEMS: usize = 1 << 16;
/// Hard cap on EIG instances (senders) in one parallel batch.
pub const MAX_EIG_INSTANCES: usize = 1 << 12;
/// Hard cap on protocol messages inside one lockstep round batch.
pub const MAX_BATCH_MSGS: usize = 1 << 12;
/// Hard cap on witness entries in a Verified-Averaging round state.
pub const MAX_WITNESS: usize = 1 << 12;
/// Hard cap on any process id on the wire (far above any real `n`).
pub const MAX_PID: usize = 1 << 20;
/// Hard cap on a round number on the wire.
pub const MAX_ROUND: u32 = 1 << 20;

/// Typed payload of one frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// One lockstep round batch of a [`rbvc_core::SyncBvc`] instance: the
    /// parallel-EIG messages this sender addressed to the recipient in the
    /// round named by the frame header.
    Eig(Vec<ParallelEigMsg<VecD>>),
    /// One Bracha message of a [`rbvc_core::VerifiedAveraging`] instance
    /// (the frame-header round mirrors the broadcast tag's round).
    Va(VaMsg),
    /// A client-request launch: the session owner tells every peer to stand
    /// up the consensus instance named in the frame header for an external
    /// client's `(session, reqno)` request, with the client's vector as
    /// every node's input (see `service::ClientConfig`). The frame-header
    /// round is always 0.
    Launch(ClientLaunch),
}

/// Body of a [`Payload::Launch`] frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientLaunch {
    /// Client session the request belongs to.
    pub session: u64,
    /// The session's monotonic request number.
    pub reqno: u64,
    /// Fault parameter the spawned Verified-Averaging instance runs with.
    pub f: u32,
    /// Averaging rounds the spawned instance runs.
    pub rounds: u32,
    /// The client's submitted vector — every node's input to the instance.
    pub value: VecD,
}

/// One decoded service frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Consensus instance this message belongs to.
    pub instance: u64,
    /// Claimed protocol-level sender (the service cross-checks it against
    /// the transport-level link peer).
    pub sender: ProcessId,
    /// Protocol round (lockstep round for [`Payload::Eig`], broadcast-tag
    /// round for [`Payload::Va`]).
    pub round: u32,
    /// The protocol message.
    pub payload: Payload,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    // Local data only ever holds counts far below u32::MAX; a violation is
    // a harness bug, not remote input, so a panic is in-contract.
    put_u32(out, u32::try_from(v).expect("count exceeds wire format range"));
}

fn put_vecd(out: &mut Vec<u8>, v: &VecD) {
    put_usize(out, v.dim());
    for &x in v.as_slice() {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

fn put_eig_msg(out: &mut Vec<u8>, msg: &EigMsg<VecD>) {
    put_usize(out, msg.len());
    for (label, value) in msg {
        put_usize(out, label.len());
        for &pid in label {
            put_usize(out, pid);
        }
        put_vecd(out, value);
    }
}

fn put_round_state(out: &mut Vec<u8>, state: &RoundState) {
    put_vecd(out, &state.value);
    put_usize(out, state.witness.len());
    for (pid, v) in &state.witness {
        put_usize(out, *pid);
        put_vecd(out, v);
    }
}

/// Encode a frame into its wire bytes (infallible: local data is trusted).
#[must_use]
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(match frame.payload {
        Payload::Eig(_) => 1,
        Payload::Va(_) => 2,
        Payload::Launch(_) => 3,
    });
    out.extend_from_slice(&frame.instance.to_le_bytes());
    put_usize(&mut out, frame.sender);
    put_u32(&mut out, frame.round);
    match &frame.payload {
        Payload::Eig(batch) => {
            put_usize(&mut out, batch.len());
            for parallel in batch {
                put_usize(&mut out, parallel.len());
                for (origin, msg) in parallel {
                    put_usize(&mut out, *origin);
                    put_eig_msg(&mut out, msg);
                }
            }
        }
        Payload::Va((tag, bmsg)) => {
            put_usize(&mut out, tag.0);
            put_usize(&mut out, tag.1);
            let (kind, state) = match bmsg {
                BrachaMsg::Init(s) => (0u8, s),
                BrachaMsg::Echo(s) => (1, s),
                BrachaMsg::Ready(s) => (2, s),
            };
            out.push(kind);
            put_round_state(&mut out, state);
        }
        Payload::Launch(cl) => {
            out.extend_from_slice(&cl.session.to_le_bytes());
            out.extend_from_slice(&cl.reqno.to_le_bytes());
            put_u32(&mut out, cl.f);
            put_u32(&mut out, cl.rounds);
            put_vecd(&mut out, &cl.value);
        }
    }
    out
}

/// Cheap header peek: `(instance, sender, round)` of an encoded frame
/// without decoding (or validating) the payload. `None` if the bytes are
/// too short or fail the magic/version check. The recovery path uses this
/// to classify logged frames by instance without paying a full decode.
#[must_use]
pub fn peek_header(bytes: &[u8]) -> Option<(u64, u32, u32)> {
    if bytes.len() < 20 || bytes[..2] != MAGIC || bytes[2] != VERSION {
        return None;
    }
    let instance = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
    let sender = u32::from_le_bytes(bytes[12..16].try_into().ok()?);
    let round = u32::from_le_bytes(bytes[16..20].try_into().ok()?);
    Some((instance, sender, round))
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Checked reader over untrusted bytes. Every accessor returns `Err`
/// instead of reading past the end.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    from: ProcessId,
}

impl<'a> Reader<'a> {
    fn err(&self, reason: impl Into<String>) -> ProtocolError {
        ProtocolError::MalformedPayload {
            from: self.from,
            reason: reason.into(),
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < len {
            return Err(self.err(format!(
                "truncated frame: wanted {len} more bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length field and validate it against a hard `cap` *and*
    /// against the bytes remaining (each element occupies at least
    /// `min_elem` bytes) — the allocation-bomb guard.
    fn len_capped(
        &mut self,
        cap: usize,
        min_elem: usize,
        what: &str,
    ) -> Result<usize, ProtocolError> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(self.err(format!("oversized {what} length {len} (cap {cap})")));
        }
        if len.saturating_mul(min_elem) > self.remaining() {
            return Err(self.err(format!(
                "forged {what} length {len}: would need {} bytes, {} remain",
                len * min_elem,
                self.remaining()
            )));
        }
        Ok(len)
    }

    fn pid(&mut self) -> Result<ProcessId, ProtocolError> {
        let id = self.u32()? as usize;
        if id >= MAX_PID {
            return Err(self.err(format!("process id {id} beyond wire cap {MAX_PID}")));
        }
        Ok(id)
    }

    fn vecd(&mut self) -> Result<VecD, ProtocolError> {
        let dim = self.len_capped(MAX_DIM, 8, "vector")?;
        let mut xs = Vec::with_capacity(dim);
        for _ in 0..dim {
            xs.push(self.f64()?);
        }
        Ok(VecD::from_slice(&xs))
    }

    fn eig_msg(&mut self) -> Result<EigMsg<VecD>, ProtocolError> {
        let items = self.len_capped(MAX_EIG_ITEMS, 8, "EIG item list")?;
        let mut msg = Vec::with_capacity(items);
        for _ in 0..items {
            let llen = self.len_capped(MAX_LABEL, 4, "EIG label")?;
            let mut label = Vec::with_capacity(llen);
            for _ in 0..llen {
                label.push(self.pid()?);
            }
            msg.push((label, self.vecd()?));
        }
        Ok(msg)
    }

    fn round_state(&mut self) -> Result<RoundState, ProtocolError> {
        let value = self.vecd()?;
        let wlen = self.len_capped(MAX_WITNESS, 8, "witness set")?;
        let mut witness = Vec::with_capacity(wlen);
        for _ in 0..wlen {
            let pid = self.pid()?;
            witness.push((pid, self.vecd()?));
        }
        Ok(RoundState { value, witness })
    }
}

/// Decode one frame received from link peer `from`.
///
/// # Errors
/// [`ProtocolError::MalformedPayload`] on any structural violation; no byte
/// sequence panics.
pub fn decode_frame(bytes: &[u8], from: ProcessId) -> Result<Frame, ProtocolError> {
    let mut r = Reader { buf: bytes, pos: 0, from };
    if r.take(2)? != MAGIC {
        return Err(r.err("bad magic"));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(r.err(format!("unsupported wire version {version}")));
    }
    let kind = r.u8()?;
    let instance = r.u64()?;
    let sender = r.pid()?;
    let round = r.u32()?;
    if round > MAX_ROUND {
        return Err(r.err(format!("round {round} beyond wire cap {MAX_ROUND}")));
    }
    let payload = match kind {
        1 => {
            let batch_len = r.len_capped(MAX_BATCH_MSGS, 4, "round batch")?;
            let mut batch = Vec::with_capacity(batch_len);
            for _ in 0..batch_len {
                let instances = r.len_capped(MAX_EIG_INSTANCES, 8, "parallel EIG batch")?;
                let mut parallel: ParallelEigMsg<VecD> = Vec::with_capacity(instances);
                for _ in 0..instances {
                    let origin = r.pid()?;
                    parallel.push((origin, r.eig_msg()?));
                }
                batch.push(parallel);
            }
            Payload::Eig(batch)
        }
        2 => {
            let origin = r.pid()?;
            let tag_round = r.u32()?;
            if tag_round > MAX_ROUND {
                return Err(r.err(format!("broadcast-tag round {tag_round} beyond cap")));
            }
            let bkind = r.u8()?;
            let state = r.round_state()?;
            let bmsg = match bkind {
                0 => BrachaMsg::Init(state),
                1 => BrachaMsg::Echo(state),
                2 => BrachaMsg::Ready(state),
                k => return Err(r.err(format!("unknown Bracha message kind {k}"))),
            };
            Payload::Va(((origin, tag_round as usize), bmsg))
        }
        3 => {
            let session = r.u64()?;
            let reqno = r.u64()?;
            let f = r.u32()?;
            let rounds = r.u32()?;
            if f as usize >= MAX_PID {
                return Err(r.err(format!("launch fault parameter {f} beyond cap")));
            }
            if rounds == 0 || rounds > MAX_ROUND {
                return Err(r.err(format!("launch round count {rounds} outside 1..={MAX_ROUND}")));
            }
            let value = r.vecd()?;
            if value.dim() == 0 {
                return Err(r.err("launch with an empty client vector"));
            }
            Payload::Launch(ClientLaunch { session, reqno, f, rounds, value })
        }
        k => return Err(r.err(format!("unknown payload kind {k}"))),
    };
    if r.remaining() != 0 {
        return Err(r.err(format!(
            "{} trailing bytes after a complete frame",
            r.remaining()
        )));
    }
    Ok(Frame {
        instance,
        sender,
        round,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eig_frame() -> Frame {
        Frame {
            instance: 42,
            sender: 3,
            round: 1,
            payload: Payload::Eig(vec![
                vec![(0, vec![(vec![0, 1], VecD::from_slice(&[1.5, -2.5]))])],
                vec![(1, vec![])],
            ]),
        }
    }

    fn va_frame() -> Frame {
        Frame {
            instance: u64::MAX,
            sender: 0,
            round: 2,
            payload: Payload::Va((
                (5, 2),
                BrachaMsg::Echo(RoundState {
                    value: VecD::from_slice(&[0.25]),
                    witness: vec![(1, VecD::from_slice(&[1.0])), (2, VecD::from_slice(&[2.0]))],
                }),
            )),
        }
    }

    fn launch_frame() -> Frame {
        Frame {
            instance: (1u64 << 44) | (3 << 24) | 9,
            sender: 3,
            round: 0,
            payload: Payload::Launch(ClientLaunch {
                session: 17,
                reqno: 4,
                f: 2,
                rounds: 3,
                value: VecD::from_slice(&[0.5, -1.25]),
            }),
        }
    }

    #[test]
    fn launch_round_trips_and_rejects_degenerate_parameters() {
        let bytes = encode_frame(&launch_frame());
        assert_eq!(decode_frame(&bytes, 3).expect("decodes"), launch_frame());
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut], 3).is_err(), "truncation at {cut}");
        }
        // Zero rounds and an empty vector are structurally invalid: a launch
        // must describe a runnable instance.
        let mut zero_rounds = launch_frame();
        if let Payload::Launch(cl) = &mut zero_rounds.payload {
            cl.rounds = 0;
        }
        assert!(decode_frame(&encode_frame(&zero_rounds), 3).is_err());
        let mut empty = launch_frame();
        if let Payload::Launch(cl) = &mut empty.payload {
            cl.value = VecD::from_slice(&[]);
        }
        assert!(decode_frame(&encode_frame(&empty), 3).is_err());
    }

    #[test]
    fn round_trips_bit_exactly() {
        for frame in [eig_frame(), va_frame()] {
            let bytes = encode_frame(&frame);
            let back = decode_frame(&bytes, 9).expect("well-formed frame decodes");
            assert_eq!(back, frame);
        }
        // NaN payloads survive the codec bit-exactly (semantic rejection is
        // the protocol layer's job, structural integrity is ours).
        let frame = Frame {
            instance: 0,
            sender: 1,
            round: 0,
            payload: Payload::Va((
                (1, 0),
                BrachaMsg::Init(RoundState {
                    value: VecD::from_slice(&[f64::NAN]),
                    witness: vec![],
                }),
            )),
        };
        let bytes = encode_frame(&frame);
        let back = decode_frame(&bytes, 1).expect("NaN is structurally fine");
        match back.payload {
            Payload::Va((_, BrachaMsg::Init(s))) => assert!(s.value.as_slice()[0].is_nan()),
            other => panic!("wrong payload: {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_frame(&va_frame());
        for cut in 0..bytes.len() {
            let e = decode_frame(&bytes[..cut], 7).expect_err("truncation must fail");
            assert!(matches!(e, ProtocolError::MalformedPayload { from: 7, .. }));
        }
    }

    #[test]
    fn forged_length_cannot_allocate() {
        // A frame claiming a vector of u32::MAX components but carrying no
        // bytes must be rejected by the remaining-bytes guard.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(2); // Va
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // sender
        bytes.extend_from_slice(&0u32.to_le_bytes()); // round
        bytes.extend_from_slice(&0u32.to_le_bytes()); // origin
        bytes.extend_from_slice(&0u32.to_le_bytes()); // tag round
        bytes.push(0); // Init
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // forged dim
        let e = decode_frame(&bytes, 0).expect_err("forged length must fail");
        let msg = e.to_string();
        assert!(msg.contains("vector"), "unexpected error: {msg}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_frame(&eig_frame());
        bytes.push(0xFF);
        assert!(decode_frame(&bytes, 0).is_err());
    }

    #[test]
    fn peek_header_agrees_with_decode() {
        for frame in [eig_frame(), va_frame()] {
            let bytes = encode_frame(&frame);
            let (instance, sender, round) = peek_header(&bytes).expect("peekable");
            assert_eq!(instance, frame.instance);
            assert_eq!(sender as usize, frame.sender);
            assert_eq!(round, frame.round);
        }
        assert_eq!(peek_header(b"RB"), None);
        assert_eq!(peek_header(&[0u8; 32]), None);
    }
}
