//! Deterministic lockstep synchronous round engine.
//!
//! One round = every process (honest protocol or Byzantine adversary) emits
//! its messages given the previous round's inbox, then all messages are
//! delivered simultaneously. This is exactly the synchronous model in which
//! the paper's Theorems 3 and 5 are stated.
//!
//! Byzantine power: a [`SyncAdversary`] sees its own inbox (it is a full
//! network participant) and may send *arbitrary, per-recipient* messages —
//! equivocation is the default capability, not an extension.

use crate::config::{ProcessId, SystemConfig};
use crate::trace::ExecutionTrace;

/// An honest protocol run under the lockstep engine.
pub trait SyncProtocol {
    /// Message type on the wire.
    type Msg: Clone;
    /// Decision type.
    type Output: Clone;

    /// Messages to send at the *start* of `round` (0-based), as
    /// `(destination, message)` pairs. Self-addressed messages are allowed
    /// and delivered like any other.
    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, Self::Msg)>;

    /// Deliver the round's inbox (all messages addressed to this process),
    /// tagged with their senders. Called after every process has emitted.
    fn receive(&mut self, round: usize, inbox: &[(ProcessId, Self::Msg)]);

    /// The decision, once reached.
    fn output(&self) -> Option<Self::Output>;
}

/// A Byzantine participant: sends whatever it likes to whomever it likes.
pub trait SyncAdversary<M> {
    /// Messages to send at the start of `round`.
    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, M)>;
    /// Observe the inbox (Byzantine processes still receive messages).
    fn receive(&mut self, round: usize, inbox: &[(ProcessId, M)]);
}

/// A network node: honest or Byzantine.
pub enum SyncNode<P: SyncProtocol> {
    /// Runs the protocol faithfully.
    Honest(P),
    /// Runs an arbitrary strategy over the same message type.
    Byzantine(Box<dyn SyncAdversary<P::Msg>>),
}

impl<P: SyncProtocol> SyncNode<P> {
    fn emit(&mut self, round: usize) -> Vec<(ProcessId, P::Msg)> {
        match self {
            SyncNode::Honest(p) => p.round_messages(round),
            SyncNode::Byzantine(a) => a.round_messages(round),
        }
    }

    fn absorb(&mut self, round: usize, inbox: &[(ProcessId, P::Msg)]) {
        match self {
            SyncNode::Honest(p) => p.receive(round, inbox),
            SyncNode::Byzantine(a) => a.receive(round, inbox),
        }
    }
}

/// Outcome of a lockstep execution.
#[derive(Debug, Clone)]
pub struct SyncOutcome<O> {
    /// Decisions of honest processes, indexed by process id (`None` entries
    /// are Byzantine slots or undecided processes).
    pub decisions: Vec<Option<O>>,
    /// Rounds actually executed.
    pub rounds: usize,
    /// Message statistics.
    pub trace: ExecutionTrace,
}

/// The lockstep round engine.
pub struct RoundEngine<P: SyncProtocol> {
    config: SystemConfig,
    nodes: Vec<SyncNode<P>>,
}

impl<P: SyncProtocol> RoundEngine<P> {
    /// Build an engine. `nodes[i]` is process `i`; the Byzantine positions
    /// must match `config.faulty` (the ground truth the harness validates
    /// against).
    ///
    /// # Panics
    /// Panics if node count ≠ `n` or honest/Byzantine placement disagrees
    /// with the config's fault set.
    #[must_use]
    pub fn new(config: SystemConfig, nodes: Vec<SyncNode<P>>) -> Self {
        assert_eq!(nodes.len(), config.n, "one node per process required");
        for (i, node) in nodes.iter().enumerate() {
            let is_byz = matches!(node, SyncNode::Byzantine(_));
            assert_eq!(
                is_byz,
                config.is_faulty(i),
                "node {i} placement disagrees with fault set"
            );
        }
        RoundEngine { config, nodes }
    }

    /// Run until every honest process has decided or `max_rounds` elapse.
    pub fn run(&mut self, max_rounds: usize) -> SyncOutcome<P::Output> {
        let n = self.config.n;
        let mut trace = ExecutionTrace::default();
        let mut rounds = 0;
        for round in 0..max_rounds {
            rounds = round + 1;
            // Emission phase: everyone produces messages simultaneously.
            let mut inboxes: Vec<Vec<(ProcessId, P::Msg)>> = vec![Vec::new(); n];
            for (src, node) in self.nodes.iter_mut().enumerate() {
                for (dst, msg) in node.emit(round) {
                    assert!(dst < n, "message to nonexistent process {dst}");
                    trace.record_message();
                    inboxes[dst].push((src, msg));
                }
            }
            // Delivery phase: reliable synchronous channels deliver all.
            for (dst, inbox) in inboxes.into_iter().enumerate() {
                self.nodes[dst].absorb(round, &inbox);
            }
            trace.record_round();
            if self.all_honest_decided() {
                break;
            }
        }
        let decisions = self
            .nodes
            .iter()
            .map(|node| match node {
                SyncNode::Honest(p) => p.output(),
                SyncNode::Byzantine(_) => None,
            })
            .collect();
        SyncOutcome {
            decisions,
            rounds,
            trace,
        }
    }

    fn all_honest_decided(&self) -> bool {
        self.nodes.iter().all(|node| match node {
            SyncNode::Honest(p) => p.output().is_some(),
            SyncNode::Byzantine(_) => true,
        })
    }

    /// Access a node (for post-run inspection in tests).
    #[must_use]
    pub fn node(&self, id: ProcessId) -> &SyncNode<P> {
        &self.nodes[id]
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }
}

/// A Byzantine strategy that stays completely silent (crash-from-start).
pub struct SilentAdversary;

impl<M> SyncAdversary<M> for SilentAdversary {
    fn round_messages(&mut self, _round: usize) -> Vec<(ProcessId, M)> {
        Vec::new()
    }
    fn receive(&mut self, _round: usize, _inbox: &[(ProcessId, M)]) {}
}

/// A Byzantine strategy that follows a scripted per-round, per-recipient
/// message table — the general form of equivocation used by the paper's
/// impossibility constructions.
pub struct ScriptedAdversary<M> {
    /// `script[round]` = messages to send that round.
    pub script: Vec<Vec<(ProcessId, M)>>,
}

impl<M: Clone> SyncAdversary<M> for ScriptedAdversary<M> {
    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, M)> {
        self.script.get(round).cloned().unwrap_or_default()
    }
    fn receive(&mut self, _round: usize, _inbox: &[(ProcessId, M)]) {}
}

/// A Byzantine process that *follows the protocol correctly* — the paper's
/// impossibility proofs (Theorem 3, Theorem 5) restrict the faulty process
/// to exactly this behaviour, and the bound still holds.
pub struct ProtocolFollowingAdversary<P>(pub P);

impl<P: SyncProtocol> SyncAdversary<P::Msg> for ProtocolFollowingAdversary<P> {
    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, P::Msg)> {
        self.0.round_messages(round)
    }
    fn receive(&mut self, round: usize, inbox: &[(ProcessId, P::Msg)]) {
        self.0.receive(round, inbox);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy protocol: everyone broadcasts its input in round 0, then
    /// outputs the sum of everything received.
    struct SumProtocol {
        n: usize,
        input: i64,
        decided: Option<i64>,
    }

    impl SyncProtocol for SumProtocol {
        type Msg = i64;
        type Output = i64;

        fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, i64)> {
            if round == 0 {
                (0..self.n).map(|d| (d, self.input)).collect()
            } else {
                Vec::new()
            }
        }

        fn receive(&mut self, round: usize, inbox: &[(ProcessId, i64)]) {
            if round == 0 {
                self.decided = Some(inbox.iter().map(|(_, v)| v).sum());
            }
        }

        fn output(&self) -> Option<i64> {
            self.decided
        }
    }

    fn sum_node(_id: usize, n: usize, input: i64) -> SyncNode<SumProtocol> {
        SyncNode::Honest(SumProtocol {
            n,
            input,
            decided: None,
        })
    }

    #[test]
    fn all_honest_sum_agrees() {
        let n = 4;
        let config = SystemConfig::new(n, 0);
        let nodes = (0..n).map(|i| sum_node(i, n, i as i64 + 1)).collect();
        let mut engine = RoundEngine::new(config, nodes);
        let out = engine.run(5);
        assert_eq!(out.rounds, 1);
        for d in &out.decisions {
            assert_eq!(*d, Some(10));
        }
        assert_eq!(out.trace.messages_sent, 16);
    }

    #[test]
    fn silent_adversary_omits_its_share() {
        let n = 4;
        let config = SystemConfig::new(n, 1).with_faulty(vec![3]);
        let mut nodes: Vec<SyncNode<SumProtocol>> =
            (0..3).map(|i| sum_node(i, n, 1)).collect();
        nodes.push(SyncNode::Byzantine(Box::new(SilentAdversary)));
        let mut engine = RoundEngine::new(config, nodes);
        let out = engine.run(5);
        for (i, d) in out.decisions.iter().enumerate() {
            if i < 3 {
                assert_eq!(*d, Some(3), "process {i} saw only honest inputs");
            } else {
                assert!(d.is_none());
            }
        }
    }

    #[test]
    fn scripted_adversary_equivocates() {
        // Byzantine 3 sends +100 to process 0 and −100 to process 1.
        let n = 4;
        let config = SystemConfig::new(n, 1).with_faulty(vec![3]);
        let mut nodes: Vec<SyncNode<SumProtocol>> =
            (0..3).map(|i| sum_node(i, n, 0)).collect();
        nodes.push(SyncNode::Byzantine(Box::new(ScriptedAdversary {
            script: vec![vec![(0, 100), (1, -100), (2, 0)]],
        })));
        let mut engine = RoundEngine::new(config, nodes);
        let out = engine.run(5);
        assert_eq!(out.decisions[0], Some(100));
        assert_eq!(out.decisions[1], Some(-100));
        assert_eq!(out.decisions[2], Some(0));
    }

    #[test]
    fn protocol_following_adversary_is_indistinguishable() {
        // A Byzantine process that runs the protocol produces the same
        // global outcome as an honest one (the Theorem 3/5 proof device).
        let n = 4;
        let run = |byzantine: bool| -> Vec<Option<i64>> {
            let config = if byzantine {
                SystemConfig::new(n, 1).with_faulty(vec![3])
            } else {
                SystemConfig::new(n, 1)
            };
            let mut nodes: Vec<SyncNode<SumProtocol>> =
                (0..3).map(|i| sum_node(i, n, i as i64)).collect();
            if byzantine {
                nodes.push(SyncNode::Byzantine(Box::new(ProtocolFollowingAdversary(
                    SumProtocol {
                        n,
                        input: 3,
                        decided: None,
                    },
                ))));
            } else {
                nodes.push(sum_node(3, n, 3));
            }
            RoundEngine::new(config, nodes).run(5).decisions
        };
        let honest = run(false);
        let byz = run(true);
        for i in 0..3 {
            assert_eq!(honest[i], byz[i], "process {i} distinguished the runs");
        }
    }

    #[test]
    #[should_panic(expected = "placement disagrees")]
    fn engine_validates_fault_placement() {
        let config = SystemConfig::new(2, 1).with_faulty(vec![0]);
        let nodes: Vec<SyncNode<SumProtocol>> =
            (0..2).map(|i| sum_node(i, 2, 0)).collect();
        let _ = RoundEngine::new(config, nodes);
    }

    #[test]
    fn undecided_protocol_runs_to_round_cap() {
        struct Never;
        impl SyncProtocol for Never {
            type Msg = ();
            type Output = ();
            fn round_messages(&mut self, _r: usize) -> Vec<(ProcessId, ())> {
                Vec::new()
            }
            fn receive(&mut self, _r: usize, _i: &[(ProcessId, ())]) {}
            fn output(&self) -> Option<()> {
                None
            }
        }
        let config = SystemConfig::new(2, 0);
        let mut engine =
            RoundEngine::new(config, vec![SyncNode::Honest(Never), SyncNode::Honest(Never)]);
        let out = engine.run(7);
        assert_eq!(out.rounds, 7);
        assert!(out.decisions.iter().all(Option::is_none));
    }
}
