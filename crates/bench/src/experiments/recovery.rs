//! E18 — crash-recovery campaign: seeded kill/restart of a durable
//! consensus service, with WAL corruption injection.
//!
//! Each seeded run picks a victim node and a kill point, runs an
//! uninterrupted in-process baseline, then replays the same configuration
//! over a loopback TCP mesh where every node writes through an
//! `rbvc-store` WAL. Mid-run the victim's service is dropped on the floor
//! (sockets close, listener dies), its log is optionally corrupted
//! (torn-tail truncation or a random bit flip past the magic — the
//! recovery contract is longest-valid-prefix, never a panic), and the node
//! is rebuilt with [`ConsensusService::recover`] on a fresh endpoint bound
//! to the same address. The campaign asserts, per run:
//!
//! * the mesh still converges (every instance decides on every node);
//! * decisions are **bit-identical** to the uninterrupted baseline;
//! * the online [`ServiceMonitor`] stays clean — in particular the
//!   restarted node never re-decides differently (amnesia-freedom);
//! * replay reports zero divergences (the regenerated outbound stream
//!   FIFO-matches the logged one, and pinned decisions match the replayed
//!   state machines).
//!
//! The instance mix is Verified Averaging at `f = 0` only: that regime's
//! decisions are delivery-order independent, which is what makes the
//! bit-identity assertion meaningful across a kill/restart (the lockstep
//! SyncBvc round-timeout path is wall-clock driven and would diverge
//! legitimately when a peer stalls).

use std::net::{SocketAddr, TcpListener};
use std::path::Path;
use std::thread;
use std::time::{Duration, Instant};

use rand::Rng;
use rbvc_core::verified_avg::{DeltaMode, VerifiedAveraging};
use rbvc_linalg::{Norm, Tol, VecD};
use rbvc_sim::monitor::{epsilon_agreement, SafetyMonitor, ServiceMonitor};
use rbvc_store::Wal;
use rbvc_transport::service::{ConsensusService, InstanceProto};
use rbvc_transport::tcp::TcpEndpoint;
use rbvc_transport::transport::in_proc_mesh;

use crate::workloads::rng;

/// Campaign shape.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Mesh size.
    pub n: usize,
    /// Vector dimension.
    pub d: usize,
    /// Verified-Averaging instances per run (all nodes run all of them).
    pub instances: usize,
    /// VA averaging rounds — high enough that convergence takes several
    /// poll sweeps, so the kill lands mid-round.
    pub va_rounds: usize,
    /// Seeded kill/restart runs.
    pub runs: usize,
    /// Base seed; run `r` uses `seed + r * 7919`.
    pub seed: u64,
    /// Per-node receive timeout per poll sweep.
    pub poll_timeout: Duration,
    /// Corrupt the victim's WAL on every `corrupt_every`-th run (0 never).
    pub corrupt_every: usize,
}

impl RecoveryConfig {
    /// Full campaign profile (the ISSUE floor is 50 seeded runs).
    #[must_use]
    pub fn full(runs: usize, seed: u64) -> Self {
        RecoveryConfig {
            n: 4,
            d: 2,
            instances: 3,
            va_rounds: 6,
            runs,
            seed,
            poll_timeout: Duration::from_millis(1),
            corrupt_every: 3,
        }
    }

    /// CI smoke profile.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        RecoveryConfig {
            n: 3,
            d: 2,
            instances: 2,
            va_rounds: 4,
            runs: 6,
            seed,
            poll_timeout: Duration::from_millis(1),
            corrupt_every: 3,
        }
    }
}

/// Aggregate campaign outcome.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Runs executed.
    pub runs: usize,
    /// Runs whose victim's WAL was corrupted before recovery.
    pub corrupted_runs: usize,
    /// Corrupted runs where replay actually discarded a torn tail.
    pub torn_runs: usize,
    /// Runs whose final decisions were bit-identical to the baseline.
    pub identical_runs: usize,
    /// Runs that converged (every instance decided on every node).
    pub converged_runs: usize,
    /// Safety violations across all runs (must be 0).
    pub monitor_violations: usize,
    /// Replay divergences across all runs (must be 0).
    pub replay_divergences: u64,
    /// WAL records replayed across all recoveries.
    pub replay_records: u64,
    /// Bytes discarded as torn tails across all recoveries.
    pub torn_bytes: u64,
    /// Total wall time spent inside `ConsensusService::recover`.
    pub recover_us_total: u64,
    /// fsyncs issued across the campaign (`wal.fsync` delta).
    pub fsyncs: u64,
    /// Campaign wall time.
    pub wall_secs: f64,
}

impl RecoveryOutcome {
    /// Replay throughput over the campaign's recoveries.
    #[must_use]
    pub fn replay_records_per_sec(&self) -> f64 {
        if self.recover_us_total == 0 {
            return 0.0;
        }
        self.replay_records as f64 / (self.recover_us_total as f64 / 1e6)
    }

    /// The campaign's pass criterion.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.monitor_violations == 0
            && self.replay_divergences == 0
            && self.identical_runs == self.runs
            && self.converged_runs == self.runs
    }
}

fn va_instance(id: usize, n: usize, rounds: usize, input: &[f64]) -> InstanceProto {
    InstanceProto::Va(VerifiedAveraging::new(
        id,
        n,
        0,
        VecD::from_slice(input),
        DeltaMode::MinDelta(Norm::L2),
        rounds,
        Tol::default(),
    ))
}

fn va_spec(input: &[f64]) -> Vec<u8> {
    input.iter().flat_map(|x| x.to_le_bytes()).collect()
}

fn va_from_spec(id: usize, n: usize, rounds: usize, spec: &[u8]) -> InstanceProto {
    let input: Vec<f64> = spec
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    va_instance(id, n, rounds, &input)
}

/// Stand up a TCP mesh on stable addresses (returned so the victim can
/// rebind after its crash).
fn stable_tcp_mesh(n: usize) -> (Vec<TcpEndpoint>, Vec<SocketAddr>) {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback"))
        .collect();
    let addrs: Vec<SocketAddr> =
        listeners.iter().map(|l| l.local_addr().expect("local addr")).collect();
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| {
            let addrs = addrs.clone();
            thread::spawn(move || TcpEndpoint::connect(id, listener, &addrs))
        })
        .collect();
    let mesh = handles
        .into_iter()
        .map(|h| h.join().expect("no panic").expect("tcp connect"))
        .collect();
    (mesh, addrs)
}

/// Uninterrupted baseline over the in-process transport: decisions per
/// `(node, instance)`.
fn baseline_decisions(cfg: &RecoveryConfig, inputs: &[Vec<Vec<f64>>]) -> Vec<Vec<VecD>> {
    let mut services: Vec<ConsensusService<_>> =
        in_proc_mesh(cfg.n).into_iter().map(ConsensusService::new).collect();
    for (i, svc) in services.iter_mut().enumerate() {
        for (j, input) in inputs[i].iter().enumerate() {
            svc.add_instance(j as u64, va_instance(i, cfg.n, cfg.va_rounds, input))
                .expect("register");
        }
        svc.start().expect("start");
    }
    let mut spins = 0;
    while services.iter().any(|s| !s.all_decided()) {
        for svc in &mut services {
            let _ = svc.poll(cfg.poll_timeout);
        }
        spins += 1;
        assert!(spins < 20_000, "baseline failed to converge");
    }
    services
        .iter()
        .map(|svc| {
            (0..cfg.instances)
                .map(|j| svc.decision(j as u64).expect("baseline decided"))
                .collect()
        })
        .collect()
}

/// Corrupt a WAL file the way a crash does: damage the **tail**. Either a
/// torn-tail truncation (the final write cut short) or a single bit flip
/// within the last few dozen bytes (a partially-flushed sector). Both leave
/// a long valid prefix, which is the recovery contract — a flip in the
/// *middle* of the log would legitimately discard everything after it
/// (including instance registrations), and prefix replay cannot mask that;
/// it is detected, not recovered from. Returns the bytes touched/removed.
fn corrupt_wal(path: &Path, rng: &mut rand::rngs::StdRng) -> u64 {
    let Ok(mut data) = std::fs::read(path) else { return 0 };
    if data.len() <= 9 {
        return 0;
    }
    if rng.gen_bool(0.5) {
        // Torn tail: the crash cut the final write short.
        let cut = rng.gen_range(1..=24.min(data.len() - 8));
        data.truncate(data.len() - cut);
        std::fs::write(path, &data).expect("rewrite truncated wal");
        cut as u64
    } else {
        // Tail-sector bit rot: one flipped bit near the end of the file.
        let tail_start = data.len().saturating_sub(32).max(8);
        let off = rng.gen_range(tail_start..data.len());
        data[off] ^= 1 << rng.gen_range(0..8u32);
        std::fs::write(path, &data).expect("rewrite flipped wal");
        1
    }
}

/// Facts gathered from one seeded kill/restart run.
struct RunFacts {
    converged: bool,
    identical: bool,
    violations: usize,
    divergences: u64,
    replay_records: u64,
    torn_bytes: u64,
    recover_us: u64,
    corrupted: bool,
}

fn one_run(cfg: &RecoveryConfig, run: usize, dir: &Path) -> RunFacts {
    let run_seed = cfg.seed.wrapping_add(run as u64 * 7919);
    let mut rand = rng(run_seed);
    let inputs: Vec<Vec<Vec<f64>>> = (0..cfg.n)
        .map(|_| {
            (0..cfg.instances)
                .map(|_| (0..cfg.d).map(|_| rand.gen_range(-8.0..8.0)).collect())
                .collect()
        })
        .collect();
    let victim = rand.gen_range(0..cfg.n);
    let kill_at = rand.gen_range(1..=4usize);
    let corrupt = cfg.corrupt_every != 0 && run % cfg.corrupt_every == cfg.corrupt_every - 1;

    let baseline = baseline_decisions(cfg, &inputs);

    // Durable TCP mesh.
    let (endpoints, addrs) = stable_tcp_mesh(cfg.n);
    let mut services: Vec<Option<ConsensusService<TcpEndpoint>>> = Vec::new();
    for (i, ep) in endpoints.into_iter().enumerate() {
        let mut svc = ConsensusService::new(ep);
        let (wal, _) = Wal::open(dir.join(format!("node{i}.wal"))).expect("open wal");
        svc.attach_wal(wal);
        for (j, input) in inputs[i].iter().enumerate() {
            svc.add_instance_durable(
                j as u64,
                va_instance(i, cfg.n, cfg.va_rounds, input),
                va_spec(input),
            )
            .expect("register durable");
        }
        svc.start().expect("start");
        services.push(Some(svc));
    }

    let n = cfg.n;
    let mut monitor: ServiceMonitor<Vec<f64>> = ServiceMonitor::new(move |_| {
        SafetyMonitor::agreement_only(n, epsilon_agreement(0.0))
    });
    let mut facts = RunFacts {
        converged: false,
        identical: false,
        violations: 0,
        divergences: 0,
        replay_records: 0,
        torn_bytes: 0,
        recover_us: 0,
        corrupted: corrupt,
    };

    let mut sweep = 0usize;
    loop {
        if sweep == kill_at {
            // Kill: service, WAL handle, sockets, listener all drop.
            let dead = services[victim].take();
            drop(dead);
            let wal_path = dir.join(format!("node{victim}.wal"));
            if corrupt {
                corrupt_wal(&wal_path, &mut rand);
            }
            let (wal, report) = Wal::open(&wal_path).expect("reopen wal");
            facts.replay_records += report.records.len() as u64;
            facts.torn_bytes += report.torn_bytes;
            let listener = TcpListener::bind(addrs[victim]).expect("rebind victim addr");
            let endpoint = TcpEndpoint::connect(victim, listener, &addrs).expect("re-dial mesh");
            let (nn, rounds) = (cfg.n, cfg.va_rounds);
            let t0 = Instant::now();
            let svc = ConsensusService::recover(endpoint, wal, &report, |_, spec| {
                Ok(va_from_spec(victim, nn, rounds, spec))
            })
            .expect("recover");
            facts.recover_us +=
                u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            facts.divergences += svc.replay_divergences();
            for ev in svc.recovered_decisions() {
                monitor.observe(ev.instance, victim, &ev.value.as_slice().to_vec());
            }
            services[victim] = Some(svc);
        }
        let mut all_decided = true;
        for (i, svc) in services.iter_mut().enumerate() {
            let Some(svc) = svc.as_mut() else { continue };
            for ev in svc.poll(cfg.poll_timeout) {
                monitor.observe(ev.instance, i, &ev.value.as_slice().to_vec());
            }
            all_decided &= svc.all_decided();
        }
        sweep += 1;
        if all_decided && sweep > kill_at {
            facts.converged = true;
            break;
        }
        if sweep > 20_000 {
            break;
        }
    }

    // Bit-identity against the uninterrupted baseline, node by node.
    facts.identical = facts.converged
        && services.iter().enumerate().all(|(i, svc)| {
            let svc = svc.as_ref().expect("all slots refilled");
            (0..cfg.instances).all(|j| {
                svc.decision(j as u64).as_ref() == Some(&baseline[i][j])
            })
        });
    facts.violations = monitor.violation_count();
    facts
}

/// Run the campaign; per-run scratch WALs live under a private temp dir.
#[must_use]
pub fn run_campaign(cfg: &RecoveryConfig) -> RecoveryOutcome {
    let scratch = std::env::temp_dir().join(format!(
        "rbvc-exp-recovery-{}-{}",
        std::process::id(),
        cfg.seed
    ));
    let fsyncs_before = rbvc_obs::Registry::global().counter("wal.fsync").get();
    let t0 = Instant::now();
    let mut out = RecoveryOutcome {
        runs: cfg.runs,
        corrupted_runs: 0,
        torn_runs: 0,
        identical_runs: 0,
        converged_runs: 0,
        monitor_violations: 0,
        replay_divergences: 0,
        replay_records: 0,
        torn_bytes: 0,
        recover_us_total: 0,
        fsyncs: 0,
        wall_secs: 0.0,
    };
    for run in 0..cfg.runs {
        let dir = scratch.join(format!("run{run}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mk run dir");
        let facts = one_run(cfg, run, &dir);
        if !facts.converged || !facts.identical || facts.violations > 0 || facts.divergences > 0 {
            eprintln!(
                "run {run}: converged={} identical={} violations={} divergences={} corrupted={}",
                facts.converged, facts.identical, facts.violations, facts.divergences,
                facts.corrupted
            );
        }
        out.corrupted_runs += usize::from(facts.corrupted);
        out.torn_runs += usize::from(facts.torn_bytes > 0);
        out.identical_runs += usize::from(facts.identical);
        out.converged_runs += usize::from(facts.converged);
        out.monitor_violations += facts.violations;
        out.replay_divergences += facts.divergences;
        out.replay_records += facts.replay_records;
        out.torn_bytes += facts.torn_bytes;
        out.recover_us_total += facts.recover_us;
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&scratch);
    out.fsyncs = rbvc_obs::Registry::global()
        .counter("wal.fsync")
        .get()
        .saturating_sub(fsyncs_before);
    out.wall_secs = t0.elapsed().as_secs_f64();
    out
}

/// Default run count for the binary's smoke / full modes (kept here so the
/// binary and CI share one convention).
#[must_use]
pub fn default_runs(smoke: bool) -> usize {
    if smoke {
        6
    } else {
        50
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-run micro-campaign (one of them corrupted) must stay clean.
    #[test]
    fn micro_campaign_is_clean() {
        let mut cfg = RecoveryConfig::smoke(99);
        cfg.runs = 2;
        cfg.corrupt_every = 2;
        let out = run_campaign(&cfg);
        assert_eq!(out.converged_runs, 2, "both runs converge");
        assert_eq!(out.identical_runs, 2, "decisions match the baseline");
        assert_eq!(out.monitor_violations, 0);
        assert_eq!(out.replay_divergences, 0);
        assert_eq!(out.corrupted_runs, 1);
        assert!(out.replay_records > 0);
        assert!(out.fsyncs > 0, "durable runs must fsync");
    }
}
