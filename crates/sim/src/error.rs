//! Typed protocol errors — the single error currency of the workspace.
//!
//! Malformed input — a Byzantine payload with NaN components, a witness set
//! referencing ghost processes, a run specification that cannot possibly
//! satisfy the paper's bounds — used to `panic!` deep inside the protocol
//! state machines.  That is the wrong failure domain: a poisoned message
//! should degrade the *one node* that received it (it stays undecided and the
//! run records why), while an impossible experiment specification should be
//! reported to the caller as an `Err`, not a crash.
//!
//! [`ProtocolError`] is the single error currency for both cases.  It lives
//! in `rbvc-sim` (the bottom of the protocol stack) so that every layer —
//! the link-fault substrate in [`crate::net`], the threaded runtime in
//! [`crate::threads`], the protocol state machines in `rbvc-core`, and the
//! socket transport in `rbvc-transport` — can surface faults through the
//! same type; `rbvc_core::ProtocolError` re-exports it, so existing call
//! sites are unaffected.
//!
//! ## The degrade-don't-panic rule
//!
//! Every receive boundary in the workspace follows the same contract:
//!
//! 1. **Validate before trusting.** A payload is checked (finite components,
//!    in-range ids, sane lengths) before it can touch protocol state.
//! 2. **Degrade locally.** A failed check discards the message and records a
//!    [`ProtocolError`]; at most the *sender's influence* on this one node
//!    is lost. The node keeps serving traffic.
//! 3. **Never panic on remote input.** Panics are reserved for harness bugs
//!    (wrong node count, misplaced fault set) — things no remote byte
//!    sequence can trigger.

use crate::config::ProcessId;
use std::fmt;

/// Everything that can go wrong inside a protocol node, a transport, or an
/// experiment runner without being a bug in this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The experiment specification is internally inconsistent (wrong number
    /// of inputs, zero processes, mismatched dimensions, ...).
    InvalidSpec {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A safe-area intersection (Γ(X) in `DeltaMode::Zero`) came up empty.
    ///
    /// With `n < (d+2)f + 1` this is expected — the paper's Theorem 2 bound
    /// is violated — but it can also be provoked at runtime by Byzantine
    /// values, so it must not panic.
    EmptyIntersection {
        /// Protocol round in which the combination step failed.
        round: usize,
        /// Description of the combining mode that failed.
        mode: &'static str,
    },
    /// A received payload failed receive-boundary validation (non-finite
    /// components, dimension mismatch, out-of-range process ids, oversized
    /// witness sets, undecodable bytes).  The message is discarded; only the
    /// sender's influence is lost.
    MalformedPayload {
        /// Claimed sender of the offending message.
        from: ProcessId,
        /// What exactly was malformed.
        reason: String,
    },
    /// A transport-level fault: a peer could not be dialed within the retry
    /// budget, a connection died mid-stream, or an outbound frame addressed
    /// a nonexistent peer.  The affected link degrades; the node keeps
    /// serving its remaining peers.
    Transport {
        /// Peer on the other end of the failing link, if known.
        peer: Option<ProcessId>,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::InvalidSpec { reason } => {
                write!(f, "invalid experiment specification: {reason}")
            }
            ProtocolError::EmptyIntersection { round, mode } => {
                write!(
                    f,
                    "empty intersection in round {round} ({mode}); \
                     the n >= (d+2)f + 1 bound is likely violated"
                )
            }
            ProtocolError::MalformedPayload { from, reason } => {
                write!(f, "malformed payload from process {from}: {reason}")
            }
            ProtocolError::Transport { peer, reason } => match peer {
                Some(p) => write!(f, "transport fault on link to process {p}: {reason}"),
                None => write!(f, "transport fault: {reason}"),
            },
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A bounded in-node log of degradation events.
///
/// Receive boundaries that degrade instead of panicking need somewhere to
/// record *why* a message was discarded without growing unboundedly under a
/// Byzantine flood. `ErrorLog` keeps the first [`ErrorLog::CAP`] errors and
/// counts the rest.
#[derive(Debug, Clone, Default)]
pub struct ErrorLog {
    errors: Vec<ProtocolError>,
    total: u64,
}

impl ErrorLog {
    /// Retained-error cap; further errors are counted but not stored.
    pub const CAP: usize = 64;

    /// A fresh, empty log.
    #[must_use]
    pub fn new() -> Self {
        ErrorLog::default()
    }

    /// Record one degradation event.
    pub fn record(&mut self, e: ProtocolError) {
        self.total += 1;
        if self.errors.len() < Self::CAP {
            self.errors.push(e);
        }
    }

    /// The retained errors (at most [`ErrorLog::CAP`]), in arrival order.
    #[must_use]
    pub fn errors(&self) -> &[ProtocolError] {
        &self.errors
    }

    /// Total degradation events, including those beyond the retention cap.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True iff nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ProtocolError::EmptyIntersection { round: 0, mode: "gamma" };
        assert!(e.to_string().contains("round 0"));
        let e = ProtocolError::MalformedPayload { from: 7, reason: "NaN component".into() };
        assert!(e.to_string().contains("process 7"));
        assert!(e.to_string().contains("NaN"));
        let e = ProtocolError::InvalidSpec { reason: "n == 0".into() };
        assert!(e.to_string().contains("n == 0"));
        let e = ProtocolError::Transport { peer: Some(3), reason: "dial refused".into() };
        assert!(e.to_string().contains("process 3"));
        let e = ProtocolError::Transport { peer: None, reason: "listener died".into() };
        assert!(e.to_string().contains("listener died"));
    }

    #[test]
    fn error_log_caps_retention_but_counts_everything() {
        let mut log = ErrorLog::new();
        assert!(log.is_empty());
        for i in 0..(ErrorLog::CAP as u64 + 10) {
            log.record(ProtocolError::MalformedPayload {
                from: i as usize,
                reason: "flood".into(),
            });
        }
        assert_eq!(log.errors().len(), ErrorLog::CAP);
        assert_eq!(log.total(), ErrorLog::CAP as u64 + 10);
        assert!(!log.is_empty());
    }
}
