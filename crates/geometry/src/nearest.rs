//! Wolfe's nearest-point-in-polytope algorithm (Euclidean projection onto a
//! convex hull).
//!
//! Given generators `p₁ … p_m` and a query `q`, computes
//! `argmin_{x ∈ H({pᵢ})} ||x − q||₂` by Philip Wolfe's 1976 active-set
//! ("corral") method, which terminates finitely on exact arithmetic and is
//! the standard exact tool at these sizes. The result feeds every Euclidean
//! distance in the paper: `dist(p, H(T))` in the δ* definition (§9.2),
//! hull-projection steps of the POCS solver, and the (δ,2)-relaxed hull
//! membership test.

use rbvc_linalg::{Mat, Tol, VecD};
use rbvc_obs::{time_kernel, Kernel};

/// Maximum outer iterations: Wolfe terminates finitely in exact arithmetic;
/// the cap is a float-robustness safety net only.
const MAX_OUTER: usize = 10_000;

/// Euclidean projection of `q` onto `H(points)`.
///
/// Returns `(projection, distance)`.
///
/// # Panics
/// Panics if `points` is empty or dimensions are inconsistent.
#[must_use]
pub fn nearest_point_in_hull(points: &[VecD], q: &VecD, tol: Tol) -> (VecD, f64) {
    let (x, _w) = nearest_point_with_weights(points, q, tol);
    let dist = x.dist2(q);
    (x, dist)
}

/// As [`nearest_point_in_hull`], additionally returning the convex weights
/// of the projection over the generators.
#[must_use]
pub fn nearest_point_with_weights(
    points: &[VecD],
    q: &VecD,
    tol: Tol,
) -> (VecD, Vec<f64>) {
    time_kernel(Kernel::WolfeNearest, || {
        nearest_point_with_weights_inner(points, q, tol)
    })
}

fn nearest_point_with_weights_inner(points: &[VecD], q: &VecD, tol: Tol) -> (VecD, Vec<f64>) {
    assert!(!points.is_empty(), "nearest_point: empty generator set");
    let d = q.dim();
    assert!(
        points.iter().all(|p| p.dim() == d),
        "nearest_point: dimension mismatch"
    );
    let m = points.len();

    // Work translated: z_i = p_i − q; seek the min-norm point of H({z_i}).
    let z: Vec<VecD> = points.iter().map(|p| p - q).collect();
    let scale_sq = z
        .iter()
        .map(VecD::norm2_sq)
        .fold(1.0_f64, f64::max);
    let stop_tol = tol.scaled(scale_sq).value();
    let weight_eps = 1e-12;

    // Initial corral: the single closest generator.
    let mut start = 0;
    for (i, zi) in z.iter().enumerate() {
        if zi.norm2_sq() < z[start].norm2_sq() {
            start = i;
        }
    }
    let mut corral: Vec<usize> = vec![start];
    let mut lambda: Vec<f64> = vec![1.0];
    let mut x = z[start].clone();

    for _ in 0..MAX_OUTER {
        // Optimality: x is the min-norm point iff <x, z_j> ≥ ||x||² for all j.
        let xx = x.norm2_sq();
        let mut best_j = 0;
        let mut best_val = f64::INFINITY;
        for (j, zj) in z.iter().enumerate() {
            let v = x.dot(zj);
            if v < best_val {
                best_val = v;
                best_j = j;
            }
        }
        if best_val >= xx - stop_tol {
            break;
        }
        if corral.contains(&best_j) {
            // Numerically stalled: the improving vertex is already active.
            break;
        }
        corral.push(best_j);
        lambda.push(0.0);

        // Inner loop: move to the affine minimizer over the corral,
        // shrinking the corral when weights leave the simplex.
        loop {
            let alpha = match affine_min_weights(&z, &corral) {
                Some(a) => a,
                None => {
                    // Degenerate corral: drop the most recently added point.
                    corral.pop();
                    lambda.pop();
                    break;
                }
            };
            if alpha.iter().all(|&a| a > weight_eps) {
                lambda = alpha;
                break;
            }
            // Line search from λ toward α up to the simplex boundary.
            let mut theta = 1.0_f64;
            for (l, a) in lambda.iter().zip(&alpha) {
                if *a <= weight_eps && *l > *a {
                    theta = theta.min(*l / (*l - *a));
                }
            }
            for (l, a) in lambda.iter_mut().zip(&alpha) {
                *l = (1.0 - theta) * *l + theta * *a;
            }
            // Remove at least one vanished point.
            let mut removed = false;
            let mut k = 0;
            while k < corral.len() {
                if lambda[k] <= weight_eps {
                    corral.remove(k);
                    lambda.remove(k);
                    removed = true;
                } else {
                    k += 1;
                }
            }
            if !removed {
                // Float guard: force-remove the smallest weight.
                let (kmin, _) = lambda
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .expect("corral nonempty");
                corral.remove(kmin);
                lambda.remove(kmin);
            }
            // Renormalize against drift.
            let s: f64 = lambda.iter().sum();
            if s > 0.0 {
                for l in &mut lambda {
                    *l /= s;
                }
            }
            if corral.len() <= 1 {
                lambda = vec![1.0];
                break;
            }
        }
        // Recompute x from the corral.
        x = VecD::zeros(d);
        for (&i, &l) in corral.iter().zip(&lambda) {
            x = x.axpy(l, &z[i]);
        }
    }

    let mut weights = vec![0.0; m];
    for (&i, &l) in corral.iter().zip(&lambda) {
        weights[i] += l;
    }
    let projection = &x + q;
    (projection, weights)
}

/// Solve `min ||Σ αᵢ z_{cᵢ}||²  s.t.  Σ αᵢ = 1` (α unrestricted in sign) via
/// the bordered Gram system. Returns `None` if the system is singular.
fn affine_min_weights(z: &[VecD], corral: &[usize]) -> Option<Vec<f64>> {
    let k = corral.len();
    if k == 1 {
        return Some(vec![1.0]);
    }
    // System:  [ 0  1ᵀ ] [ μ ]   [ 1 ]
    //          [ 1  G  ] [ α ] = [ 0 ]
    let mut sys = Mat::zeros(k + 1, k + 1);
    for i in 0..k {
        sys[(0, i + 1)] = 1.0;
        sys[(i + 1, 0)] = 1.0;
        for j in i..k {
            let g = z[corral[i]].dot(&z[corral[j]]);
            sys[(i + 1, j + 1)] = g;
            sys[(j + 1, i + 1)] = g;
        }
    }
    let mut rhs = VecD::zeros(k + 1);
    rhs[0] = 1.0;
    let sol = sys.solve(&rhs, Tol(1e-13))?;
    Some(sol.as_slice()[1..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rbvc_linalg::Norm;

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn projection_onto_single_point() {
        let pts = vec![VecD::from_slice(&[1.0, 2.0])];
        let (proj, dist) = nearest_point_in_hull(&pts, &VecD::zeros(2), t());
        assert!(proj.approx_eq(&pts[0], Tol(1e-10)));
        assert!((dist - 5.0_f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn projection_onto_segment_midrange() {
        let pts = vec![VecD::from_slice(&[0.0, 0.0]), VecD::from_slice(&[2.0, 0.0])];
        let q = VecD::from_slice(&[1.0, 1.0]);
        let (proj, dist) = nearest_point_in_hull(&pts, &q, t());
        assert!(proj.approx_eq(&VecD::from_slice(&[1.0, 0.0]), Tol(1e-8)));
        assert!((dist - 1.0).abs() < 1e-8);
    }

    #[test]
    fn projection_onto_segment_endpoint() {
        let pts = vec![VecD::from_slice(&[0.0, 0.0]), VecD::from_slice(&[2.0, 0.0])];
        let q = VecD::from_slice(&[3.0, 1.0]);
        let (proj, dist) = nearest_point_in_hull(&pts, &q, t());
        assert!(proj.approx_eq(&VecD::from_slice(&[2.0, 0.0]), Tol(1e-8)));
        assert!((dist - 2.0_f64.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn interior_point_projects_to_itself() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[0.0, 2.0]),
        ];
        let q = VecD::from_slice(&[0.5, 0.5]);
        let (proj, dist) = nearest_point_in_hull(&pts, &q, t());
        assert!(dist < 1e-8, "interior distance should vanish, got {dist}");
        assert!(proj.approx_eq(&q, Tol(1e-6)));
    }

    #[test]
    fn weights_are_convex_and_reconstruct_projection() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        let q = VecD::from_slice(&[2.0, 2.0]);
        let (proj, w) = nearest_point_with_weights(&pts, &q, t());
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x >= -1e-12));
        assert!(VecD::combination(&pts, &w).approx_eq(&proj, Tol(1e-8)));
    }

    #[test]
    fn duplicated_generators_are_fine() {
        let pts = vec![
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        let (_, dist) = nearest_point_in_hull(&pts, &VecD::zeros(2), t());
        // Distance from origin to segment x + y = 1.
        assert!((dist - 1.0 / 2.0_f64.sqrt()).abs() < 1e-8);
    }

    /// The variational characterization of the projection: x* is the nearest
    /// point iff <q − x*, p_j − x*> ≤ 0 for every generator. This is a
    /// *certificate of optimality* checked on random instances.
    #[test]
    fn random_projections_satisfy_optimality_certificate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..300 {
            let d = rng.gen_range(1..7);
            let m = rng.gen_range(1..9);
            let pts: Vec<VecD> = (0..m)
                .map(|_| VecD((0..d).map(|_| rng.gen_range(-4.0..4.0)).collect()))
                .collect();
            let q = VecD((0..d).map(|_| rng.gen_range(-6.0..6.0)).collect());
            let (x, dist) = nearest_point_in_hull(&pts, &q, t());
            // Certificate: for each generator, moving toward it cannot help.
            let qm = &q - &x;
            for p in &pts {
                let dir = p - &x;
                assert!(
                    qm.dot(&dir) <= 1e-6,
                    "trial {trial}: optimality violated by {}",
                    qm.dot(&dir)
                );
            }
            // Distance consistency.
            assert!((x.dist2(&q) - dist).abs() < 1e-9);
            // Projection must be inside the hull (LP cross-check).
            assert!(
                crate::lp::convex_combination_weights(&pts, &x, Tol(1e-6)).is_some(),
                "trial {trial}: projection escaped the hull"
            );
        }
    }

    #[test]
    fn matches_linf_l1_bracketing_on_random_instances() {
        // dist_∞ ≤ dist_2 ≤ dist_1 for the same point/hull pair.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let d = rng.gen_range(2..5);
            let m = rng.gen_range(2..6);
            let pts: Vec<VecD> = (0..m)
                .map(|_| VecD((0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()))
                .collect();
            let q = VecD((0..d).map(|_| rng.gen_range(-4.0..4.0)).collect());
            let hull = crate::hull::ConvexHull::new(pts);
            let d1 = hull.distance(&q, Norm::L1, t());
            let d2 = hull.distance(&q, Norm::L2, t());
            let dinf = hull.distance(&q, Norm::LInf, t());
            assert!(dinf <= d2 + 1e-6);
            assert!(d2 <= d1 + 1e-6);
        }
    }
}
