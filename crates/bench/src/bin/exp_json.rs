//! Machine-readable experiment records: run the core experiment suite
//! in-process at configurable scale and emit one JSON document — for
//! downstream tooling, CI regression tracking, and plotting.
//!
//! Usage: `exp_json [trials] [seed] > results.json`

use rbvc_bench::experiments::asynchrony::{async_delta_sweep, convergence_series};
use rbvc_bench::experiments::broadcast_ablation::ablation_sweep;
use rbvc_bench::experiments::conjecture_hunt::hunt_sweep;
use rbvc_bench::experiments::counterex::{theorem3_row, theorem4_row, theorem5_row, theorem6_row};
use rbvc_bench::experiments::lemmas::lemma_sweep;
use rbvc_bench::experiments::table1::{p_sweep, table1_l2};
use rbvc_bench::experiments::tverberg::tverberg_sweep;
use serde_json::json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(25);
    let seed: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(2024);

    let tightness = |rows: Vec<rbvc_bench::experiments::counterex::TightnessRow>| {
        serde_json::to_value(rows).expect("serializable rows")
    };

    let doc = json!({
        "paper": "Relaxed Byzantine Vector Consensus (Xiang & Vaidya, SPAA 2016 / arXiv:1601.08067)",
        "trials": trials,
        "seed": seed,
        "e1_table1_l2": table1_l2(trials, seed),
        "e12_p_sweep": p_sweep(trials, seed),
        "e3_theorem3": tightness((3..=5).map(theorem3_row).collect()),
        "e4_theorem4": tightness((3..=4).map(theorem4_row).collect()),
        "e5_theorem5": tightness((2..=5).map(|d| theorem5_row(d, 0.25)).collect()),
        "e6_theorem6": tightness((2..=4).map(|d| theorem6_row(d, 0.25, 0.05)).collect()),
        "e7_9_lemmas": lemma_sweep(trials, seed + 7),
        "e10_tverberg": tverberg_sweep(trials.min(15), seed + 3),
        "e11_async_delta": async_delta_sweep(trials.min(8), seed + 5),
        "e13_convergence": convergence_series(4, 1, 3, &[2, 4, 8, 16], seed + 8),
        "e14_conjecture_hunt": hunt_sweep(1, 30, seed + 1),
        "e15_broadcast_ablation": ablation_sweep(seed + 5),
    });
    println!("{}", serde_json::to_string_pretty(&doc).expect("valid JSON"));
}
