//! E23 — the impersonation campaign: live identity attacks against the
//! keyed link-identity layer, over real TCP with real adversaries.
//!
//! Usage: `exp_identity [--smoke] [--runs N] [--seed N] [--metrics ADDR]
//! [--metrics-wait-scrapes N]`
//!
//! Seeded 7-node, `f = 2` runs cycle the full attack registry — the five
//! identity mixes (handshake impersonation, handshake replay, nonce
//! reflection, MAC bit-flips, protocol downgrade) plus every classic E20
//! mix, all speaking the authenticated protocol. Attackers hold their own
//! pairwise keys (the compromised-node keyring), never the mesh seed.
//! Gates: every run converges, honest decisions are bit-identical to an
//! in-process honest-only baseline, the safety monitor never fires, no
//! rejection is attributed to honest traffic, every identity mix's
//! forgeries are refused (`auth_rejects > 0`), and authenticated mesh
//! construction stays within an absolute budget. Results land in
//! `BENCH_identity.json`; exits nonzero on any gate failure.

use std::sync::Arc;

use rbvc_bench::experiments::identity::{
    default_runs, run, IdentityConfig, HANDSHAKE_BUDGET_MS,
};
use rbvc_bench::report::{fnum, print_table, with_envelope};
use rbvc_obs::{scrape_once, scrape_path, MetricsServer, Registry, StatusBoard};
use serde_json::json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let runs_override: Option<usize> = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok())
        .unwrap_or(2016);
    let metrics_addr = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let wait_scrapes: Option<u64> = args
        .iter()
        .position(|a| a == "--metrics-wait-scrapes")
        .and_then(|i| args.get(i + 1))
        .and_then(|a| a.parse().ok());

    let mut cfg =
        if smoke { IdentityConfig::smoke(seed) } else { IdentityConfig::full(default_runs(false), seed) };
    if let Some(r) = runs_override {
        cfg.campaign.runs = r;
    }
    println!(
        "E23 — impersonation on the wire: {}-node authenticated loopback TCP \
         mesh, f = {} compromised nodes per run cycling {} attack mix(es) \
         ({} identity forgery families), {} instance(s) × {} VA rounds, {} \
         seeded runs, seed {seed}{}",
        cfg.campaign.n,
        cfg.campaign.f,
        cfg.campaign.attacks.len(),
        rbvc_bench::experiments::identity::IDENTITY_ATTACKS.len(),
        cfg.campaign.instances,
        cfg.campaign.va_rounds,
        cfg.campaign.runs,
        if smoke { " (smoke)" } else { "" }
    );

    // Live exposition: bind before the campaign so the whole run is
    // scrapeable — `auth.reject_total` moves mid-run as forgeries are
    // refused, and the nodes publish per-link auth state to `/status`.
    let status = StatusBoard::new();
    cfg.campaign.status = Some(status.clone());
    let server = metrics_addr.as_ref().map(|addr| {
        let s = MetricsServer::serve_with_status(
            addr.as_str(),
            Registry::global().clone(),
            status.clone(),
        )
        .expect("bind metrics endpoint");
        println!("serving /metrics and /status on http://{}", s.addr());
        s
    });
    let scrape_ok = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let status_ok = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scrape_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = server.as_ref().map(|s| {
        use std::sync::atomic::Ordering;
        let addr = s.addr();
        let ok = Arc::clone(&scrape_ok);
        let sok = Arc::clone(&status_ok);
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                if let Ok(body) = scrape_once(addr) {
                    if body.contains("# TYPE") {
                        ok.store(true, Ordering::SeqCst);
                    }
                }
                if let Ok(body) = scrape_path(addr, "/status") {
                    // A snapshot showing an authenticated link proves the
                    // auth state actually rides the board rows.
                    if body.contains("\"authenticated\"") {
                        sok.store(true, Ordering::SeqCst);
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        })
    });

    let out = run(&cfg);
    scrape_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(h) = scraper {
        let _ = h.join();
    }
    let camp = &out.campaign;

    let rows: Vec<Vec<String>> = camp
        .reports
        .iter()
        .map(|r| {
            vec![
                r.attack.clone(),
                r.runs.to_string(),
                fnum(r.slowdown),
                fnum(r.clean_p50_ms),
                fnum(r.attack_p50_ms),
                fnum(r.clean_p99_ms),
                fnum(r.attack_p99_ms),
                r.auth_rejects.to_string(),
                format!("{}", r.gates_from_byz.iter().sum::<u64>()),
                format!("{}", r.gates_from_honest.iter().sum::<u64>()),
                r.stale_hellos.to_string(),
            ]
        })
        .collect();
    print_table(
        "E23 (impersonation on the wire)",
        &[
            "attack",
            "runs",
            "slowdown",
            "clean p50 ms",
            "atk p50 ms",
            "clean p99 ms",
            "atk p99 ms",
            "auth rej",
            "rej (byz)",
            "rej (honest)",
            "stale HELLO",
        ],
        &rows,
    );
    println!(
        "{}/{} runs converged, {}/{} bit-identical to the in-proc baseline, \
         {} monitor violation(s), {} honest-attributed rejection(s), \
         {} clean-phase handshake reject(s), {:.1}s wall",
        camp.converged_runs,
        camp.runs,
        camp.identical_runs,
        camp.runs,
        camp.monitor_violations,
        camp.honest_attributed_rejections,
        camp.clean_auth_rejects,
        camp.wall_secs
    );
    println!(
        "handshake overhead ({} trials, n = {}): authenticated {} ms vs \
         plaintext {} ms per mesh ({}x, budget {} ms)",
        out.overhead.trials,
        out.overhead.n,
        fnum(out.overhead.auth_ms),
        fnum(out.overhead.plain_ms),
        fnum(out.overhead.ratio),
        HANDSHAKE_BUDGET_MS,
    );

    let doc = json!({
        "transport": "tcp-loopback-authenticated",
        "seed": seed,
        "smoke": smoke,
        "n": cfg.campaign.n,
        "f": cfg.campaign.f,
        "dimension": cfg.campaign.d,
        "instances": cfg.campaign.instances,
        "va_rounds": cfg.campaign.va_rounds,
        "runs": camp.runs,
        "converged_runs": camp.converged_runs,
        "identical_runs": camp.identical_runs,
        "monitor_violations": camp.monitor_violations,
        "honest_attributed_rejections": camp.honest_attributed_rejections,
        "client_honest_rejections": camp.client_honest_rejections,
        "client_reply_errors": camp.client_reply_errors,
        "clean_auth_rejects": camp.clean_auth_rejects,
        "silent_identity_mixes": out.silent_identity_mixes(),
        "wall_secs": camp.wall_secs,
        "handshake_overhead": json!({
            "trials": out.overhead.trials,
            "mesh_n": out.overhead.n,
            "plain_ms": out.overhead.plain_ms,
            "auth_ms": out.overhead.auth_ms,
            "ratio": out.overhead.ratio,
            "budget_ms": HANDSHAKE_BUDGET_MS,
            "bounded": out.overhead.bounded(),
        }),
        "attacks": camp.reports.iter().map(|r| json!({
            "attack": r.attack.clone(),
            "runs": r.runs,
            "honest_wall_secs": json!({ "clean": r.clean_secs, "attack": r.attack_secs }),
            "slowdown": r.slowdown,
            "latency_ms": json!({
                "clean": json!({ "p50": r.clean_p50_ms, "p99": r.clean_p99_ms }),
                "attack": json!({ "p50": r.attack_p50_ms, "p99": r.attack_p99_ms }),
            }),
            "auth_rejects": r.auth_rejects,
            "gate_rejections": json!({
                "from_byzantine": json!({
                    "decode": r.gates_from_byz[0],
                    "auth": r.gates_from_byz[1],
                    "instance": r.gates_from_byz[2],
                    "kind": r.gates_from_byz[3],
                }),
                "from_honest": json!({
                    "decode": r.gates_from_honest[0],
                    "auth": r.gates_from_honest[1],
                    "instance": r.gates_from_honest[2],
                    "kind": r.gates_from_honest[3],
                }),
            }),
            "attacker_activity": json!({
                "frames_mutated": r.stats.frames_mutated,
                "frames_dropped": r.stats.frames_dropped,
                "garbage_injected": r.stats.garbage_injected,
                "gate_sprays": r.stats.gate_sprays,
                "hello_replays": r.stats.hello_replays,
                "redial_storms": r.stats.redial_storms,
                "client_sprays": r.stats.client_sprays,
                "impersonations": r.stats.impersonations,
                "handshake_replays": r.stats.hs_replays,
                "nonce_reflections": r.stats.nonce_reflects,
                "mac_flips": r.stats.mac_flips,
                "downgrades": r.stats.downgrades,
            }),
            "stale_hellos_refused": r.stale_hellos,
        })).collect::<Vec<_>>(),
        "metrics_endpoint": server.as_ref().map(|s| json!({
            "addr": s.addr().to_string(),
            "mid_run_scrape_ok": scrape_ok.load(std::sync::atomic::Ordering::SeqCst),
            "status_auth_state_ok": status_ok.load(std::sync::atomic::Ordering::SeqCst),
        })),
    });
    let doc = with_envelope("E23", "impersonation on the wire", doc);
    let rendered = serde_json::to_string_pretty(&doc).expect("valid JSON");
    std::fs::write("BENCH_identity.json", &rendered).expect("write BENCH_identity.json");
    println!("wrote BENCH_identity.json");

    let mut failed = false;
    if camp.converged_runs < camp.runs {
        eprintln!(
            "FAIL: {}/{} runs did not converge within the sweep budget",
            camp.runs - camp.converged_runs,
            camp.runs
        );
        failed = true;
    }
    if camp.identical_runs < camp.runs {
        eprintln!(
            "FAIL: {}/{} runs diverged from the honest in-proc baseline",
            camp.runs - camp.identical_runs,
            camp.runs
        );
        failed = true;
    }
    if camp.monitor_violations > 0 {
        eprintln!(
            "FAIL: the online safety monitor fired {} time(s) under attack",
            camp.monitor_violations
        );
        failed = true;
    }
    if camp.honest_attributed_rejections > 0 {
        eprintln!(
            "FAIL: {} gate rejection(s) attributed to honest senders",
            camp.honest_attributed_rejections
        );
        failed = true;
    }
    if camp.client_honest_rejections > 0 {
        eprintln!(
            "FAIL: {} client-port rejection(s) during clean references (honest traffic)",
            camp.client_honest_rejections
        );
        failed = true;
    }
    if camp.client_reply_errors > 0 {
        eprintln!(
            "FAIL: {} honest-client repl(ies) were wrong or timed out",
            camp.client_reply_errors
        );
        failed = true;
    }
    if camp.clean_auth_rejects > 0 {
        eprintln!(
            "FAIL: {} handshake rejection(s) during clean references (honest links)",
            camp.clean_auth_rejects
        );
        failed = true;
    }
    let silent = out.silent_identity_mixes();
    if !silent.is_empty() {
        eprintln!(
            "FAIL: identity mix(es) whose forgeries were never refused: {}",
            silent.join(", ")
        );
        failed = true;
    }
    if !out.overhead.bounded() {
        eprintln!(
            "FAIL: authenticated mesh construction took {:.1} ms (budget {} ms)",
            out.overhead.auth_ms, HANDSHAKE_BUDGET_MS
        );
        failed = true;
    }
    if metrics_addr.is_some() && !scrape_ok.load(std::sync::atomic::Ordering::SeqCst) {
        eprintln!("FAIL: the metrics endpoint never served a valid Prometheus dump mid-run");
        failed = true;
    }
    if metrics_addr.is_some() && !status_ok.load(std::sync::atomic::Ordering::SeqCst) {
        eprintln!("FAIL: /status never showed an authenticated link mid-run");
        failed = true;
    }
    // Hold the endpoint open for the CI curl: the reject counters only
    // settle after aggregation, so external scrapers are counted from here.
    if let (Some(s), Some(n)) = (&server, wait_scrapes) {
        let baseline = s.scrapes();
        let t0 = std::time::Instant::now();
        println!("waiting for {n} external scrape(s) on http://{} (20s budget)", s.addr());
        while s.scrapes() < baseline + n && t0.elapsed() < std::time::Duration::from_secs(20) {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
    if failed {
        std::process::exit(1);
    }
}
