#![warn(missing_docs)]

//! # rbvc-geometry
//!
//! Convex-hull calculus for relaxed Byzantine vector consensus.
//!
//! This crate implements every geometric object the paper (Xiang & Vaidya,
//! *Relaxed Byzantine Vector Consensus*) defines or relies on:
//!
//! * [`lp`] — a from-scratch two-phase simplex LP solver; all polyhedral
//!   predicates (hull membership, L1/L∞ distances, `Γ` emptiness) are exact
//!   LP queries.
//! * [`nearest`] — Wolfe's nearest-point algorithm (Euclidean projection
//!   onto a hull).
//! * [`hull`] — `H(S)` of point multisets: membership, distances in any Lp
//!   norm, Carathéodory decompositions.
//! * [`oracle2d`] — independent 2-D oracles (monotone-chain hulls, Radon
//!   points) cross-checking the LP/Wolfe machinery.
//! * [`projection`] — the coordinate projections `g_D` and the family `D_k`
//!   (Definitions 1–5).
//! * [`relaxed`] — the relaxed hulls `H_k(S)` (Definition 6) and
//!   `H_(δ,p)(S)` (Definition 9).
//! * [`gamma`] — the `Γ(Y)` / `Γ_(δ,p)(S)` intersections (§3, §9) with
//!   LP-exact emptiness certificates.
//! * [`minmax`] — the δ* solver: `min_p max_T dist_p(p, H(T))` (ALGO
//!   Step 2), with the Lemma 13 closed form as fast path.
//! * [`simplex_geom`] — simplex inradii/incenters and facet geometry
//!   (Lemmas 11–15).
//! * [`tverberg`] — Tverberg partitions and tightness witnesses (§8).
//! * [`combinatorics`] — subset and partition enumeration.

pub mod clip2d;
pub mod combinatorics;
pub mod gamma;
pub mod hull;
pub mod lp;
pub mod minmax;
pub mod nearest;
pub mod oracle2d;
pub mod projection;
pub mod relaxed;
pub mod simplex_geom;
pub mod tverberg;

pub use gamma::{gamma_point, min_delta_polyhedral, subset_hulls};
pub use hull::ConvexHull;
pub use minmax::{delta_star, DeltaStar, MinMaxOptions};
pub use projection::{all_projections, CoordProjection};
pub use relaxed::{DeltaPHull, KRelaxedHull};
pub use simplex_geom::{pairwise_edges, pairwise_edges_norm, Simplex};
