//! Failure-injection integration tests: the consensus protocols against
//! crash faults, partial-crash-mid-broadcast, duplicate/reorder wrappers,
//! seeded random-message fuzzers, and link-level network faults. Byzantine
//! guarantees are universally quantified, so safety must survive every one
//! of these behaviours.
//!
//! **Seed hygiene**: every random choice in this file — inputs, fuzzers,
//! schedulers, link faults — derives deterministically from [`BASE_SEED`],
//! so any failure replays bit-identically, and every assertion message
//! names the seed that produced it.

use rand::{rngs::StdRng, Rng, SeedableRng};
use relaxed_bvc::consensus::problem::{check_execution, Agreement, Validity};
use relaxed_bvc::consensus::rules::DecisionRule;
use relaxed_bvc::consensus::sync_ds::SyncBvcDs;
use relaxed_bvc::consensus::sync_protocols::SyncBvc;
use relaxed_bvc::consensus::verified_avg::{DeltaMode, VaMsg, VerifiedAveraging};
use relaxed_bvc::linalg::{Norm, Tol, VecD};
use relaxed_bvc::sim::asynch::{AsyncEngine, AsyncNode, RandomScheduler};
use relaxed_bvc::sim::config::SystemConfig;
use relaxed_bvc::sim::dolev_strong::ParallelDolevStrong;
use relaxed_bvc::sim::eig::ParallelEig;
use relaxed_bvc::sim::fuzz::{
    AsyncFuzzAdversary, CrashAdversary, DuplicatingAdversary, FuzzAdversary,
    PartialCrashAdversary,
};
use relaxed_bvc::sim::monitor::SafetyMonitor;
use relaxed_bvc::sim::net::{LinkFault, NetworkFaults, ReliableLink, ReliableLinkAdversary};
use relaxed_bvc::sim::sync::{RoundEngine, SyncNode};

/// The single documented base seed of this file; every derived seed is
/// `BASE_SEED + <small offset>` or `BASE_SEED ^ <trial index>`.
const BASE_SEED: u64 = 20_160_601;

fn tol() -> Tol {
    Tol::default()
}

fn random_inputs(seed: u64, n: usize, d: usize) -> Vec<VecD> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| VecD((0..d).map(|_| rng.gen_range(-1.0..1.0)).collect()))
        .collect()
}

fn honest_sync(i: usize, n: usize, f: usize, d: usize, input: VecD) -> SyncNode<SyncBvc> {
    SyncNode::Honest(SyncBvc::new(
        i,
        n,
        f,
        d,
        input,
        DecisionRule::GammaPoint,
        tol(),
    ))
}

fn check_sync_outcome(
    config: &SystemConfig,
    inputs: &[VecD],
    decisions: &[Option<VecD>],
    validity: &Validity,
    ctx: &str,
) {
    let correct_inputs: Vec<VecD> = config
        .correct_ids()
        .into_iter()
        .map(|i| inputs[i].clone())
        .collect();
    let correct_decisions: Vec<Option<VecD>> = config
        .correct_ids()
        .into_iter()
        .map(|i| decisions[i].clone())
        .collect();
    let v = check_execution(
        &correct_inputs,
        &correct_decisions,
        Agreement::Exact,
        validity,
        tol(),
    );
    assert!(v.ok(), "{ctx}: {v:?}");
}

#[test]
fn sync_bvc_survives_crash_at_every_round() {
    let (n, f, d) = (4usize, 1usize, 2usize);
    let inputs = random_inputs(BASE_SEED + 1, n, d);
    for crash_round in 0..=f + 1 {
        let config = SystemConfig::new(n, f).with_faulty(vec![2]);
        let nodes: Vec<SyncNode<SyncBvc>> = (0..n)
            .map(|i| {
                if i == 2 {
                    SyncNode::Byzantine(Box::new(CrashAdversary::new(
                        ParallelEig::new(i, n, f, inputs[i].clone(), VecD::zeros(d)),
                        crash_round,
                    )))
                } else {
                    honest_sync(i, n, f, d, inputs[i].clone())
                }
            })
            .collect();
        let out = RoundEngine::new(config.clone(), nodes).run(f + 2);
        check_sync_outcome(
            &config,
            &inputs,
            &out.decisions,
            &Validity::Exact,
            &format!("seed {BASE_SEED}+1, crash_round {crash_round}"),
        );
    }
}

#[test]
fn sync_bvc_survives_partial_crash_every_prefix() {
    // The crash-during-broadcast matrix: crash in round 0 after sending to
    // only k of the n destinations, for every k.
    let (n, f, d) = (4usize, 1usize, 2usize);
    let inputs = random_inputs(BASE_SEED + 2, n, d);
    for prefix in 0..n {
        let config = SystemConfig::new(n, f).with_faulty(vec![0]);
        let nodes: Vec<SyncNode<SyncBvc>> = (0..n)
            .map(|i| {
                if i == 0 {
                    SyncNode::Byzantine(Box::new(PartialCrashAdversary::new(
                        ParallelEig::new(i, n, f, inputs[i].clone(), VecD::zeros(d)),
                        0,
                        prefix,
                    )))
                } else {
                    honest_sync(i, n, f, d, inputs[i].clone())
                }
            })
            .collect();
        let out = RoundEngine::new(config.clone(), nodes).run(f + 2);
        check_sync_outcome(
            &config,
            &inputs,
            &out.decisions,
            &Validity::Exact,
            &format!("seed {BASE_SEED}+2, prefix {prefix}"),
        );
    }
}

#[test]
fn sync_bvc_survives_message_fuzzing_across_seeds() {
    let (n, f, d) = (4usize, 1usize, 2usize);
    let inputs = random_inputs(BASE_SEED + 3, n, d);
    for trial in 0..8u64 {
        let seed = BASE_SEED ^ trial;
        let config = SystemConfig::new(n, f).with_faulty(vec![1]);
        let nodes: Vec<SyncNode<SyncBvc>> = (0..n)
            .map(|i| {
                if i == 1 {
                    // Well-formed-looking EIG batches with random labels and
                    // random vector payloads.
                    let generator = Box::new(move |rng: &mut StdRng, round: usize| {
                        (0..rng.gen_range(1..4))
                            .map(|_| {
                                let sender = rng.gen_range(0..n);
                                let mut label = vec![sender];
                                while label.len() < round + 1 {
                                    label.push(rng.gen_range(0..n));
                                }
                                let payload =
                                    VecD((0..d).map(|_| rng.gen_range(-9.0..9.0)).collect());
                                (sender, vec![(label, payload)])
                            })
                            .collect()
                    });
                    SyncNode::Byzantine(Box::new(FuzzAdversary::new(seed, n, 5, generator)))
                } else {
                    honest_sync(i, n, f, d, inputs[i].clone())
                }
            })
            .collect();
        let out = RoundEngine::new(config.clone(), nodes).run(f + 2);
        check_sync_outcome(
            &config,
            &inputs,
            &out.decisions,
            &Validity::Exact,
            &format!("fuzz seed {seed} (= {BASE_SEED} ^ {trial})"),
        );
    }
}

#[test]
fn verified_averaging_survives_async_fuzzing() {
    let (n, f, d) = (4usize, 1usize, 3usize);
    let inputs = random_inputs(BASE_SEED + 4, n, d);
    for trial in 0..4u64 {
        let seed = BASE_SEED ^ trial;
        let config = SystemConfig::new(n, f).with_faulty(vec![3]);
        let nodes: Vec<AsyncNode<VerifiedAveraging>> = (0..n)
            .map(|i| {
                if i == 3 {
                    // Random Bracha messages for random tags.
                    let generator = Box::new(move |rng: &mut StdRng| -> VaMsg {
                        let tag = (rng.gen_range(0..n), rng.gen_range(0..6usize));
                        let state = relaxed_bvc::consensus::verified_avg::RoundState {
                            value: VecD((0..d).map(|_| rng.gen_range(-9.0..9.0)).collect()),
                            witness: Vec::new(),
                        };
                        let msg = match rng.gen_range(0..3) {
                            0 => relaxed_bvc::sim::bracha::BrachaMsg::Init(state),
                            1 => relaxed_bvc::sim::bracha::BrachaMsg::Echo(state),
                            _ => relaxed_bvc::sim::bracha::BrachaMsg::Ready(state),
                        };
                        (tag, msg)
                    });
                    AsyncNode::Byzantine(Box::new(AsyncFuzzAdversary::new(seed, n, 3, generator)))
                } else {
                    AsyncNode::Honest(VerifiedAveraging::new(
                        i,
                        n,
                        f,
                        inputs[i].clone(),
                        DeltaMode::MinDelta(Norm::L2),
                        15,
                        tol(),
                    ))
                }
            })
            .collect();
        let mut engine = AsyncEngine::new(config.clone(), nodes);
        let out = engine.run(&mut RandomScheduler::new(seed + 50), 4_000_000);
        assert!(out.all_decided, "fuzz seed {seed} blocked liveness");
        let correct_inputs: Vec<VecD> = config
            .correct_ids()
            .into_iter()
            .map(|i| inputs[i].clone())
            .collect();
        let decisions: Vec<Option<VecD>> = config
            .correct_ids()
            .into_iter()
            .map(|i| out.decisions[i].clone())
            .collect();
        let v = check_execution(
            &correct_inputs,
            &decisions,
            Agreement::Epsilon(1e-3),
            &Validity::InputDependentDeltaP {
                kappa: 1.0,
                norm: Norm::L2,
            },
            tol(),
        );
        assert!(v.ok(), "fuzz seed {seed}: {v:?}");
    }
}

#[test]
fn verified_averaging_survives_duplication_and_reordering() {
    let (n, f, d) = (4usize, 1usize, 3usize);
    let inputs = random_inputs(BASE_SEED + 5, n, d);
    let config = SystemConfig::new(n, f).with_faulty(vec![0]);
    let nodes: Vec<AsyncNode<VerifiedAveraging>> = (0..n)
        .map(|i| {
            let proto = VerifiedAveraging::new(
                i,
                n,
                f,
                inputs[i].clone(),
                DeltaMode::MinDelta(Norm::L2),
                15,
                tol(),
            );
            if i == 0 {
                AsyncNode::Byzantine(Box::new(DuplicatingAdversary::new(proto, BASE_SEED + 77)))
            } else {
                AsyncNode::Honest(proto)
            }
        })
        .collect();
    let mut engine = AsyncEngine::new(config.clone(), nodes);
    let out = engine.run(&mut RandomScheduler::new(BASE_SEED + 9), 4_000_000);
    assert!(out.all_decided, "duplication blocked liveness");
    let decided: Vec<&VecD> = config
        .correct_ids()
        .into_iter()
        .filter_map(|i| out.decisions[i].as_ref())
        .collect();
    for a in &decided {
        for b in &decided {
            assert!(
                a.dist(b, Norm::LInf) < 1e-3,
                "duplication broke ε-agreement (seed {})",
                BASE_SEED + 77
            );
        }
    }
}

fn honest_ds(i: usize, n: usize, f: usize, d: usize, input: VecD) -> SyncNode<SyncBvcDs> {
    SyncNode::Honest(SyncBvcDs::new(
        i,
        n,
        f,
        d,
        input,
        DecisionRule::GammaPoint,
        tol(),
    ))
}

#[test]
fn dolev_strong_substrate_survives_crash_at_every_round() {
    // Same crash matrix as the EIG substrate, over authenticated broadcast:
    // a crash is a legal Byzantine behaviour, so agreement and validity
    // must hold whatever round the process dies in.
    let (n, f, d) = (4usize, 1usize, 2usize);
    let inputs = random_inputs(BASE_SEED + 6, n, d);
    for crash_round in 0..=f + 1 {
        let config = SystemConfig::new(n, f).with_faulty(vec![2]);
        let nodes: Vec<SyncNode<SyncBvcDs>> = (0..n)
            .map(|i| {
                if i == 2 {
                    SyncNode::Byzantine(Box::new(CrashAdversary::new(
                        ParallelDolevStrong::new(i, n, f, inputs[i].clone(), VecD::zeros(d)),
                        crash_round,
                    )))
                } else {
                    honest_ds(i, n, f, d, inputs[i].clone())
                }
            })
            .collect();
        let out = RoundEngine::new(config.clone(), nodes).run(f + 2);
        check_sync_outcome(
            &config,
            &inputs,
            &out.decisions,
            &Validity::Exact,
            &format!("DS substrate, seed {BASE_SEED}+6, crash_round {crash_round}"),
        );
    }
}

#[test]
fn dolev_strong_substrate_survives_partial_crash_every_prefix() {
    let (n, f, d) = (4usize, 1usize, 2usize);
    let inputs = random_inputs(BASE_SEED + 7, n, d);
    for prefix in 0..n {
        let config = SystemConfig::new(n, f).with_faulty(vec![0]);
        let nodes: Vec<SyncNode<SyncBvcDs>> = (0..n)
            .map(|i| {
                if i == 0 {
                    SyncNode::Byzantine(Box::new(PartialCrashAdversary::new(
                        ParallelDolevStrong::new(i, n, f, inputs[i].clone(), VecD::zeros(d)),
                        0,
                        prefix,
                    )))
                } else {
                    honest_ds(i, n, f, d, inputs[i].clone())
                }
            })
            .collect();
        let out = RoundEngine::new(config.clone(), nodes).run(f + 2);
        check_sync_outcome(
            &config,
            &inputs,
            &out.decisions,
            &Validity::Exact,
            &format!("DS substrate, seed {BASE_SEED}+7, prefix {prefix}"),
        );
    }
}

/// Run Bracha-substrate Verified Averaging behind retransmitting links over
/// a faulty network and return (all_decided, decisions, monitor violations).
fn bracha_under_link_faults(seed: u64, fault: LinkFault) -> (bool, Vec<Option<VecD>>, usize) {
    let (n, f, d) = (4usize, 1usize, 3usize);
    let inputs = random_inputs(seed, n, d);
    let config = SystemConfig::new(n, f).with_faulty(vec![1]);
    let nodes: Vec<AsyncNode<ReliableLink<VerifiedAveraging>>> = (0..n)
        .map(|i| {
            let proto = VerifiedAveraging::new(
                i,
                n,
                f,
                inputs[i].clone(),
                DeltaMode::MinDelta(Norm::L2),
                12,
                tol(),
            );
            if i == 1 {
                AsyncNode::Byzantine(Box::new(ReliableLinkAdversary::new(
                    relaxed_bvc::consensus::verified_avg::HonestFacade(proto),
                    n,
                )))
            } else {
                AsyncNode::Honest(ReliableLink::with_defaults(proto, n))
            }
        })
        .collect();
    let mut engine = AsyncEngine::new(config.clone(), nodes);
    let mut faults = NetworkFaults::new(seed, fault);
    let mut monitor = SafetyMonitor::agreement_only(n, |a: &VecD, b: &VecD| {
        let dist = a.dist(b, Norm::LInf);
        (dist > 0.2).then(|| format!("decisions {dist} apart"))
    });
    let out = engine.run_chaos(
        &mut RandomScheduler::new(seed),
        4_000_000,
        &mut faults,
        Some(&mut monitor),
    );
    let decisions: Vec<Option<VecD>> = config
        .correct_ids()
        .into_iter()
        .map(|i| out.decisions[i].clone())
        .collect();
    (out.all_decided, decisions, monitor.alerts().len())
}

#[test]
fn bracha_substrate_safe_under_link_faults_across_seeds() {
    // The Bracha-based asynchronous stack on a network that drops,
    // duplicates and reorders: retransmission must restore liveness and the
    // online monitor must never fire, for every seed.
    let fault = LinkFault {
        drop_prob: 0.2,
        dup_prob: 0.1,
        max_extra_delay: 5,
        reorder_prob: 0.1,
    };
    for trial in 0..5u64 {
        let seed = BASE_SEED + 100 + trial;
        let (all_decided, decisions, violations) = bracha_under_link_faults(seed, fault);
        assert!(all_decided, "link faults blocked liveness (seed {seed})");
        assert_eq!(violations, 0, "monitor fired under link faults (seed {seed})");
        assert!(
            decisions.iter().all(Option::is_some),
            "a correct process is undecided (seed {seed})"
        );
    }
}

#[test]
fn link_fault_runs_replay_bit_identically() {
    // Seed hygiene: the whole chaos stack (inputs, scheduler, link faults)
    // is a pure function of the seed.
    let seed = BASE_SEED + 200;
    let fault = LinkFault {
        drop_prob: 0.25,
        dup_prob: 0.15,
        max_extra_delay: 4,
        reorder_prob: 0.2,
    };
    let a = bracha_under_link_faults(seed, fault);
    let b = bracha_under_link_faults(seed, fault);
    assert_eq!(a.0, b.0, "decidedness diverged (seed {seed})");
    assert_eq!(a.1, b.1, "decisions diverged across reruns (seed {seed})");
    assert_eq!(a.2, b.2, "alert counts diverged (seed {seed})");
}
