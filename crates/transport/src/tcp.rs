//! Real-socket transport: length-prefixed binary framing over `std::net`
//! TCP, with per-peer connection management and dial retry.
//!
//! Topology: every ordered pair gets a *directed* connection — endpoint `i`
//! dials endpoint `j`'s listener and uses that stream exclusively for
//! `i → j` frames, announcing itself first with a HELLO record. The accept
//! side authenticates the link peer from the HELLO once, then tags every
//! frame read off that stream with it; a frame can spoof its *header*, but
//! not the link it arrived on, and the service layer cross-checks the two.
//!
//! Stream format (all little-endian):
//!
//! ```text
//! HELLO:  "RBH" HELLO_VERSION  peer-id u32  t_tx u64
//! frame:  len u32  (1 ≤ len ≤ MAX_FRAME_LEN)  then len bytes
//! ```
//!
//! `t_tx` is the dialer's monotonic send timestamp (µs on the
//! `rbvc_obs::clock` timeline). The accept side stamps its own receive
//! time and publishes the raw skew `t_rx − t_tx` as the gauge
//! `tcp.link.hello_skew_us{src,dst}`; with both directions of a pair
//! measured, the trace assembler solves per-link clock offset and
//! uncertainty (see `rbvc_obs::trace`). Protocol *frames* are untouched —
//! the timestamp exchange piggybacks entirely on the handshake.
//!
//! The timestamp doubles as a **replay guard**: the accept side remembers
//! the highest `t_tx` it has accepted per peer and refuses any HELLO at or
//! below that mark (`tcp.hello.stale_rejected{src,dst}`), *before* the
//! handshake can claim a link generation — a replayed old handshake can
//! therefore never supersede, tear down, or redial over the live link.
//! In plaintext mode the guard orders handshakes on the dialer's
//! per-process monotonic clock, so it covers replays within one process
//! lifetime (the attack E20 mounts); across a genuine process restart the
//! timeline restarts and the generation counter carries the reconnect.
//!
//! ## Authenticated mode (keyed link identity)
//!
//! A mesh built with [`TcpEndpoint::connect_with_auth`] replaces the
//! one-shot plaintext HELLO with the [`crate::auth`] challenge–response
//! handshake (HELLO version 3): the responder sends a fresh random nonce
//! and the dialer answers with an HMAC-SHA-256 over
//! `nonce ‖ dialer ‖ responder ‖ generation ‖ t_tx` under the pair's
//! pre-shared key. A link goes live only after the MAC verifies, so a
//! peer's identity is *proved*, not claimed — impersonation, handshake
//! replay (the nonce is fresh), nonce reflection, MAC tampering, and
//! downgrade-to-plaintext all die at the accept boundary, each attributed
//! with a reason label (`auth.reject{peer,reason}` /
//! `auth.reject_total`). Successful handshakes count in
//! `auth.established{peer}` / `auth.established_total`, and both outcomes
//! surface as [`crate::transport::AuthEvent`]s via
//! [`Transport::take_auth_events`].
//!
//! Under auth the replay guard binds to the **authenticated session
//! epoch** instead of the per-process timestamp timeline: every verified
//! handshake bumps the peer's epoch and *resets* the timestamp floor, so
//! a genuinely restarted node — whose monotonic clock restarted near
//! zero — supersedes its own stale state the moment its fresh handshake
//! verifies. The plaintext ordering check is unnecessary there because a
//! replayed handshake can never verify against a fresh nonce. This closes
//! the plaintext guard's documented per-process limitation.
//!
//! Degrade-don't-panic at every socket boundary: a bad HELLO, an oversized
//! or zero length prefix, or a mid-stream read error poisons *that one
//! connection* — it is closed, the event is recorded in the endpoint's
//! [`ErrorLog`], and every other link keeps flowing. A length-prefix
//! violation in particular MUST kill the stream: after it the byte stream
//! has no recoverable frame boundary.
//!
//! ## Reconnection (crash-recovery support)
//!
//! Links are not permanent. The accept loop runs for the endpoint's whole
//! lifetime, so a restarted peer can dial back in; each inbound link
//! carries a per-peer *generation* — a fresh authenticated HELLO from a
//! peer supersedes that peer's previous inbound link (the stale reader
//! winds down, its queued frames are discarded) and proactively tears down
//! our outbound stream to that peer, since a peer that re-dialed has
//! restarted and the old stream is dead or deaf (write-failure detection
//! alone is lazy). Outbound links that died — by write failure, peer EOF,
//! or that teardown — are re-dialed lazily on subsequent flushes with
//! exponential backoff, reset on success. Every successful redial is
//! reported through [`Transport::take_reconnects`] so the service layer
//! can replay its outbound history to the returned peer; frames queued or
//! in flight while the link was down are recovered by that replay, and
//! receivers deduplicate.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;
use rbvc_obs::{Counter, Gauge, LinkHealth, LinkMonitor, Registry};
use rbvc_sim::config::ProcessId;
use rbvc_sim::error::{ErrorLog, ProtocolError};

use crate::auth::{self, MeshAuth};
use crate::transport::{AuthEvent, Transport};

/// Global counter of dial attempts that failed and were retried; inspect it
/// through the metrics registry (`tcp.dial.retries`).
fn dial_retry_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| Registry::global().counter("tcp.dial.retries"))
}

/// HELLO magic (3 bytes) followed by the handshake version byte.
pub const HELLO_MAGIC: [u8; 3] = *b"RBH";
/// Handshake version: 2 added the trailing send-timestamp u64 (v1 was the
/// 8-byte form without it). Versioned separately from [`crate::wire`]
/// because the handshake can evolve without touching the frame codec.
pub const HELLO_VERSION: u8 = 2;
/// Total HELLO size on the wire: magic + version + peer u32 + t_tx u64.
pub const HELLO_LEN: u64 = 16;
/// Largest frame the framing layer accepts (16 MiB).
pub const MAX_FRAME_LEN: usize = 16 << 20;
/// Dial retry budget.
pub const DIAL_ATTEMPTS: u32 = 10;
/// First-retry backoff; doubles per attempt, capped at [`DIAL_BACKOFF_CAP`].
pub const DIAL_BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Backoff ceiling.
pub const DIAL_BACKOFF_CAP: Duration = Duration::from_millis(64);
/// Cap on the lazy-redial skip counter: a down peer is re-dialed at most
/// every `REDIAL_SKIP_CAP` flushes once backoff saturates.
pub const REDIAL_SKIP_CAP: u32 = 64;

/// Events flowing from the reader threads to the endpoint. Frame and
/// link-lifecycle events are tagged with the inbound link *generation*
/// they were observed on, so the endpoint can discard anything from a
/// link that a newer HELLO has since superseded.
enum RxEvent {
    /// A frame from `peer` on link generation `gen`, stamped with its
    /// arrival time (µs on the `rbvc_obs::clock` timeline) in the reader
    /// thread — the service layer uses the stamp to separate on-wire time
    /// from time spent queued behind a busy poll loop.
    Frame(ProcessId, u64, u64, Vec<u8>),
    /// A fresh authenticated HELLO from `peer` superseded generation-1 or
    /// later (only reconnects are announced; the first link is silent).
    PeerUp(ProcessId, u64),
    /// The link from `peer` hit clean EOF — the peer closed or crashed.
    /// Not an error: recorded only as a teardown trigger.
    PeerDown(ProcessId, u64),
    /// The connection from `peer` died (IO error, framing violation).
    /// `None` peer: the failure happened before HELLO authentication.
    LinkDown(Option<ProcessId>, String),
    /// A keyed handshake claiming `peer` verified; the inbound link
    /// entered authenticated session `epoch` (auth mode only).
    AuthOk(ProcessId, u64),
    /// A handshake failed verification and the connection was refused
    /// (auth mode only). The claimed peer, when parseable, and the
    /// stable reason label. Unlike [`RxEvent::LinkDown`] this must *not*
    /// tear down or discredit the live link — a forged connection refused
    /// at the door is not a failure of the genuine session.
    AuthReject(Option<ProcessId>, String),
}

/// Dial `addr` with exponential backoff: attempt, sleep 1ms, 2ms, … (capped)
/// between failures, up to [`DIAL_ATTEMPTS`] attempts.
///
/// # Errors
/// [`ProtocolError::Transport`] once the retry budget is exhausted.
pub fn dial_with_backoff(
    addr: SocketAddr,
    peer: ProcessId,
) -> Result<TcpStream, ProtocolError> {
    let mut backoff = DIAL_BACKOFF_BASE;
    let mut last_err = String::new();
    for attempt in 0..DIAL_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                dial_retry_counter().inc();
                last_err = e.to_string();
                if attempt + 1 < DIAL_ATTEMPTS {
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(DIAL_BACKOFF_CAP);
                }
            }
        }
    }
    Err(ProtocolError::Transport {
        peer: Some(peer),
        reason: format!("dial {addr} failed after {DIAL_ATTEMPTS} attempts: {last_err}"),
    })
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary; `Err` on truncation, IO failure, or a length-prefix violation.
fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, String> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(format!("length-prefix read failed: {e}")),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        // An out-of-range length means the stream is desynchronized or the
        // peer is hostile; there is no frame boundary to resynchronize on.
        return Err(format!("length prefix {len} outside 1..={MAX_FRAME_LEN}"));
    }
    let mut buf = vec![0u8; len];
    stream
        .read_exact(&mut buf)
        .map_err(|e| format!("truncated frame body ({len} bytes expected): {e}"))?;
    Ok(Some(buf))
}

/// One process's endpoint of a TCP mesh.
pub struct TcpEndpoint {
    id: ProcessId,
    n: usize,
    /// Every peer's listener address (what this endpoint dials/redials).
    addrs: Vec<SocketAddr>,
    /// This endpoint's own listener address (for the shutdown wakeup).
    listen_addr: SocketAddr,
    /// Outbound streams, indexed by destination (`None`: self, or a link
    /// currently down and awaiting lazy redial).
    writers: Vec<Option<TcpStream>>,
    /// Per-peer outbound batches: frames queued since the last flush,
    /// already length-prefixed, concatenated for a single write.
    outbox: Vec<Vec<u8>>,
    rx: Receiver<RxEvent>,
    /// Clone source for reader threads; also serves the self-link.
    self_tx: Sender<RxEvent>,
    /// Current inbound link generation per peer; a reader that no longer
    /// matches its peer's slot has been superseded by a newer HELLO.
    generations: Arc<Vec<AtomicU64>>,
    /// Tells the accept loop to exit (checked after each accept; the
    /// endpoint's `Drop` wakes the loop with a self-dial).
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<thread::JoinHandle<()>>,
    /// Consecutive failed redials per peer, driving the skip backoff.
    redial_failures: Vec<u32>,
    /// Flushes to skip before the next redial attempt per peer.
    redial_skip: Vec<u32>,
    /// Peers re-established since the last [`Transport::take_reconnects`].
    pending_reconnects: Vec<ProcessId>,
    /// Set per peer by a successful redial, cleared by the first `PeerUp`
    /// from that peer: our fresh outbound dial registers at the peer as a
    /// reconnect, and its `PeerUp` echo must not tear down the very writer
    /// the redial just built — without this, two live endpoints redialing
    /// each other feed an endless teardown/redial storm.
    fresh_writer: Vec<bool>,
    /// Per-peer redial veto, set by [`TcpEndpoint::sever_link`]: a severed
    /// link stays severed (fault-injection hook for the health campaign).
    redial_quench: Vec<bool>,
    /// Per-link EWMA/straggler/flap tracker behind
    /// [`Transport::link_health`].
    link_monitor: LinkMonitor,
    /// `Some` = authenticated mode: this node's pairwise key share, used
    /// by the dialer side of every (re)dial.
    auth: Option<Arc<MeshAuth>>,
    /// Link-identity verdicts since the last [`Transport::take_auth_events`].
    pending_auth_events: Vec<AuthEvent>,
    /// Responder-side verified-handshake count (shared with readers).
    auth_established: Arc<AtomicU64>,
    /// Shared with reader threads: responder-side challenge writes count
    /// toward the endpoint's outbound bytes.
    bytes_sent: Arc<AtomicU64>,
    bytes_received: Arc<AtomicU64>,
    errors: Arc<Mutex<ErrorLog>>,
    /// Per-destination outbound counters (`tcp.link.tx_frames{src,dst}` /
    /// `tcp.link.tx_bytes{src,dst}` in the global metrics registry).
    tx_frames: Vec<Counter>,
    tx_bytes: Vec<Counter>,
    /// High-water mark of any single per-destination outbox, in bytes
    /// (`tcp.outbox.max_bytes{src}`).
    outbox_depth: Gauge,
}

/// Per-peer replay-guard state.
///
/// Plaintext mode uses only `max_t_tx` — the highest HELLO timestamp
/// accepted from the peer (0 = never seen), refusing anything at or below
/// it. Auth mode binds the guard to the **authenticated session epoch**
/// instead: every verified handshake bumps `epoch` and *resets* the
/// timestamp floor to that session's stamp, so a restarted node (whose
/// monotonic timeline restarted near zero) supersedes its own stale state
/// the moment its handshake verifies — replays can never claim an epoch
/// because they cannot answer a fresh nonce.
struct ReplayGuard {
    /// Authenticated sessions accepted so far (auth mode; 0 in plaintext).
    epoch: u64,
    /// Highest handshake timestamp accepted (floor of the plaintext
    /// ordering check; informational under auth).
    max_t_tx: u64,
}

/// Shared state a reader thread needs, cloned per accepted connection.
#[derive(Clone)]
struct ReaderShared {
    local: ProcessId,
    n: usize,
    tx: Sender<RxEvent>,
    bytes_received: Arc<AtomicU64>,
    /// Shared with the endpoint: the responder side of an authenticated
    /// handshake writes the challenge from the reader thread.
    bytes_sent: Arc<AtomicU64>,
    generations: Arc<Vec<AtomicU64>>,
    guards: Arc<Vec<Mutex<ReplayGuard>>>,
    /// `Some` = authenticated mode: this node's pairwise key share.
    auth: Option<Arc<MeshAuth>>,
    /// Responder-side verified-handshake count (tests assert on it
    /// without reaching into the process-global registry).
    auth_established: Arc<AtomicU64>,
}

/// Refuse a handshake: count it (`auth.reject{peer,reason,dst}` +
/// `auth.reject_total`) and report it to the endpoint. Deliberately *not*
/// a `LinkDown` — a forged connection refused at the door must not tear
/// down or discredit the genuine live link.
fn reject_handshake(shared: &ReaderShared, peer: Option<ProcessId>, reason: &str) {
    let peer_s = peer.map_or_else(|| "?".to_string(), |p| p.to_string());
    let dst = shared.local.to_string();
    Registry::global()
        .counter_with(
            "auth.reject",
            &[("peer", peer_s.as_str()), ("reason", reason), ("dst", dst.as_str())],
        )
        .inc();
    Registry::global().counter("auth.reject_total").inc();
    let _ = shared.tx.send(RxEvent::AuthReject(peer, reason.to_string()));
}

/// Responder side of the keyed challenge–response handshake, after the v3
/// HELLO has been read and structurally validated. Returns the session
/// epoch and the dialer's `t_tx` on success; on failure the rejection has
/// already been counted and reported.
fn respond_handshake(
    stream: &mut TcpStream,
    shared: &ReaderShared,
    a: &MeshAuth,
    peer: ProcessId,
) -> Option<(u64, u64)> {
    let nonce = auth::fresh_nonce();
    if stream.write_all(&auth::encode_challenge(&nonce)).is_err() {
        reject_handshake(shared, Some(peer), "challenge-write");
        return None;
    }
    shared.bytes_sent.fetch_add(auth::CHALLENGE_LEN as u64, Ordering::Relaxed);
    let mut resp = [0u8; auth::RESPONSE_LEN];
    if stream.read_exact(&mut resp).is_err() {
        reject_handshake(shared, Some(peer), "truncated-response");
        return None;
    }
    shared
        .bytes_received
        .fetch_add(auth::RESPONSE_LEN as u64, Ordering::Relaxed);
    let Ok(r) = auth::decode_response(&resp) else {
        reject_handshake(shared, Some(peer), "bad-response");
        return None;
    };
    if r.dialer as usize != peer {
        reject_handshake(shared, Some(peer), "peer-mismatch");
        return None;
    }
    let expected = auth::response_mac(
        a.key(peer),
        &nonce,
        peer as u32,
        shared.local as u32,
        r.generation,
        r.t_tx,
    );
    if !auth::mac_eq(&expected, &r.mac) {
        reject_handshake(shared, Some(peer), "bad-mac");
        return None;
    }
    // Verified: open the next authenticated session epoch and reset the
    // timestamp floor to this session's stamp (see [`ReplayGuard`]).
    let epoch = {
        let mut g = shared.guards[peer].lock();
        g.epoch += 1;
        g.max_t_tx = r.t_tx;
        g.epoch
    };
    shared.auth_established.fetch_add(1, Ordering::Relaxed);
    let (peer_s, dst) = (peer.to_string(), shared.local.to_string());
    Registry::global()
        .counter_with(
            "auth.established",
            &[("peer", peer_s.as_str()), ("dst", dst.as_str())],
        )
        .inc();
    Registry::global().counter("auth.established_total").inc();
    let _ = shared.tx.send(RxEvent::AuthOk(peer, epoch));
    Some((epoch, r.t_tx))
}

/// Spawn a reader thread that authenticates the handshake (plaintext
/// replay-guarded HELLO, or keyed challenge–response in auth mode),
/// claims the next inbound generation for its peer, and pumps frames into
/// `shared.tx` until the stream dies or a newer link supersedes it.
fn spawn_reader(mut stream: TcpStream, shared: ReaderShared) {
    thread::spawn(move || {
        // A connection that stalls mid-handshake must not pin this thread
        // (or, in auth mode, hold a half-open claim) forever.
        let _ = stream.set_read_timeout(Some(auth::HANDSHAKE_TIMEOUT));
        let mut hello = [0u8; 16];
        if let Err(e) = stream.read_exact(&mut hello) {
            let _ = shared
                .tx
                .send(RxEvent::LinkDown(None, format!("HELLO read failed: {e}")));
            return;
        }
        let t_rx = rbvc_obs::clock::now_us();
        let version = hello[3];
        // v2 and v3 share the prefix layout, so the claimed peer parses
        // either way — rejections get attributed whenever possible.
        let peer = u32::from_le_bytes([hello[4], hello[5], hello[6], hello[7]]) as usize;
        let t_tx = u64::from_le_bytes(hello[8..16].try_into().expect("8 bytes"));
        match &shared.auth {
            None => {
                if hello[..3] != HELLO_MAGIC || version != HELLO_VERSION {
                    let _ = shared
                        .tx
                        .send(RxEvent::LinkDown(None, "bad HELLO magic/version".into()));
                    return;
                }
                if peer >= shared.n {
                    let _ = shared.tx.send(RxEvent::LinkDown(
                        None,
                        format!("HELLO claims ghost peer {peer} (n = {})", shared.n),
                    ));
                    return;
                }
                // Replay guard, plaintext flavor: every legitimate HELLO
                // carries a strictly increasing monotonic timestamp
                // (stamped at dial time, clamped away from the 0 =
                // never-seen sentinel), so a HELLO at or below the highest
                // accepted stamp for this peer is a replay of an old
                // handshake. Refuse it *before* claiming a generation —
                // the live link must not be superseded, torn down, or
                // redialed over a replayed record. Limitation (documented
                // in the module docs): the timestamp is per-OS-process
                // monotonic; the authenticated mode is what removes it.
                let stale = {
                    let mut g = shared.guards[peer].lock();
                    if g.max_t_tx >= t_tx {
                        Some(g.max_t_tx)
                    } else {
                        g.max_t_tx = t_tx;
                        None
                    }
                };
                if let Some(prev) = stale {
                    let (src, dst) = (peer.to_string(), shared.local.to_string());
                    let labels = [("src", src.as_str()), ("dst", dst.as_str())];
                    Registry::global()
                        .counter_with("tcp.hello.stale_rejected", &labels)
                        .inc();
                    Registry::global().counter("tcp.hello.stale_rejected_total").inc();
                    let _ = shared.tx.send(RxEvent::LinkDown(
                        Some(peer),
                        format!(
                            "stale HELLO replay claiming peer {peer}: \
                             t_tx {t_tx} <= last accepted {prev}"
                        ),
                    ));
                    return;
                }
            }
            Some(a) => {
                if hello[..3] != HELLO_MAGIC {
                    reject_handshake(&shared, None, "bad-magic");
                    return;
                }
                let claimed = if peer < shared.n { Some(peer) } else { None };
                if version == HELLO_VERSION {
                    // A plaintext HELLO against an authenticated mesh is a
                    // downgrade attempt, never a legitimate peer.
                    reject_handshake(&shared, claimed, "downgrade");
                    return;
                }
                if version != auth::AUTH_VERSION {
                    reject_handshake(&shared, claimed, "bad-version");
                    return;
                }
                if peer >= shared.n {
                    reject_handshake(&shared, None, "ghost-peer");
                    return;
                }
                if peer == shared.local {
                    // A node never dials itself over the wire (the
                    // self-link is process-internal).
                    reject_handshake(&shared, Some(peer), "self");
                    return;
                }
                if respond_handshake(&mut stream, &shared, a, peer).is_none() {
                    return;
                }
                Registry::global()
                    .histogram("auth.handshake_us")
                    .record(rbvc_obs::clock::now_us().saturating_sub(t_rx));
            }
        }
        // The stream is authenticated (by replay-guarded HELLO or by MAC):
        // claim this link's generation; any older reader for the same peer
        // is now stale and will wind down.
        let _ = stream.set_read_timeout(None);
        let (src, dst) = (peer.to_string(), shared.local.to_string());
        let labels = [("src", src.as_str()), ("dst", dst.as_str())];
        let gen = shared.generations[peer].fetch_add(1, Ordering::SeqCst) + 1;
        if gen > 1 {
            let _ = shared.tx.send(RxEvent::PeerUp(peer, gen));
        }
        shared.bytes_received.fetch_add(HELLO_LEN, Ordering::Relaxed);
        // Raw directed skew: receive clock minus send clock, both from the
        // HELLO leg (the stamp predates the challenge round-trip). Within
        // one process all endpoints share a clock, so this is pure one-way
        // delay; across processes the trace assembler combines the two
        // directions into an offset ± uncertainty per link.
        Registry::global()
            .gauge_with("tcp.link.hello_skew_us", &labels)
            .set(t_rx as i64 - t_tx as i64);
        let rx_frames = Registry::global().counter_with("tcp.link.rx_frames", &labels);
        let rx_bytes = Registry::global().counter_with("tcp.link.rx_bytes", &labels);
        loop {
            match read_frame(&mut stream) {
                Ok(Some(frame)) => {
                    if shared.generations[peer].load(Ordering::SeqCst) != gen {
                        return; // superseded by a newer HELLO
                    }
                    let arrived_us = rbvc_obs::clock::now_us();
                    shared
                        .bytes_received
                        .fetch_add(4 + frame.len() as u64, Ordering::Relaxed);
                    rx_frames.inc();
                    rx_bytes.add(4 + frame.len() as u64);
                    if shared
                        .tx
                        .send(RxEvent::Frame(peer, gen, arrived_us, frame))
                        .is_err()
                    {
                        return; // endpoint gone
                    }
                }
                Ok(None) => {
                    let _ = shared.tx.send(RxEvent::PeerDown(peer, gen));
                    return; // clean EOF
                }
                Err(reason) => {
                    let _ = shared.tx.send(RxEvent::LinkDown(Some(peer), reason));
                    return;
                }
            }
        }
    });
}

/// The 16-byte HELLO record announcing `id` with an explicit send
/// timestamp. Exposed for tests and the Byzantine attack registry, which
/// forge handshakes against the replay guard; legitimate endpoints stamp
/// through [`hello_bytes`].
#[must_use]
pub fn hello_with_timestamp(id: ProcessId, t_tx: u64) -> [u8; 16] {
    let mut hello = [0u8; 16];
    hello[..3].copy_from_slice(&HELLO_MAGIC);
    hello[3] = HELLO_VERSION;
    hello[4..8].copy_from_slice(&(id as u32).to_le_bytes());
    hello[8..].copy_from_slice(&t_tx.to_le_bytes());
    hello
}

/// The HELLO this endpoint announces itself with, stamped with the
/// monotonic send time just before the write — clamped to ≥ 1 so a stamp
/// can never collide with the replay guard's 0 = never-seen sentinel.
fn hello_bytes(id: ProcessId) -> [u8; 16] {
    hello_with_timestamp(id, rbvc_obs::clock::now_us().max(1))
}

impl TcpEndpoint {
    /// Stand up endpoint `id` of an `addrs.len()`-process mesh with
    /// plaintext HELLO link identity: starts accepting on `listener`
    /// (which peers dial) and dials every other peer's listener with
    /// retry + backoff.
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] if a peer cannot be dialed within the
    /// retry budget or the HELLO cannot be written.
    pub fn connect(
        id: ProcessId,
        listener: TcpListener,
        addrs: &[SocketAddr],
    ) -> Result<Self, ProtocolError> {
        Self::connect_inner(id, listener, addrs, None)
    }

    /// Stand up endpoint `id` of an authenticated mesh: link identity is
    /// proved by the [`crate::auth`] keyed challenge–response handshake,
    /// with this node's pairwise keys derived from the shared mesh
    /// `seed` (which is not retained). All endpoints of the mesh must be
    /// constructed **concurrently** — the dialer blocks on the responder's
    /// challenge, which requires the responder's accept loop to be live.
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] if a peer cannot be dialed within the
    /// retry budget or its handshake fails.
    pub fn connect_with_auth(
        id: ProcessId,
        listener: TcpListener,
        addrs: &[SocketAddr],
        seed: &[u8; 32],
    ) -> Result<Self, ProtocolError> {
        let auth = Arc::new(MeshAuth::derive(seed, id, addrs.len()));
        Self::connect_inner(id, listener, addrs, Some(auth))
    }

    fn connect_inner(
        id: ProcessId,
        listener: TcpListener,
        addrs: &[SocketAddr],
        auth: Option<Arc<MeshAuth>>,
    ) -> Result<Self, ProtocolError> {
        let n = addrs.len();
        assert!(id < n, "endpoint id must index addrs");
        let (tx, rx) = channel::unbounded();
        let bytes_received = Arc::new(AtomicU64::new(0));
        let bytes_sent = Arc::new(AtomicU64::new(0));
        let errors = Arc::new(Mutex::new(ErrorLog::new()));
        let generations: Arc<Vec<AtomicU64>> =
            Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        // Per-peer replay-guard state, owned by the accept loop's readers.
        let guards: Arc<Vec<Mutex<ReplayGuard>>> = Arc::new(
            (0..n)
                .map(|_| Mutex::new(ReplayGuard { epoch: 0, max_t_tx: 0 }))
                .collect(),
        );
        let auth_established = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let listen_addr = listener.local_addr().unwrap_or(addrs[id]);

        // Accept loop: hand each inbound stream to its own reader, for the
        // endpoint's whole lifetime — a restarted peer re-dials in at any
        // point and its fresh HELLO supersedes the stale link. `Drop`
        // wakes the blocking accept with a self-dial after setting the
        // shutdown flag.
        let accept_handle = {
            let shared = ReaderShared {
                local: id,
                n,
                tx: tx.clone(),
                bytes_received: Arc::clone(&bytes_received),
                bytes_sent: Arc::clone(&bytes_sent),
                generations: Arc::clone(&generations),
                guards,
                auth: auth.clone(),
                auth_established: Arc::clone(&auth_established),
            };
            let errors = Arc::clone(&errors);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        spawn_reader(stream, shared.clone());
                    }
                    Err(e) => {
                        if shutdown.load(Ordering::SeqCst) {
                            return;
                        }
                        errors.lock().record(ProtocolError::Transport {
                            peer: None,
                            reason: format!("accept failed: {e}"),
                        });
                        // Avoid a hot error loop on a sick listener.
                        thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        };

        // Dial every peer for the outbound direction and announce (or in
        // auth mode, prove) ourselves.
        let mut writers: Vec<Option<TcpStream>> = Vec::with_capacity(n);
        for (dst, addr) in addrs.iter().enumerate() {
            if dst == id {
                writers.push(None);
                continue;
            }
            let mut stream = dial_with_backoff(*addr, dst)?;
            stream.set_nodelay(true).ok();
            match &auth {
                Some(a) => {
                    auth::dial_handshake(
                        &mut stream,
                        id,
                        dst,
                        a.key(dst),
                        a.next_generation(),
                        rbvc_obs::clock::now_us().max(1),
                    )
                    .map_err(|reason| ProtocolError::Transport {
                        peer: Some(dst),
                        reason: format!("handshake with {dst} failed: {reason}"),
                    })?;
                    bytes_sent.fetch_add(auth::DIAL_HANDSHAKE_TX_LEN, Ordering::Relaxed);
                }
                None => {
                    stream
                        .write_all(&hello_bytes(id))
                        .map_err(|e| ProtocolError::Transport {
                            peer: Some(dst),
                            reason: format!("HELLO write failed: {e}"),
                        })?;
                    bytes_sent.fetch_add(HELLO_LEN, Ordering::Relaxed);
                }
            }
            writers.push(Some(stream));
        }

        let src = id.to_string();
        let (tx_frames, tx_bytes) = (0..n)
            .map(|dst| {
                let dst = dst.to_string();
                let labels = [("src", src.as_str()), ("dst", dst.as_str())];
                (
                    Registry::global().counter_with("tcp.link.tx_frames", &labels),
                    Registry::global().counter_with("tcp.link.tx_bytes", &labels),
                )
            })
            .unzip();
        let outbox_depth =
            Registry::global().gauge_with("tcp.outbox.max_bytes", &[("src", src.as_str())]);
        let mut link_monitor = LinkMonitor::new(id as u32, n);
        if auth.is_some() {
            // Inbound links start Pending: identity is only believed once
            // a handshake from that peer verifies.
            link_monitor.set_auth_expected();
        }
        Ok(TcpEndpoint {
            id,
            n,
            addrs: addrs.to_vec(),
            listen_addr,
            writers,
            outbox: vec![Vec::new(); n],
            rx,
            self_tx: tx,
            generations,
            shutdown,
            accept_handle: Some(accept_handle),
            redial_failures: vec![0; n],
            redial_skip: vec![0; n],
            pending_reconnects: Vec::new(),
            fresh_writer: vec![false; n],
            redial_quench: vec![false; n],
            link_monitor,
            auth,
            pending_auth_events: Vec::new(),
            auth_established,
            bytes_sent,
            bytes_received,
            errors,
            tx_frames,
            tx_bytes,
            outbox_depth,
        })
    }

    /// Responder-side count of verified inbound handshakes (0 on a
    /// plaintext mesh). Test/diagnostic accessor — campaign assertions use
    /// it without touching the process-global registry.
    #[must_use]
    pub fn auth_handshakes(&self) -> u64 {
        self.auth_established.load(Ordering::Relaxed)
    }

    /// Whether this endpoint requires keyed handshakes on its links.
    #[must_use]
    pub fn auth_enabled(&self) -> bool {
        self.auth.is_some()
    }

    /// Address this endpoint's accept loop is bound to. Attack harnesses
    /// dial it raw to exercise the handshake path from outside the mesh.
    #[must_use]
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Tear down the outbound link to `dst` and arm an immediate redial on
    /// the next flush.
    fn mark_peer_down(&mut self, dst: ProcessId) {
        self.writers[dst] = None;
        self.redial_failures[dst] = 0;
        self.redial_skip[dst] = 0;
        self.fresh_writer[dst] = false;
        self.link_monitor.on_peer_down(dst as u32);
    }

    /// Fault-injection hook (health campaign): cut the outbound stream to
    /// `dst` — the peer's reader observes EOF and marks the inbound link
    /// down — and veto every future redial so the link *stays* severed.
    /// Real traffic never calls this.
    pub fn sever_link(&mut self, dst: ProcessId) {
        if dst >= self.n || dst == self.id {
            return;
        }
        if let Some(stream) = self.writers[dst].take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        self.outbox[dst].clear();
        self.redial_quench[dst] = true;
        self.link_monitor.on_peer_down(dst as u32);
    }

    /// Lazily re-dial every down peer whose backoff allows an attempt; a
    /// success restores the writer and queues the peer for
    /// [`Transport::take_reconnects`].
    fn try_redials(&mut self) {
        for dst in 0..self.n {
            if dst == self.id || self.writers[dst].is_some() || self.redial_quench[dst] {
                continue;
            }
            if self.redial_skip[dst] > 0 {
                self.redial_skip[dst] -= 1;
                continue;
            }
            let attempt = TcpStream::connect(self.addrs[dst])
                .map_err(|e| e.to_string())
                .and_then(|mut stream| {
                    stream.set_nodelay(true).ok();
                    // Re-dials re-authenticate: every fresh connection of
                    // an auth mesh proves identity again with a fresh
                    // generation and a fresh nonce from the responder.
                    match &self.auth {
                        Some(a) => auth::dial_handshake(
                            &mut stream,
                            self.id,
                            dst,
                            a.key(dst),
                            a.next_generation(),
                            rbvc_obs::clock::now_us().max(1),
                        )
                        .map(|()| (stream, auth::DIAL_HANDSHAKE_TX_LEN)),
                        None => stream
                            .write_all(&hello_bytes(self.id))
                            .map_err(|e| e.to_string())
                            .map(|()| (stream, HELLO_LEN)),
                    }
                });
            match attempt {
                Ok((stream, tx_len)) => {
                    self.bytes_sent.fetch_add(tx_len, Ordering::Relaxed);
                    self.writers[dst] = Some(stream);
                    self.redial_failures[dst] = 0;
                    self.redial_skip[dst] = 0;
                    self.fresh_writer[dst] = true;
                    self.link_monitor.on_peer_up(dst as u32);
                    self.pending_reconnects.push(dst);
                    let (src, dst_s) = (self.id.to_string(), dst.to_string());
                    Registry::global()
                        .counter_with(
                            "tcp.link.reconnects",
                            &[("src", src.as_str()), ("dst", dst_s.as_str())],
                        )
                        .inc();
                }
                Err(_) => {
                    dial_retry_counter().inc();
                    self.link_monitor
                        .on_dial_failure(dst as u32, rbvc_obs::clock::now_us());
                    self.redial_failures[dst] = self.redial_failures[dst].saturating_add(1);
                    self.redial_skip[dst] =
                        (1u32 << self.redial_failures[dst].min(6)).min(REDIAL_SKIP_CAP);
                }
            }
        }
    }

    /// Fold one reader event into endpoint state; delivers accepted frames
    /// (with their reader-thread arrival stamps) into `out`.
    fn absorb(&mut self, ev: RxEvent, out: &mut Vec<(ProcessId, u64, Vec<u8>)>) {
        match ev {
            RxEvent::Frame(peer, gen, arrived_us, bytes) => {
                // A stale-generation frame arrived before its link was
                // superseded; the restarted peer replays everything that
                // matters, so dropping it here is safe and keeps one
                // logical inbound stream per peer.
                if gen == self.generations[peer].load(Ordering::SeqCst) {
                    self.link_monitor.on_frame(peer as u32, arrived_us);
                    out.push((peer, arrived_us, bytes));
                }
            }
            RxEvent::PeerUp(peer, gen) => {
                if gen == self.generations[peer].load(Ordering::SeqCst) {
                    self.link_monitor.on_peer_up(peer as u32);
                    if std::mem::take(&mut self.fresh_writer[peer]) {
                        // This PeerUp is the echo of our own redial — the
                        // peer registered our fresh dial as a reconnect and
                        // proactively re-dialed back. Our writer already
                        // postdates its teardown; keep it, or the two live
                        // endpoints chase each other in a redial storm.
                    } else {
                        // The peer re-dialed us first: it restarted, so the
                        // outbound stream we still hold predates its crash
                        // and is dead or deaf. Tear it down now rather than
                        // waiting for a write failure, and let the next
                        // flush redial.
                        self.mark_peer_down(peer);
                    }
                    if self.auth.is_some() {
                        // A PeerUp under auth is only ever announced by an
                        // inbound link whose handshake verified; the
                        // outbound teardown above must not mask that the
                        // inbound side is authenticated and live.
                        self.link_monitor.on_auth_ok(peer as u32);
                    }
                }
            }
            RxEvent::PeerDown(peer, gen) => {
                if gen == self.generations[peer].load(Ordering::SeqCst) {
                    self.mark_peer_down(peer);
                }
            }
            RxEvent::LinkDown(peer, reason) => {
                if let Some(p) = peer {
                    self.link_monitor.on_peer_down(p as u32);
                }
                self.errors.lock().record(ProtocolError::Transport { peer, reason });
            }
            RxEvent::AuthOk(peer, epoch) => {
                self.link_monitor.on_auth_ok(peer as u32);
                self.pending_auth_events.push(AuthEvent::Established { peer, epoch });
            }
            RxEvent::AuthReject(peer, reason) => {
                // Recorded and attributed, but deliberately *not* a peer
                // teardown: a forged connection refused at the door must
                // not mark the genuine live link down.
                if let Some(p) = peer {
                    self.link_monitor.on_auth_reject(p as u32, &reason);
                }
                self.errors.lock().record(ProtocolError::Transport {
                    peer,
                    reason: format!("handshake rejected: {reason}"),
                });
                self.pending_auth_events.push(AuthEvent::Rejected { peer, reason });
            }
        }
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag and releases the
        // listener (the campaign rebinds the same address on restart).
        let woke =
            TcpStream::connect_timeout(&self.listen_addr, Duration::from_millis(500)).is_ok();
        if let Some(handle) = self.accept_handle.take() {
            if woke {
                let _ = handle.join();
            }
            // If the wakeup dial failed the listener is already dead and
            // the loop exits on its own accept error; don't risk a hang.
        }
    }
}

impl Transport for TcpEndpoint {
    fn local_id(&self) -> ProcessId {
        self.id
    }

    fn n(&self) -> usize {
        self.n
    }

    fn send(&mut self, dst: ProcessId, frame: Vec<u8>) -> Result<(), ProtocolError> {
        if dst >= self.n {
            let e = ProtocolError::Transport {
                peer: Some(dst),
                reason: format!("ghost destination {dst} in a {}-process mesh", self.n),
            };
            self.errors.lock().record(e.clone());
            return Err(e);
        }
        if dst == self.id {
            // Self-link: deliver through the local queue, skip the wire.
            // Generation 0 matches the never-bumped self slot; the arrival
            // stamp is the send time (zero on-wire latency).
            let _ = self
                .self_tx
                .send(RxEvent::Frame(self.id, 0, rbvc_obs::clock::now_us(), frame));
            return Ok(());
        }
        if self.writers[dst].is_none() {
            let e = ProtocolError::Transport {
                peer: Some(dst),
                reason: "link down awaiting redial".into(),
            };
            self.errors.lock().record(e.clone());
            return Err(e);
        }
        let batch = &mut self.outbox[dst];
        batch.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        batch.extend_from_slice(&frame);
        self.tx_frames[dst].inc();
        self.outbox_depth
            .record_max(i64::try_from(batch.len()).unwrap_or(i64::MAX));
        Ok(())
    }

    fn flush(&mut self) -> Result<(), ProtocolError> {
        self.try_redials();
        let mut first_err = None;
        for dst in 0..self.n {
            if self.outbox[dst].is_empty() {
                continue;
            }
            if self.writers[dst].is_none() {
                // Link down: drop the batch — once the redial lands, the
                // service replays its history to this peer, which covers
                // everything discarded here.
                self.outbox[dst].clear();
                continue;
            }
            let batch = std::mem::take(&mut self.outbox[dst]);
            let stream = self.writers[dst].as_mut().expect("checked above");
            match stream.write_all(&batch) {
                Ok(()) => {
                    self.bytes_sent.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    self.tx_bytes[dst].add(batch.len() as u64);
                }
                Err(e) => {
                    // This link is gone; degrade it, arm the lazy redial,
                    // and keep flushing the rest of the mesh.
                    let err = ProtocolError::Transport {
                        peer: Some(dst),
                        reason: format!("batched write failed: {e}"),
                    };
                    self.errors.lock().record(err.clone());
                    self.mark_peer_down(dst);
                    first_err.get_or_insert(err);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Vec<(ProcessId, Vec<u8>)> {
        self.recv_timeout_stamped(timeout)
            .into_iter()
            .map(|(peer, _, bytes)| (peer, bytes))
            .collect()
    }

    fn recv_timeout_stamped(&mut self, timeout: Duration) -> Vec<(ProcessId, u64, Vec<u8>)> {
        let mut out = Vec::new();
        // Wait for the first event, then drain whatever else is ready.
        match self.rx.recv_timeout(timeout) {
            Ok(ev) => self.absorb(ev, &mut out),
            Err(_) => return out,
        }
        while let Ok(ev) = self.rx.try_recv() {
            self.absorb(ev, &mut out);
        }
        out
    }

    fn take_reconnects(&mut self) -> Vec<ProcessId> {
        let mut peers = std::mem::take(&mut self.pending_reconnects);
        peers.sort_unstable();
        peers.dedup();
        peers
    }

    fn take_auth_events(&mut self) -> Vec<AuthEvent> {
        std::mem::take(&mut self.pending_auth_events)
    }

    fn link_health(&self) -> Vec<LinkHealth> {
        self.link_monitor.snapshot(rbvc_obs::clock::now_us())
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    fn errors(&self) -> ErrorLog {
        self.errors.lock().clone()
    }
}

/// Stand up a complete loopback mesh of `n` endpoints in this process:
/// binds `n` ephemeral listeners on 127.0.0.1, then connects every ordered
/// pair. Endpoint `i` of the result is process `i`.
///
/// # Errors
/// [`ProtocolError::Transport`] if binding or any dial fails.
pub fn tcp_mesh_loopback(n: usize) -> Result<Vec<TcpEndpoint>, ProtocolError> {
    tcp_mesh_loopback_inner(n, None)
}

/// [`tcp_mesh_loopback`], but every link requires the keyed
/// challenge–response handshake with pairwise keys derived from `seed`.
///
/// # Errors
/// [`ProtocolError::Transport`] if binding, any dial, or any handshake
/// fails.
pub fn tcp_mesh_loopback_authenticated(
    n: usize,
    seed: &[u8; 32],
) -> Result<Vec<TcpEndpoint>, ProtocolError> {
    tcp_mesh_loopback_inner(n, Some(*seed))
}

fn tcp_mesh_loopback_inner(
    n: usize,
    seed: Option<[u8; 32]>,
) -> Result<Vec<TcpEndpoint>, ProtocolError> {
    assert!(n > 0, "mesh needs at least one endpoint");
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| ProtocolError::Transport {
            peer: None,
            reason: format!("bind failed: {e}"),
        })?;
        addrs.push(l.local_addr().map_err(|e| ProtocolError::Transport {
            peer: None,
            reason: format!("local_addr failed: {e}"),
        })?);
        listeners.push(l);
    }
    // Connect endpoints concurrently: every dial blocks until the target
    // listener accepts (and in auth mode until its challenge arrives), and
    // all listeners are already bound with their accept loops started
    // first thing in `connect`, so the joins cannot deadlock.
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| {
            let addrs = addrs.clone();
            thread::spawn(move || match seed {
                Some(s) => TcpEndpoint::connect_with_auth(id, listener, &addrs, &s),
                None => TcpEndpoint::connect(id, listener, &addrs),
            })
        })
        .collect();
    let mut endpoints = Vec::with_capacity(n);
    for h in handles {
        endpoints.push(h.join().map_err(|_| ProtocolError::Transport {
            peer: None,
            reason: "endpoint construction thread panicked".into(),
        })??);
    }
    Ok(endpoints)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_mesh_moves_frames_both_ways() {
        let mut mesh = tcp_mesh_loopback(3).expect("mesh");
        mesh[0].send(1, vec![1, 2, 3]).unwrap();
        mesh[1].send(0, vec![4, 5]).unwrap();
        mesh[2].send(2, vec![9]).unwrap(); // self-link
        for e in &mut mesh {
            e.flush().unwrap();
        }
        let recv_one = |e: &mut TcpEndpoint| -> (ProcessId, Vec<u8>) {
            for _ in 0..100 {
                let mut got = e.recv_timeout(Duration::from_millis(50));
                if !got.is_empty() {
                    return got.swap_remove(0);
                }
            }
            panic!("no frame arrived");
        };
        assert_eq!(recv_one(&mut mesh[1]), (0, vec![1, 2, 3]));
        assert_eq!(recv_one(&mut mesh[0]), (1, vec![4, 5]));
        assert_eq!(recv_one(&mut mesh[2]), (2, vec![9]));
        assert!(mesh[0].bytes_sent() > 0);
        assert!(mesh[1].bytes_received() > 0);
    }

    #[test]
    fn batching_concatenates_frames_per_peer() {
        let mut mesh = tcp_mesh_loopback(2).expect("mesh");
        for k in 0..5u8 {
            mesh[0].send(1, vec![k; 3]).unwrap();
        }
        let before = mesh[0].bytes_sent();
        mesh[0].flush().unwrap();
        // 5 frames × (4-byte prefix + 3 bytes payload) in one batch.
        assert_eq!(mesh[0].bytes_sent() - before, 5 * 7);
        let mut got = Vec::new();
        for _ in 0..100 {
            got.extend(mesh[1].recv_timeout(Duration::from_millis(50)));
            if got.len() == 5 {
                break;
            }
        }
        let frames: Vec<Vec<u8>> = got.into_iter().map(|(_, b)| b).collect();
        assert_eq!(frames, (0..5u8).map(|k| vec![k; 3]).collect::<Vec<_>>());
    }

    #[test]
    fn oversized_length_prefix_poisons_only_that_link() {
        let mut mesh = tcp_mesh_loopback(3).expect("mesh");
        // Byte-level attack: write a hostile length prefix directly into
        // endpoint 1's listener-side stream from endpoint 0.
        let poison = u32::MAX.to_le_bytes();
        mesh[0].writers[1].as_mut().unwrap().write_all(&poison).unwrap();
        mesh[0].writers[1].as_mut().unwrap().flush().unwrap();
        // Link 0→1 dies (recorded, not panicked); link 2→1 still works.
        let mut saw_linkdown = false;
        for _ in 0..100 {
            let _ = mesh[1].recv_timeout(Duration::from_millis(20));
            if mesh[1].errors().total() > 0 {
                saw_linkdown = true;
                break;
            }
        }
        assert!(saw_linkdown, "framing violation must be recorded");
        mesh[2].send(1, vec![7]).unwrap();
        mesh[2].flush().unwrap();
        let mut got = Vec::new();
        for _ in 0..100 {
            got.extend(mesh[1].recv_timeout(Duration::from_millis(50)));
            if !got.is_empty() {
                break;
            }
        }
        assert_eq!(got, vec![(2, vec![7])]);
    }

    #[test]
    fn hello_stamp_never_collides_with_the_never_seen_sentinel() {
        // The replay guard treats stamp 0 as "no HELLO accepted yet"; a
        // legitimate handshake must therefore never carry 0, even if the
        // monotonic clock reads 0 on its first call.
        let hello = hello_bytes(3);
        let t_tx = u64::from_le_bytes(hello[8..16].try_into().unwrap());
        assert!(t_tx >= 1);
        assert_eq!(hello_with_timestamp(3, t_tx), hello);
        assert_eq!(hello_with_timestamp(5, 1)[4..8], 5u32.to_le_bytes());
    }

    /// Pump `e` until `pred` holds or ~2 s elapse; returns whether it held.
    fn pump_until(e: &mut TcpEndpoint, mut pred: impl FnMut(&mut TcpEndpoint) -> bool) -> bool {
        for _ in 0..100 {
            let _ = e.recv_timeout(Duration::from_millis(20));
            if pred(e) {
                return true;
            }
        }
        false
    }

    #[test]
    fn authenticated_mesh_moves_frames_and_proves_identity() {
        let seed = [0x42u8; 32];
        let mut mesh = tcp_mesh_loopback_authenticated(3, &seed).expect("auth mesh");
        // Every endpoint verifies a handshake from each of its 2 peers
        // (the dialer returns after *writing* its response; the responder
        // verifies asynchronously, so wait rather than assert instantly).
        for (i, ep) in mesh.iter_mut().enumerate() {
            assert!(ep.auth_enabled());
            assert!(
                pump_until(ep, |e| e.auth_handshakes() == 2),
                "endpoint {i} never verified both inbound handshakes"
            );
        }
        mesh[0].send(1, vec![1, 2, 3]).unwrap();
        mesh[1].send(0, vec![4, 5]).unwrap();
        for e in &mut mesh {
            e.flush().unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..100 {
            got.extend(mesh[1].recv_timeout(Duration::from_millis(50)));
            if !got.is_empty() {
                break;
            }
        }
        assert_eq!(got, vec![(0, vec![1, 2, 3])]);
        // Authenticated links surface as such in link health, and the
        // verdicts drain as Established auth events.
        let evs = mesh[1].take_auth_events();
        assert!(
            evs.iter()
                .any(|e| matches!(e, AuthEvent::Established { peer: 0, epoch: 1 })),
            "expected an Established event for peer 0, got {evs:?}"
        );
        for l in mesh[1].link_health() {
            assert_eq!(l.auth, rbvc_obs::LinkAuthState::Authenticated, "peer {}", l.peer);
        }
    }

    #[test]
    fn forged_mac_is_rejected_and_never_delivers_frames() {
        let seed = [7u8; 32];
        let mut mesh = tcp_mesh_loopback_authenticated(2, &seed).expect("auth mesh");
        let victim_addr = mesh[1].listen_addr;
        // Impersonate honest node 0 toward node 1 *without* key_01: run a
        // structurally perfect handshake under the wrong key, then try to
        // push a sentinel frame through.
        let wrong_key = [0xEEu8; 32];
        let mut s = TcpStream::connect(victim_addr).expect("dial");
        crate::auth::dial_handshake(&mut s, 0, 1, &wrong_key, 1, 999_999).expect("wire IO");
        let sentinel = vec![0xAB; 8];
        let mut forged = (sentinel.len() as u32).to_le_bytes().to_vec();
        forged.extend_from_slice(&sentinel);
        let _ = s.write_all(&forged);
        let rejected = pump_until(&mut mesh[1], |e| {
            e.errors().total() > 0
        });
        assert!(rejected, "forged handshake must be recorded as rejected");
        let evs = mesh[1].take_auth_events();
        assert!(
            evs.iter().any(|e| matches!(
                e,
                AuthEvent::Rejected { peer: Some(0), reason } if reason == "bad-mac"
            )),
            "expected a bad-mac rejection attributed to claimed peer 0, got {evs:?}"
        );
        // The genuine live link from 0 keeps its authenticated standing —
        // only the reject reason is remembered.
        let health = mesh[1].link_health();
        let l0 = health.iter().find(|l| l.peer == 0).expect("peer 0 row");
        assert_eq!(l0.auth, rbvc_obs::LinkAuthState::Authenticated);
        assert_eq!(l0.last_auth_reject.as_deref(), Some("bad-mac"));
        // And the sentinel frame never surfaces.
        let mut frames = Vec::new();
        for _ in 0..10 {
            frames.extend(mesh[1].recv_timeout(Duration::from_millis(10)));
        }
        assert!(
            !frames.iter().any(|(_, b)| *b == sentinel),
            "forged frame must not be delivered"
        );
        // The real link still works.
        mesh[0].send(1, vec![9]).unwrap();
        mesh[0].flush().unwrap();
        let mut got = Vec::new();
        for _ in 0..100 {
            got.extend(mesh[1].recv_timeout(Duration::from_millis(50)));
            if !got.is_empty() {
                break;
            }
        }
        assert_eq!(got, vec![(0, vec![9])]);
    }

    #[test]
    fn plaintext_hello_is_a_downgrade_attempt_on_an_auth_mesh() {
        let seed = [9u8; 32];
        let mut mesh = tcp_mesh_loopback_authenticated(2, &seed).expect("auth mesh");
        let victim_addr = mesh[1].listen_addr;
        let mut s = TcpStream::connect(victim_addr).expect("dial");
        s.write_all(&hello_with_timestamp(0, 123_456)).expect("write v2 hello");
        assert!(pump_until(&mut mesh[1], |e| e.errors().total() > 0));
        let evs = mesh[1].take_auth_events();
        assert!(
            evs.iter().any(|e| matches!(
                e,
                AuthEvent::Rejected { peer: Some(0), reason } if reason == "downgrade"
            )),
            "expected a downgrade rejection, got {evs:?}"
        );
    }

    #[test]
    fn dial_backoff_survives_a_late_listener() {
        // Reserve an address, drop the listener, restart it after a delay:
        // the dialer's retry/backoff must bridge the gap.
        let probe = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let accepter = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            let l = TcpListener::bind(addr).expect("rebind");
            l.accept().map(|_| ()).ok();
        });
        let dialed = dial_with_backoff(addr, 0);
        accepter.join().unwrap();
        assert!(dialed.is_ok(), "backoff must ride out the listener gap");
    }
}
