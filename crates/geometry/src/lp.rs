//! A two-phase dense simplex LP solver with Bland's anti-cycling rule.
//!
//! Every exact polyhedral predicate in the workspace reduces to linear
//! programming: convex-hull membership (Carathéodory weights), L1/L∞
//! distance to a hull, emptiness of `Γ(Y) = ⋂_{|T|=|Y|−f} H(T)`, and the
//! LP-exact `δ*` computation for the L1/L∞ norms. The solver works on the
//! standard form
//!
//! ```text
//!   minimize    cᵀ x
//!   subject to  A x = b,   x ≥ 0,
//! ```
//!
//! with [`LpBuilder`] offering free variables (split into differences of
//! non-negatives) and `≤` rows (slack insertion) so that formulations in the
//! rest of the crate read like the math in the paper.
//!
//! Problem sizes here are tiny (≤ a few hundred variables), so a dense
//! tableau with Bland's rule — slow but provably terminating — is the right
//! engineering choice; see DESIGN.md §6 for the tolerance policy.

use std::sync::OnceLock;

use rbvc_linalg::{Tol, VecD};
use rbvc_obs::{time_kernel, Counter, Kernel, Registry};

/// Global counter for phase-1 infeasibility exits, replacing the old
/// `RBVC_LP_DEBUG` stderr diagnostics: inspect it through the metrics
/// registry (or an `exp_obs` report) instead of scraping stderr.
fn phase1_infeasible_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| Registry::global().counter("lp.phase1_infeasible"))
}

/// Global counter for simplex runs that exhausted the iteration cap
/// (numerically stalled pivoting) — same replacement rationale as
/// [`phase1_infeasible_counter`].
fn iteration_cap_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| Registry::global().counter("lp.iteration_cap"))
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal {
        /// Primal values in the builder's original variable order.
        x: Vec<f64>,
        /// Objective value at the optimum.
        value: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
}

impl LpOutcome {
    /// The optimal point, if any.
    #[must_use]
    pub fn point(&self) -> Option<&[f64]> {
        match self {
            LpOutcome::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }

    /// The optimal value, if any.
    #[must_use]
    pub fn objective(&self) -> Option<f64> {
        match self {
            LpOutcome::Optimal { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// True iff the LP is feasible (optimal or unbounded).
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        !matches!(self, LpOutcome::Infeasible)
    }
}

/// Identifier of a builder variable (index into the user-visible solution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarId(usize);

#[derive(Debug, Clone, Copy)]
enum VarKind {
    /// Maps to a single standard-form column.
    NonNeg(usize),
    /// Free variable split as `pos - neg` over two columns.
    Free(usize, usize),
}

/// A builder row: (coefficients over builder vars, relation, rhs).
type BuilderRow = (Vec<(VarId, f64)>, Rel, f64);

/// Incremental LP builder producing standard form.
#[derive(Debug, Default)]
pub struct LpBuilder {
    vars: Vec<VarKind>,
    n_cols: usize,
    rows: Vec<BuilderRow>,
    objective: Vec<(VarId, f64)>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Rel {
    Eq,
    Le,
}

impl LpBuilder {
    /// New empty problem (minimization).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one non-negative variable.
    pub fn nonneg(&mut self) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(VarKind::NonNeg(self.n_cols));
        self.n_cols += 1;
        id
    }

    /// Add `k` non-negative variables.
    pub fn nonneg_vars(&mut self, k: usize) -> Vec<VarId> {
        (0..k).map(|_| self.nonneg()).collect()
    }

    /// Add one free (sign-unrestricted) variable.
    pub fn free(&mut self) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(VarKind::Free(self.n_cols, self.n_cols + 1));
        self.n_cols += 2;
        id
    }

    /// Add `k` free variables.
    pub fn free_vars(&mut self, k: usize) -> Vec<VarId> {
        (0..k).map(|_| self.free()).collect()
    }

    /// Add an equality row `Σ cᵢ·vᵢ = rhs`.
    pub fn eq(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.rows.push((terms, Rel::Eq, rhs));
    }

    /// Add an inequality row `Σ cᵢ·vᵢ ≤ rhs` (slack inserted internally).
    pub fn le(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.rows.push((terms, Rel::Le, rhs));
    }

    /// Add an inequality row `Σ cᵢ·vᵢ ≥ rhs`.
    pub fn ge(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) {
        let negated = terms.into_iter().map(|(v, c)| (v, -c)).collect();
        self.rows.push((negated, Rel::Le, -rhs));
    }

    /// Set the (minimization) objective `Σ cᵢ·vᵢ`.
    pub fn minimize(&mut self, terms: Vec<(VarId, f64)>) {
        self.objective = terms;
    }

    /// Solve. Returns the outcome with `x` indexed by [`VarId`] order.
    #[must_use]
    pub fn solve(&self, tol: Tol) -> LpOutcome {
        time_kernel(Kernel::LpSolve, || self.solve_inner(tol))
    }

    fn solve_inner(&self, tol: Tol) -> LpOutcome {
        // Assemble standard form with slacks appended after builder columns.
        let n_slacks = self
            .rows
            .iter()
            .filter(|(_, rel, _)| *rel == Rel::Le)
            .count();
        let n = self.n_cols + n_slacks;
        let m = self.rows.len();
        let mut a = vec![vec![0.0; n]; m];
        let mut b = vec![0.0; m];
        let mut slack_col = self.n_cols;
        for (r, (terms, rel, rhs)) in self.rows.iter().enumerate() {
            for (vid, coef) in terms {
                match self.vars[vid.0] {
                    VarKind::NonNeg(c) => a[r][c] += coef,
                    VarKind::Free(cp, cn) => {
                        a[r][cp] += coef;
                        a[r][cn] -= coef;
                    }
                }
            }
            b[r] = *rhs;
            if *rel == Rel::Le {
                a[r][slack_col] = 1.0;
                slack_col += 1;
            }
        }
        let mut c = vec![0.0; n];
        for (vid, coef) in &self.objective {
            match self.vars[vid.0] {
                VarKind::NonNeg(col) => c[col] += coef,
                VarKind::Free(cp, cn) => {
                    c[cp] += coef;
                    c[cn] -= coef;
                }
            }
        }

        match simplex_standard_form(&a, &b, &c, tol) {
            StdOutcome::Optimal { x, value } => {
                let user_x: Vec<f64> = self
                    .vars
                    .iter()
                    .map(|k| match *k {
                        VarKind::NonNeg(col) => x[col],
                        VarKind::Free(cp, cn) => x[cp] - x[cn],
                    })
                    .collect();
                LpOutcome::Optimal { x: user_x, value }
            }
            StdOutcome::Infeasible => LpOutcome::Infeasible,
            StdOutcome::Unbounded => LpOutcome::Unbounded,
        }
    }

    /// Value of a variable in a solution vector returned by [`solve`].
    ///
    /// [`solve`]: LpBuilder::solve
    #[must_use]
    pub fn value(&self, x: &[f64], v: VarId) -> f64 {
        x[v.0]
    }
}

#[derive(Debug)]
enum StdOutcome {
    Optimal { x: Vec<f64>, value: f64 },
    Infeasible,
    Unbounded,
}

/// Two-phase simplex on `min cᵀx, Ax = b, x ≥ 0` (dense).
#[allow(clippy::needless_range_loop)] // tableau index arithmetic reads clearer
fn simplex_standard_form(a: &[Vec<f64>], b: &[f64], c: &[f64], tol: Tol) -> StdOutcome {
    let m = a.len();
    let n = if m > 0 { a[0].len() } else { c.len() };
    // Scale tolerance with data magnitude.
    let scale = a
        .iter()
        .flatten()
        .chain(b.iter())
        .fold(1.0_f64, |acc, &v| acc.max(v.abs()));
    let eps = tol.scaled(scale).value();

    // Tableau: m rows × (n + m artificials + 1 rhs); objective row separate.
    let n_total = n + m;
    let mut t = vec![vec![0.0; n_total + 1]; m];
    for (r, row) in a.iter().enumerate() {
        let flip = if b[r] < 0.0 { -1.0 } else { 1.0 };
        for (j, &v) in row.iter().enumerate() {
            t[r][j] = flip * v;
        }
        t[r][n + r] = 1.0; // artificial
        t[r][n_total] = flip * b[r];
    }
    let mut basis: Vec<usize> = (n..n_total).collect();

    // Phase-1 objective: minimize sum of artificials. Reduced-cost row.
    let mut obj = vec![0.0; n_total + 1];
    for r in 0..m {
        for j in 0..=n_total {
            obj[j] -= t[r][j];
        }
    }
    // Artificial columns start basic with zero reduced cost.
    for j in n..n_total {
        obj[j] = 0.0;
    }

    if !run_simplex(&mut t, &mut obj, &mut basis, n_total, eps, /*phase1=*/ true) {
        // Phase 1 of a feasibility problem is never unbounded.
        unreachable!("phase-1 simplex reported unbounded");
    }
    // Phase-1 optimum is -obj[rhs]; infeasible if positive.
    let phase1_value = -obj[n_total];
    if phase1_value > eps * (m as f64).max(1.0) {
        phase1_infeasible_counter().inc();
        return StdOutcome::Infeasible;
    }

    // Drive any remaining artificials out of the basis.
    for r in 0..m {
        if basis[r] >= n {
            // Find a non-artificial column with nonzero entry to pivot in.
            let mut pivoted = false;
            for j in 0..n {
                if t[r][j].abs() > eps {
                    pivot(&mut t, &mut obj, r, j);
                    basis[r] = j;
                    pivoted = true;
                    break;
                }
            }
            if !pivoted {
                // Redundant row: the artificial stays basic at value ~0.
                // Harmless for phase 2 as long as it never re-enters
                // (artificial columns are barred from entering below).
            }
        }
    }

    // Phase-2 objective: reduced costs of `c` w.r.t. the current basis.
    let mut obj2 = vec![0.0; n_total + 1];
    obj2[..n].copy_from_slice(&c[..n]);
    for r in 0..m {
        let cb = if basis[r] < n { c[basis[r]] } else { 0.0 };
        if cb != 0.0 {
            for j in 0..=n_total {
                obj2[j] -= cb * t[r][j];
            }
        }
    }
    // Bar artificial columns from re-entering.
    for cell in obj2.iter_mut().take(n_total).skip(n) {
        *cell = f64::INFINITY;
    }

    if !run_simplex(&mut t, &mut obj2, &mut basis, n_total, eps, /*phase1=*/ false) {
        return StdOutcome::Unbounded;
    }

    let mut x = vec![0.0; n];
    for r in 0..m {
        if basis[r] < n {
            x[basis[r]] = t[r][n_total].max(0.0);
        }
    }
    let value = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    StdOutcome::Optimal { x, value }
}

/// Run simplex iterations. Entering variable by Dantzig's rule (most
/// negative reduced cost) for speed, switching to Bland's rule (smallest
/// index) after a streak of degenerate pivots to guarantee termination.
/// Leaving variable by a two-pass ratio test: first find the exact minimum
/// ratio, then break ties among min-ratio rows by smallest basis index
/// (the Bland tie-break). Returns false on unboundedness.
#[allow(clippy::needless_range_loop)] // tableau index arithmetic reads clearer
fn run_simplex(
    t: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    n_total: usize,
    eps: f64,
    phase1: bool,
) -> bool {
    let m = t.len();
    let mut degenerate_streak = 0usize;
    let bland_after = 2 * (n_total + m);
    let max_iters = 50_000 + 200 * (n_total + m);
    for _ in 0..max_iters {
        let use_bland = degenerate_streak > bland_after;
        // Entering variable.
        let mut entering = None;
        if use_bland {
            for (j, &rc) in obj.iter().enumerate().take(n_total) {
                if rc.is_finite() && rc < -eps {
                    entering = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -eps;
            for (j, &rc) in obj.iter().enumerate().take(n_total) {
                if rc.is_finite() && rc < best {
                    best = rc;
                    entering = Some(j);
                }
            }
        }
        let Some(e) = entering else {
            return true; // optimal
        };
        // Two-pass ratio test. Negative rhs cells are float noise from
        // earlier pivots; clamp them so the corresponding ratios are 0.
        // Pivot elements must clear a hard floor: pivoting on a near-zero
        // element scales the row by its reciprocal and destroys the tableau
        // (the failure mode that motivated this implementation).
        let mut pivot_floor = eps.max(1e-7);
        let mut min_ratio = f64::INFINITY;
        for r in 0..m {
            if t[r][e] > pivot_floor {
                let ratio = t[r][n_total].max(0.0) / t[r][e];
                if ratio < min_ratio {
                    min_ratio = ratio;
                }
            }
        }
        if !min_ratio.is_finite() {
            // No pivot above the stability floor; fall back to the raw
            // tolerance (correctness over stability) before concluding
            // unboundedness.
            pivot_floor = eps;
            for r in 0..m {
                if t[r][e] > pivot_floor {
                    let ratio = t[r][n_total].max(0.0) / t[r][e];
                    if ratio < min_ratio {
                        min_ratio = ratio;
                    }
                }
            }
            if !min_ratio.is_finite() {
                return phase1; // truly unbounded (cannot happen in phase 1)
            }
        }
        let tie = min_ratio + 1e-9 * (1.0 + min_ratio.abs());
        let mut leave: Option<usize> = None;
        for r in 0..m {
            if t[r][e] > pivot_floor {
                let ratio = t[r][n_total].max(0.0) / t[r][e];
                if ratio <= tie {
                    leave = match leave {
                        None => Some(r),
                        Some(lr) => {
                            // Anti-cycling mode: Bland's smallest-basis-index
                            // rule. Otherwise: largest pivot element for
                            // numerical stability.
                            let better = if use_bland {
                                basis[r] < basis[lr]
                            } else {
                                t[r][e] > t[lr][e]
                            };
                            if better {
                                Some(r)
                            } else {
                                Some(lr)
                            }
                        }
                    };
                }
            }
        }
        let lr = leave.expect("min ratio finite implies a candidate row");
        if min_ratio <= 1e-12 {
            degenerate_streak += 1;
        } else {
            degenerate_streak = 0;
        }
        pivot_obj(t, obj, lr, e);
        basis[lr] = e;
    }
    // Iteration cap exhausted — numerically stalled pivoting. Report
    // "optimal" with whatever certificate the caller checks (phase 1 will
    // see a positive objective and report infeasible; callers that panic on
    // that surface the instance for investigation).
    iteration_cap_counter().inc();
    true
}

fn pivot(t: &mut [Vec<f64>], obj: &mut [f64], row: usize, col: usize) {
    pivot_obj(t, obj, row, col);
}

#[allow(clippy::needless_range_loop)] // tableau index arithmetic reads clearer
fn pivot_obj(t: &mut [Vec<f64>], obj: &mut [f64], row: usize, col: usize) {
    let m = t.len();
    let width = t[row].len();
    let inv = 1.0 / t[row][col];
    for v in t[row].iter_mut() {
        *v *= inv;
    }
    t[row][col] = 1.0; // exact
    for r in 0..m {
        if r == row {
            continue;
        }
        let factor = t[r][col];
        if factor == 0.0 {
            continue;
        }
        for j in 0..width {
            let delta = factor * t[row][j];
            t[r][j] -= delta;
        }
        t[r][col] = 0.0; // exact
    }
    let factor = obj[col];
    if factor != 0.0 && factor.is_finite() {
        for j in 0..width {
            if obj[j].is_finite() {
                obj[j] -= factor * t[row][j];
            }
        }
        obj[col] = 0.0;
    }
}

/// Convenience: check feasibility of `A x = b, x ≥ 0` and return a feasible
/// point if one exists.
#[must_use]
pub fn feasible_point(a: &[Vec<f64>], b: &[f64], tol: Tol) -> Option<Vec<f64>> {
    let n = if a.is_empty() { 0 } else { a[0].len() };
    let c = vec![0.0; n];
    match simplex_standard_form(a, b, &c, tol) {
        StdOutcome::Optimal { x, .. } => Some(x),
        _ => None,
    }
}

/// Convenience: express `target` as a convex combination of `points`
/// (feasibility of the hull-membership LP). Returns the weights.
#[must_use]
pub fn convex_combination_weights(
    points: &[VecD],
    target: &VecD,
    tol: Tol,
) -> Option<Vec<f64>> {
    if points.is_empty() {
        return None;
    }
    let d = target.dim();
    let m = points.len();
    // Rows: d coordinate equations + 1 normalization.
    let mut a = vec![vec![0.0; m]; d + 1];
    let mut b = vec![0.0; d + 1];
    for (j, p) in points.iter().enumerate() {
        assert_eq!(p.dim(), d, "convex_combination_weights: dim mismatch");
        for i in 0..d {
            a[i][j] = p[i];
        }
        a[d][j] = 1.0;
    }
    b[..d].copy_from_slice(target.as_slice());
    b[d] = 1.0;
    feasible_point(&a, &b, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn simple_min_problem() {
        // min -x - y s.t. x + y <= 1, x,y >= 0  → value -1 on the segment.
        let mut lp = LpBuilder::new();
        let x = lp.nonneg();
        let y = lp.nonneg();
        lp.le(vec![(x, 1.0), (y, 1.0)], 1.0);
        lp.minimize(vec![(x, -1.0), (y, -1.0)]);
        match lp.solve(t()) {
            LpOutcome::Optimal { x: sol, value } => {
                assert!((value + 1.0).abs() < 1e-9);
                assert!((sol[0] + sol[1] - 1.0).abs() < 1e-9);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn detects_infeasibility() {
        // x >= 0, x <= -1 infeasible.
        let mut lp = LpBuilder::new();
        let x = lp.nonneg();
        lp.le(vec![(x, 1.0)], -1.0);
        lp.minimize(vec![(x, 1.0)]);
        assert_eq!(lp.solve(t()), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        // min -x, x >= 0 unconstrained above.
        let mut lp = LpBuilder::new();
        let x = lp.nonneg();
        lp.minimize(vec![(x, -1.0)]);
        assert_eq!(lp.solve(t()), LpOutcome::Unbounded);
    }

    #[test]
    fn free_variables_take_negative_values() {
        // min x s.t. x >= -5 → x = -5.
        let mut lp = LpBuilder::new();
        let x = lp.free();
        lp.ge(vec![(x, 1.0)], -5.0);
        lp.minimize(vec![(x, 1.0)]);
        match lp.solve(t()) {
            LpOutcome::Optimal { x: sol, value } => {
                assert!((sol[0] + 5.0).abs() < 1e-9);
                assert!((value + 5.0).abs() < 1e-9);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn equality_rows_respected() {
        // min x + y s.t. x + 2y = 4, x - y = 1 → unique point (2, 1).
        let mut lp = LpBuilder::new();
        let x = lp.free();
        let y = lp.free();
        lp.eq(vec![(x, 1.0), (y, 2.0)], 4.0);
        lp.eq(vec![(x, 1.0), (y, -1.0)], 1.0);
        lp.minimize(vec![(x, 1.0), (y, 1.0)]);
        match lp.solve(t()) {
            LpOutcome::Optimal { x: sol, .. } => {
                assert!((sol[0] - 2.0).abs() < 1e-8);
                assert!((sol[1] - 1.0).abs() < 1e-8);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate vertex: multiple redundant constraints at origin.
        let mut lp = LpBuilder::new();
        let x = lp.nonneg();
        let y = lp.nonneg();
        lp.le(vec![(x, 1.0), (y, 1.0)], 0.0);
        lp.le(vec![(x, 1.0)], 0.0);
        lp.le(vec![(y, 1.0)], 0.0);
        lp.minimize(vec![(x, -1.0), (y, -1.0)]);
        match lp.solve(t()) {
            LpOutcome::Optimal { value, .. } => assert!(value.abs() < 1e-9),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn redundant_equalities_ok() {
        // Same equality twice (redundant row exercise for artificial cleanup).
        let mut lp = LpBuilder::new();
        let x = lp.nonneg();
        lp.eq(vec![(x, 1.0)], 2.0);
        lp.eq(vec![(x, 2.0)], 4.0);
        lp.minimize(vec![(x, 1.0)]);
        match lp.solve(t()) {
            LpOutcome::Optimal { x: sol, .. } => assert!((sol[0] - 2.0).abs() < 1e-9),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn convex_combination_of_triangle_contains_centroid() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        let target = VecD::from_slice(&[1.0 / 3.0, 1.0 / 3.0]);
        let w = convex_combination_weights(&pts, &target, t()).expect("inside");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        assert!(w.iter().all(|&wi| wi >= -1e-9));
        let recon = VecD::combination(&pts, &w);
        assert!(recon.approx_eq(&target, Tol(1e-8)));
    }

    #[test]
    fn convex_combination_rejects_outside_point() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        let target = VecD::from_slice(&[1.0, 1.0]);
        assert!(convex_combination_weights(&pts, &target, t()).is_none());
    }

    #[test]
    fn boundary_membership_is_accepted() {
        let pts = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
        ];
        let target = VecD::from_slice(&[2.0, 0.0]); // a vertex
        assert!(convex_combination_weights(&pts, &target, t()).is_some());
        let mid = VecD::from_slice(&[1.0, 0.0]);
        assert!(convex_combination_weights(&pts, &mid, t()).is_some());
    }

    #[test]
    fn random_lps_satisfy_weak_duality_spotcheck() {
        // Verify optimal objective matches brute-force vertex enumeration on
        // random 2-variable problems with box + one coupling constraint.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..60 {
            let (c1, c2) = (rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0));
            let cap: f64 = rng.gen_range(0.5..3.0);
            // min c1 x + c2 y, x + y <= cap, x <= 1, y <= 1, x,y >= 0.
            let mut lp = LpBuilder::new();
            let x = lp.nonneg();
            let y = lp.nonneg();
            lp.le(vec![(x, 1.0), (y, 1.0)], cap);
            lp.le(vec![(x, 1.0)], 1.0);
            lp.le(vec![(y, 1.0)], 1.0);
            lp.minimize(vec![(x, c1), (y, c2)]);
            let got = lp.solve(t()).objective().expect("bounded feasible");
            // Brute force over candidate vertices.
            let mut best = f64::INFINITY;
            let candidates = [
                (0.0, 0.0),
                (1.0_f64.min(cap), 0.0),
                (0.0, 1.0_f64.min(cap)),
                (1.0, (cap - 1.0).clamp(0.0, 1.0)),
                ((cap - 1.0).clamp(0.0, 1.0), 1.0),
                ((cap / 2.0).min(1.0), (cap / 2.0).min(1.0)),
            ];
            for &(px, py) in &candidates {
                if px + py <= cap + 1e-12 {
                    best = best.min(c1 * px + c2 * py);
                }
            }
            assert!(
                got <= best + 1e-7,
                "LP value {got} worse than vertex scan {best} (c=({c1},{c2}),cap={cap})"
            );
        }
    }
}
