//! (Relaxed) Verified Averaging — the paper's asynchronous algorithm (§10),
//! built on Bracha reliable broadcast.
//!
//! Structure (following Tseng–Vaidya [15] with the paper's modified round-0
//! function `H_(δ,p)(V, 0)`, Definition 12):
//!
//! * **Round 0** — every process reliably broadcasts its input. Upon
//!   verifying `≥ n − f` round-0 states `X`, a process computes
//!   `hull := ⋂_{C ⊆ X, |C| = |X|−f} H_(δ,p)(C)` for the smallest workable
//!   `δ` and deterministically picks a point (`δ = 0` recovers Verified
//!   Averaging and needs `n ≥ (d+2)f+1`; input-dependent `δ = δ*(X)` is the
//!   paper's relaxation and needs only `n ≥ 3f+1`).
//! * **Rounds t ≥ 1** — each process reliably broadcasts its state
//!   *together with the multiset it averaged* (the witness); receivers
//!   **verify** the state by recomputing the arithmetic against their own
//!   reliably-delivered record, so a Byzantine process cannot inject a
//!   value that is not a correct application of the averaging rule.
//!   Progress to round `t + 1` happens upon `n − f` *verified* round-`t`
//!   states; the new value is their average.
//! * **Decision** — after `R` rounds, output the current value.
//!   ε-agreement follows from the geometric contraction of averaging over
//!   overlapping verified sets (factor ≈ `2f / (n − f)` per round);
//!   validity follows because every verified round-1 value lies in
//!   `H_(δ,p)`(correct inputs) and averaging preserves membership in that
//!   convex set.

use std::collections::HashMap;

use crate::error::ProtocolError;
use rbvc_geometry::minmax::{delta_star, MinMaxOptions};
use rbvc_geometry::gamma_point;
use rbvc_linalg::{Norm, Tol, VecD};
use rbvc_obs::{Event, EventKind, Obs};
use rbvc_sim::asynch::{AsyncAdversary, AsyncProtocol};
use rbvc_sim::bracha::{BrachaInstance, BrachaMsg};
use rbvc_sim::config::ProcessId;

/// Identifies one reliable-broadcast instance: (origin process, round).
pub type RoundTag = (ProcessId, usize);

/// The payload a process reliably broadcasts each round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundState {
    /// Current value of the origin process at this round.
    pub value: VecD,
    /// For rounds `t ≥ 1`: the exact (ordered) multiset of round-`t−1`
    /// states averaged to produce `value`. Empty for round 0.
    pub witness: Vec<(ProcessId, VecD)>,
}

/// Wire message: a Bracha message of one tagged instance.
pub type VaMsg = (RoundTag, BrachaMsg<RoundState>);

/// Round-0 combining rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeltaMode {
    /// δ = 0 (original Verified Averaging): a point of `Γ(X)`; requires
    /// `n ≥ (d+2)f + 1` so that `|X| ≥ (d+1)f + 1` makes `Γ(X)` nonempty.
    Zero,
    /// Input-dependent δ (the paper's relaxation): `δ*(X)` and its witness
    /// point; works for any `n ≥ 3f + 1`.
    MinDelta(Norm),
}

/// The protocol instance for one process.
pub struct VerifiedAveraging {
    id: ProcessId,
    n: usize,
    f: usize,
    total_rounds: usize,
    mode: DeltaMode,
    tol: Tol,
    input: VecD,

    rb: HashMap<RoundTag, BrachaInstance<RoundState>>,
    delivered: HashMap<RoundTag, RoundState>,
    /// Tags verified OK, with their values, grouped by round.
    verified: HashMap<usize, Vec<(ProcessId, VecD)>>,
    /// Delivered but not yet verifiable (waiting on witness deliveries).
    pending: Vec<RoundTag>,
    /// Tags that failed verification permanently.
    rejected: Vec<RoundTag>,

    /// Highest round whose state this process has broadcast.
    my_round: usize,
    decided: Option<VecD>,
    /// δ used by this process's own round-0 combining (experiment metric).
    round0_delta: Option<f64>,
    /// Most recent combining failure; the node stays undecided instead of
    /// panicking the whole run, and clears this if a later attempt succeeds.
    last_error: Option<ProtocolError>,

    /// Structured-event sink (no-op by default); the node tag is baked in.
    obs: Obs,
    /// Instance tag stamped on every emitted event (multi-instance services).
    obs_instance: Option<u64>,
}

impl VerifiedAveraging {
    /// Build the protocol for process `id` with the given `input`; the
    /// process decides after `total_rounds` averaging rounds.
    #[must_use]
    pub fn new(
        id: ProcessId,
        n: usize,
        f: usize,
        input: VecD,
        mode: DeltaMode,
        total_rounds: usize,
        tol: Tol,
    ) -> Self {
        assert!(n > 3 * f, "verified averaging requires n >= 3f + 1");
        assert!(total_rounds >= 1, "need at least one averaging round");
        VerifiedAveraging {
            id,
            n,
            f,
            total_rounds,
            mode,
            tol,
            input,
            rb: HashMap::new(),
            delivered: HashMap::new(),
            verified: HashMap::new(),
            pending: Vec::new(),
            rejected: Vec::new(),
            my_round: 0,
            decided: None,
            round0_delta: None,
            last_error: None,
            obs: Obs::noop(),
            obs_instance: None,
        }
    }

    /// Attach a structured-event sink; events carry this process's id as
    /// the node tag and `instance` (if given) as the instance tag. The
    /// protocol emits [`EventKind::RoundStart`]/[`EventKind::RoundEnd`] as
    /// it progresses, [`EventKind::BroadcastAccept`] on reliable-broadcast
    /// delivery, [`EventKind::WitnessCommit`] when a state verifies,
    /// [`EventKind::GateReject`] at every receive-boundary rejection, and
    /// [`EventKind::Decide`] on decision. Tracing never changes behaviour.
    pub fn set_obs(&mut self, obs: Obs, instance: Option<u64>) {
        self.obs = obs.with_node(u32::try_from(self.id).unwrap_or(u32::MAX));
        self.obs_instance = instance;
    }

    /// Emit one event through the sink, stamping round and instance tags.
    /// `detail` runs only when a real recorder is attached.
    fn emit_event(&self, kind: EventKind, round: Option<usize>, detail: impl FnOnce() -> String) {
        self.obs.emit(|| {
            let mut ev = Event::new(kind).detail(detail());
            if let Some(r) = round {
                ev = ev.round(u32::try_from(r).unwrap_or(u32::MAX));
            }
            if let Some(i) = self.obs_instance {
                ev = ev.instance(i);
            }
            ev
        });
    }

    /// The δ this process's round-0 combining step needed (`Some(0.0)` for
    /// `DeltaMode::Zero` runs that succeeded).
    #[must_use]
    pub fn round0_delta(&self) -> Option<f64> {
        self.round0_delta
    }

    /// Total witness states this process has verified so far, across all
    /// rounds — monotone protocol progress, durable-logged by the service
    /// layer so a recovering node can assert its replayed state reached at
    /// least the logged mark.
    #[must_use]
    pub fn witness_commits(&self) -> u64 {
        self.verified.values().map(|v| v.len() as u64).sum()
    }

    /// The most recent combining error, if the node is degraded (e.g. Γ(X)
    /// came up empty under `DeltaMode::Zero`). `None` for healthy nodes.
    #[must_use]
    pub fn last_error(&self) -> Option<&ProtocolError> {
        self.last_error.as_ref()
    }

    fn instance(&mut self, tag: RoundTag) -> &mut BrachaInstance<RoundState> {
        let (n, f) = (self.n, self.f);
        self.rb
            .entry(tag)
            .or_insert_with(|| BrachaInstance::new(n, f))
    }

    /// Broadcast `state` as this process's round-`round` message.
    fn broadcast_state(
        &mut self,
        round: usize,
        state: RoundState,
        out: &mut Vec<(ProcessId, VaMsg)>,
    ) {
        let tag = (self.id, round);
        self.emit_event(EventKind::RoundStart, Some(round), || {
            format!("broadcasting state for round {round}")
        });
        let actions = self.instance(tag).start(state);
        for m in actions.broadcast {
            for dst in 0..self.n {
                out.push((dst, (tag, m.clone())));
            }
        }
    }

    /// Apply the round-0 combining rule to an ordered multiset of values.
    ///
    /// Fails (instead of panicking) when `Γ(X)` is empty in
    /// `DeltaMode::Zero` — which Byzantine inputs can provoke whenever the
    /// run violates `n ≥ (d+2)f + 1`.
    fn combine_round0(&self, values: &[VecD]) -> Result<(VecD, f64), ProtocolError> {
        match self.mode {
            DeltaMode::Zero => gamma_point(values, self.f, self.tol)
                .map(|point| (point, 0.0))
                .ok_or(ProtocolError::EmptyIntersection {
                    round: 0,
                    mode: "Γ(X) in DeltaMode::Zero",
                }),
            DeltaMode::MinDelta(norm) => {
                let ds = delta_star(values, self.f, norm, self.tol, MinMaxOptions::default());
                Ok((ds.witness, ds.delta))
            }
        }
    }

    /// Average of an ordered multiset (the `t ≥ 1` rule of Definition 12).
    fn combine_average(values: &[VecD]) -> VecD {
        let mut acc = VecD::zeros(values[0].dim());
        for v in values {
            acc += v.clone();
        }
        acc.scale(1.0 / values.len() as f64)
    }

    /// Attempt to verify a delivered state. Returns:
    /// `Some(true)` verified, `Some(false)` rejected, `None` undecidable yet.
    fn try_verify(&self, tag: RoundTag, state: &RoundState) -> Option<bool> {
        let (_, round) = tag;
        if round == 0 {
            // Inputs are unconstrained: any round-0 value verifies.
            return Some(true);
        }
        // Witness sanity: enough entries, distinct origins.
        if state.witness.len() < self.n - self.f {
            return Some(false);
        }
        let mut seen = Vec::new();
        for (k, _) in &state.witness {
            if seen.contains(k) || *k >= self.n {
                return Some(false);
            }
            seen.push(*k);
        }
        // Every witness entry must match a *verified* round-(t−1) state.
        let prev = self.verified.get(&(round - 1));
        for (k, v) in &state.witness {
            let known = prev.and_then(|list| list.iter().find(|(pid, _)| pid == k));
            match known {
                Some((_, value)) => {
                    if !value.approx_eq(v, self.verify_tol()) {
                        // The claimed witness value contradicts the
                        // reliably-broadcast record: certain rejection.
                        return Some(false);
                    }
                }
                None => {
                    // Not verified (yet). If it was delivered with a
                    // different value, reject; otherwise wait.
                    if let Some(delivered) = self.delivered.get(&(*k, round - 1)) {
                        if !delivered.value.approx_eq(v, self.verify_tol()) {
                            return Some(false);
                        }
                    }
                    return None;
                }
            }
        }
        // Recompute the arithmetic.
        let values: Vec<VecD> = state.witness.iter().map(|(_, v)| v.clone()).collect();
        let expected = if round == 1 {
            match self.combine_round0(&values) {
                Ok((v, _)) => v,
                // A witness set whose combination is undefined cannot back
                // an honest state: certain rejection, never a panic.
                Err(_) => return Some(false),
            }
        } else {
            Self::combine_average(&values)
        };
        Some(expected.approx_eq(&state.value, self.verify_tol()))
    }

    /// Receive-boundary payload validation: dimension match against our own
    /// input, finite components everywhere, and a sane witness set. A
    /// payload failing this never reaches the Bracha instance, so a single
    /// poisoned message costs its sender influence — nothing else.
    fn payload_ok(&self, state: &RoundState) -> Result<(), &'static str> {
        let d = self.input.dim();
        if state.value.dim() != d {
            return Err("value dimension mismatch");
        }
        if !state.value.as_slice().iter().all(|x| x.is_finite()) {
            return Err("non-finite value component");
        }
        if state.witness.len() > self.n {
            return Err("witness larger than the process set");
        }
        for (pid, v) in &state.witness {
            if *pid >= self.n {
                return Err("out-of-range witness id");
            }
            if v.dim() != d {
                return Err("witness dimension mismatch");
            }
            if !v.as_slice().iter().all(|x| x.is_finite()) {
                return Err("non-finite witness component");
            }
        }
        Ok(())
    }

    fn verify_tol(&self) -> Tol {
        // Receivers recompute the *same deterministic function* on the same
        // ordered inputs, so only representation noise needs absorbing.
        Tol(self.tol.value().max(1e-9) * 100.0)
    }

    /// Process a newly delivered state plus any pending ones that become
    /// verifiable; drive round progression.
    fn handle_delivery(&mut self, tag: RoundTag, state: RoundState, out: &mut Vec<(ProcessId, VaMsg)>) {
        self.delivered.insert(tag, state);
        self.pending.push(tag);
        // Fixpoint: verification of one state can unblock others.
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.pending.len() {
                let t = self.pending[i];
                let s = self.delivered.get(&t).expect("pending implies delivered").clone();
                match self.try_verify(t, &s) {
                    Some(true) => {
                        self.pending.swap_remove(i);
                        self.verified
                            .entry(t.1)
                            .or_default()
                            .push((t.0, s.value.clone()));
                        self.emit_event(EventKind::WitnessCommit, Some(t.1), || {
                            format!("origin={}", t.0)
                        });
                        progressed = true;
                    }
                    Some(false) => {
                        self.pending.swap_remove(i);
                        self.rejected.push(t);
                        self.emit_event(EventKind::GateReject, Some(t.1), || {
                            format!("gate=verify origin={}", t.0)
                        });
                        progressed = true;
                    }
                    None => {
                        i += 1;
                    }
                }
            }
            let advanced = self.try_advance(out);
            if !progressed && !advanced {
                break;
            }
        }
    }

    /// Advance to the next round if enough verified states are in. Returns
    /// true if the process moved.
    fn try_advance(&mut self, out: &mut Vec<(ProcessId, VaMsg)>) -> bool {
        if self.decided.is_some() {
            return false;
        }
        let t = self.my_round;
        let Some(list) = self.verified.get(&t) else {
            return false;
        };
        if list.len() < self.n - self.f {
            return false;
        }
        let mut witness: Vec<(ProcessId, VecD)> = list.clone();
        // Canonicalize the combining order by origin id: float summation is
        // order-sensitive, and verification order is delivery-dependent, so
        // without this two transports (or two runs) computing over the same
        // verified multiset could differ in the last bits. With f = 0 (the
        // wait-for-all regime) this makes decisions bit-identical across
        // transports; verifiers recompute over the witness as broadcast, so
        // the sorted order is self-consistent end to end.
        witness.sort_by_key(|(pid, _)| *pid);
        let values: Vec<VecD> = witness.iter().map(|(_, v)| v.clone()).collect();
        let next_value = if t == 0 {
            match self.combine_round0(&values) {
                Ok((v, delta)) => {
                    self.round0_delta = Some(delta);
                    self.last_error = None;
                    v
                }
                Err(e) => {
                    // Degrade this one node: it stays undecided (and may
                    // retry as more verified states arrive) instead of
                    // tearing down the whole run.
                    self.last_error = Some(e);
                    return false;
                }
            }
        } else {
            Self::combine_average(&values)
        };
        let verified_count = values.len();
        self.emit_event(EventKind::RoundEnd, Some(t), || {
            format!("verified={verified_count}")
        });
        self.my_round = t + 1;
        if self.my_round >= self.total_rounds {
            self.emit_event(EventKind::Decide, Some(t), || {
                format!("after {} rounds", self.total_rounds)
            });
            self.decided = Some(next_value);
        } else {
            self.broadcast_state(
                self.my_round,
                RoundState {
                    value: next_value,
                    witness,
                },
                out,
            );
        }
        true
    }
}

impl AsyncProtocol for VerifiedAveraging {
    type Msg = VaMsg;
    type Output = VecD;

    fn on_start(&mut self) -> Vec<(ProcessId, VaMsg)> {
        let mut out = Vec::new();
        let input = self.input.clone();
        self.broadcast_state(
            0,
            RoundState {
                value: input,
                witness: Vec::new(),
            },
            &mut out,
        );
        out
    }

    fn on_message(&mut self, from: ProcessId, msg: VaMsg) -> Vec<(ProcessId, VaMsg)> {
        let (tag, bmsg) = msg;
        // Bound rounds to keep a Byzantine flood from allocating unboundedly;
        // reject ghost senders and ghost origins outright.
        if from >= self.n || tag.1 > self.total_rounds || tag.0 >= self.n {
            self.emit_event(EventKind::GateReject, Some(tag.1), || {
                format!("gate=bounds from={from} origin={}", tag.0)
            });
            return Vec::new();
        }
        // Receive-boundary payload validation before the broadcast substrate
        // ever sees the message.
        let payload = match &bmsg {
            BrachaMsg::Init(s) | BrachaMsg::Echo(s) | BrachaMsg::Ready(s) => s,
        };
        if let Err(reason) = self.payload_ok(payload) {
            self.emit_event(EventKind::GateReject, Some(tag.1), || {
                format!("gate=payload from={from} reason={reason}")
            });
            return Vec::new();
        }
        let mut out = Vec::new();
        let actions = self.instance(tag).on_message(from, tag.0, bmsg);
        for m in actions.broadcast {
            for dst in 0..self.n {
                out.push((dst, (tag, m.clone())));
            }
        }
        if let Some(state) = actions.delivered {
            self.emit_event(EventKind::BroadcastAccept, Some(tag.1), || {
                format!("origin={}", tag.0)
            });
            self.handle_delivery(tag, state, &mut out);
        }
        out
    }

    fn output(&self) -> Option<VecD> {
        self.decided.clone()
    }
}

/// Byzantine strategy that runs the protocol faithfully with a chosen input
/// (arbitrary inputs are within Byzantine power and stress validity).
pub struct HonestFacade(pub VerifiedAveraging);

impl AsyncAdversary<VaMsg> for HonestFacade {
    fn on_start(&mut self) -> Vec<(ProcessId, VaMsg)> {
        self.0.on_start()
    }
    fn on_message(&mut self, from: ProcessId, msg: VaMsg) -> Vec<(ProcessId, VaMsg)> {
        self.0.on_message(from, msg)
    }
}

/// Byzantine strategy: attempts a split-brain on its own round-0 broadcast,
/// sending `Init(a)` to the first half of processes and `Init(b)` to the
/// rest. Bracha RB must prevent correct processes from delivering
/// different values.
pub struct SplitBrainInput {
    inner: VerifiedAveraging,
    alt: VecD,
}

impl SplitBrainInput {
    /// `primary` goes to low ids, `alt` to high ids.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // flat spec mirrors the runner structs
    pub fn new(
        id: ProcessId,
        n: usize,
        f: usize,
        primary: VecD,
        alt: VecD,
        mode: DeltaMode,
        total_rounds: usize,
        tol: Tol,
    ) -> Self {
        SplitBrainInput {
            inner: VerifiedAveraging::new(id, n, f, primary, mode, total_rounds, tol),
            alt,
        }
    }
}

impl AsyncAdversary<VaMsg> for SplitBrainInput {
    fn on_start(&mut self) -> Vec<(ProcessId, VaMsg)> {
        let n = self.inner.n;
        let mut sends = self.inner.on_start();
        for (dst, (tag, m)) in &mut sends {
            if *dst >= n / 2 && tag.1 == 0 {
                if let BrachaMsg::Init(state) = m {
                    state.value = self.alt.clone();
                }
            }
        }
        sends
    }
    fn on_message(&mut self, from: ProcessId, msg: VaMsg) -> Vec<(ProcessId, VaMsg)> {
        self.inner.on_message(from, msg)
    }
}

/// Byzantine strategy: participates via the honest machinery but corrupts
/// the *value* of its own round-`t ≥ 1` states (keeping the witness), so
/// its states must fail verification at every correct process.
pub struct CorruptAverage {
    inner: VerifiedAveraging,
    offset: VecD,
}

impl CorruptAverage {
    /// Adds `offset` to each of its own averaged values.
    #[must_use]
    pub fn new(inner: VerifiedAveraging, offset: VecD) -> Self {
        CorruptAverage { inner, offset }
    }

    fn corrupt(&self, sends: &mut [(ProcessId, VaMsg)]) {
        let id = self.inner.id;
        for (_, (tag, m)) in sends.iter_mut() {
            if tag.0 == id && tag.1 >= 1 {
                if let BrachaMsg::Init(state) = m {
                    state.value = &state.value + &self.offset;
                }
            }
        }
    }
}

impl AsyncAdversary<VaMsg> for CorruptAverage {
    fn on_start(&mut self) -> Vec<(ProcessId, VaMsg)> {
        let mut sends = self.inner.on_start();
        self.corrupt(&mut sends);
        sends
    }
    fn on_message(&mut self, from: ProcessId, msg: VaMsg) -> Vec<(ProcessId, VaMsg)> {
        let mut sends = self.inner.on_message(from, msg);
        self.corrupt(&mut sends);
        sends
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbvc_sim::asynch::{
        AsyncEngine, AsyncNode, FifoScheduler, RandomScheduler, SilentAsyncAdversary,
        TargetedDelayScheduler,
    };
    use rbvc_sim::config::SystemConfig;

    use crate::problem::{check_execution, Agreement, Validity};

    fn t() -> Tol {
        Tol::default()
    }

    struct Setup {
        n: usize,
        f: usize,
        inputs: Vec<VecD>,
        mode: DeltaMode,
        rounds: usize,
    }

    enum Byz {
        Silent,
        HonestInput(VecD),
        SplitBrain(VecD, VecD),
        Corrupt(VecD, VecD), // (input, offset)
    }

    fn build(
        setup: &Setup,
        byz: Vec<(usize, Byz)>,
    ) -> (SystemConfig, AsyncEngine<VerifiedAveraging>) {
        let faulty: Vec<usize> = byz.iter().map(|(i, _)| *i).collect();
        let config = SystemConfig::new(setup.n, setup.f).with_faulty(faulty);
        let nodes: Vec<AsyncNode<VerifiedAveraging>> = (0..setup.n)
            .map(|i| {
                match byz.iter().find(|(j, _)| *j == i).map(|(_, b)| b) {
                    None => AsyncNode::Honest(VerifiedAveraging::new(
                        i,
                        setup.n,
                        setup.f,
                        setup.inputs[i].clone(),
                        setup.mode,
                        setup.rounds,
                        t(),
                    )),
                    Some(Byz::Silent) => {
                        AsyncNode::Byzantine(Box::new(SilentAsyncAdversary))
                    }
                    Some(Byz::HonestInput(v)) => {
                        AsyncNode::Byzantine(Box::new(HonestFacade(VerifiedAveraging::new(
                            i,
                            setup.n,
                            setup.f,
                            v.clone(),
                            setup.mode,
                            setup.rounds,
                            t(),
                        ))))
                    }
                    Some(Byz::SplitBrain(a, b)) => AsyncNode::Byzantine(Box::new(
                        SplitBrainInput::new(
                            i,
                            setup.n,
                            setup.f,
                            a.clone(),
                            b.clone(),
                            setup.mode,
                            setup.rounds,
                            t(),
                        ),
                    )),
                    Some(Byz::Corrupt(input, offset)) => {
                        AsyncNode::Byzantine(Box::new(CorruptAverage::new(
                            VerifiedAveraging::new(
                                i,
                                setup.n,
                                setup.f,
                                input.clone(),
                                setup.mode,
                                setup.rounds,
                                t(),
                            ),
                            offset.clone(),
                        )))
                    }
                }
            })
            .collect();
        (config.clone(), AsyncEngine::new(config, nodes))
    }

    fn correct_outputs(
        config: &SystemConfig,
        decisions: &[Option<VecD>],
    ) -> Vec<Option<VecD>> {
        config
            .correct_ids()
            .into_iter()
            .map(|i| decisions[i].clone())
            .collect()
    }

    #[test]
    fn baseline_approximate_bvc_at_theorem2_bound() {
        // d = 2, f = 1, n = (d+2)f+1 = 5, DeltaMode::Zero.
        let inputs: Vec<VecD> = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
            VecD::from_slice(&[1.0, 1.0]),
            VecD::from_slice(&[0.5, 0.5]),
        ];
        let setup = Setup {
            n: 5,
            f: 1,
            inputs: inputs.clone(),
            mode: DeltaMode::Zero,
            rounds: 25,
        };
        let (config, mut engine) =
            build(&setup, vec![(4, Byz::HonestInput(VecD::from_slice(&[9.0, -9.0])))]);
        let out = engine.run(&mut RandomScheduler::new(42), 2_000_000);
        assert!(out.all_decided, "liveness failed");
        let correct_inputs: Vec<VecD> = config
            .correct_ids()
            .into_iter()
            .map(|i| inputs[i].clone())
            .collect();
        let v = check_execution(
            &correct_inputs,
            &correct_outputs(&config, &out.decisions),
            Agreement::Epsilon(1e-4),
            &Validity::Exact,
            t(),
        );
        assert!(v.ok(), "approximate BVC failed: {v:?}");
    }

    #[test]
    fn relaxed_averaging_below_theorem2_bound() {
        // The paper's point: d = 3, f = 1, n = 4 < (d+2)f+1 = 6 — baseline
        // impossible, but MinDelta mode achieves (δ,2)-relaxed validity
        // with δ ≤ κ(n−f, f, d, 2)·max-edge (Theorem 15).
        let inputs: Vec<VecD> = vec![
            VecD::from_slice(&[0.0, 0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.1, -0.2]),
            VecD::from_slice(&[0.2, 1.0, 0.3]),
            VecD::from_slice(&[-0.3, 0.4, 1.0]),
        ];
        let setup = Setup {
            n: 4,
            f: 1,
            inputs: inputs.clone(),
            mode: DeltaMode::MinDelta(Norm::L2),
            rounds: 30,
        };
        let (config, mut engine) = build(
            &setup,
            vec![(1, Byz::HonestInput(VecD::from_slice(&[5.0, 5.0, 5.0])))],
        );
        let out = engine.run(&mut RandomScheduler::new(7), 2_000_000);
        assert!(out.all_decided, "liveness failed below the exact bound");
        let correct_inputs: Vec<VecD> = config
            .correct_ids()
            .into_iter()
            .map(|i| inputs[i].clone())
            .collect();
        // κ from Theorem 15 with a safety factor for the asynchronous
        // mixture of round-0 views (different X sets, then averaging).
        let kappa = crate::bounds::kappa_async(4, 1, 3, Norm::L2)
            .expect("regime covered")
            .kappa;
        let v = check_execution(
            &correct_inputs,
            &correct_outputs(&config, &out.decisions),
            Agreement::Epsilon(1e-3),
            &Validity::InputDependentDeltaP {
                kappa,
                norm: Norm::L2,
            },
            t(),
        );
        assert!(v.ok(), "relaxed verified averaging failed: {v:?}");
    }

    #[test]
    fn split_brain_broadcaster_cannot_diverge_correct_processes() {
        let inputs: Vec<VecD> = (0..5)
            .map(|i| VecD::from_slice(&[i as f64, 0.0]))
            .collect();
        let setup = Setup {
            n: 5,
            f: 1,
            inputs,
            mode: DeltaMode::Zero,
            rounds: 20,
        };
        let (config, mut engine) = build(
            &setup,
            vec![(
                2,
                Byz::SplitBrain(
                    VecD::from_slice(&[100.0, 100.0]),
                    VecD::from_slice(&[-100.0, -100.0]),
                ),
            )],
        );
        let out = engine.run(&mut RandomScheduler::new(3), 2_000_000);
        assert!(out.all_decided);
        let outputs = correct_outputs(&config, &out.decisions);
        let decided: Vec<&VecD> = outputs.iter().flatten().collect();
        for a in &decided {
            for b in &decided {
                assert!(
                    a.dist(b, Norm::LInf) < 1e-3,
                    "split-brain broke ε-agreement: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn corrupt_average_is_rejected_and_liveness_survives() {
        let inputs: Vec<VecD> = (0..5)
            .map(|i| VecD::from_slice(&[i as f64, 1.0]))
            .collect();
        let setup = Setup {
            n: 5,
            f: 1,
            inputs: inputs.clone(),
            mode: DeltaMode::Zero,
            rounds: 20,
        };
        let (config, mut engine) = build(
            &setup,
            vec![(
                0,
                Byz::Corrupt(
                    VecD::from_slice(&[2.0, 1.0]),
                    VecD::from_slice(&[1000.0, 1000.0]),
                ),
            )],
        );
        let out = engine.run(&mut RandomScheduler::new(9), 2_000_000);
        assert!(out.all_decided, "corrupt averages must not block progress");
        let correct_inputs: Vec<VecD> = config
            .correct_ids()
            .into_iter()
            .map(|i| inputs[i].clone())
            .collect();
        let v = check_execution(
            &correct_inputs,
            &correct_outputs(&config, &out.decisions),
            Agreement::Epsilon(1e-3),
            &Validity::Exact,
            t(),
        );
        assert!(
            v.ok(),
            "corrupt averaged values leaked into decisions: {v:?}"
        );
    }

    #[test]
    fn silent_fault_does_not_block() {
        let inputs: Vec<VecD> = (0..5)
            .map(|i| VecD::from_slice(&[(i * i) as f64 / 4.0, i as f64]))
            .collect();
        let setup = Setup {
            n: 5,
            f: 1,
            inputs,
            mode: DeltaMode::Zero,
            rounds: 15,
        };
        let (_, mut engine) = build(&setup, vec![(3, Byz::Silent)]);
        let out = engine.run(&mut FifoScheduler, 2_000_000);
        assert!(out.all_decided);
    }

    #[test]
    fn targeted_delay_scheduler_preserves_epsilon_agreement() {
        let inputs: Vec<VecD> = (0..5)
            .map(|i| VecD::from_slice(&[i as f64, -(i as f64)]))
            .collect();
        let setup = Setup {
            n: 5,
            f: 1,
            inputs,
            mode: DeltaMode::Zero,
            rounds: 20,
        };
        let (config, mut engine) = build(&setup, vec![(4, Byz::Silent)]);
        let mut sched = TargetedDelayScheduler::new(vec![0], 100, 5);
        let out = engine.run(&mut sched, 4_000_000);
        assert!(out.all_decided);
        let outputs = correct_outputs(&config, &out.decisions);
        let decided: Vec<&VecD> = outputs.iter().flatten().collect();
        for a in &decided {
            for b in &decided {
                assert!(a.dist(b, Norm::LInf) < 1e-3);
            }
        }
    }

    #[test]
    fn epsilon_agreement_tightens_with_rounds() {
        // Contraction: more rounds → strictly smaller disagreement.
        let inputs: Vec<VecD> = (0..4)
            .map(|i| VecD::from_slice(&[(3 * i) as f64, (i * i) as f64]))
            .collect();
        let disagreement = |rounds: usize| -> f64 {
            let setup = Setup {
                n: 4,
                f: 1,
                inputs: inputs.clone(),
                mode: DeltaMode::MinDelta(Norm::L2),
                rounds,
            };
            let (config, mut engine) = build(&setup, vec![]);
            let out = engine.run(&mut RandomScheduler::new(11), 4_000_000);
            assert!(out.all_decided);
            let outputs = correct_outputs(&config, &out.decisions);
            let decided: Vec<&VecD> = outputs.iter().flatten().collect();
            let mut worst = 0.0_f64;
            for a in &decided {
                for b in &decided {
                    worst = worst.max(a.dist(b, Norm::LInf));
                }
            }
            worst
        };
        let d5 = disagreement(5);
        let d15 = disagreement(15);
        assert!(
            d15 < d5 / 4.0 || d15 < 1e-9,
            "averaging failed to contract: 5 rounds → {d5}, 15 rounds → {d15}"
        );
    }

    #[test]
    fn malformed_payloads_are_dropped_at_the_receive_boundary() {
        // NaN components, wrong dimension, ghost witness ids, ghost senders:
        // each must be discarded without panicking or polluting state, and
        // the node must still decide with the honest majority afterwards.
        let inputs: Vec<VecD> = (0..4)
            .map(|i| VecD::from_slice(&[i as f64, 1.0]))
            .collect();
        let setup = Setup {
            n: 4,
            f: 1,
            inputs: inputs.clone(),
            mode: DeltaMode::MinDelta(Norm::L2),
            rounds: 5,
        };
        let mut node = VerifiedAveraging::new(0, 4, 1, inputs[0].clone(), setup.mode, 5, t());
        let _ = node.on_start();
        let poison = |state: RoundState| ((3usize, 0usize), BrachaMsg::Init(state));
        // Non-finite component.
        let r = node.on_message(
            3,
            poison(RoundState {
                value: VecD::from_slice(&[f64::NAN, 0.0]),
                witness: vec![],
            }),
        );
        assert!(r.is_empty(), "NaN payload must be dropped silently");
        // Dimension mismatch.
        let r = node.on_message(
            3,
            poison(RoundState {
                value: VecD::from_slice(&[1.0, 2.0, 3.0]),
                witness: vec![],
            }),
        );
        assert!(r.is_empty(), "wrong-dimension payload must be dropped");
        // Out-of-range witness id.
        let r = node.on_message(
            3,
            poison(RoundState {
                value: VecD::from_slice(&[1.0, 1.0]),
                witness: vec![(99, VecD::from_slice(&[1.0, 1.0]))],
            }),
        );
        assert!(r.is_empty(), "ghost-witness payload must be dropped");
        // Ghost sender id.
        let r = node.on_message(
            42,
            poison(RoundState {
                value: VecD::from_slice(&[1.0, 1.0]),
                witness: vec![],
            }),
        );
        assert!(r.is_empty(), "ghost-sender message must be dropped");
        // Nothing reached the broadcast substrate or the delivered record.
        assert!(node.delivered.is_empty());
        assert!(node.last_error().is_none());
        // The node is not wedged: a full run with the same shape decides.
        let (_, mut engine) = build(&setup, vec![]);
        let out = engine.run(&mut FifoScheduler, 2_000_000);
        assert!(out.all_decided);
    }

    #[test]
    fn empty_gamma_degrades_node_instead_of_panicking() {
        // d = 3, f = 1, n = 4 < (d+2)f + 1 = 6 with DeltaMode::Zero: Γ(X)
        // over |X| = 3 values is empty whenever the values are affinely
        // independent. The old code panicked; now every node must stay
        // undecided and report the error.
        let inputs: Vec<VecD> = vec![
            VecD::from_slice(&[0.0, 0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0, 0.0]),
            VecD::from_slice(&[0.0, 0.0, 1.0]),
        ];
        let setup = Setup {
            n: 4,
            f: 1,
            inputs,
            mode: DeltaMode::Zero,
            rounds: 3,
        };
        let (_, mut engine) = build(&setup, vec![]);
        let out = engine.run(&mut FifoScheduler, 2_000_000);
        assert!(
            !out.all_decided,
            "Γ(X) cannot be nonempty below the Theorem 2 bound"
        );
        assert!(out.decisions.iter().all(|d| d.is_none()));
        let errs = engine
            .nodes()
            .iter()
            .filter(|node| match node {
                AsyncNode::Honest(p) => matches!(
                    p.last_error(),
                    Some(ProtocolError::EmptyIntersection { .. })
                ),
                AsyncNode::Byzantine(_) => false,
            })
            .count();
        assert!(errs > 0, "degraded nodes must report EmptyIntersection");
    }
}
