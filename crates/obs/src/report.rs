//! Post-hoc trace analysis: parse a JSONL trace back into a per-run
//! summary.
//!
//! A trace file is newline-delimited JSON with six record shapes, all
//! self-describing via their `t` field: `trace_header` (first line: clock
//! name plus the wall-clock anchor of the monotonic epoch), `event` (see
//! [`crate::Event`]), `counter`/`gauge` (registry dumps), `hist`
//! (histogram snapshots), `kernel` (timing cells), and `flight` (the
//! reason record of a flight-recorder black-box dump). Blank lines are
//! skipped; unknown record types are counted but tolerated, so traces
//! stay forward-compatible.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::metrics::HistSnapshot;
use crate::timing::KernelStat;

/// Extract the value of a `key=value` token from an event detail string.
#[must_use]
pub fn detail_field<'a>(detail: &'a str, key: &str) -> Option<&'a str> {
    detail
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('='))
}

/// Everything a trace says about one run.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Parsed event lines.
    pub events: Vec<Event>,
    /// Event counts by kind.
    pub by_kind: BTreeMap<EventKind, u64>,
    /// Receive-gate rejection counts, keyed by the `gate=` detail class.
    pub gate_rejections: BTreeMap<String, u64>,
    /// Per-instance decide latency in µs: the slowest node's
    /// `latency_us=` among that instance's decide events.
    pub decide_latency_us: BTreeMap<u64, u64>,
    /// Decide events seen (one per node per instance).
    pub decide_events: u64,
    /// Monitor violations seen.
    pub violations: u64,
    /// Dumped counters and gauges, keyed by metric name.
    pub scalars: BTreeMap<String, i128>,
    /// Dumped histograms, keyed by metric name.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Kernel timing cells.
    pub kernels: Vec<KernelStat>,
    /// Largest event timestamp (µs since the process monotonic epoch).
    pub wall_us: u64,
    /// Smallest event timestamp, when any event was seen. The monotonic
    /// epoch is process start, not run start, so run duration is
    /// [`TraceSummary::span_us`], not `wall_us`.
    pub first_event_us: Option<u64>,
    /// Wall-clock anchor (µs since the Unix epoch) of the monotonic epoch,
    /// from the trace header.
    pub wall_epoch_unix_us: Option<u64>,
    /// Why a flight-recorder dump was written (`violation` / `stall` /
    /// `panic`), when the trace is a black-box file.
    pub flight_reason: Option<String>,
    /// Events the flight-recorder ring evicted before the dump, from the
    /// flight record.
    pub flight_ring_dropped: Option<u64>,
    /// Lines that parsed as JSON but matched no known record shape.
    pub unknown_records: u64,
}

impl TraceSummary {
    /// Parse a whole trace.
    ///
    /// # Errors
    /// The line number and parser message of the first malformed line
    /// (not-JSON; unknown-but-valid records are tolerated and counted).
    pub fn parse(text: &str) -> Result<TraceSummary, String> {
        let mut s = TraceSummary::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = serde_json::from_str(line)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if let Some(ev) = Event::from_value(&value) {
                s.absorb_event(ev);
            } else if value.get("t").and_then(serde::Value::as_str) == Some("trace_header") {
                s.wall_epoch_unix_us =
                    value.get("wall_epoch_unix_us").and_then(serde::Value::as_u64);
            } else if value.get("t").and_then(serde::Value::as_str) == Some("flight") {
                s.flight_reason = value
                    .get("reason")
                    .and_then(serde::Value::as_str)
                    .map(String::from);
                s.flight_ring_dropped =
                    value.get("ring_dropped").and_then(serde::Value::as_u64);
            } else if let Some((name, hist)) = HistSnapshot::from_value(&value) {
                s.histograms.insert(name, hist);
            } else if let Some(k) = KernelStat::from_value(&value) {
                s.kernels.push(k);
            } else if let Some((name, v)) = scalar_from_value(&value) {
                s.scalars.insert(name, v);
            } else {
                s.unknown_records += 1;
            }
        }
        Ok(s)
    }

    fn absorb_event(&mut self, ev: Event) {
        *self.by_kind.entry(ev.kind).or_insert(0) += 1;
        self.wall_us = self.wall_us.max(ev.time_us);
        self.first_event_us = Some(match self.first_event_us {
            Some(first) => first.min(ev.time_us),
            None => ev.time_us,
        });
        match ev.kind {
            EventKind::GateReject => {
                let gate = ev
                    .detail
                    .as_deref()
                    .and_then(|d| detail_field(d, "gate"))
                    .unwrap_or("unclassified")
                    .to_string();
                *self.gate_rejections.entry(gate).or_insert(0) += 1;
            }
            EventKind::Decide => {
                self.decide_events += 1;
                if let (Some(inst), Some(us)) = (
                    ev.instance,
                    ev.detail
                        .as_deref()
                        .and_then(|d| detail_field(d, "latency_us"))
                        .and_then(|v| v.parse::<u64>().ok()),
                ) {
                    let slot = self.decide_latency_us.entry(inst).or_insert(0);
                    *slot = (*slot).max(us);
                }
            }
            EventKind::Violation => self.violations += 1,
            _ => {}
        }
        self.events.push(ev);
    }

    /// First-to-last event span in µs (run duration under the process-wide
    /// monotonic clock, whose zero predates the run).
    #[must_use]
    pub fn span_us(&self) -> u64 {
        self.wall_us.saturating_sub(self.first_event_us.unwrap_or(self.wall_us))
    }

    /// Count of events of `kind`.
    #[must_use]
    pub fn count(&self, kind: EventKind) -> u64 {
        self.by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Decide-latency percentile from the per-instance table (exact,
    /// nearest-rank); NaN when no instance carried a latency.
    #[must_use]
    pub fn decide_latency_percentile_us(&self, p: f64) -> f64 {
        let mut xs: Vec<u64> = self.decide_latency_us.values().copied().collect();
        if xs.is_empty() {
            return f64::NAN;
        }
        xs.sort_unstable();
        let rank = ((p / 100.0) * xs.len() as f64).ceil().max(1.0) as usize;
        xs[rank.min(xs.len()) - 1] as f64
    }
}

fn scalar_from_value(v: &serde::Value) -> Option<(String, i128)> {
    let t = v.get("t")?.as_str()?;
    if t != "counter" && t != "gauge" {
        return None;
    }
    let name = v.get("name")?.as_str()?.to_string();
    let value = match v.get("value")? {
        serde::Value::UInt(u) => i128::from(*u),
        serde::Value::Int(i) => i128::from(*i),
        _ => return None,
    };
    Some((name, value))
}

/// Render the summary as the human-readable per-run report printed by
/// `exp_obs`.
#[must_use]
pub fn render_report(s: &TraceSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "trace: {} events, wall {:.3} s", s.events.len(), s.span_us() as f64 / 1e6);
    if let Some(reason) = &s.flight_reason {
        let _ = writeln!(
            out,
            "flight-recorder dump: reason {reason}, {} ring evictions before dump",
            s.flight_ring_dropped.unwrap_or(0)
        );
    }

    let _ = writeln!(out, "\nevents by kind:");
    for kind in EventKind::ALL {
        let n = s.count(kind);
        if n > 0 {
            let _ = writeln!(out, "  {:<18} {n}", kind.as_str());
        }
    }

    let _ = writeln!(out, "\nreceive-gate rejections:");
    if s.gate_rejections.is_empty() {
        let _ = writeln!(out, "  (none)");
    }
    for (gate, n) in &s.gate_rejections {
        let _ = writeln!(out, "  {gate:<18} {n}");
    }

    if !s.decide_latency_us.is_empty() {
        let _ = writeln!(
            out,
            "\ndecide latency over {} instances (submit -> decide, slowest node):",
            s.decide_latency_us.len()
        );
        for p in [50.0, 90.0, 99.0, 100.0] {
            let _ = writeln!(
                out,
                "  p{:<5} {:>10.3} ms",
                p,
                s.decide_latency_percentile_us(p) / 1e3
            );
        }
    }
    if let Some(h) = s.histograms.get("service.decide.latency_us") {
        let _ = writeln!(
            out,
            "decide latency histogram: n = {}, p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
            h.count,
            h.percentile(50.0) / 1e3,
            h.percentile(99.0) / 1e3,
            h.max as f64 / 1e3
        );
    }

    if !s.kernels.is_empty() {
        let _ = writeln!(out, "\nkernel time (inclusive):");
        for k in &s.kernels {
            if k.calls > 0 {
                let _ = writeln!(
                    out,
                    "  {:<15} {:>9} calls  {:>12.3} ms total  {:>9.1} us/call",
                    k.kernel.as_str(),
                    k.calls,
                    k.nanos as f64 / 1e6,
                    k.mean_us()
                );
            }
        }
    }

    if !s.scalars.is_empty() {
        let _ = writeln!(out, "\nmetrics:");
        for (name, v) in &s.scalars {
            let _ = writeln!(out, "  {name:<40} {v}");
        }
        for (name, h) in &s.histograms {
            let _ = writeln!(
                out,
                "  {name:<40} n={} mean={:.1} max={}",
                h.count,
                h.mean(),
                h.max
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::recorder::{JsonlRecorder, Obs, Recorder};
    use std::sync::Arc;

    #[test]
    fn detail_fields_are_extracted() {
        assert_eq!(detail_field("gate=auth from=5", "gate"), Some("auth"));
        assert_eq!(detail_field("gate=auth from=5", "from"), Some("5"));
        assert_eq!(detail_field("gate=auth", "missing"), None);
    }

    #[test]
    fn parse_rejects_garbage_lines() {
        assert!(TraceSummary::parse("{\"t\":\"event\"}\nnot json\n").is_err());
    }

    /// End-to-end: write a trace through the JSONL recorder, parse it
    /// back, and check every table.
    #[test]
    fn jsonl_trace_round_trips_through_the_summary() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rbvc_obs_report_test_{}.jsonl", std::process::id()));
        {
            let rec = Arc::new(JsonlRecorder::create(&path).expect("create trace"));
            let obs = Obs::new(Arc::clone(&rec) as Arc<dyn Recorder>);
            obs.emit(|| Event::new(EventKind::RoundStart).node(0).instance(1).round(0));
            obs.emit(|| Event::new(EventKind::GateReject).node(1).detail("gate=auth from=9"));
            obs.emit(|| Event::new(EventKind::GateReject).node(1).detail("gate=decode"));
            obs.emit(|| {
                Event::new(EventKind::Decide).node(0).instance(1).detail("latency_us=1500")
            });
            obs.emit(|| {
                Event::new(EventKind::Decide).node(1).instance(1).detail("latency_us=2500")
            });
            let reg = Registry::new();
            reg.counter("x.count").add(4);
            reg.histogram("service.decide.latency_us").record(2500);
            for line in reg.to_jsonl_lines() {
                rec.write_raw(&line);
            }
            rec.write_raw(r#"{"t":"future_record","x":1}"#);
            rec.flush();
        }
        let text = std::fs::read_to_string(&path).expect("read trace");
        let _ = std::fs::remove_file(&path);
        let s = TraceSummary::parse(&text).expect("parses");
        assert_eq!(s.count(EventKind::GateReject), 2);
        assert_eq!(s.gate_rejections.get("auth"), Some(&1));
        assert_eq!(s.gate_rejections.get("decode"), Some(&1));
        assert_eq!(s.decide_events, 2);
        assert_eq!(s.decide_latency_us.get(&1), Some(&2500), "slowest node wins");
        assert_eq!(s.scalars.get("x.count"), Some(&4));
        assert_eq!(s.histograms["service.decide.latency_us"].count, 1);
        assert_eq!(s.unknown_records, 1, "trace_header is a known record");
        assert!(s.wall_epoch_unix_us.is_some(), "header anchors the epoch");
        assert!(s.span_us() <= s.wall_us);
        let report = render_report(&s);
        assert!(report.contains("gate_reject"));
        assert!(report.contains("auth"));
    }
}
