//! Deterministic decision rules applied to the broadcast multiset `S`.
//!
//! Every synchronous algorithm in the paper has the same shape (ALGO, §9):
//! Step 1 Byzantine-broadcasts all inputs so that **every correct process
//! holds the identical multiset `S`**; Step 2 applies a deterministic
//! function of `S`. Agreement is then automatic; the rule determines which
//! validity condition holds and at which `n`:
//!
//! * [`DecisionRule::GammaPoint`] — a point of `Γ(S)` (Exact BVC, Vaidya–
//!   Garg [19]; also k-relaxed consensus for `2 ≤ k ≤ d` since
//!   `H(T) ⊆ H_k(T)`). Requires `n ≥ (d+1)f + 1` for nonemptiness
//!   (Tverberg).
//! * [`DecisionRule::CoordinateTrimmedMidpoint`] — per-coordinate scalar
//!   consensus (1-relaxed consensus, §5.3). Requires only `n ≥ 3f + 1`
//!   (the broadcast bound).
//! * [`DecisionRule::MinDeltaPoint`] — ALGO Step 2: the smallest δ making
//!   `Γ_(δ,p)(S)` nonempty and a deterministic point of it. Solves
//!   input-dependent (δ,p)-relaxed consensus at `n ≥ 3f + 1` (§9).

use rbvc_geometry::minmax::{delta_star, MinMaxOptions};
use rbvc_geometry::{gamma_point, ConvexHull};
use rbvc_linalg::{Norm, Tol, VecD};
use serde::{Deserialize, Serialize};

/// A deterministic function of the common multiset `S`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecisionRule {
    /// Pick a point of `Γ(S)` (LP-deterministic).
    GammaPoint,
    /// Per-coordinate: drop the `f` lowest and `f` highest values, output
    /// the midpoint of the surviving range.
    CoordinateTrimmedMidpoint,
    /// ALGO Step 2: δ*(S) and a witness point of `Γ_(δ*,p)(S)`.
    MinDeltaPoint(Norm),
}

/// A rule's decision, with the δ it needed (0 for the non-relaxed rules).
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The decided vector.
    pub value: VecD,
    /// The relaxation radius actually used (δ*(S) for `MinDeltaPoint`).
    pub delta: f64,
}

impl DecisionRule {
    /// Apply the rule to the common multiset `S` with fault bound `f`.
    ///
    /// # Panics
    /// Panics if `S` is empty, `f ≥ |S|`, or — for `GammaPoint` — if
    /// `Γ(S)` is empty (the caller violated `n ≥ (d+1)f + 1`; that regime
    /// is precisely what the paper's impossibility results rule out).
    #[must_use]
    pub fn decide(&self, s: &[VecD], f: usize, tol: Tol) -> Decision {
        assert!(!s.is_empty(), "decision over empty multiset");
        assert!(f < s.len(), "decision requires f < |S|");
        match self {
            DecisionRule::GammaPoint => {
                let value = gamma_point(s, f, tol).expect(
                    "Γ(S) empty: GammaPoint rule used below n >= (d+1)f + 1",
                );
                Decision { value, delta: 0.0 }
            }
            DecisionRule::CoordinateTrimmedMidpoint => {
                let d = s[0].dim();
                let n = s.len();
                assert!(n > 2 * f, "trimmed midpoint requires n > 2f");
                let mut out = VecD::zeros(d);
                for i in 0..d {
                    let mut coords: Vec<f64> = s.iter().map(|v| v[i]).collect();
                    coords.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    let kept = &coords[f..n - f];
                    out[i] = 0.5 * (kept[0] + kept[kept.len() - 1]);
                }
                Decision {
                    value: out,
                    delta: 0.0,
                }
            }
            DecisionRule::MinDeltaPoint(norm) => {
                let ds = delta_star(s, f, *norm, tol, MinMaxOptions::default());
                Decision {
                    value: ds.witness,
                    delta: ds.delta,
                }
            }
        }
    }

    /// The validity guarantee this rule provides relative to the correct
    /// inputs, assuming `S` contains at most `f` faulty entries: for
    /// `GammaPoint`, membership in `H(N)`; for the others as documented.
    /// Used by tests as an oracle.
    #[must_use]
    pub fn respects_exact_validity(&self) -> bool {
        matches!(self, DecisionRule::GammaPoint)
    }
}

/// Check the inductive validity invariant of `GammaPoint`: the decision is
/// in the hull of every `(n−f)`-subset of `S`, hence in `H(N)` whichever
/// `f` entries were faulty.
#[must_use]
pub fn gamma_decision_in_correct_hull(
    s: &[VecD],
    _f: usize,
    decision: &VecD,
    correct_indices: &[usize],
    tol: Tol,
) -> bool {
    let correct: Vec<VecD> = correct_indices.iter().map(|&i| s[i].clone()).collect();
    ConvexHull::new(correct).contains(decision, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tol {
        Tol::default()
    }

    #[test]
    fn gamma_rule_survives_any_fault_choice() {
        // n = 4 points in R², f = 1: decision must lie in the hull of every
        // 3-subset — in particular the all-correct one, whoever is faulty.
        let s = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[0.0, 2.0]),
            VecD::from_slice(&[5.0, 5.0]), // adversarial outlier
        ];
        let d = DecisionRule::GammaPoint.decide(&s, 1, t());
        assert_eq!(d.delta, 0.0);
        for faulty in 0..4 {
            let correct: Vec<usize> = (0..4).filter(|&i| i != faulty).collect();
            assert!(
                gamma_decision_in_correct_hull(&s, 1, &d.value, &correct, Tol(1e-6)),
                "validity broken when process {faulty} is the faulty one"
            );
        }
    }

    #[test]
    fn trimmed_midpoint_stays_in_correct_range() {
        // Coordinates with one huge adversarial value; after trimming f = 1
        // from each side, the midpoint is inside the correct range.
        let s = vec![
            VecD::from_slice(&[1.0]),
            VecD::from_slice(&[2.0]),
            VecD::from_slice(&[3.0]),
            VecD::from_slice(&[1000.0]), // faulty
        ];
        let d = DecisionRule::CoordinateTrimmedMidpoint.decide(&s, 1, t());
        assert!((d.value[0] - 2.5).abs() < 1e-12, "midpoint of [2,3]");
        assert!(d.value[0] >= 1.0 && d.value[0] <= 3.0);
    }

    #[test]
    fn trimmed_midpoint_handles_low_outlier_too() {
        let s = vec![
            VecD::from_slice(&[-1000.0]), // faulty
            VecD::from_slice(&[1.0]),
            VecD::from_slice(&[2.0]),
            VecD::from_slice(&[3.0]),
        ];
        let d = DecisionRule::CoordinateTrimmedMidpoint.decide(&s, 1, t());
        assert!((d.value[0] - 1.5).abs() < 1e-12, "midpoint of [1,2]");
    }

    #[test]
    fn min_delta_rule_reports_inradius_for_simplex() {
        let s = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[3.0, 0.0]),
            VecD::from_slice(&[0.0, 4.0]),
        ];
        let d = DecisionRule::MinDeltaPoint(Norm::L2).decide(&s, 1, t());
        assert!((d.delta - 1.0).abs() < 1e-8, "3-4-5 inradius");
        assert!(d.value.approx_eq(&VecD::from_slice(&[1.0, 1.0]), Tol(1e-7)));
    }

    #[test]
    fn min_delta_zero_above_tverberg_bound() {
        let s = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[1.0, 2.0]),
            VecD::from_slice(&[1.0, 0.7]),
        ];
        let d = DecisionRule::MinDeltaPoint(Norm::L2).decide(&s, 1, t());
        assert_eq!(d.delta, 0.0);
    }

    #[test]
    fn rules_are_deterministic() {
        let s = vec![
            VecD::from_slice(&[0.1, 0.9]),
            VecD::from_slice(&[2.3, -0.4]),
            VecD::from_slice(&[-1.0, 1.5]),
            VecD::from_slice(&[0.8, 0.2]),
        ];
        for rule in [
            DecisionRule::GammaPoint,
            DecisionRule::CoordinateTrimmedMidpoint,
            DecisionRule::MinDeltaPoint(Norm::L2),
            DecisionRule::MinDeltaPoint(Norm::LInf),
        ] {
            let a = rule.decide(&s, 1, t());
            let b = rule.decide(&s, 1, t());
            assert_eq!(a, b, "rule {rule:?} must be deterministic");
        }
    }

    #[test]
    #[should_panic(expected = "GammaPoint rule used below")]
    fn gamma_rule_panics_below_bound() {
        // 3 affinely independent points in R², f = 1: Γ empty.
        let s = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0]),
        ];
        let _ = DecisionRule::GammaPoint.decide(&s, 1, t());
    }
}
