//! `rbvc-client`: the external client library for relaxed Byzantine vector
//! consensus (ISSUE 8).
//!
//! A [`ClientHandle`] is one client *session* talking to a mesh of node
//! client ports (`rbvc_transport::ClientPort`). It implements the
//! Viewstamped-Replication-style client contract:
//!
//! * every request carries the session id and a **monotonic request
//!   number**, so retries are idempotent — the service answers a repeat of
//!   an answered `(session, reqno)` from its reply cache with bit-identical
//!   bytes and never launches a second instance;
//! * a submit to a node that does not own the session is answered with
//!   `Redirect{node}`; the handle follows it and remembers the owner;
//! * `Busy` (admission bounds full) backs off exponentially and retries;
//! * a dead or unresponsive node triggers **failover**: the handle rotates
//!   to the next node, whose redirect points it back at the owner when the
//!   owner is alive.
//!
//! The handle keeps one connection per node, each drained by a background
//! reader thread into a queue, which gives two submission styles:
//! [`ClientHandle::submit`] (blocking: write, then wait for the matching
//! reply with timeout/retry/backoff) and the open-loop pair
//! [`ClientHandle::submit_nowait`] / [`ClientHandle::take_replies`] used by
//! the E21 saturation benchmark, where arrivals must not be gated on
//! decisions.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::thread;
use std::time::{Duration, Instant};

use rbvc_linalg::VecD;
use rbvc_transport::{
    read_client_frame_bytes, write_client_frame, ClientFrame,
};

/// Why a client call gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// No node addresses were configured.
    NoNodes,
    /// Every attempt failed (timeouts, dead nodes, or sustained `Busy`).
    Exhausted {
        /// Attempts made before giving up.
        attempts: usize,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NoNodes => write!(f, "no node addresses configured"),
            ClientError::Exhausted { attempts } => {
                write!(f, "request exhausted {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Retry/backoff knobs for the blocking [`ClientHandle::submit`] path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Wall-clock budget of one attempt (connect + wait for the reply).
    pub attempt_timeout: Duration,
    /// Attempts before [`ClientError::Exhausted`]. Redirects do not consume
    /// an attempt — following the owner is progress, not failure.
    pub max_attempts: usize,
    /// First backoff after a `Busy` or a dead node; doubles per consecutive
    /// failure up to `max_backoff`.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempt_timeout: Duration::from_millis(2000),
            max_attempts: 8,
            backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// Counters a handle accumulates across its lifetime, for tests and the
/// E21 campaign report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandleStats {
    /// Submits written to a node (including retries).
    pub attempts: u64,
    /// `Redirect` frames followed.
    pub redirects_followed: u64,
    /// `Busy` frames that triggered a backoff.
    pub busy_backoffs: u64,
    /// Node rotations after a dead/unresponsive target.
    pub failovers: u64,
    /// Replies received (including cached duplicates).
    pub replies: u64,
}

/// One connection to one node's client port, drained by a reader thread.
struct NodeConn {
    stream: TcpStream,
    rx: Receiver<ClientFrame>,
}

fn spawn_reader(stream: TcpStream, tx: Sender<ClientFrame>) {
    thread::spawn(move || {
        let mut stream = stream;
        while let Ok(Some(bytes)) = read_client_frame_bytes(&mut stream) {
            match rbvc_transport::decode_client_frame(&bytes) {
                Ok(frame) => {
                    if tx.send(frame).is_err() {
                        break;
                    }
                }
                Err(_) => break, // a node speaking garbage: poison the conn
            }
        }
    });
}

/// One client session: owns its request numbering and the per-node
/// connections. Not `Sync` — one handle per client thread.
pub struct ClientHandle {
    session: u64,
    next_reqno: u64,
    nodes: Vec<SocketAddr>,
    /// The node submits currently go to (the session owner once a redirect
    /// or a successful reply has taught us).
    target: usize,
    policy: RetryPolicy,
    conns: HashMap<usize, NodeConn>,
    stats: HandleStats,
}

impl ClientHandle {
    /// A handle for `session` over the given node client-port addresses
    /// (indexed by node id, matching the mesh). The initial target is
    /// `session % nodes.len()` — the owner under the default sharding — but
    /// any starting point works: a non-owner redirects.
    #[must_use]
    pub fn new(session: u64, nodes: Vec<SocketAddr>) -> ClientHandle {
        let target = if nodes.is_empty() { 0 } else { (session % nodes.len() as u64) as usize };
        ClientHandle {
            session,
            next_reqno: 1,
            nodes,
            target,
            policy: RetryPolicy::default(),
            conns: HashMap::new(),
            stats: HandleStats::default(),
        }
    }

    /// Replace the retry policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RetryPolicy) -> ClientHandle {
        self.policy = policy;
        self
    }

    /// Point submits at node `node` (e.g. to exercise the redirect path in
    /// tests); out-of-range ids are ignored.
    pub fn set_target(&mut self, node: usize) {
        if node < self.nodes.len() {
            self.target = node;
        }
    }

    /// This handle's session id.
    #[must_use]
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> HandleStats {
        self.stats
    }

    fn conn(&mut self, node: usize) -> Option<&mut NodeConn> {
        if !self.conns.contains_key(&node) {
            let addr = *self.nodes.get(node)?;
            let stream = TcpStream::connect_timeout(&addr, self.policy.attempt_timeout).ok()?;
            stream.set_nodelay(true).ok();
            let reader = stream.try_clone().ok()?;
            let (tx, rx) = channel();
            spawn_reader(reader, tx);
            self.conns.insert(node, NodeConn { stream, rx });
        }
        self.conns.get_mut(&node)
    }

    /// Write one `Submit` for `reqno` to the current target. Returns false
    /// when the target is unreachable (the connection, if any, is dropped).
    fn write_submit(&mut self, reqno: u64, value: &VecD) -> bool {
        let session = self.session;
        let target = self.target;
        let frame = ClientFrame::Submit { session, reqno, value: value.clone() };
        let ok = match self.conn(target) {
            Some(conn) => write_client_frame(&mut conn.stream, &frame).is_ok(),
            None => false,
        };
        if ok {
            self.stats.attempts += 1;
        } else {
            self.conns.remove(&target);
        }
        ok
    }

    /// Rotate to the next node after a dead target.
    fn fail_over(&mut self) {
        if !self.nodes.is_empty() {
            self.target = (self.target + 1) % self.nodes.len();
            self.stats.failovers += 1;
        }
    }

    /// Submit `value` as this session's next request and block until its
    /// decision arrives, following redirects, backing off on `Busy`, and
    /// failing over past dead nodes per the [`RetryPolicy`].
    ///
    /// # Errors
    /// [`ClientError::NoNodes`] with an empty node list;
    /// [`ClientError::Exhausted`] when every attempt failed.
    pub fn submit(&mut self, value: &VecD) -> Result<VecD, ClientError> {
        let reqno = self.next_reqno;
        self.next_reqno += 1;
        self.submit_as(reqno, value)
    }

    /// Like [`ClientHandle::submit`] with an explicit request number — what
    /// the idempotence tests use to replay the *same* `(session, reqno)`
    /// against different nodes. Numbers at or below an already-answered
    /// request return the cached decision.
    ///
    /// # Errors
    /// As [`ClientHandle::submit`].
    pub fn submit_as(&mut self, reqno: u64, value: &VecD) -> Result<VecD, ClientError> {
        if self.nodes.is_empty() {
            return Err(ClientError::NoNodes);
        }
        self.next_reqno = self.next_reqno.max(reqno + 1);
        let mut backoff = self.policy.backoff;
        let mut attempts = 0;
        while attempts < self.policy.max_attempts {
            attempts += 1;
            if !self.write_submit(reqno, value) {
                self.fail_over();
                thread::sleep(backoff);
                backoff = (backoff * 2).min(self.policy.max_backoff);
                continue;
            }
            let deadline = Instant::now() + self.policy.attempt_timeout;
            match self.await_reply(reqno, deadline) {
                Await::Decision(v) => return Ok(v),
                Await::Redirected => {
                    // Progress, not failure: retry the owner immediately.
                    attempts -= 1;
                }
                Await::Busy => {
                    self.stats.busy_backoffs += 1;
                    thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.policy.max_backoff);
                }
                Await::TimedOut => {
                    self.fail_over();
                }
            }
        }
        Err(ClientError::Exhausted { attempts })
    }

    /// Wait on the target's reply queue for the decision of `reqno`.
    fn await_reply(&mut self, reqno: u64, deadline: Instant) -> Await {
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Await::TimedOut;
            }
            let target = self.target;
            let Some(conn) = self.conns.get_mut(&target) else {
                return Await::TimedOut;
            };
            let frame = match conn.rx.recv_timeout(deadline - now) {
                Ok(frame) => frame,
                Err(_) => {
                    // Reader gone (dead conn) or deadline hit.
                    self.conns.remove(&target);
                    return Await::TimedOut;
                }
            };
            match frame {
                ClientFrame::Reply { session, reqno: got, decision } => {
                    if session == self.session && got == reqno {
                        self.stats.replies += 1;
                        return Await::Decision(decision);
                    }
                    // A stale reply from an earlier request: keep waiting.
                }
                ClientFrame::Redirect { node } => {
                    self.stats.redirects_followed += 1;
                    self.set_target(node as usize);
                    return Await::Redirected;
                }
                ClientFrame::Busy => return Await::Busy,
                ClientFrame::Submit { .. } => {
                    // Nodes never send Submit; drop and keep waiting.
                }
            }
        }
    }

    /// Open-loop submission: write the session's next request to the
    /// current target and return its request number without waiting for the
    /// decision (pair with [`ClientHandle::take_replies`]). A dead target
    /// fails over once and retries the write.
    ///
    /// # Errors
    /// [`ClientError::NoNodes`]; [`ClientError::Exhausted`] when the write
    /// failed on two nodes in a row.
    pub fn submit_nowait(&mut self, value: &VecD) -> Result<u64, ClientError> {
        if self.nodes.is_empty() {
            return Err(ClientError::NoNodes);
        }
        let reqno = self.next_reqno;
        self.next_reqno += 1;
        if self.write_submit(reqno, value) {
            return Ok(reqno);
        }
        self.fail_over();
        if self.write_submit(reqno, value) {
            return Ok(reqno);
        }
        Err(ClientError::Exhausted { attempts: 2 })
    }

    /// Drain every reply that has arrived on any of this handle's
    /// connections: `(reqno, decision)` pairs for this session. `Redirect`
    /// frames are followed (updating the target for subsequent submits);
    /// `Busy` is counted. Non-blocking.
    pub fn take_replies(&mut self) -> Vec<(u64, VecD)> {
        let mut out = Vec::new();
        let mut retarget = None;
        let mut busy = 0;
        for conn in self.conns.values_mut() {
            loop {
                match conn.rx.try_recv() {
                    Ok(ClientFrame::Reply { session, reqno, decision }) => {
                        if session == self.session {
                            out.push((reqno, decision));
                        }
                    }
                    Ok(ClientFrame::Redirect { node }) => retarget = Some(node as usize),
                    Ok(ClientFrame::Busy) => busy += 1,
                    Ok(ClientFrame::Submit { .. }) => {}
                    Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                }
            }
        }
        if let Some(node) = retarget {
            self.stats.redirects_followed += 1;
            self.set_target(node);
        }
        self.stats.busy_backoffs += busy;
        self.stats.replies += out.len() as u64;
        out
    }
}

/// Outcome of one blocking wait.
enum Await {
    Decision(VecD),
    Redirected,
    Busy,
    TimedOut,
}
