//! `relaxed-bvc` — command-line driver for the library: run consensus
//! instances, query bounds, and compute δ* on random or supplied inputs.
//!
//! ```text
//! relaxed-bvc bounds --f 1 --d 3
//! relaxed-bvc delta-star --n 4 --f 1 --d 3 --seed 7 [--norm inf]
//! relaxed-bvc sync  --n 4 --f 1 --d 3 --rule min-delta --byz silent --seed 7
//! relaxed-bvc async --n 4 --f 1 --d 3 --rounds 20 --seed 7
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relaxed_bvc::consensus::bounds;
use relaxed_bvc::consensus::problem::{Agreement, Validity};
use relaxed_bvc::consensus::rules::DecisionRule;
use relaxed_bvc::consensus::runner::{
    run_async, run_sync, AsyncByzantine, AsyncSpec, SchedulerSpec, SyncSpec,
};
use relaxed_bvc::consensus::sync_protocols::ByzantineStrategy;
use relaxed_bvc::consensus::verified_avg::DeltaMode;
use relaxed_bvc::geometry::minmax::{delta_star, MinMaxOptions};
use relaxed_bvc::linalg::{Norm, Tol, VecD};

struct Args(Vec<String>);

impl Args {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }
    fn usize_or(&self, key: &str, default: usize) -> usize {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
    fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

fn parse_norm(s: Option<&str>) -> Norm {
    match s {
        Some("1") => Norm::L1,
        Some("inf") | Some("infinity") => Norm::LInf,
        Some(other) => other.parse::<f64>().map(Norm::lp).unwrap_or(Norm::L2),
        None => Norm::L2,
    }
}

fn random_inputs(seed: u64, n: usize, d: usize) -> Vec<VecD> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| VecD((0..d).map(|_| rng.gen_range(-1.0..1.0)).collect()))
        .collect()
}

fn cmd_bounds(args: &Args) {
    let f = args.usize_or("--f", 1);
    let d = args.usize_or("--d", 3);
    println!("process-count bounds for f = {f}, d = {d}:");
    println!("  Exact BVC (sync, Thm 1):              n >= {}", bounds::exact_bvc_min_n(f, d));
    println!("  Approximate BVC (async, Thm 2):       n >= {}", bounds::approx_bvc_min_n(f, d));
    println!("  1-relaxed (sync/async):               n >= {}", bounds::k_relaxed_exact_min_n(f, d, 1));
    if d >= 2 {
        println!(
            "  k-relaxed, 2<=k<=d (sync, Thm 3):     n >= {}",
            bounds::k_relaxed_exact_min_n(f, d, 2.min(d))
        );
        println!(
            "  k-relaxed, 2<=k<=d (async, Thm 4):    n >= {}",
            bounds::k_relaxed_approx_min_n(f, d, 2.min(d))
        );
    }
    println!("  (δ,p) constant δ (sync, Thm 5):       n >= {}", bounds::delta_p_exact_min_n(f, d));
    println!("  (δ,p) constant δ (async, Thm 6):      n >= {}", bounds::delta_p_approx_min_n(f, d));
    println!("  input-dependent δ (Lemma 10):         n >= {}", bounds::input_dependent_min_n(f));
    if d >= 3 {
        for n in bounds::input_dependent_min_n(f)..=(d + 1) * f {
            if let Some(k) = bounds::kappa_l2(n, f, d) {
                println!(
                    "    κ(n={n}): δ* < {:.4}·max-edge  [{:?}{}]",
                    k.kappa,
                    k.source,
                    if k.source.is_proven() { "" } else { ", conjectural" }
                );
            }
        }
    }
}

fn cmd_delta_star(args: &Args) {
    let n = args.usize_or("--n", 4);
    let f = args.usize_or("--f", 1);
    let d = args.usize_or("--d", 3);
    let seed = args.u64_or("--seed", 42);
    let norm = parse_norm(args.get("--norm"));
    let inputs = random_inputs(seed, n, d);
    println!("inputs (seed {seed}):");
    for (i, p) in inputs.iter().enumerate() {
        println!("  process {i}: {p}");
    }
    let ds = delta_star(&inputs, f, norm, Tol::default(), MinMaxOptions::default());
    println!("\nδ*(S) [{norm:?}] = {:.8}  (method: {:?})", ds.delta, ds.method);
    println!("witness point   = {}", ds.witness);
}

fn cmd_sync(args: &Args) {
    let n = args.usize_or("--n", 4);
    let f = args.usize_or("--f", 1);
    let d = args.usize_or("--d", 3);
    let seed = args.u64_or("--seed", 42);
    let rule = match args.get("--rule") {
        Some("gamma") => DecisionRule::GammaPoint,
        Some("coord") => DecisionRule::CoordinateTrimmedMidpoint,
        _ => DecisionRule::MinDeltaPoint(parse_norm(args.get("--norm"))),
    };
    let inputs = random_inputs(seed, n, d);
    let adversaries = match args.get("--byz") {
        Some("silent") => vec![(n - 1, ByzantineStrategy::Silent)],
        Some("two-faced") => vec![(
            n - 1,
            ByzantineStrategy::TwoFaced((0..n).map(|j| VecD(vec![j as f64 * 3.0; d])).collect()),
        )],
        Some("follow") => vec![(n - 1, ByzantineStrategy::FollowProtocol(inputs[n - 1].clone()))],
        _ => vec![],
    };
    let validity = match rule {
        DecisionRule::GammaPoint => Validity::Exact,
        DecisionRule::CoordinateTrimmedMidpoint => Validity::KRelaxed(1),
        DecisionRule::MinDeltaPoint(norm) => Validity::InputDependentDeltaP {
            kappa: if n >= 3 { 1.0 / (n as f64 - 2.0) } else { 1.0 },
            norm,
        },
    };
    let spec = SyncSpec {
        n,
        f,
        d,
        rule,
        inputs,
        adversaries,
        agreement: Agreement::Exact,
        validity,
    };
    let report = run_sync(&spec, Tol::default());
    println!("decisions (correct processes): ");
    for dec in report.decisions.iter().flatten() {
        println!("  {dec}");
    }
    println!("δ used: {:?}", report.delta_used);
    println!("messages: {}", report.trace.messages_sent);
    println!("verdict: {:?}", report.verdict);
    std::process::exit(i32::from(!report.verdict.ok()));
}

fn cmd_async(args: &Args) {
    let n = args.usize_or("--n", 4);
    let f = args.usize_or("--f", 1);
    let d = args.usize_or("--d", 3);
    let seed = args.u64_or("--seed", 42);
    let rounds = args.usize_or("--rounds", 20);
    let inputs = random_inputs(seed, n, d);
    let adversaries = match args.get("--byz") {
        Some("silent") => vec![(n - 1, AsyncByzantine::Silent)],
        Some("split") => vec![(
            n - 1,
            AsyncByzantine::SplitBrain {
                primary: VecD(vec![5.0; d]),
                alt: VecD(vec![-5.0; d]),
            },
        )],
        _ => vec![],
    };
    let spec = AsyncSpec {
        n,
        f,
        mode: DeltaMode::MinDelta(Norm::L2),
        rounds,
        inputs,
        adversaries,
        scheduler: SchedulerSpec::Random(seed),
        max_steps: 10_000_000,
        agreement: Agreement::Epsilon(1e-3),
        validity: Validity::InputDependentDeltaP {
            kappa: bounds::kappa_async(n, f, d, Norm::L2).map_or(1.0, |k| k.kappa),
            norm: Norm::L2,
        },
    };
    let report = run_async(&spec, Tol::default());
    println!("decisions (correct processes): ");
    for dec in report.decisions.iter().flatten() {
        println!("  {dec}");
    }
    println!("round-0 δ used: {:?}", report.delta_used);
    println!("messages delivered: {}", report.trace.messages_delivered);
    println!("verdict: {:?}", report.verdict);
    std::process::exit(i32::from(!report.verdict.ok()));
}

const USAGE: &str = "relaxed-bvc <command> [flags]

commands:
  bounds      --f <f> --d <d>
  delta-star  --n <n> --f <f> --d <d> --seed <s> [--norm 1|2|inf|<p>]
  sync        --n <n> --f <f> --d <d> --seed <s>
              [--rule gamma|coord|min-delta] [--byz silent|two-faced|follow]
  async       --n <n> --f <f> --d <d> --seed <s> --rounds <r>
              [--byz silent|split]";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first().cloned() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let args = Args(argv);
    match cmd.as_str() {
        "bounds" => cmd_bounds(&args),
        "delta-star" => cmd_delta_star(&args),
        "sync" => cmd_sync(&args),
        "async" => cmd_async(&args),
        _ => {
            eprintln!("unknown command `{cmd}`\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}
