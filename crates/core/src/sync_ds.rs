//! Broadcast-then-decide over the **Dolev–Strong authenticated** substrate.
//!
//! The paper's ALGO Step 1 admits "any Byzantine broadcast algorithm";
//! [`crate::sync_protocols::SyncBvc`] uses unauthenticated EIG, this module
//! provides the authenticated alternative. Same Step 2, same decision
//! rules, same guarantees — but `O(n³f)` messages instead of `O(n^{f+1})`
//! (the ablation quantified in `benches/consensus.rs` and the
//! `message_complexity` tests).

use rbvc_linalg::{Tol, VecD};
use rbvc_sim::config::ProcessId;
use rbvc_sim::dolev_strong::{DsEquivocator, ParallelDolevStrong, ParallelDsMsg};
use rbvc_sim::sync::{SilentAdversary, SyncAdversary, SyncNode, SyncProtocol};

use crate::rules::{Decision, DecisionRule};

/// Broadcast-then-decide over parallel Dolev–Strong.
pub struct SyncBvcDs {
    broadcast: ParallelDolevStrong<VecD>,
    rule: DecisionRule,
    f: usize,
    tol: Tol,
    decision: Option<Decision>,
}

impl SyncBvcDs {
    /// Build the protocol for process `id` with its `input`.
    #[must_use]
    pub fn new(
        id: ProcessId,
        n: usize,
        f: usize,
        d: usize,
        input: VecD,
        rule: DecisionRule,
        tol: Tol,
    ) -> Self {
        assert_eq!(input.dim(), d, "input dimension mismatch");
        SyncBvcDs {
            broadcast: ParallelDolevStrong::new(id, n, f, input, VecD::zeros(d)),
            rule,
            f,
            tol,
            decision: None,
        }
    }

    /// Full decision record once available.
    #[must_use]
    pub fn decision(&self) -> Option<&Decision> {
        self.decision.as_ref()
    }
}

impl SyncProtocol for SyncBvcDs {
    type Msg = ParallelDsMsg<VecD>;
    type Output = VecD;

    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, Self::Msg)> {
        self.broadcast.round_messages(round)
    }

    fn receive(&mut self, round: usize, inbox: &[(ProcessId, Self::Msg)]) {
        self.broadcast.receive(round, inbox);
        if self.decision.is_none() {
            if let Some(s) = self.broadcast.output() {
                self.decision = Some(self.rule.decide(&s, self.f, self.tol));
            }
        }
    }

    fn output(&self) -> Option<VecD> {
        self.decision.as_ref().map(|d| d.value.clone())
    }
}

/// Byzantine strategies available on the authenticated substrate.
#[derive(Debug, Clone)]
pub enum DsByzantineStrategy {
    /// Sends nothing.
    Silent,
    /// Signs two different inputs and shows one to each network half.
    Equivocate {
        /// Value shown to ids `< n/2`.
        low: VecD,
        /// Value shown to the rest.
        high: VecD,
    },
    /// Follows the protocol with an adversarially chosen input.
    FollowProtocol(VecD),
}

/// Materialize a node for the Dolev–Strong flavour of the protocol.
#[must_use]
#[allow(clippy::too_many_arguments)] // flat spec mirrors the runner structs
pub fn make_ds_node(
    id: ProcessId,
    n: usize,
    f: usize,
    d: usize,
    honest_input: Option<VecD>,
    strategy: Option<DsByzantineStrategy>,
    rule: DecisionRule,
    tol: Tol,
) -> SyncNode<SyncBvcDs> {
    match strategy {
        None => {
            let input = honest_input.expect("honest node needs an input");
            SyncNode::Honest(SyncBvcDs::new(id, n, f, d, input, rule, tol))
        }
        Some(DsByzantineStrategy::Silent) => SyncNode::Byzantine(Box::new(SilentAdversary)),
        Some(DsByzantineStrategy::Equivocate { low, high }) => SyncNode::Byzantine(
            Box::new(DsEquivocator::new(id, n, f, low, high, VecD::zeros(d))),
        ),
        Some(DsByzantineStrategy::FollowProtocol(input)) => SyncNode::Byzantine(Box::new(
            FollowDsAdversary(ParallelDolevStrong::new(id, n, f, input, VecD::zeros(d))),
        )),
    }
}

/// Byzantine wrapper that runs the honest broadcast layer verbatim.
pub struct FollowDsAdversary(ParallelDolevStrong<VecD>);

impl SyncAdversary<ParallelDsMsg<VecD>> for FollowDsAdversary {
    fn round_messages(&mut self, round: usize) -> Vec<(ProcessId, ParallelDsMsg<VecD>)> {
        self.0.round_messages(round)
    }
    fn receive(&mut self, round: usize, inbox: &[(ProcessId, ParallelDsMsg<VecD>)]) {
        self.0.receive(round, inbox);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbvc_linalg::Norm;
    use rbvc_sim::config::SystemConfig;
    use rbvc_sim::sync::RoundEngine;

    use crate::problem::{check_execution, Agreement, Validity};

    fn t() -> Tol {
        Tol::default()
    }

    fn run(
        n: usize,
        f: usize,
        d: usize,
        inputs: &[VecD],
        byz: Vec<(usize, DsByzantineStrategy)>,
        rule: DecisionRule,
    ) -> (Vec<Option<VecD>>, Vec<VecD>) {
        let faulty: Vec<usize> = byz.iter().map(|(i, _)| *i).collect();
        let config = SystemConfig::new(n, f).with_faulty(faulty);
        let nodes: Vec<SyncNode<SyncBvcDs>> = (0..n)
            .map(|i| {
                let strategy = byz.iter().find(|(j, _)| *j == i).map(|(_, s)| s.clone());
                let honest = if strategy.is_none() {
                    Some(inputs[i].clone())
                } else {
                    None
                };
                make_ds_node(i, n, f, d, honest, strategy, rule, t())
            })
            .collect();
        let mut engine = RoundEngine::new(config.clone(), nodes);
        let out = engine.run(f + 2);
        let correct_inputs: Vec<VecD> = config
            .correct_ids()
            .into_iter()
            .map(|i| inputs[i].clone())
            .collect();
        let decisions: Vec<Option<VecD>> = config
            .correct_ids()
            .into_iter()
            .map(|i| out.decisions[i].clone())
            .collect();
        (decisions, correct_inputs)
    }

    #[test]
    fn exact_bvc_over_authenticated_broadcast() {
        let (n, f, d) = (4, 1, 2);
        let inputs = vec![
            VecD::from_slice(&[0.0, 0.0]),
            VecD::from_slice(&[2.0, 0.0]),
            VecD::from_slice(&[0.0, 2.0]),
            VecD::zeros(2),
        ];
        let (decisions, correct) = run(
            n,
            f,
            d,
            &inputs,
            vec![(
                3,
                DsByzantineStrategy::Equivocate {
                    low: VecD::from_slice(&[50.0, 50.0]),
                    high: VecD::from_slice(&[-50.0, -50.0]),
                },
            )],
            DecisionRule::GammaPoint,
        );
        let v = check_execution(&correct, &decisions, Agreement::Exact, &Validity::Exact, t());
        assert!(v.ok(), "{v:?}");
    }

    #[test]
    fn algo_over_authenticated_broadcast_matches_eig_decision() {
        // Same inputs, same rule: the two substrates deliver the same
        // multiset S, hence the identical decision.
        let (n, f, d) = (4, 1, 3);
        let inputs = vec![
            VecD::from_slice(&[0.0, 0.0, 0.0]),
            VecD::from_slice(&[1.0, 0.0, 0.0]),
            VecD::from_slice(&[0.0, 1.0, 0.0]),
            VecD::from_slice(&[0.0, 0.0, 1.0]),
        ];
        let rule = DecisionRule::MinDeltaPoint(Norm::L2);
        let (ds_decisions, _) = run(n, f, d, &inputs, vec![], rule);

        // EIG flavour via the main runner.
        let spec = crate::runner::SyncSpec {
            n,
            f,
            d,
            rule,
            inputs: inputs.clone(),
            adversaries: vec![],
            agreement: Agreement::Exact,
            validity: Validity::Exact,
        };
        let eig_report = crate::runner::run_sync(&spec, t());
        let a = ds_decisions[0].clone().unwrap();
        let b = eig_report.decisions[0].clone().unwrap();
        assert!(
            a.approx_eq(&b, Tol(1e-9)),
            "substrates disagree: {a} vs {b}"
        );
    }

    #[test]
    fn silent_and_follow_strategies() {
        let (n, f, d) = (7, 2, 2);
        let inputs: Vec<VecD> = (0..n)
            .map(|i| VecD::from_slice(&[i as f64, -(i as f64)]))
            .collect();
        let (decisions, correct) = run(
            n,
            f,
            d,
            &inputs,
            vec![
                (0, DsByzantineStrategy::Silent),
                (4, DsByzantineStrategy::FollowProtocol(VecD::from_slice(&[9.0, 9.0]))),
            ],
            DecisionRule::GammaPoint,
        );
        let v = check_execution(&correct, &decisions, Agreement::Exact, &Validity::Exact, t());
        assert!(v.ok(), "{v:?}");
    }
}
