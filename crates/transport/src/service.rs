//! Multi-instance consensus service: many concurrent SyncBvc /
//! VerifiedAveraging instances multiplexed over one transport mesh.
//!
//! One [`ConsensusService`] per process owns one [`Transport`] endpoint and
//! any number of consensus instances, each identified by a service-wide
//! [`InstanceId`]. Outbound protocol messages are encoded into
//! [`crate::wire`] frames tagged with their instance id and queued on the
//! transport; [`ConsensusService::poll`] drains the socket, decodes,
//! demultiplexes by instance id, dispatches, and flushes everything the
//! dispatch produced as one batch per peer.
//!
//! ## Receive-boundary policy (degrade, don't panic)
//!
//! Every inbound frame passes four gates before touching protocol state,
//! each recording a [`ProtocolError`] and discarding the frame on failure:
//!
//! 1. **decode** — malformed bytes die in [`crate::wire::decode_frame`];
//! 2. **sender authentication** — the frame's claimed sender must equal the
//!    transport-authenticated link peer (no spoofing across links);
//! 3. **instance lookup** — frames for unknown instance ids are dropped
//!    (instances are registered before `start`);
//! 4. **kind check** — the payload variant must match the instance's
//!    protocol.
//!
//! Whatever survives is handed to state machines that run their own
//! receive-boundary validation on top.

use std::collections::BTreeMap;
use std::time::Duration;

use rbvc_core::verified_avg::VerifiedAveraging;
use rbvc_core::SyncBvc;
use rbvc_linalg::VecD;
use rbvc_sim::asynch::AsyncProtocol;
use rbvc_sim::config::ProcessId;
use rbvc_sim::error::{ErrorLog, ProtocolError};
pub use rbvc_sim::monitor::InstanceId;

use crate::lockstep::{Lockstep, RoundBatch};
use crate::transport::Transport;
use crate::wire::{decode_frame, encode_frame, Frame, Payload};

/// One consensus instance as the service runs it.
pub enum InstanceProto {
    /// A synchronous broadcast-then-decide instance under the lockstep
    /// synchronizer.
    Bvc(Lockstep<SyncBvc>),
    /// An asynchronous Verified-Averaging instance.
    Va(VerifiedAveraging),
}

/// A decision surfaced by [`ConsensusService::poll`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionEvent {
    /// Which instance decided.
    pub instance: InstanceId,
    /// The local process that decided (always this service's id).
    pub process: ProcessId,
    /// The decided vector.
    pub value: VecD,
}

struct Slot {
    proto: InstanceProto,
    decided: bool,
}

/// The per-process service multiplexing consensus instances over one
/// transport endpoint.
pub struct ConsensusService<T: Transport> {
    transport: T,
    instances: BTreeMap<InstanceId, Slot>,
    undecided: usize,
    errors: ErrorLog,
    started: bool,
}

impl<T: Transport> ConsensusService<T> {
    /// Wrap a transport endpoint into an (initially empty) service.
    #[must_use]
    pub fn new(transport: T) -> Self {
        ConsensusService {
            transport,
            instances: BTreeMap::new(),
            undecided: 0,
            errors: ErrorLog::new(),
            started: false,
        }
    }

    /// Register one instance under `id`.
    ///
    /// # Errors
    /// [`ProtocolError::InvalidSpec`] if `id` is already taken or the
    /// service already started.
    pub fn add_instance(&mut self, id: InstanceId, proto: InstanceProto) -> Result<(), ProtocolError> {
        if self.started {
            return Err(ProtocolError::InvalidSpec {
                reason: "instances must be registered before start()".into(),
            });
        }
        if self.instances.contains_key(&id) {
            return Err(ProtocolError::InvalidSpec {
                reason: format!("duplicate instance id {id}"),
            });
        }
        self.instances.insert(id, Slot { proto, decided: false });
        self.undecided += 1;
        Ok(())
    }

    /// Kick off every registered instance (their `on_start` sends), flushed
    /// as one batch per peer.
    ///
    /// # Errors
    /// Propagates transport-level send/flush failures (also recorded).
    pub fn start(&mut self) -> Result<(), ProtocolError> {
        self.started = true;
        let mut first_err = None;
        let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
        for id in ids {
            let sends = match &mut self.instances.get_mut(&id).expect("registered").proto {
                InstanceProto::Bvc(p) => Self::encode_bvc(id, self.transport.local_id(), p.on_start()),
                InstanceProto::Va(p) => Self::encode_va(id, self.transport.local_id(), p.on_start()),
            };
            if let Err(e) = self.route(sends) {
                first_err.get_or_insert(e);
            }
        }
        if let Err(e) = self.transport.flush() {
            first_err.get_or_insert(e);
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    fn encode_bvc(
        instance: InstanceId,
        sender: ProcessId,
        sends: Vec<(ProcessId, RoundBatch<<SyncBvc as rbvc_sim::sync::SyncProtocol>::Msg>)>,
    ) -> Vec<(ProcessId, Vec<u8>)> {
        sends
            .into_iter()
            .map(|(dst, batch)| {
                let frame = Frame {
                    instance,
                    sender,
                    round: u32::try_from(batch.round).expect("round fits u32"),
                    payload: Payload::Eig(batch.msgs),
                };
                (dst, encode_frame(&frame))
            })
            .collect()
    }

    fn encode_va(
        instance: InstanceId,
        sender: ProcessId,
        sends: Vec<(ProcessId, <VerifiedAveraging as AsyncProtocol>::Msg)>,
    ) -> Vec<(ProcessId, Vec<u8>)> {
        sends
            .into_iter()
            .map(|(dst, msg)| {
                let frame = Frame {
                    instance,
                    sender,
                    round: u32::try_from(msg.0 .1).expect("round fits u32"),
                    payload: Payload::Va(msg),
                };
                (dst, encode_frame(&frame))
            })
            .collect()
    }

    /// Queue encoded frames on the transport; failures are recorded and the
    /// remaining frames still go out.
    fn route(&mut self, frames: Vec<(ProcessId, Vec<u8>)>) -> Result<(), ProtocolError> {
        let mut first_err = None;
        for (dst, bytes) in frames {
            if let Err(e) = self.transport.send(dst, bytes) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Dispatch one authenticated, decoded frame to its instance. Returns
    /// the outbound frames it produced.
    fn dispatch(&mut self, frame: Frame) -> Vec<(ProcessId, Vec<u8>)> {
        let local = self.transport.local_id();
        let Some(slot) = self.instances.get_mut(&frame.instance) else {
            self.errors.record(ProtocolError::MalformedPayload {
                from: frame.sender,
                reason: format!("frame for unknown instance {}", frame.instance),
            });
            return Vec::new();
        };
        match (&mut slot.proto, frame.payload) {
            (InstanceProto::Bvc(p), Payload::Eig(msgs)) => Self::encode_bvc(
                frame.instance,
                local,
                p.on_message(
                    frame.sender,
                    RoundBatch { round: frame.round as usize, msgs },
                ),
            ),
            (InstanceProto::Va(p), Payload::Va(msg)) => {
                Self::encode_va(frame.instance, local, p.on_message(frame.sender, msg))
            }
            (_, _) => {
                self.errors.record(ProtocolError::MalformedPayload {
                    from: frame.sender,
                    reason: format!(
                        "payload kind does not match the protocol of instance {}",
                        frame.instance
                    ),
                });
                Vec::new()
            }
        }
    }

    /// One service step: receive (waiting up to `timeout` for the first
    /// frame), decode, authenticate, demultiplex, dispatch, tick, and flush
    /// everything produced as one batch per peer. Returns the decisions
    /// newly reached during this poll.
    pub fn poll(&mut self, timeout: Duration) -> Vec<DecisionEvent> {
        let inbound = self.transport.recv_timeout(timeout);
        let mut outbound: Vec<(ProcessId, Vec<u8>)> = Vec::new();
        for (link_peer, bytes) in inbound {
            let frame = match decode_frame(&bytes, link_peer) {
                Ok(f) => f,
                Err(e) => {
                    self.errors.record(e);
                    continue;
                }
            };
            if frame.sender != link_peer {
                self.errors.record(ProtocolError::MalformedPayload {
                    from: link_peer,
                    reason: format!(
                        "spoofed sender: header claims {} on the link from {}",
                        frame.sender, link_peer
                    ),
                });
                continue;
            }
            outbound.extend(self.dispatch(frame));
        }
        // Drive timers (lockstep round timeouts) once per poll.
        let local = self.transport.local_id();
        let ids: Vec<InstanceId> = self.instances.keys().copied().collect();
        for id in ids {
            let slot = self.instances.get_mut(&id).expect("registered");
            if slot.decided {
                continue;
            }
            let sends = match &mut slot.proto {
                InstanceProto::Bvc(p) => Self::encode_bvc(id, local, p.on_tick()),
                InstanceProto::Va(p) => Self::encode_va(id, local, p.on_tick()),
            };
            outbound.extend(sends);
        }
        if self.route(outbound).is_err() || self.transport.flush().is_err() {
            // Already recorded by the transport; the poll loop continues on
            // the surviving links.
        }
        self.collect_decisions()
    }

    /// Surface newly decided instances as events (each instance at most once).
    fn collect_decisions(&mut self) -> Vec<DecisionEvent> {
        let local = self.transport.local_id();
        let mut events = Vec::new();
        for (id, slot) in &mut self.instances {
            if slot.decided {
                continue;
            }
            let value = match &slot.proto {
                InstanceProto::Bvc(p) => p.output(),
                InstanceProto::Va(p) => p.output(),
            };
            if let Some(value) = value {
                slot.decided = true;
                self.undecided -= 1;
                events.push(DecisionEvent { instance: *id, process: local, value });
            }
        }
        events
    }

    /// Poll until every instance decided or `max_polls` elapse; returns all
    /// decision events in arrival order.
    pub fn run_until_decided(
        &mut self,
        poll_timeout: Duration,
        max_polls: usize,
    ) -> Vec<DecisionEvent> {
        let mut events = Vec::new();
        for _ in 0..max_polls {
            if self.undecided == 0 {
                break;
            }
            events.extend(self.poll(poll_timeout));
        }
        events
    }

    /// True iff every registered instance has decided.
    #[must_use]
    pub fn all_decided(&self) -> bool {
        self.undecided == 0
    }

    /// Decision of one instance, if reached.
    #[must_use]
    pub fn decision(&self, id: InstanceId) -> Option<VecD> {
        match &self.instances.get(&id)?.proto {
            InstanceProto::Bvc(p) => p.output(),
            InstanceProto::Va(p) => p.output(),
        }
    }

    /// Service-level degradation events (decode failures, spoofed senders,
    /// unknown instances, kind mismatches).
    #[must_use]
    pub fn errors(&self) -> &ErrorLog {
        &self.errors
    }

    /// The transport endpoint (byte counters, transport error log).
    #[must_use]
    pub fn transport(&self) -> &T {
        &self.transport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::in_proc_mesh;
    use rbvc_core::verified_avg::DeltaMode;
    use rbvc_core::DecisionRule;
    use rbvc_linalg::Tol;

    fn bvc_instance(id: ProcessId, n: usize, f: usize, input: &[f64]) -> InstanceProto {
        let d = input.len();
        InstanceProto::Bvc(Lockstep::new(
            SyncBvc::new(
                id,
                n,
                f,
                d,
                VecD::from_slice(input),
                DecisionRule::MinDeltaPoint(rbvc_linalg::Norm::L2),
                Tol::default(),
            ),
            n,
            f + 1,
        ))
    }

    fn va_instance(id: ProcessId, n: usize, input: &[f64]) -> InstanceProto {
        InstanceProto::Va(VerifiedAveraging::new(
            id,
            n,
            0,
            VecD::from_slice(input),
            DeltaMode::MinDelta(rbvc_linalg::Norm::L2),
            8,
            Tol::default(),
        ))
    }

    /// Two instances (one of each protocol) over a 4-endpoint in-process
    /// mesh, all driven from one thread by round-robin polling.
    #[test]
    fn multiplexes_bvc_and_va_over_one_mesh() {
        let n = 4;
        let inputs = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]];
        let mut services: Vec<ConsensusService<_>> = in_proc_mesh(n)
            .into_iter()
            .map(ConsensusService::new)
            .collect();
        for (i, svc) in services.iter_mut().enumerate() {
            svc.add_instance(10, bvc_instance(i, n, 1, &inputs[i])).unwrap();
            svc.add_instance(20, va_instance(i, n, &inputs[i])).unwrap();
            svc.start().unwrap();
        }
        let mut spins = 0;
        while services.iter().any(|s| !s.all_decided()) {
            for svc in &mut services {
                let _ = svc.poll(Duration::from_millis(1));
            }
            spins += 1;
            assert!(spins < 10_000, "service mesh failed to converge");
        }
        // Every process decided both instances identically across the mesh.
        for inst in [10u64, 20] {
            let v0 = services[0].decision(inst).expect("decided");
            for svc in &services[1..] {
                assert_eq!(svc.decision(inst), Some(v0.clone()), "instance {inst}");
            }
        }
        for svc in &services {
            assert!(svc.errors().is_empty());
        }
    }

    #[test]
    fn duplicate_instance_ids_and_late_registration_are_rejected() {
        let mut svc = ConsensusService::new(in_proc_mesh(1).pop().unwrap());
        svc.add_instance(1, va_instance(0, 1, &[0.0])).unwrap();
        assert!(matches!(
            svc.add_instance(1, va_instance(0, 1, &[0.0])),
            Err(ProtocolError::InvalidSpec { .. })
        ));
        svc.start().unwrap();
        assert!(matches!(
            svc.add_instance(2, va_instance(0, 1, &[0.0])),
            Err(ProtocolError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn byzantine_frames_are_rejected_at_every_gate() {
        let n = 2;
        let mut mesh = in_proc_mesh(n);
        let ep1 = mesh.pop().unwrap();
        let mut raw = mesh.pop().unwrap(); // endpoint 0, used raw
        let mut svc = ConsensusService::new(ep1);
        svc.add_instance(5, va_instance(1, n, &[0.0])).unwrap();
        svc.start().unwrap();

        use crate::transport::Transport as _;
        // Gate 1: undecodable bytes.
        raw.send(1, vec![0xde, 0xad]).unwrap();
        // Gate 2: spoofed sender (claims process 1 on the link from 0).
        let spoof = Frame {
            instance: 5,
            sender: 1,
            round: 0,
            payload: Payload::Va((
                (0, 0),
                rbvc_sim::bracha::BrachaMsg::Init(rbvc_core::verified_avg::RoundState {
                    value: VecD::from_slice(&[1.0]),
                    witness: vec![],
                }),
            )),
        };
        raw.send(1, encode_frame(&spoof)).unwrap();
        // Gate 3: unknown instance id.
        let unknown = Frame { instance: 99, ..spoof.clone() };
        raw.send(1, encode_frame(&Frame { sender: 0, ..unknown })).unwrap();
        // Gate 4: payload kind mismatch (EIG frame for a VA instance).
        let mismatch = Frame {
            instance: 5,
            sender: 0,
            round: 0,
            payload: Payload::Eig(vec![]),
        };
        raw.send(1, encode_frame(&mismatch)).unwrap();
        raw.flush().unwrap();

        for _ in 0..20 {
            let _ = svc.poll(Duration::from_millis(5));
            if svc.errors().total() >= 4 {
                break;
            }
        }
        assert_eq!(svc.errors().total(), 4, "all four gates must fire: {:?}", svc.errors().errors());
    }
}
