//! Experiment implementations (one module per paper artifact group).
//!
//! | module | experiments | paper artifact |
//! |--------|-------------|----------------|
//! | [`table1`] | E1, E12 | Table 1 (δ* upper bounds), Theorem 14 p-sweep |
//! | [`lemmas`] | E7–E9 | Lemmas 12–15 closed forms |
//! | [`counterex`] | E2–E6 | Figure 1 and the Theorem 3–6 constructions |
//! | [`broadcast_ablation`] | E15 | EIG vs Dolev–Strong substrate ablation |
//! | [`conjecture_hunt`] | E14 | adversarial stress-search of Conjectures 1–2 |
//! | [`tverberg`] | E10 | Section 8 (Tverberg tightness under relaxed hulls) |
//! | [`asynchrony`] | E11, E13 | Theorem 15 / Conjecture 4, ε-convergence |
//! | [`chaos`] | E16 | unreliable-network campaign (robustness, not a paper artifact) |
//! | [`service`] | E17 | multi-instance service load generation over real sockets (systems artifact) |
//! | [`recovery`] | E18 | kill/restart crash-recovery campaign with WAL corruption injection (systems artifact) |
//! | [`byzantine`] | E20 | live Byzantine adversaries over real TCP (robustness, systems artifact) |
//! | [`client`] | E21 | open-loop client saturation sweep through the external front-end (systems artifact) |
//! | [`health`] | E22 | seeded stall-injection campaign for the self-diagnosis subsystem (systems artifact) |
//! | [`identity`] | E23 | impersonation campaign against the keyed link-identity layer (robustness, systems artifact) |

pub mod asynchrony;
pub mod broadcast_ablation;
pub mod byzantine;
pub mod chaos;
pub mod client;
pub mod conjecture_hunt;
pub mod counterex;
pub mod health;
pub mod identity;
pub mod lemmas;
pub mod recovery;
pub mod service;
pub mod table1;
pub mod tverberg;
