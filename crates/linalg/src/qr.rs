//! Householder QR factorization.
//!
//! The affine-geometry layer builds orthonormal bases with modified
//! Gram–Schmidt ([`crate::affine::orthonormal_basis`]); Householder QR is
//! the numerically harder-to-break alternative, used as a cross-check
//! oracle in tests and available for callers that face ill-conditioned
//! spans. Also provides a least-squares solver (`min ‖Ax − b‖₂` via QR),
//! which backs the Wolfe corral solves on near-degenerate corrals.

use crate::matrix::Mat;
use crate::tolerance::Tol;
use crate::vector::VecD;

/// Compact QR factorization of an `m × n` matrix (`m ≥ n`): `A = Q R` with
/// `Q` `m × n` orthonormal columns and `R` `n × n` upper triangular.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthonormal factor (`m × n`).
    pub q: Mat,
    /// Upper-triangular factor (`n × n`).
    pub r: Mat,
    /// Numerical rank estimate from the diagonal of `R`.
    pub rank: usize,
}

/// Compute the compact Householder QR of `a` (`m × n`, `m ≥ n`).
///
/// # Panics
/// Panics if `m < n`.
#[must_use]
pub fn householder_qr(a: &Mat, tol: Tol) -> Qr {
    let m = a.nrows();
    let n = a.ncols();
    assert!(m >= n, "householder_qr requires m >= n (got {m} x {n})");

    // Work on a full copy; accumulate the reflectors applied to identity.
    let mut r_full = a.clone();
    // Q starts as the m × m identity; we apply reflectors on the right
    // (Q = H_1 H_2 … H_n) by applying them to each column.
    let mut q_full = Mat::identity(m);

    for k in 0..n {
        // Householder vector for column k below the diagonal.
        let mut norm_x = 0.0;
        for i in k..m {
            norm_x += r_full[(i, k)] * r_full[(i, k)];
        }
        let norm_x = norm_x.sqrt();
        if norm_x <= tol.value().max(1e-300) {
            continue; // column already (numerically) zero below diagonal
        }
        let alpha = if r_full[(k, k)] >= 0.0 { -norm_x } else { norm_x };
        let mut v = vec![0.0; m];
        for i in k..m {
            v[i] = r_full[(i, k)];
        }
        v[k] -= alpha;
        let v_norm_sq: f64 = v.iter().map(|x| x * x).sum();
        if v_norm_sq <= 1e-300 {
            continue;
        }
        // Apply H = I − 2 v vᵀ / (vᵀ v) to R (left) and accumulate into Q.
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * r_full[(i, j)];
            }
            let scale = 2.0 * dot / v_norm_sq;
            for i in k..m {
                r_full[(i, j)] -= scale * v[i];
            }
        }
        for j in 0..m {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * q_full[(j, i)];
            }
            let scale = 2.0 * dot / v_norm_sq;
            for i in k..m {
                q_full[(j, i)] -= scale * v[i];
            }
        }
    }

    // Extract compact factors.
    let mut q = Mat::zeros(m, n);
    let mut r = Mat::zeros(n, n);
    for i in 0..m {
        for j in 0..n {
            q[(i, j)] = q_full[(i, j)];
        }
    }
    for i in 0..n {
        for j in i..n {
            r[(i, j)] = r_full[(i, j)];
        }
    }
    let scale = a.max_abs().max(1.0);
    let rank = (0..n)
        .filter(|&i| r[(i, i)].abs() > tol.scaled(scale).value())
        .count();
    Qr { q, r, rank }
}

/// Least-squares solve `min ‖A x − b‖₂` via QR (`A` full column rank).
/// Returns `None` when `A` is numerically rank-deficient.
#[must_use]
pub fn least_squares(a: &Mat, b: &VecD, tol: Tol) -> Option<VecD> {
    let n = a.ncols();
    let qr = householder_qr(a, tol);
    if qr.rank < n {
        return None;
    }
    // x = R⁻¹ Qᵀ b (back substitution).
    let qtb = qr.q.transpose().matvec(b);
    let mut x = VecD::zeros(n);
    for i in (0..n).rev() {
        let mut s = qtb[i];
        for j in i + 1..n {
            s -= qr.r[(i, j)] * x[j];
        }
        x[i] = s / qr.r[(i, i)];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn t() -> Tol {
        Tol::default()
    }

    fn random_mat(rng: &mut StdRng, m: usize, n: usize) -> Mat {
        Mat::from_rows(
            &(0..m)
                .map(|_| (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect())
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn qr_reconstructs_a() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..40 {
            let n = rng.gen_range(1..6);
            let m = n + rng.gen_range(0..4);
            let a = random_mat(&mut rng, m, n);
            let qr = householder_qr(&a, t());
            let recon = qr.q.matmul(&qr.r);
            assert!(recon.approx_eq(&a, Tol(1e-9)), "QR != A");
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let n = rng.gen_range(1..5);
            let m = n + rng.gen_range(0..4);
            let a = random_mat(&mut rng, m, n);
            let qr = householder_qr(&a, t());
            let gram = qr.q.gram();
            assert!(
                gram.approx_eq(&Mat::identity(n), Tol(1e-9)),
                "QᵀQ != I"
            );
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_mat(&mut rng, 5, 4);
        let qr = householder_qr(&a, t());
        for i in 0..4 {
            for j in 0..i {
                assert!(qr.r[(i, j)].abs() < 1e-12, "R not triangular at ({i},{j})");
            }
        }
    }

    #[test]
    fn rank_detects_deficiency() {
        // Third column = sum of first two.
        let a = Mat::from_cols(&[
            VecD::from_slice(&[1.0, 0.0, 2.0]),
            VecD::from_slice(&[0.0, 1.0, 1.0]),
            VecD::from_slice(&[1.0, 1.0, 3.0]),
        ]);
        let qr = householder_qr(&a, t());
        assert_eq!(qr.rank, 2);
        assert_eq!(qr.rank, a.rank(t()), "QR rank agrees with elimination rank");
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let n = rng.gen_range(1..4);
            let m = n + rng.gen_range(1..4);
            let a = random_mat(&mut rng, m, n);
            let b = VecD((0..m).map(|_| rng.gen_range(-2.0..2.0)).collect());
            let Some(x) = least_squares(&a, &b, t()) else {
                continue; // rank-deficient draw
            };
            // Residual must be orthogonal to the column space: Aᵀ(Ax−b)=0.
            let residual = &a.matvec(&x) - &b;
            let atr = a.transpose().matvec(&residual);
            assert!(
                atr.max_abs() < 1e-7,
                "normal equations violated: {atr}"
            );
        }
    }

    #[test]
    fn least_squares_exact_on_square_systems() {
        let a = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x_true = VecD::from_slice(&[1.0, -2.0]);
        let b = a.matvec(&x_true);
        let x = least_squares(&a, &b, t()).expect("nonsingular");
        assert!(x.approx_eq(&x_true, Tol(1e-9)));
    }

    #[test]
    fn qr_basis_agrees_with_gram_schmidt_span() {
        // The Q columns span the same subspace as the MGS basis: project
        // each MGS basis vector onto Q's span and back — identity.
        use crate::affine::orthonormal_basis;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let d = rng.gen_range(2..6);
            let k = rng.gen_range(1..=d);
            let vs: Vec<VecD> = (0..k)
                .map(|_| VecD((0..d).map(|_| rng.gen_range(-2.0..2.0)).collect()))
                .collect();
            let mgs = orthonormal_basis(&vs, t());
            let a = Mat::from_cols(&vs);
            let qr = householder_qr(&a, t());
            assert_eq!(qr.rank, mgs.len(), "rank disagreement");
            for u in &mgs {
                // Projection onto span(Q): Q (Qᵀ u) restricted to rank cols.
                let qtu = qr.q.transpose().matvec(u);
                let back = qr.q.matvec(&qtu);
                assert!(
                    back.approx_eq(u, Tol(1e-8)),
                    "MGS vector escapes the QR span"
                );
            }
        }
    }
}
