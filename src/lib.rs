#![warn(missing_docs)]

//! # relaxed-bvc
//!
//! Relaxed Byzantine vector consensus — a full implementation of Xiang &
//! Vaidya, *Relaxed Byzantine Vector Consensus* (SPAA 2016 brief
//! announcement; arXiv:1601.08067), with every substrate built from
//! scratch: dense linear algebra, an LP solver and convex-hull calculus,
//! synchronous/asynchronous Byzantine message-passing simulators, EIG
//! Byzantine broadcast, Bracha reliable broadcast, and the paper's
//! algorithms on top.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`linalg`] — vectors, norms, matrices, simplex volume formulas;
//! * [`geometry`] — hulls, relaxed hulls, `Γ` intersections, the δ* solver,
//!   Tverberg machinery;
//! * [`sim`] — the network substrates and broadcast protocols;
//! * [`consensus`] — problems, bounds, decision rules, the synchronous
//!   broadcast-then-decide protocols (Exact BVC, k-relaxed, ALGO) and the
//!   asynchronous (Relaxed) Verified Averaging, plus the executable
//!   impossibility constructions.
//!
//! ## Quickstart
//!
//! ```
//! use relaxed_bvc::consensus::problem::{Agreement, Validity};
//! use relaxed_bvc::consensus::rules::DecisionRule;
//! use relaxed_bvc::consensus::runner::{run_sync, SyncSpec};
//! use relaxed_bvc::consensus::sync_protocols::ByzantineStrategy;
//! use relaxed_bvc::linalg::{Tol, VecD};
//!
//! let spec = SyncSpec {
//!     n: 4, f: 1, d: 2,
//!     rule: DecisionRule::GammaPoint,
//!     inputs: vec![
//!         VecD::from_slice(&[0.0, 0.0]),
//!         VecD::from_slice(&[2.0, 0.0]),
//!         VecD::from_slice(&[0.0, 2.0]),
//!         VecD::zeros(2),
//!     ],
//!     adversaries: vec![(3, ByzantineStrategy::Silent)],
//!     agreement: Agreement::Exact,
//!     validity: Validity::Exact,
//! };
//! let report = run_sync(&spec, Tol::default());
//! assert!(report.verdict.ok());
//! ```

pub use rbvc_core as consensus;
pub use rbvc_geometry as geometry;
pub use rbvc_linalg as linalg;
pub use rbvc_sim as sim;
